"""Command-line interface: analyze recorded traces from the shell.

Supports the paper's intended workflow — record once, analyze offline,
vindicate on demand (§4.3)::

    python -m repro analyze recorded.trace --analysis st-wdc
    python -m repro analyze recorded.trace -a st-dc -a fto-hb --vindicate
    python -m repro tables --table 4 --scale 0.5
    python -m repro generate --program xalan --scale 0.2 -o xalan.trace
    python -m repro characterize recorded.trace

(Also installed behaviourally as ``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.registry import ANALYSIS_NAMES, create
from repro.trace.format import dump_trace, load_trace
from repro.workloads.dacapo import DACAPO_SPECS, dacapo_trace
from repro.workloads.stats import characterize


def _cmd_analyze(args) -> int:
    trace = load_trace(args.trace)
    analyses = args.analysis or ["st-wdc"]
    exit_code = 0
    for name in analyses:
        report = create(name, trace).run(
            sample_every=4096 if args.memory else 0)
        line = "{:<12} {} static / {} dynamic race(s)".format(
            name, report.static_count, report.dynamic_count)
        if args.memory:
            line += "  [peak metadata {}K]".format(
                report.peak_footprint_bytes // 1024)
        print(line)
        if report.dynamic_count:
            exit_code = 1
        for race in report.races[: args.max_races]:
            print("   event {:>6}  T{}  {} of x{}  ({})".format(
                race.index, race.tid, race.access, race.var, race.kinds))
        if report.dynamic_count > args.max_races:
            print("   ... and {} more".format(
                report.dynamic_count - args.max_races))
        if args.vindicate and report.races:
            from repro.vindication.vindicate import vindicate
            result = vindicate(trace, report.first_race)
            print("   vindication of first race: {}".format(result.verdict))
    return exit_code


def _cmd_tables(args) -> int:
    from repro.harness.runner import main as runner_main
    forwarded: List[str] = []
    for number in args.table or []:
        forwarded += ["--table", str(number)]
    if args.all:
        forwarded.append("--all")
    if args.scale is not None:
        forwarded += ["--scale", str(args.scale)]
    if args.out:
        forwarded += ["--out", args.out]
    return runner_main(forwarded)


def _cmd_generate(args) -> int:
    trace = dacapo_trace(args.program, scale=args.scale, cache=False)
    with open(args.output, "w") as fp:
        dump_trace(trace, fp)
    print("wrote {} events ({} threads) to {}".format(
        len(trace), trace.num_threads, args.output))
    return 0


def _cmd_characterize(args) -> int:
    trace = load_trace(args.trace)
    ch = characterize(trace)
    print("events:          {}".format(ch.events))
    print("threads:         {} (peak {})".format(
        ch.threads_total, ch.threads_peak))
    print("NSEAs:           {} ({:.1f}% of events)".format(
        ch.nseas, 100.0 * ch.nseas / max(ch.events, 1)))
    for depth in (1, 2, 3):
        print(">= {} lock(s):    {:.2f}% of NSEAs".format(
            depth, ch.pct_ge(depth)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SmartTrack predictive race detection (PLDI 2020 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze a recorded trace")
    analyze.add_argument("trace", help="trace file (see repro.trace.format)")
    analyze.add_argument("-a", "--analysis", action="append",
                         choices=ANALYSIS_NAMES,
                         help="analysis name (repeatable; default st-wdc)")
    analyze.add_argument("--vindicate", action="store_true",
                         help="vindicate the first reported race")
    analyze.add_argument("--memory", action="store_true",
                         help="also report peak metadata footprint")
    analyze.add_argument("--max-races", type=int, default=10,
                         help="dynamic races to list per analysis")
    analyze.set_defaults(func=_cmd_analyze)

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("--table", type=int, action="append")
    tables.add_argument("--all", action="store_true")
    tables.add_argument("--scale", type=float, default=None)
    tables.add_argument("--out", type=str, default=None)
    tables.set_defaults(func=_cmd_tables)

    generate = sub.add_parser(
        "generate", help="generate a DaCapo-analog trace file")
    generate.add_argument("--program", choices=sorted(DACAPO_SPECS),
                          required=True)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("-o", "--output", required=True)
    generate.set_defaults(func=_cmd_generate)

    char = sub.add_parser(
        "characterize", help="Table 2-style characteristics of a trace")
    char.add_argument("trace")
    char.set_defaults(func=_cmd_characterize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro analyze ... | head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
