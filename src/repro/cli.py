"""Command-line interface: analyze recorded traces from the shell.

Supports the paper's intended workflow — record once, analyze offline,
vindicate on demand (§4.3)::

    python -m repro analyze recorded.trace --analysis st-wdc
    python -m repro analyze recorded.trace -a st-dc -a fto-hb --vindicate
    python -m repro analyze huge.trace --stream -a st-wdc -a fto-hb
    python -m repro compare recorded.trace
    python -m repro compare --program xalan --scale 0.2 --seed 7
    python -m repro convert recorded.trace recorded.bin
    python -m repro tables --table 4 --scale 0.5
    python -m repro generate --program xalan --scale 0.2 -o xalan.trace
    python -m repro serve /tmp/repro.sock -a st-wdc --emit jsonl
    python -m repro generate --program xalan --to-socket /tmp/repro.sock
    python -m repro characterize recorded.trace

``analyze --stream`` and ``compare`` run every requested analysis in a
*single pass* over the events (:class:`repro.core.engine.MultiRunner`);
with ``--stream`` the trace is parsed lazily, so arbitrarily large
captures are analyzed in bounded memory.  Every subcommand accepts both
trace formats — the v1 text format and the v2 binary format (>2x faster
to ingest; see :mod:`repro.trace.binfmt`) — autodetecting from the
file's leading bytes; ``convert`` translates between them (by default to
the opposite of the input's format) and ``generate --binary`` records
binary directly.

``serve`` is the *online* counterpart of ``analyze --stream``: it binds
a Unix socket path (or ``HOST:PORT`` for TCP), waits for exactly one
producer, and analyzes the feed incrementally
(:meth:`repro.core.engine.MultiRunner.session`), printing each race the
moment it is found — as human-readable lines or, with ``--emit jsonl``,
one JSON object per line — followed by the same per-analysis summary
block ``analyze`` prints.  ``generate --to-socket`` is the matching
producer; any recorder that writes either trace format to the socket
works.  A second connection attempt is refused (one execution per
session), and ``--timeout`` bounds both the wait for the producer and
every read, so a stalled feed exits 2 instead of hanging.

``serve --multi`` lifts the one-producer limit: the :mod:`repro.server`
package keeps one detection session per *tenant* (producers name
themselves via the hello handshake — ``generate --tenant``), sessions
survive producer disconnects and resume from the last acked event, and
``repro status SOCKET`` queries the server's control socket for
per-session metrics.  The serve command itself is a thin shell over
:func:`repro.server.serve_main`.

``analyze``, ``compare``, and ``serve`` take ``--workers N`` to shard
the requested analyses across N worker processes
(:class:`repro.core.parallel.ParallelRunner`): the trace is still
decoded exactly once (in the parent), decoded chunks are broadcast to
the workers over shared memory, and the merged reports are identical to
the in-process pass.  A worker that dies mid-run degrades to the
partial-summary exit-2 path, like any detached analysis.

Exit status contract: 0 = no races, 1 = races found, 2 = unreadable,
malformed, or partially failed analysis.  2 takes precedence: a run that
both finds races and fails an analysis exits 2, never a combined code.

(Also installed behaviourally as ``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import List, Optional

from repro.core.registry import ANALYSIS_NAMES, MAIN_MATRIX, create
from repro.core.engine import run_analyses, run_stream
from repro.reporting import print_entries, print_report
from repro.trace.format import TraceFormatError, dump_trace, load_trace
from repro.trace.trace import WellFormednessError
from repro.workloads.dacapo import DACAPO_SPECS, dacapo_trace
from repro.workloads.generator import generate_trace
from repro.workloads.stats import characterize


def _print_report(name: str, report, args) -> int:
    """One analysis report (args-shaped shim over
    :func:`repro.reporting.print_report`)."""
    return print_report(name, report, max_races=args.max_races,
                        memory=args.memory)


def _print_entries(result, args, vindicate_trace=None) -> int:
    """The per-analysis summary block (args-shaped shim over
    :func:`repro.reporting.print_entries`)."""
    return print_entries(result, max_races=args.max_races,
                         memory=args.memory,
                         vindicate_trace=vindicate_trace)


def _bad_window(args) -> bool:
    """True (with the error printed) for a non-positive
    ``--window-events``; the caller returns exit 2."""
    window = getattr(args, "window_events", None)
    if window is not None and window < 1:
        print("error: --window-events must be >= 1 (got {})".format(window),
              file=sys.stderr)
        return True
    return False


def _cmd_analyze(args) -> int:
    analyses = args.analysis or ["st-wdc"]
    sample = 4096 if args.memory else 0
    workers = max(getattr(args, "workers", 1), 1)
    if _bad_window(args):
        return 2
    window = args.window_events
    exit_code = 0
    if getattr(args, "cache", None):
        if args.vindicate or args.memory or workers > 1 or window:
            print("error: --cache is a checkpointed streaming replay; it "
                  "cannot be combined with --vindicate, --memory, "
                  "--workers, or --window-events", file=sys.stderr)
            return 2
        from repro.checkpoint import analyze_cached
        return analyze_cached(args.cache, args.trace, analyses,
                              max_races=args.max_races)
    if args.stream:
        if args.vindicate:
            print("error: --vindicate needs the full trace in memory; "
                  "rerun without --stream", file=sys.stderr)
            return 2
        result = run_stream(args.trace, analyses, sample_every=sample,
                            workers=workers, evict_window=window or 0)
        races_found = _print_entries(result, args)
        # 2 beats 1: a partially failed run is unreliable even when the
        # surviving analyses report races (documented 0/1/2 contract)
        return 2 if not result.ok else races_found
    trace = load_trace(args.trace)
    if workers > 1:
        from repro.core.parallel import ParallelRunner
        result = ParallelRunner(analyses, trace, workers=workers,
                                sample_every=sample,
                                window_events=window).run(trace)
        races_found = _print_entries(
            result, args, vindicate_trace=trace if args.vindicate else None)
        return 2 if not result.ok else races_found
    if window:
        # windowed serial pass: one engine run (eviction is an engine
        # behavior; the solo Analysis.run() path has no window clock)
        from repro.core.engine import MultiRunner
        result = MultiRunner([create(name, trace) for name in analyses],
                             sample_every=sample,
                             window_events=window).run(trace)
        races_found = _print_entries(
            result, args, vindicate_trace=trace if args.vindicate else None)
        return 2 if not result.ok else races_found
    for name in analyses:
        report = create(name, trace).run(sample_every=sample)
        exit_code |= _print_report(name, report, args)
        if args.vindicate and report.races:
            from repro.vindication.vindicate import vindicate
            result = vindicate(trace, report.first_race)
            print("   vindication of first race: {}".format(result.verdict))
    return exit_code


#: The relation hierarchy the compare table checks (paper §2: every
#: HB-race is a WCP-race is a DC-race is a WDC-race).
_HIERARCHY = ("hb", "wcp", "dc", "wdc")


def _cmd_compare(args) -> int:
    analyses = args.analysis or list(MAIN_MATRIX)
    workers = max(getattr(args, "workers", 1), 1)
    if args.program and (args.trace or args.stream):
        print("error: --program generates its own trace; it cannot be "
              "combined with a trace file or --stream", file=sys.stderr)
        return 2

    def _run_in_memory(trace):
        if workers > 1:
            from repro.core.parallel import ParallelRunner
            return ParallelRunner(analyses, trace,
                                  workers=workers).run(trace)
        return run_analyses(trace, analyses)

    if args.program:
        spec = DACAPO_SPECS[args.program]
        if args.scale is not None and args.scale != 1.0:
            spec = spec.scaled(args.scale)
        if args.seed is not None:
            spec = dataclasses.replace(spec, seed=args.seed)
        trace = generate_trace(spec)
        result = _run_in_memory(trace)
        source = "{} (seed {})".format(spec.name, spec.seed)
    elif args.trace:
        if args.stream:
            result = run_stream(args.trace, analyses, workers=workers)
        else:
            result = _run_in_memory(load_trace(args.trace))
        source = args.trace
    else:
        print("error: compare needs a trace file or --program",
              file=sys.stderr)
        return 2
    print("single-pass comparison over {} ({} events)".format(
        source, result.events_processed))
    print("{:<12} {:<4} {:<6} {:>7} {:>8}  racy vars".format(
        "analysis", "rel", "tier", "static", "dynamic"))
    any_races = False
    racy_by_relation = {}
    for entry in result.entries:
        if entry.failure is not None:
            print("{:<12} FAILED at event {}: {!r}".format(
                entry.name, entry.failure.event_index, entry.failure.error))
            continue
        report = entry.report
        racy = sorted(report.racy_vars)
        shown = ",".join("x{}".format(v) for v in racy[:8])
        if len(racy) > 8:
            shown += ",+{}".format(len(racy) - 8)
        print("{:<12} {:<4} {:<6} {:>7} {:>8}  {}".format(
            entry.name, report.relation, report.tier,
            report.static_count, report.dynamic_count, shown or "-"))
        any_races = any_races or bool(report.races)
        racy_by_relation.setdefault(report.relation, set()).update(racy)
    present = [r for r in _HIERARCHY if r in racy_by_relation]
    if len(present) > 1:
        ok = all(racy_by_relation[a] <= racy_by_relation[b]
                 for a, b in zip(present, present[1:]))
        print("hierarchy {}: {}".format(
            " <= ".join(present), "OK" if ok else "VIOLATED"))
    if not result.ok:
        return 2
    return 1 if any_races else 0


def _cmd_tables(args) -> int:
    from repro.harness.runner import main as runner_main
    forwarded: List[str] = []
    for number in args.table or []:
        forwarded += ["--table", str(number)]
    if args.all:
        forwarded.append("--all")
    if args.scale is not None:
        forwarded += ["--scale", str(args.scale)]
    if args.out:
        forwarded += ["--out", args.out]
    return runner_main(forwarded)


def _cmd_generate(args) -> int:
    if bool(args.output) == bool(args.to_socket):
        print("error: generate needs exactly one of -o/--output or "
              "--to-socket", file=sys.stderr)
        return 2
    trace = dacapo_trace(args.program, scale=args.scale, cache=False)
    if args.to_socket:
        from repro.trace.live import send_trace
        try:
            count = send_trace(trace, args.to_socket, binary=args.binary,
                               connect_timeout=args.connect_timeout,
                               tenant=args.tenant)
        except OSError as exc:
            # handled here, not by main(): a BrokenPipeError from the
            # server dropping mid-send must be a loud exit 2, not the
            # silent exit 0 of the `analyze | head` stdout case
            print("error: streaming to {} failed: {}".format(
                args.to_socket, exc), file=sys.stderr)
            return 2
        print("streamed {} events ({} threads) to {}{}".format(
            count, trace.num_threads, args.to_socket,
            " [binary]" if args.binary else ""))
        return 0
    with open(args.output, "wb" if args.binary else "w") as fp:
        dump_trace(trace, fp, binary=args.binary)
    print("wrote {} events ({} threads) to {}{}".format(
        len(trace), trace.num_threads, args.output,
        " [binary]" if args.binary else ""))
    return 0


def _cmd_serve(args) -> int:
    # a thin shell: every serving behavior lives in repro.server
    from repro.server import ServerConfig, serve_main
    if _bad_window(args):
        return 2
    config = ServerConfig(
        endpoint=args.socket,
        analyses=args.analysis or ["st-wdc"],
        workers=max(getattr(args, "workers", 1), 1),
        window=args.window,
        timeout=args.timeout,
        emit=args.emit,
        max_races=args.max_races,
        multi=args.multi,
        max_pending_races=args.max_pending_races,
        resume_grace=args.resume_grace,
        idle_ttl=args.idle_ttl,
        window_events=args.window_events,
    )
    return serve_main(config)


def _cmd_watch(args) -> int:
    from repro.checkpoint import watch_directory
    cache = args.cache or os.path.join(args.directory, ".repro-cache")
    return watch_directory(args.directory, cache,
                           args.analysis or ["st-wdc"],
                           max_races=args.max_races,
                           interval=args.interval, once=args.once,
                           max_scans=args.max_scans)


def _cmd_status(args) -> int:
    import json
    from repro.server.mi import query
    try:
        doc = query(args.socket, {"command": args.mi_command},
                    timeout=args.timeout, control=args.control)
    except (OSError, ValueError) as exc:
        print("error: cannot query server at {}: {}".format(
            args.socket, exc), file=sys.stderr)
        return 2
    if args.json or args.mi_command != "status":
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    server = doc.get("server", {})
    print("server {} (pid {}, up {:.0f}s, rss {}K; analyses: {})".format(
        server.get("endpoint", args.socket), server.get("pid", "?"),
        server.get("uptime_seconds", 0.0), server.get("rss_kb", 0),
        ", ".join(server.get("analyses", []))))
    rows = doc.get("results", {}).get("data", [])
    print("{:<20} {:<10} {:>10} {:>10} {:>8} {:>10} {:>8} {:>6}".format(
        "tenant", "state", "events", "total", "races", "events/s",
        "lag(s)", "reconn"))
    for row in rows:
        tenant, state, events, total, races, eps, lag, reconnects = row
        print("{:<20} {:<10} {:>10} {:>10} {:>8} {:>10} {:>8} {:>6}".format(
            tenant, state, events, "-" if total < 0 else total, races,
            eps, lag, reconnects))
    return 0


def _cmd_convert(args) -> int:
    from repro.trace.binfmt import BinaryTraceStream, BinaryTraceWriter
    from repro.trace.format import format_event, header_line, stream_trace

    # Opening the output truncates it while the input is still being
    # lazily streamed — writing over the input would destroy the
    # recording mid-read.
    try:
        same = os.path.samefile(args.input, args.output)
    except OSError:  # output (or input) doesn't exist yet
        same = os.path.abspath(args.input) == os.path.abspath(args.output)
    if same:
        print("error: convert cannot write over its input ({}); choose a "
              "different output path".format(args.input), file=sys.stderr)
        return 2
    stream = stream_trace(args.input)
    source_format = ("binary" if isinstance(stream, BinaryTraceStream)
                     else "text")
    if args.to == source_format:
        # rewriting a trace into its own format is almost always a
        # mixed-up --to; refuse instead of silently rewriting the bytes
        stream.close()
        print("error: {} is already in the {} format; converting to the "
              "same format is a no-op (drop --to, or pick the other "
              "format)".format(args.input, source_format), file=sys.stderr)
        return 2
    target = args.to or ("text" if source_format == "binary" else "binary")
    if stream.info is None:
        # Header-less text: the dimensions a binary (or normalized text)
        # header needs are only known after a full read, so materialize.
        stream.close()
        trace = load_trace(args.input)
        with open(args.output,
                  "wb" if target == "binary" else "w") as out:
            dump_trace(trace, out, binary=(target == "binary"))
        count = len(trace)
    elif target == "binary":
        with stream, BinaryTraceWriter(args.output, stream.info) as writer:
            for event in stream:
                writer.write(event)
            count = writer.events_written
    else:
        with stream, open(args.output, "w") as out:
            out.write(header_line(stream.info) + "\n")
            for event in stream:
                out.write(format_event(event) + "\n")
            count = stream.events_read
    print("converted {} events ({} -> {}) to {}".format(
        count, source_format, target, args.output))
    return 0


def _cmd_characterize(args) -> int:
    trace = load_trace(args.trace)
    ch = characterize(trace)
    print("events:          {}".format(ch.events))
    print("threads:         {} (peak {})".format(
        ch.threads_total, ch.threads_peak))
    print("NSEAs:           {} ({:.1f}% of events)".format(
        ch.nseas, 100.0 * ch.nseas / max(ch.events, 1)))
    for depth in (1, 2, 3):
        print(">= {} lock(s):    {:.2f}% of NSEAs".format(
            depth, ch.pct_ge(depth)))
    return 0


#: Shared help epilog: the documented exit-status contract and the
#: format-autodetection rule, surfaced on ``repro --help`` and on every
#: trace-consuming subcommand's ``--help``.
_CONTRACT_EPILOG = (
    "exit status: 0 = no races found, 1 = races found, 2 = unreadable/"
    "malformed input or a partially failed analysis (2 beats 1).\n"
    "trace formats: v1 text and v2 binary are both accepted everywhere; "
    "the format is autodetected from the file's leading bytes "
    "(`repro convert` translates between them).")


def _version_string() -> str:
    """The installed distribution's version, or the in-tree fallback
    (suffixed so an uninstalled checkout is distinguishable)."""
    try:
        from importlib.metadata import version
        return version("repro-smarttrack")
    except Exception:
        import repro
        return getattr(repro, "__version__", "0.0.0") + "+uninstalled"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SmartTrack predictive race detection (PLDI 2020 "
                    "reproduction)",
        epilog=_CONTRACT_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--version", action="version",
                        version="repro {}".format(_version_string()))
    sub = parser.add_subparsers(dest="command", required=True)

    def trace_parser(name, **kwargs):
        """A subparser whose epilog restates the exit-code/format
        contract (every subcommand that consumes or emits traces)."""
        kwargs.setdefault("epilog", _CONTRACT_EPILOG)
        kwargs.setdefault("formatter_class",
                          argparse.RawDescriptionHelpFormatter)
        return sub.add_parser(name, **kwargs)

    def add_workers(cmd, what):
        cmd.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="shard the {} across N worker processes (family-aware "
                 "analysis-parallel sharding; reports are identical to "
                 "the in-process pass, a dead worker degrades to exit 2 "
                 "with a partial summary; default 1 = in-process)"
                 .format(what))

    analyze = trace_parser("analyze", help="analyze a recorded trace")
    analyze.add_argument("trace", help="trace file (see repro.trace.format)")
    analyze.add_argument("-a", "--analysis", action="append",
                         choices=ANALYSIS_NAMES,
                         help="analysis name (repeatable; default st-wdc)")
    analyze.add_argument("--vindicate", action="store_true",
                         help="vindicate the first reported race")
    analyze.add_argument("--memory", action="store_true",
                         help="also report peak metadata footprint")
    analyze.add_argument("--max-races", type=int, default=10,
                         help="dynamic races to list per analysis")
    analyze.add_argument("--stream", action="store_true",
                         help="single-pass streaming analysis: parse the "
                              "trace lazily and feed all analyses from one "
                              "iteration (bounded memory; file must carry "
                              "the dump_trace header)")
    analyze.add_argument("--window-events", type=int, default=None,
                         metavar="N",
                         help="bounded-window mode: age out per-variable "
                              "metadata older than the last N events; "
                              "races whose earlier access left the window "
                              "are deliberately not reported (bounds "
                              "analysis state on very long traces)")
    analyze.add_argument("--cache", metavar="DIR", default=None,
                         help="checkpointed result cache: an unchanged "
                              "trace returns its byte-identical summary "
                              "with zero events replayed, an extended one "
                              "replays only the suffix from the nearest "
                              "checkpoint (implies streaming; see "
                              "repro.checkpoint)")
    add_workers(analyze, "requested analyses")
    analyze.set_defaults(func=_cmd_analyze)

    compare = trace_parser(
        "compare",
        help="run several analyses in one pass and compare their verdicts")
    compare.add_argument("trace", nargs="?", default=None,
                         help="trace file (or use --program)")
    compare.add_argument("-a", "--analysis", action="append",
                         choices=ANALYSIS_NAMES,
                         help="analysis name (repeatable; default: the "
                              "paper's main 11-configuration matrix)")
    compare.add_argument("--program", choices=sorted(DACAPO_SPECS),
                         help="compare on a generated DaCapo-analog trace")
    compare.add_argument("--scale", type=float, default=None,
                         help="event-budget scale for --program")
    compare.add_argument("--seed", type=int, default=None,
                         help="generator seed override for --program "
                              "(output is deterministic for a fixed seed)")
    compare.add_argument("--stream", action="store_true",
                         help="stream the trace file instead of loading it")
    add_workers(compare, "compared analyses")
    compare.set_defaults(func=_cmd_compare)

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("--table", type=int, action="append")
    tables.add_argument("--all", action="store_true")
    tables.add_argument("--scale", type=float, default=None)
    tables.add_argument("--out", type=str, default=None)
    tables.set_defaults(func=_cmd_tables)

    generate = trace_parser(
        "generate", help="generate a DaCapo-analog trace file")
    generate.add_argument("--program", choices=sorted(DACAPO_SPECS),
                          required=True)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("-o", "--output",
                          help="destination trace file (or use --to-socket)")
    generate.add_argument("--binary", action="store_true",
                          help="record in the v2 binary format (smaller, "
                               ">2x faster to re-ingest)")
    generate.add_argument("--to-socket", metavar="ENDPOINT",
                          help="stream the trace to a listening "
                               "'repro serve' endpoint (unix path or "
                               "HOST:PORT) instead of writing a file")
    generate.add_argument("--connect-timeout", type=float, default=10.0,
                          help="seconds to keep retrying the --to-socket "
                               "connection while the server starts "
                               "(default 10)")
    generate.add_argument("--tenant", default=None, metavar="NAME",
                          help="open a named, resumable session against a "
                               "multi-tenant server (serve --multi) via "
                               "the hello/welcome handshake; default: the "
                               "legacy anonymous protocol")
    generate.set_defaults(func=_cmd_generate)

    serve = trace_parser(
        "serve",
        help="bind a socket and analyze live trace feeds as they arrive "
             "(one producer by default; --multi serves many tenants)")
    serve.add_argument("socket",
                       help="endpoint to bind: a unix socket path, or "
                            "HOST:PORT for TCP (port 0 picks a free port, "
                            "printed on stderr)")
    serve.add_argument("-a", "--analysis", action="append",
                       choices=ANALYSIS_NAMES,
                       help="analysis name (repeatable; default st-wdc)")
    serve.add_argument("--emit", choices=("text", "jsonl"), default="text",
                       help="race-stream format: human-readable lines or "
                            "one JSON object per line (races while the "
                            "feed runs, then per-analysis summaries)")
    serve.add_argument("--window", type=int, default=256,
                       help="events per incremental engine feed; smaller "
                            "windows report races sooner, larger ones "
                            "replay cheaper (default 256)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="seconds to wait for the producer to connect "
                            "and for each read; a stalled feed exits 2 "
                            "(default: wait forever)")
    serve.add_argument("--max-races", type=int, default=10,
                       help="dynamic races to list per analysis in the "
                            "final summary")
    serve.add_argument("--multi", action="store_true",
                       help="multi-tenant mode: accept any number of "
                            "concurrent producers (one detection session "
                            "per tenant, reconnect-with-resume via the "
                            "hello handshake, status/MI control socket); "
                            "default: the classic one-producer session")
    serve.add_argument("--resume-grace", type=float, default=30.0,
                       metavar="SECONDS",
                       help="[--multi] how long a disconnected named "
                            "tenant's session awaits a resume before it "
                            "is sealed (default 30)")
    serve.add_argument("--idle-ttl", type=float, default=300.0,
                       metavar="SECONDS",
                       help="[--multi] how long a finished session stays "
                            "visible to `repro status` before eviction "
                            "(default 300)")
    serve.add_argument("--max-pending-races", type=int, default=None,
                       metavar="N",
                       help="bounded-state cap: keep at most N delivered "
                            "race records per analysis (summary counts "
                            "stay exact; default: keep all)")
    serve.add_argument("--window-events", type=int, default=None,
                       metavar="N",
                       help="bounded-window mode: age out per-variable "
                            "analysis metadata older than the last N "
                            "events, so state stays bounded on an "
                            "infinite feed (races straddling more than "
                            "N..2N events are deliberately dropped; "
                            "distinct from --window, the feed "
                            "granularity)")
    add_workers(serve, "served analyses")
    serve.set_defaults(func=_cmd_serve, memory=False)

    status = sub.add_parser(
        "status",
        help="query a running multi-tenant server's control socket")
    status.add_argument("socket",
                        help="the server's trace endpoint (its control "
                             "endpoint is derived: <path>.ctl for unix, "
                             "port+1 for TCP)")
    status.add_argument("--json", action="store_true",
                        help="print the raw machine-interface document")
    status.add_argument("--command", dest="mi_command", default="status",
                        choices=("status", "metadata", "shutdown"),
                        help="control command to send (default status; "
                             "non-status replies always print as JSON)")
    status.add_argument("--timeout", type=float, default=5.0,
                        help="seconds to wait for the server (default 5)")
    status.add_argument("--control", metavar="ENDPOINT", default=None,
                        help="explicit control endpoint, overriding the "
                             "derivation (needed when the server bound an "
                             "ephemeral control port — it prints the real "
                             "one at startup)")
    status.set_defaults(func=_cmd_status)

    watch = trace_parser(
        "watch",
        help="re-analyze traces in a directory as they change "
             "(checkpointed: only stale suffixes are replayed)")
    watch.add_argument("directory",
                       help="directory of trace files to poll")
    watch.add_argument("-a", "--analysis", action="append",
                       choices=ANALYSIS_NAMES,
                       help="analysis name (repeatable; default st-wdc)")
    watch.add_argument("--cache", metavar="DIR", default=None,
                       help="cache directory (default: "
                            "<directory>/.repro-cache)")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between directory scans (default 2)")
    watch.add_argument("--once", action="store_true",
                       help="scan and analyze exactly once, then exit "
                            "with the combined 0/1/2 status")
    watch.add_argument("--max-scans", type=int, default=None, metavar="N",
                       help="exit after N scans (default: run until "
                            "interrupted)")
    watch.add_argument("--max-races", type=int, default=10,
                       help="dynamic races to list per analysis")
    watch.set_defaults(func=_cmd_watch)

    convert = trace_parser(
        "convert",
        help="convert a trace between the v1 text and v2 binary formats")
    convert.add_argument("input", help="trace file in either format "
                                       "(autodetected)")
    convert.add_argument("output", help="destination file")
    convert.add_argument("--to", choices=("text", "binary"), default=None,
                         help="target format (default: the opposite of "
                              "the input's autodetected format)")
    convert.set_defaults(func=_cmd_convert)

    char = trace_parser(
        "characterize", help="Table 2-style characteristics of a trace")
    char.add_argument("trace")
    char.set_defaults(func=_cmd_characterize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # commands that can summarize partial work (serve) catch this
        # themselves; everywhere else Ctrl-C exits cleanly — no
        # traceback — with the conventional 128+SIGINT code
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:  # e.g. `repro analyze ... | head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except TraceFormatError as exc:
        print("error: malformed trace: {}".format(exc), file=sys.stderr)
        return 2
    except WellFormednessError as exc:
        print("error: ill-formed trace: {}".format(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        # reads and writes both land here; the exception text names the
        # file and operation, so don't second-guess it
        print("error: {}".format(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
