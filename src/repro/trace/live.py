"""Live trace sources: analyze an execution *while it runs*.

SmartTrack's pitch is predictive detection cheap enough to stay on
during execution (paper §1); the offline readers already never rewind,
so the only missing piece for online analysis is a source whose bytes
arrive as the monitored program produces them.  This module provides
two:

* :class:`SocketTraceSource` — one accepted connection on a Unix or TCP
  endpoint.  The server side (``repro serve``) binds and waits via
  :class:`TraceListener`; the producer side connects and streams a trace
  with :func:`send_trace` (or ``repro generate --to-socket``).
* :class:`PipeTraceSource` — a FIFO path, an inherited file descriptor,
  or an open pipe handle.

Both speak the same wire formats as the offline readers — the v1 text
format and the v2 binary format, autodetected from the leading bytes by
:func:`repro.trace.format.stream_trace` — and subclass
:class:`~repro.trace.stream.TraceStreamBase`, so everything downstream
(the engine, :class:`~repro.core.engine.EngineSession`, the CLI) treats
a live feed exactly like a file.  What differs is the byte transport:

* **partial reads are the normal case** — the sources hand the format
  readers a *raw* unbuffered reader whose ``read(n)`` returns whatever
  one ``recv``/``read`` syscall produced (the readers' refill loops
  already tolerate short reads); a buffered layer would block a live
  text feed until its buffer filled, stalling reports;
* **timeouts** — a ``timeout`` makes a stalled producer raise
  :class:`TimeoutError` (``socket.timeout`` is the same type on
  Python >= 3.10) instead of hanging the analysis forever; the CLI maps
  it to exit code 2 like any other unreadable trace;
* **reconnect refusal** — a listener serves exactly one connection per
  analysis session: the listening socket closes the moment a producer is
  accepted, so a second connect is refused (``ECONNREFUSED``) rather
  than silently queued behind a stream it could never join;
* **clean EOF** — a producer closing its end (or finishing its trace)
  ends iteration exactly like end-of-file; a connection dropped
  mid-event surfaces as the same
  :class:`~repro.trace.stream.TraceFormatError` a truncated file would.

Failing mid-iteration (malformed bytes, disconnect, timeout) never leaks
a descriptor: the shared stream lifecycle closes the source, and the
live sources extend :meth:`~repro.trace.stream.TraceStreamBase.close` to
also close the accepted socket and unlink a Unix endpoint they bound.
"""

from __future__ import annotations

import errno
import io
import os
import re
import select
import socket
import stat
import time
from itertools import islice
from typing import Iterator, Optional, Tuple, Union

from repro.trace.event import Event
from repro.trace.stream import TraceFormatError, TraceStreamBase
from repro.trace.trace import Trace, TraceInfo

__all__ = [
    "HANDSHAKE_LIMIT",
    "HELLO_MAGIC",
    "PipeTraceSource",
    "REFUSE_MAGIC",
    "SocketTraceSource",
    "TraceListener",
    "WELCOME_MAGIC",
    "connect_endpoint",
    "format_hello",
    "format_refuse",
    "format_welcome",
    "open_live_source",
    "parse_endpoint",
    "parse_hello",
    "parse_welcome",
    "read_handshake",
    "send_events",
    "send_trace",
]


def parse_endpoint(spec: str) -> Tuple[str, Union[str, Tuple[str, int]]]:
    """Classify an endpoint spec: ``("tcp", (host, port))`` or
    ``("unix", path)``.

    ``HOST:PORT`` (a numeric final component with no ``/`` in the host
    part) is TCP; anything else is a Unix socket path, so relative and
    absolute paths — even ones containing ``:`` in a directory name —
    keep working.
    """
    host, sep, port = spec.rpartition(":")
    if sep and host and port.isdigit() and "/" not in host:
        return "tcp", (host, int(port))
    return "unix", spec


class _TimeoutRawReader(io.RawIOBase):
    """Raw adapter adding a per-read timeout (via ``select``) to a pipe.

    Sockets get timeouts natively (``settimeout``); pipes and FIFOs do
    not, so reads go through one ``select`` first.  ``readinto`` keeps
    single-syscall partial-read semantics.
    """

    def __init__(self, raw, timeout: float):
        self._raw = raw
        self._timeout = timeout

    def readable(self) -> bool:
        return True

    def fileno(self) -> int:
        return self._raw.fileno()

    def readinto(self, b) -> int:
        ready, _, _ = select.select([self._raw.fileno()], [], [],
                                    self._timeout)
        if not ready:
            raise TimeoutError(
                "live trace source: no data for {:.3g}s".format(
                    self._timeout))
        return self._raw.readinto(b)

    def close(self) -> None:
        if not self.closed:
            self._raw.close()
        super().close()


def _is_fifo(path: str) -> bool:
    try:
        return stat.S_ISFIFO(os.stat(path).st_mode)
    except OSError:
        return False


def _open_fifo_nonblocking(path: str):
    """Open a FIFO for reading without waiting for a producer.

    A plain blocking ``open`` waits until a producer opens the write
    end — outside any read timeout's reach — so the FIFO is opened
    ``O_NONBLOCK`` (which succeeds immediately) and switched back to
    blocking mode.  The per-read ``select`` of
    :class:`_TimeoutRawReader` then bounds *everything*: a FIFO with no
    producer (or a silent one) is simply never readable, so the very
    first header read raises :class:`TimeoutError` on schedule.
    """
    fd = os.open(path, os.O_RDONLY | os.O_NONBLOCK)
    try:
        os.set_blocking(fd, True)
    except BaseException:
        os.close(fd)
        raise
    return os.fdopen(fd, "rb", buffering=0)


class LiveTraceSource(TraceStreamBase):
    """Common live-source behaviour: wrap a raw byte feed, autodetect
    the wire format, and mirror the inner reader's event stream.

    ``raw`` must be an *unbuffered* binary reader (partial reads are how
    liveness is preserved — see the module docstring); the source owns
    and closes it.
    """

    def __init__(self, raw):
        super().__init__(raw, owns_fp=True)

    def _read_header(self) -> None:
        from repro.trace.format import stream_trace

        # Autodetection sniffs the leading bytes (blocking until the
        # producer has sent them) and picks the text or binary reader;
        # partial reads and header parsing are handled there.
        self._inner = stream_trace(self._fp)
        self.info = self._inner.info

    def _events(self) -> Iterator[Event]:
        for event in self._inner:
            self.events_read += 1
            yield event


class PipeTraceSource(LiveTraceSource):
    """Live events from a FIFO path, a readable fd, or an open pipe.

    ``source`` is one of:

    * a path — typically a FIFO made with ``os.mkfifo``; opening blocks
      until a producer opens the other end (POSIX FIFO semantics),
    * an integer file descriptor (ownership is taken), or
    * an open binary file object (ownership is taken; it should be
      unbuffered, e.g. ``open(path, "rb", buffering=0)``).

    ``timeout`` bounds every read: a producer that connects but stops
    writing raises :class:`TimeoutError` instead of stalling the
    analysis (the descriptor is closed either way).

    Example (analyze a recorder writing to a FIFO)::

        os.mkfifo("/tmp/repro.fifo")
        with PipeTraceSource("/tmp/repro.fifo", timeout=30) as source:
            result = MultiRunner(
                [create("st-wdc", source.require_info())]).run(source)
    """

    def __init__(self, source: Union[str, int, io.RawIOBase],
                 timeout: Optional[float] = None):
        if isinstance(source, str):
            if timeout is not None and _is_fifo(source):
                # with a timeout, even the wait for a producer to open
                # the write end must be bounded
                raw = _open_fifo_nonblocking(source)
            else:
                raw = open(source, "rb", buffering=0)
        elif isinstance(source, int):
            raw = os.fdopen(source, "rb", buffering=0)
        else:
            raw = source
        if timeout is not None:
            raw = _TimeoutRawReader(raw, timeout)
        super().__init__(raw)


class SocketTraceSource(LiveTraceSource):
    """Live events from one accepted socket connection.

    Constructed by :meth:`TraceListener.accept` (or the
    :func:`open_live_source` convenience) with an already-connected
    socket; the source owns the connection and, for a Unix endpoint it
    served, unlinks the socket path on close.
    """

    def __init__(self, conn: socket.socket, timeout: Optional[float] = None,
                 prefix: bytes = b"",
                 _unlink_path: Optional[str] = None,
                 _lock_fd: Optional[int] = None,
                 _lock_path: Optional[str] = None):
        # close() must be safe before base init completes (header
        # parsing can fail or time out): record resources first
        self._conn: Optional[socket.socket] = conn
        self._unlink_path = _unlink_path
        self._lock_fd = _lock_fd
        self._lock_path = _lock_path
        self._owns_fp = False
        try:
            conn.settimeout(timeout)
            # buffering=0 gives the raw SocketIO: read(n) is one recv,
            # so partial packets flow through immediately
            raw = conn.makefile("rb", buffering=0)
            if prefix:
                # bytes consumed while sniffing a session handshake are
                # re-attached in front of the socket stream
                raw = _PrefixedRaw(prefix, raw)
            super().__init__(raw)
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        if getattr(self, "_fp", None) is not None:
            super().close()
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        path, self._unlink_path = self._unlink_path, None
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass
        lock_fd, self._lock_fd = self._lock_fd, None
        lock_path, self._lock_path = self._lock_path, None
        _release_endpoint_lock(lock_fd, lock_path)


class _PrefixedRaw(io.RawIOBase):
    """Serves buffered handshake-sniff bytes before the live stream.

    Unlike :class:`repro.trace.format._PrefixedReader` (which wraps
    borrowed handles), this adapter *owns* the wrapped reader: live
    sources close their raw feed, and the prefix layer must not sever
    that chain.
    """

    def __init__(self, prefix: bytes, raw):
        self._prefix = prefix
        self._raw = raw

    def readable(self) -> bool:
        return True

    def fileno(self) -> int:
        return self._raw.fileno()

    def readinto(self, b) -> int:
        if self._prefix:
            k = min(len(b), len(self._prefix))
            b[:k] = self._prefix[:k]
            self._prefix = self._prefix[k:]
            return k
        return self._raw.readinto(b)

    def close(self) -> None:
        if not self.closed:
            self._raw.close()
        super().close()


def _acquire_endpoint_lock(path: str) -> int:
    """Take the advisory lock guarding a Unix endpoint; returns the fd.

    The lock (``flock`` on a ``<path>.lock`` sidecar) is how a new
    server distinguishes a *stale* socket file — the leftover of a
    server that died without cleanup, whose lock the kernel released —
    from a *live* one.  A connect-probe cannot make that distinction
    safely: the probe would be accepted by a healthy waiting server as
    its one allowed producer, killing its session.

    A clean shutdown unlinks the sidecar (:func:`_release_endpoint_lock`)
    so the endpoint leaves nothing behind.  Unlinking a lock file opens
    the classic double-lock race — locker B may flock the *old* inode
    just as the shutting-down holder unlinks it, while locker C creates
    and flocks a fresh inode at the same path, leaving B and C each
    convinced they own the endpoint — so after every successful flock
    the fd is verified to still be what the path names; a mismatch
    (or a vanished path) means the inode was retired mid-acquire, and
    the open/flock/verify sequence simply retries on the fresh inode.

    Raises ``OSError(EADDRINUSE)`` when a live server holds the lock.
    """
    import fcntl

    lock_path = path + ".lock"
    while True:
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise OSError(
                errno.EADDRINUSE,
                "endpoint {} is in use by a live server".format(path))
        try:
            st = os.stat(lock_path)
        except OSError:  # unlinked between our open and the flock
            os.close(fd)
            continue
        fst = os.fstat(fd)
        if (st.st_ino, st.st_dev) != (fst.st_ino, fst.st_dev):
            os.close(fd)  # the path was re-created under us; retry
            continue
        return fd


def _release_endpoint_lock(fd: Optional[int], path: Optional[str]) -> None:
    """Release the endpoint lock and remove its sidecar file.

    The unlink happens *while the flock is still held* — any concurrent
    :func:`_acquire_endpoint_lock` that grabbed the doomed inode detects
    the swap via its fstat-vs-stat verify and retries — so a clean
    shutdown leaves no ``<path>.lock`` litter without reopening the
    double-lock race.
    """
    if fd is None:
        return
    if path is not None:
        try:
            os.unlink(path + ".lock")
        except OSError:
            pass
    os.close(fd)


class TraceListener:
    """A bound, listening endpoint awaiting exactly one trace producer.

    Splitting bind from accept lets a server publish its address before
    blocking (``repro serve`` prints it; tests bind TCP port 0 and read
    the real port back), and :meth:`accept` then enforces the
    one-producer contract: the listening socket closes as soon as the
    connection lands, so any later connect is refused instead of queued.

    Example (one live analysis session over a Unix socket)::

        listener = TraceListener("/tmp/repro.sock")
        source = listener.accept(timeout=30)   # SocketTraceSource
        with source:
            info = source.require_info()
            session = MultiRunner(
                [create("st-wdc", info)]).session()
            for name, race in session.drain(source, window=256):
                print(name, race.index)
            result = session.finish()
    """

    def __init__(self, spec: str, backlog: int = 1):
        self.kind, addr = parse_endpoint(spec)
        self._unlink_path: Optional[str] = None
        self._lock_fd: Optional[int] = None
        self._lock_path: Optional[str] = None
        if self.kind == "unix":
            sock = socket.socket(socket.AF_UNIX)
        else:
            sock = socket.socket(socket.AF_INET)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            if self.kind == "unix":
                # holding the endpoint lock proves no live server owns
                # this path, so an existing socket file is the leftover
                # of a crashed server (SIGKILL before cleanup releases
                # the flock) and is safe to reclaim
                self._lock_fd = _acquire_endpoint_lock(addr)
                self._lock_path = addr
                try:
                    sock.bind(addr)
                except OSError as exc:
                    if exc.errno != errno.EADDRINUSE:
                        raise
                    # reclaim is for leftover *sockets* only — a
                    # regular file at the endpoint path (a typo'd
                    # `repro serve ./notes.txt`) must never be deleted
                    if not stat.S_ISSOCK(os.stat(addr).st_mode):
                        raise OSError(
                            errno.EADDRINUSE,
                            "endpoint {} exists and is not a socket; "
                            "refusing to replace it".format(addr))
                    os.unlink(addr)
                    sock.bind(addr)
                self._unlink_path = addr
            else:
                sock.bind(addr)
            sock.listen(backlog)
        except BaseException:
            sock.close()
            self._release_lock()
            raise
        self._sock: Optional[socket.socket] = sock
        # captured at bind time: valid for the listener's whole life,
        # including after accept() hands the endpoint to the source
        self._address = addr if self.kind == "unix" \
            else sock.getsockname()[:2]

    def _release_lock(self) -> None:
        fd, self._lock_fd = self._lock_fd, None
        path, self._lock_path = self._lock_path, None
        _release_endpoint_lock(fd, path)

    @property
    def address(self) -> Union[str, Tuple[str, int]]:
        """The bound address: the path for Unix, ``(host, port)`` for TCP
        (with the kernel-assigned port when 0 was requested).  Stays
        valid after :meth:`accept`."""
        return self._address

    def describe(self) -> str:
        addr = self.address
        if isinstance(addr, str):
            return addr
        return "{}:{}".format(*addr)

    def accept(self, timeout: Optional[float] = None) -> SocketTraceSource:
        """Block until one producer connects; return the live source.

        ``timeout`` bounds both the wait for the connection and every
        subsequent read (:class:`TimeoutError` on expiry).  Whatever
        happens, the listening socket is closed before this returns —
        on success the accepted connection is the only way in, and the
        endpoint's Unix path (if any) is unlinked once the *source*
        closes.
        """
        sock = self._sock
        if sock is None:
            raise RuntimeError("listener already accepted or closed")
        path = self._unlink_path
        try:
            sock.settimeout(timeout)
            conn, _ = sock.accept()
        except BaseException:
            self.close()
            raise
        # reconnect refusal: stop listening the moment we have a feed.
        # The endpoint lock moves to the source, so the path stays
        # claimed until the session's cleanup unlinks it (socket file
        # and lock sidecar both).
        self._sock = None
        self._unlink_path = None
        lock_fd, self._lock_fd = self._lock_fd, None
        lock_path, self._lock_path = self._lock_path, None
        sock.close()
        return SocketTraceSource(conn, timeout=timeout, _unlink_path=path,
                                 _lock_fd=lock_fd, _lock_path=lock_path)

    def accept_connection(self,
                          timeout: Optional[float] = None) -> socket.socket:
        """Accept one producer connection and *keep listening*.

        The multi-tenant counterpart of :meth:`accept`
        (:mod:`repro.server` drives this in its accept loop): the
        returned socket is raw — wrap it in a
        :class:`SocketTraceSource` (optionally after reading a session
        handshake with :func:`read_handshake`) — and the listener stays
        bound, so any number of producers can be accepted concurrently.
        The endpoint's Unix path and lock stay with the listener and are
        released by :meth:`close`.  ``timeout`` bounds only the wait for
        a connection (``TimeoutError`` on expiry; the listener survives
        and can accept again), which is how a server loop polls for
        shutdown between accepts.
        """
        sock = self._sock
        if sock is None:
            raise RuntimeError("listener already accepted or closed")
        sock.settimeout(timeout)
        conn, _ = sock.accept()
        return conn

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            sock.close()
        path, self._unlink_path = self._unlink_path, None
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._release_lock()

    def __enter__(self) -> "TraceListener":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def open_live_source(spec: str,
                     timeout: Optional[float] = None) -> SocketTraceSource:
    """Bind ``spec``, wait for one producer, return the connected source
    (the one-call form of ``TraceListener(spec).accept(timeout)``)."""
    return TraceListener(spec).accept(timeout=timeout)


def connect_endpoint(spec: str, connect_timeout: Optional[float] = 10.0,
                     retry_interval: float = 0.05) -> socket.socket:
    """Producer side: connect to a live endpoint, returning the socket.

    Retries until ``connect_timeout`` elapses (the server may not have
    bound yet — the natural startup race of "start ``repro serve``, then
    start the producer"); ``connect_timeout=None`` tries exactly once.
    """
    kind, addr = parse_endpoint(spec)
    family = socket.AF_UNIX if kind == "unix" else socket.AF_INET
    deadline = (None if connect_timeout is None
                else time.monotonic() + connect_timeout)
    while True:
        sock = socket.socket(family)
        try:
            sock.connect(addr)
            return sock
        except OSError:
            sock.close()
            if deadline is None or time.monotonic() >= deadline:
                raise
            time.sleep(retry_interval)


# ---------------------------------------------------------------------------
# Session handshake frames (multi-tenant serving, repro.server)
# ---------------------------------------------------------------------------
#
# A producer that wants a *named*, resumable session leads with one
# ASCII hello line before its trace bytes; the server answers with a
# welcome (carrying the resume offset to resend from) or a refuse frame.
# Legacy producers simply start with trace bytes — the frames share the
# trace headers' "# repro " prefix but diverge immediately after, so
# :func:`read_handshake` can sniff without consuming anything a format
# reader needs (sniffed bytes are re-attached via the source's
# ``prefix``).  All three frames are one line, ≤ ``HANDSHAKE_LIMIT``
# bytes, with space-separated ``key=value`` fields.

HELLO_MAGIC = b"# repro hello v1 "
WELCOME_MAGIC = b"# repro welcome v1 "
REFUSE_MAGIC = b"# repro refuse v1 "
#: Hard cap on one handshake frame; a flood of non-newline bytes after a
#: hello magic is a malformed handshake, not an unbounded buffer.
HANDSHAKE_LIMIT = 256

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def format_hello(tenant: str, resume: int = 0,
                 total: Optional[int] = None) -> bytes:
    """The producer's session-opening frame.

    ``tenant`` names the session (``[A-Za-z0-9._-]{1,64}``) so a
    reconnecting producer reaches the same analysis state; ``resume`` is
    the earliest event offset this producer is still able to resend (0
    when it can replay from the start); ``total`` declares the trace's
    event count when known (``None`` → ``?``), which is how the server
    tells a completed session from one whose producer died at an event
    boundary.
    """
    if not _TENANT_RE.match(tenant):
        raise ValueError(
            "tenant id {!r} is not [A-Za-z0-9._-]{{1,64}}".format(tenant))
    if resume < 0:
        raise ValueError("resume offset must be >= 0")
    return HELLO_MAGIC + "tenant={} resume={} total={}\n".format(
        tenant, resume, "?" if total is None else int(total)).encode("ascii")


def _parse_fields(body: bytes, what: str) -> dict:
    try:
        text = body.decode("ascii")
    except UnicodeDecodeError:
        raise TraceFormatError("{} frame is not ASCII".format(what))
    fields = {}
    for token in text.split():
        key, sep, value = token.partition("=")
        if not sep or not key:
            raise TraceFormatError(
                "malformed {} field {!r}".format(what, token))
        fields[key] = value
    return fields


def parse_hello(line: bytes) -> dict:
    """Parse a hello frame (sans trailing newline) into
    ``{"tenant": str, "resume": int, "total": Optional[int]}``; raises
    :class:`~repro.trace.stream.TraceFormatError` on malformed input."""
    if not line.startswith(HELLO_MAGIC):
        raise TraceFormatError("not a hello frame")
    fields = _parse_fields(line[len(HELLO_MAGIC):], "hello")
    tenant = fields.get("tenant", "")
    if not _TENANT_RE.match(tenant):
        raise TraceFormatError("hello frame has a bad tenant id")
    try:
        resume = int(fields.get("resume", "0"))
        raw_total = fields.get("total", "?")
        total = None if raw_total == "?" else int(raw_total)
    except ValueError:
        raise TraceFormatError("hello frame has non-numeric offsets")
    if resume < 0 or (total is not None and total < 0):
        raise TraceFormatError("hello frame has negative offsets")
    return {"tenant": tenant, "resume": resume, "total": total}


def format_welcome(resume: int) -> bytes:
    """The server's acceptance frame: resend events from ``resume``."""
    return WELCOME_MAGIC + "resume={}\n".format(int(resume)).encode("ascii")


def format_refuse(reason: str) -> bytes:
    """The server's rejection frame; ``reason`` is a short token
    (``busy``, ``gap``, ``mismatch``, ``shutdown``, ...)."""
    return REFUSE_MAGIC + "reason={}\n".format(reason).encode("ascii")


def parse_welcome(line: bytes) -> int:
    """Parse the server's reply; returns the resume offset or raises
    :class:`~repro.trace.stream.TraceFormatError` (a refuse frame's
    reason is carried in the message)."""
    if line.startswith(REFUSE_MAGIC):
        fields = _parse_fields(line[len(REFUSE_MAGIC):], "refuse")
        raise TraceFormatError("server refused session: {}".format(
            fields.get("reason", "unspecified")))
    if not line.startswith(WELCOME_MAGIC):
        raise TraceFormatError("expected a welcome frame, got {!r}".format(
            line[:40]))
    fields = _parse_fields(line[len(WELCOME_MAGIC):], "welcome")
    try:
        resume = int(fields.get("resume", ""))
    except ValueError:
        raise TraceFormatError("welcome frame has a bad resume offset")
    if resume < 0:
        raise TraceFormatError("welcome frame has a negative resume offset")
    return resume


def read_handshake(conn: socket.socket,
                   timeout: Optional[float] = None
                   ) -> Tuple[Optional[dict], bytes]:
    """Server side: sniff whether a fresh connection leads with a hello.

    Reads just enough bytes to decide.  Returns ``(hello, prefix)``:
    ``hello`` is the parsed frame dict (or ``None`` for a legacy
    producer that starts straight with trace bytes) and ``prefix`` is
    every sniffed byte *not* consumed by the frame — hand it to
    :class:`SocketTraceSource(prefix=...) <SocketTraceSource>` so the
    format readers see the stream from its true start.  A connection
    closed mid-frame or a frame past :data:`HANDSHAKE_LIMIT` raises
    :class:`~repro.trace.stream.TraceFormatError`.
    """
    conn.settimeout(timeout)
    buf = b""
    while len(buf) < len(HELLO_MAGIC) and buf == HELLO_MAGIC[:len(buf)]:
        chunk = conn.recv(len(HELLO_MAGIC) - len(buf))
        if not chunk:
            return None, buf
        buf += chunk
    if not buf.startswith(HELLO_MAGIC):
        return None, buf
    while b"\n" not in buf:
        if len(buf) > HANDSHAKE_LIMIT:
            raise TraceFormatError("hello frame exceeds {} bytes".format(
                HANDSHAKE_LIMIT))
        chunk = conn.recv(256)
        if not chunk:
            raise TraceFormatError("connection closed mid-hello")
        buf += chunk
    line, rest = buf.split(b"\n", 1)
    return parse_hello(line), rest


def _read_reply_line(sock: socket.socket,
                     timeout: Optional[float]) -> bytes:
    """Producer side: read the server's one-line handshake reply."""
    sock.settimeout(timeout)
    buf = b""
    while b"\n" not in buf:
        if len(buf) > HANDSHAKE_LIMIT:
            raise TraceFormatError("handshake reply exceeds {} bytes".format(
                HANDSHAKE_LIMIT))
        chunk = sock.recv(256)
        if not chunk:
            raise TraceFormatError(
                "connection closed before the handshake reply")
        buf += chunk
    return buf.split(b"\n", 1)[0]


class _SendallSink:
    """A write-only file over a socket whose every write is a complete
    ``sendall`` (a raw ``send`` may transmit a short count)."""

    __slots__ = ("_sock",)

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def write(self, data) -> int:
        self._sock.sendall(data)
        return len(data)


def send_events(dims: Union[Trace, TraceInfo], events, spec: str,
                binary: bool = True,
                connect_timeout: Optional[float] = 10.0,
                flush_every: int = 512,
                tenant: Optional[str] = None,
                total: Optional[int] = None) -> int:
    """Stream ``events`` to a waiting live endpoint; returns the count
    of events put on the wire by *this* connection.

    ``dims`` supplies the header every live analysis needs up front (a
    :class:`Trace` or :class:`TraceInfo`).  ``binary`` picks the wire
    format: v2 binary (default, >2x cheaper to ingest) or v1 text; the
    receiver autodetects either.  ``events`` may be any iterable — a
    generator keeps the producer's memory bounded too.

    ``flush_every`` puts accumulated events on the wire every that many
    events (plus once at the end).  This is what makes the producer
    *live*: with default file buffering a slow producer's events would
    sit unsent for tens of kilobytes, and the consumer's races would
    surface arbitrarily late.  Raise it for bulk replay throughput.

    ``tenant`` opens a *named session* against a multi-tenant server
    (``repro serve --multi``): a hello frame is sent first, the server's
    welcome tells this producer how many events the server already
    holds, and that many leading events are skipped — which is exactly
    the reconnect-with-resume path.  ``total`` declares the run's full
    event count (auto-derived when ``events`` is sized) so the server
    can tell a finished trace from a producer that died at an event
    boundary.  Without ``tenant`` the producer speaks the legacy
    handshake-free protocol.
    """
    from repro.trace.binfmt import BinaryTraceWriter
    from repro.trace.format import format_event, header_line

    flush_every = max(flush_every, 1)
    sock = connect_endpoint(spec, connect_timeout=connect_timeout)
    try:
        if tenant is not None:
            if total is None:
                try:
                    total = len(events)
                except TypeError:
                    pass
            sock.settimeout(connect_timeout)
            sock.sendall(format_hello(tenant, total=total))
            skip = parse_welcome(_read_reply_line(sock, connect_timeout))
            sock.settimeout(None)
            if skip:
                events = islice(iter(events), skip, None)
        # sendall, not a raw file write: a single send() may transmit a
        # short count (signal mid-send), and a buffered file would hold
        # bytes back from a live consumer — every flushed batch must hit
        # the wire whole, immediately
        sink = _SendallSink(sock)
        if binary:
            writer = BinaryTraceWriter(sink, dims)
            # the header goes out before the first event: the consumer
            # parses it at accept time and must not wait out the first
            # flush window of a slow producer
            writer.flush()
            for event in events:
                writer.write(event)
                if writer.events_written % flush_every == 0:
                    writer.flush()
            writer.flush()
            return writer.events_written
        sink.write((header_line(dims) + "\n").encode("ascii"))
        lines = []
        count = 0
        for event in events:
            lines.append(format_event(event) + "\n")
            count += 1
            if count % flush_every == 0:
                sink.write("".join(lines).encode("ascii"))
                lines = []
        if lines:
            sink.write("".join(lines).encode("ascii"))
        return count
    finally:
        sock.close()


def send_trace(trace: Trace, spec: str, binary: bool = True,
               connect_timeout: Optional[float] = 10.0,
               tenant: Optional[str] = None) -> int:
    """Stream a materialized trace to a waiting live endpoint.

    The producer half of the online workflow (``repro generate
    --to-socket`` uses it); returns the number of events sent.
    ``spec`` is a Unix socket path or ``HOST:PORT``.

    Example (feed a ``repro serve`` session from another thread)::

        threading.Thread(
            target=send_trace, args=(trace, "/tmp/repro.sock"),
            daemon=True).start()
    """
    return send_events(trace, trace.events, spec, binary=binary,
                       connect_timeout=connect_timeout,
                       tenant=tenant, total=len(trace.events))
