"""The ``Trace`` container and well-formedness validation.

An execution trace is a totally ordered list of events representing a
linearization of a multithreaded execution (paper §2.1).  A trace must be
*well formed*: a thread only acquires a lock that is not held and only
releases a lock it holds.  We additionally require forks/joins to be sane
(a thread is forked at most once, before any of its events; joined only
after its last event) and exclude re-entrant acquires (as does the paper's
formalism).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.trace.event import (
    ACQUIRE,
    FORK,
    JOIN,
    KIND_NAMES,
    READ,
    RELEASE,
    STATIC_ACCESS,
    STATIC_INIT,
    VOLATILE_READ,
    VOLATILE_WRITE,
    WRITE,
    Event,
)


class WellFormednessError(ValueError):
    """Raised when a trace violates locking or fork/join discipline."""

    def __init__(self, index: int, event: Event, reason: str):
        self.index = index
        self.event = event
        self.reason = reason
        super().__init__(
            "event {} ({}): {}".format(index, repr(event), reason)
        )


class TraceInfo:
    """Trace *dimensions* without the events.

    A lightweight stand-in for :class:`Trace` used by the streaming path:
    analyses only need the id-namespace sizes (``num_threads`` above all)
    to size their metadata, so a :class:`TraceInfo` parsed from a trace
    header is enough to instantiate any analysis and drive it from an
    event stream that is never materialized (see
    :class:`repro.core.engine.MultiRunner`).

    ``num_events`` is a hint (0 when unknown); ``len()`` returns it so the
    few callers that size preallocated structures keep working.
    """

    __slots__ = ("num_threads", "num_locks", "num_vars",
                 "num_volatiles", "num_classes", "num_events")

    def __init__(self, num_threads: int = 1, num_locks: int = 0,
                 num_vars: int = 0, num_volatiles: int = 0,
                 num_classes: int = 0, num_events: int = 0):
        self.num_threads = num_threads
        self.num_locks = num_locks
        self.num_vars = num_vars
        self.num_volatiles = num_volatiles
        self.num_classes = num_classes
        self.num_events = num_events

    @classmethod
    def of(cls, trace: "Trace") -> "TraceInfo":
        """The dimensions of a materialized trace."""
        return cls(trace.num_threads, trace.num_locks, trace.num_vars,
                   trace.num_volatiles, trace.num_classes, len(trace))

    def __len__(self) -> int:
        return self.num_events

    def __repr__(self) -> str:
        return ("TraceInfo(threads={}, locks={}, vars={}, volatiles={}, "
                "classes={}, events={})").format(
                    self.num_threads, self.num_locks, self.num_vars,
                    self.num_volatiles, self.num_classes, self.num_events)


class Trace:
    """An execution trace over dense thread/lock/variable id spaces.

    Parameters
    ----------
    events:
        The totally ordered event list.
    num_threads, num_locks, num_vars, num_volatiles, num_classes:
        Sizes of the id namespaces.  Derived from the events when omitted.
    names:
        Optional mapping from namespace (``"thread"``, ``"lock"``, ``"var"``,
        ``"volatile"``, ``"class"``, ``"site"``) to a list of human-readable
        names, as produced by :class:`~repro.trace.builder.TraceBuilder`.
    validate:
        Check well-formedness on construction (default True).
    """

    def __init__(
        self,
        events: Sequence[Event],
        num_threads: Optional[int] = None,
        num_locks: Optional[int] = None,
        num_vars: Optional[int] = None,
        num_volatiles: Optional[int] = None,
        num_classes: Optional[int] = None,
        names: Optional[Dict[str, List[str]]] = None,
        validate: bool = True,
    ):
        self.events: List[Event] = list(events)
        self.num_threads = self._derive(num_threads, self._max_tid() + 1)
        self.num_locks = self._derive(num_locks, self._max_target({ACQUIRE, RELEASE}) + 1)
        self.num_vars = self._derive(num_vars, self._max_target({READ, WRITE}) + 1)
        self.num_volatiles = self._derive(
            num_volatiles, self._max_target({VOLATILE_READ, VOLATILE_WRITE}) + 1
        )
        self.num_classes = self._derive(
            num_classes, self._max_target({STATIC_INIT, STATIC_ACCESS}) + 1
        )
        self.names = names or {}
        if validate:
            self.validate()

    @staticmethod
    def _derive(given: Optional[int], computed: int) -> int:
        return computed if given is None else given

    def _max_tid(self) -> int:
        best = -1
        for e in self.events:
            if e.tid > best:
                best = e.tid
            if e.kind in (FORK, JOIN) and e.target > best:
                best = e.target
        return best

    def _max_target(self, kinds) -> int:
        best = -1
        for e in self.events:
            if e.kind in kinds and e.target > best:
                best = e.target
        return best

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, i: int) -> Event:
        return self.events[i]

    # ------------------------------------------------------------------
    # Well-formedness
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`WellFormednessError` on the first violation."""
        held: Dict[int, int] = {}  # lock -> holder tid
        stacks: Dict[int, List[int]] = {}  # tid -> lock stack
        forked = set()
        joined = set()
        started = set()
        for i, e in enumerate(self.events):
            t = e.tid
            if t in joined:
                raise WellFormednessError(i, e, "thread acts after being joined")
            started.add(t)
            if e.kind == ACQUIRE:
                m = e.target
                if m in held:
                    if held[m] == t:
                        raise WellFormednessError(i, e, "re-entrant acquire")
                    raise WellFormednessError(
                        i, e, "lock already held by T{}".format(held[m])
                    )
                held[m] = t
                stacks.setdefault(t, []).append(m)
            elif e.kind == RELEASE:
                m = e.target
                if held.get(m) != t:
                    raise WellFormednessError(i, e, "releasing a lock it does not hold")
                del held[m]
                stack = stacks[t]
                if stack[-1] != m:
                    # Non-LIFO unlock orders are legal executions; we allow
                    # them but most workloads are nested.
                    stack.remove(m)
                else:
                    stack.pop()
            elif e.kind == FORK:
                u = e.target
                if u == t:
                    raise WellFormednessError(i, e, "thread forks itself")
                if u in forked or u in started:
                    raise WellFormednessError(i, e, "forked thread already exists")
                forked.add(u)
            elif e.kind == JOIN:
                u = e.target
                if u == t:
                    raise WellFormednessError(i, e, "thread joins itself")
                if u in joined:
                    raise WellFormednessError(i, e, "thread joined twice")
                joined.add(u)
        for t, stack in stacks.items():
            # Unreleased locks at trace end are allowed (the observed window
            # may end mid-critical-section), so nothing to check here.
            pass

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def thread_events(self, tid: int) -> List[int]:
        """Indices of the events executed by ``tid``, in order."""
        return [i for i, e in enumerate(self.events) if e.tid == tid]

    def counts_by_kind(self) -> Dict[str, int]:
        """Event counts keyed by operation name (for reporting)."""
        out: Dict[str, int] = {}
        for e in self.events:
            name = KIND_NAMES[e.kind]
            out[name] = out.get(name, 0) + 1
        return out

    def storage_bytes(self) -> int:
        """Approximate in-memory footprint of the raw trace
        (each event: 4 slot references plus 4 small ints)."""
        return 96 * len(self.events)

    def program_state_bytes(self) -> int:
        """Modeled live heap of the *uninstrumented* program.

        The paper reports memory relative to the uninstrumented program's
        usage; the analogous baseline here is the program's own state —
        its variables, locks, and thread stacks — rather than the trace,
        which only the replay harness materializes.
        """
        return (24 * max(self.num_vars, 1)
                + 64 * max(self.num_locks, 1)
                + 1024 * max(self.num_threads, 1)
                + 2048)

    def name_of(self, namespace: str, ident: int) -> str:
        """Human-readable name for an id, falling back to ``ns{id}``."""
        table = self.names.get(namespace)
        if table and 0 <= ident < len(table):
            return table[ident]
        return "{}{}".format(namespace[0], ident)
