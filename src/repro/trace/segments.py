"""Trace segment hashing and staleness detection.

Checkpointed re-analysis (:mod:`repro.checkpoint`) needs to answer one
question cheaply: *how much of this trace is the trace I analyzed last
time?*  The answer decides where replay restarts — from event 0, from a
mid-trace checkpoint, or (for a byte-identical trace) not at all.

The mechanism is content hashing in fixed *event-count* segments:

* the trace body is split at event boundaries every
  :data:`SEGMENT_EVENTS` events, and each full segment's **raw bytes**
  are hashed — no re-encoding, so segmenting a capture costs one
  sequential read plus a boundary scan, orders of magnitude cheaper
  than parsing it;
* the dimension header is **excluded** from segment hashes: both
  formats embed the event count in their header (``events=`` in v1
  text, the sixth varint in v2 binary), so a pure append rewrites the
  header while leaving every existing event byte untouched — hashing
  the header would invalidate everything on every append;
* a whole-file digest (header included) is kept alongside for the
  exact-match fast path: byte-identical trace ⇒ warm cache hit.

Segment boundaries are found without parsing: the text scanner counts
event lines (non-blank, non-comment), the binary scanner counts LEB128
varint terminators (a byte with the high bit clear ends a varint; every
third terminator ends an event) — vectorized with numpy when available,
with a pure-Python fallback.  The binary scan honors the header's
declared event count exactly like the reader does: trailing bytes past
the declared count never shift boundaries.

Digests are format-specific by construction (the same events encode to
different bytes in v1 and v2); the result cache keys on the format, so
this never causes a false match — only a cold run after a conversion.

Staleness rules (:func:`match_events`):

* **append** — every old full segment still matches; replay resumes
  from the nearest checkpoint at or before the old trace's last full
  segment boundary;
* **mid-file rewrite** — segments before the edit match, the edited
  segment and everything after it do not (later boundaries shift with
  any length change, which is exactly the conservative behavior
  wanted);
* **truncation** — the surviving full-segment prefix matches;
* **dimension change** — nothing matches (analysis state is sized by
  the dimensions, so no checkpoint is reusable).
"""

from __future__ import annotations

import hashlib
import os
from typing import List, Optional, Tuple, Union

from repro.trace.binfmt import MAGIC
from repro.trace.stream import TraceFormatError

__all__ = [
    "SEGMENT_EVENTS",
    "TraceSegments",
    "match_events",
    "segment_trace",
]

#: Events per hash segment.  Checkpoints are placed at multiples of this,
#: so it bounds both the replayed-suffix granularity and (together with
#: the checkpoint cap in :mod:`repro.checkpoint.cache`) checkpoint count.
SEGMENT_EVENTS = 4096


class TraceSegments:
    """The segment-hash summary of one trace file.

    ``dims`` is the five-tuple (threads, locks, vars, volatiles,
    classes) — deliberately *without* the event count, which changes on
    append.  ``digests`` holds one hex digest per **full** segment (the
    trailing partial segment is covered only by ``trace_digest``; a
    partial segment can never byte-match a segment of a grown trace, so
    hashing it separately would buy nothing).

    ``boundaries`` holds each full segment's end offset in bytes,
    **relative to the end of the header** — relative, because the
    header's own length changes when the embedded event count grows a
    digit (text) or a varint byte (binary), while matching segments are
    byte-identical by definition and so sit at identical body-relative
    offsets in both files.  ``header_end`` is this file's header length,
    so ``header_end + boundaries[k-1]`` is the absolute seek offset of
    the ``k * segment_events``-event boundary — how the result cache
    starts a suffix replay without parsing the prefix.
    """

    __slots__ = ("fmt", "segment_events", "total_events", "dims",
                 "digests", "trace_digest", "header_end", "boundaries")

    def __init__(self, fmt: str, segment_events: int, total_events: int,
                 dims: Tuple[int, int, int, int, int],
                 digests: Tuple[str, ...], trace_digest: str,
                 header_end: int = 0, boundaries: Tuple[int, ...] = ()):
        self.fmt = fmt
        self.segment_events = segment_events
        self.total_events = total_events
        self.dims = tuple(dims)
        self.digests = tuple(digests)
        self.trace_digest = trace_digest
        self.header_end = header_end
        self.boundaries = tuple(boundaries)

    def match_events(self, other: "TraceSegments") -> int:
        """Events of ``other`` proven identical to this trace's prefix
        (see :func:`match_events`)."""
        return match_events(self, other)

    # -- JSON round trip (checkpoint sidecars) ---------------------------
    def to_doc(self) -> dict:
        return {
            "format": self.fmt,
            "segment_events": self.segment_events,
            "total_events": self.total_events,
            "dims": list(self.dims),
            "digests": list(self.digests),
            "trace_digest": self.trace_digest,
            "header_end": self.header_end,
            "boundaries": list(self.boundaries),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "TraceSegments":
        return cls(doc["format"], doc["segment_events"],
                   doc["total_events"], tuple(doc["dims"]),
                   tuple(doc["digests"]), doc["trace_digest"],
                   doc.get("header_end", 0),
                   tuple(doc.get("boundaries", ())))

    def __repr__(self) -> str:
        return "TraceSegments({}, {} events, {} full segments)".format(
            self.fmt, self.total_events, len(self.digests))


def match_events(old: TraceSegments, new: TraceSegments) -> int:
    """How many leading events of ``new`` are byte-identical to ``old``.

    Returns a multiple of the segment size (the provable granularity) —
    or the full event count when the traces are byte-identical.  Zero
    when the formats, segment sizes, or dimensions differ: a dimension
    change resizes every analysis' state, so no prefix is resumable.
    """
    if (old.fmt != new.fmt
            or old.segment_events != new.segment_events
            or old.dims != new.dims):
        return 0
    if (old.trace_digest == new.trace_digest
            and old.total_events == new.total_events):
        return new.total_events
    matched = 0
    for a, b in zip(old.digests, new.digests):
        if a != b:
            break
        matched += 1
    return matched * old.segment_events


def _numpy():
    """The gated numpy import shared with :mod:`repro.core.kernels` —
    honoring ``REPRO_NO_NUMPY`` keeps the fallback scanner testable."""
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def _read_varint(data: bytes, pos: int, what: str) -> Tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TraceFormatError(
                "binary trace truncated in header ({} field)".format(what))
        b = data[pos]
        pos += 1
        if b < 0x80:
            return value | (b << shift), pos
        value |= (b & 0x7F) << shift
        shift += 7
        if shift > 63:
            raise TraceFormatError(
                "oversized varint in header ({} field)".format(what))


def _scan_binary(data: bytes, segment_events: int):
    """Boundary scan for a v2 binary trace: returns ``(dims, declared,
    total_events, header_end, segment_end_offsets)`` with offsets
    absolute in ``data``."""
    pos = len(MAGIC)
    fields = []
    for name in ("threads", "locks", "vars", "volatiles", "classes",
                 "events"):
        value, pos = _read_varint(data, pos, name)
        fields.append(value)
    header_end = pos
    declared = fields[5]
    body = data[header_end:]
    np = _numpy()
    if np is not None:
        arr = np.frombuffer(body, dtype=np.uint8)
        ends = np.flatnonzero(arr < 0x80)[2::3] + 1
        if declared and len(ends) > declared:
            # the reader stops at the declared count; bytes past it are
            # not events and must not shift any boundary
            ends = ends[:declared]
        total = int(len(ends))
        seg_ends = [header_end + int(o)
                    for o in ends[segment_events - 1::segment_events]]
        return tuple(fields[:5]), declared, total, header_end, seg_ends
    total = 0
    terms = 0
    seg_ends: List[int] = []
    for i, b in enumerate(body):
        if b < 0x80:
            terms += 1
            if terms == 3:
                terms = 0
                total += 1
                if total % segment_events == 0:
                    seg_ends.append(header_end + i + 1)
                if declared and total == declared:
                    break
    return tuple(fields[:5]), declared, total, header_end, seg_ends


def _scan_text(data: bytes, segment_events: int):
    """Boundary scan for a v1 text trace: returns ``(dims, total_events,
    header_end, segment_end_offsets)``.  Event lines are counted without
    parsing; the first line must be the dimension header (segmenting a
    header-less capture is refused — every checkpoint flow needs the
    dimensions anyway)."""
    from repro.trace.format import _parse_header

    nl = data.find(b"\n")
    first_end = len(data) if nl < 0 else nl + 1
    try:
        first = data[:first_end].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            "line 1: trace is not valid text ({})".format(exc), 1)
    info = _parse_header(first.rstrip("\n"), 1)
    if info is None:
        raise TraceFormatError(
            "trace has no '# repro trace v1:' header; segment hashing "
            "needs declared dimensions")
    dims = (info.num_threads, info.num_locks, info.num_vars,
            info.num_volatiles, info.num_classes)
    total = 0
    seg_ends: List[int] = []
    pos = first_end
    size = len(data)
    find = data.find
    while pos < size:
        nl = find(b"\n", pos)
        end = size if nl < 0 else nl + 1
        line = data[pos:end].strip()
        if line and not line.startswith(b"#"):
            total += 1
            if total % segment_events == 0:
                seg_ends.append(end)
        pos = end
    return dims, total, first_end, seg_ends


def segment_trace(source: Union[str, bytes],
                  segment_events: int = SEGMENT_EVENTS) -> TraceSegments:
    """Hash ``source`` (a trace file path, or raw trace bytes) into a
    :class:`TraceSegments` summary.

    Costs one sequential read plus an unparsed boundary scan — no
    events are decoded.  Raises
    :class:`~repro.trace.stream.TraceFormatError` for a header-less
    text trace or a binary trace truncated inside its header.
    """
    if segment_events < 1:
        raise ValueError("segment_events must be >= 1")
    if isinstance(source, (bytes, bytearray)):
        data = bytes(source)
    else:
        with open(source, "rb") as fp:
            data = fp.read()
    trace_digest = hashlib.sha256(data).hexdigest()
    if data[:len(MAGIC)] == MAGIC:
        dims, _declared, total, header_end, seg_ends = _scan_binary(
            data, segment_events)
        fmt = "binary-v2"
    else:
        dims, total, header_end, seg_ends = _scan_text(data, segment_events)
        fmt = "text-v1"
    digests = []
    prev = header_end
    for end in seg_ends:
        digests.append(hashlib.sha256(data[prev:end]).hexdigest())
        prev = end
    return TraceSegments(fmt, segment_events, total, dims,
                         tuple(digests), trace_digest, header_end,
                         tuple(end - header_end for end in seg_ends))
