"""Trace serialization: the v1 text format, and format autodetection.

One event per line::

    T0 acq m0
    T0 wr x3 @17
    T1 fork T2

Fields: thread, operation name (see :data:`repro.trace.event.KIND_NAMES`),
operand, optional ``@site``.  Comment lines start with ``#``; blank lines
are ignored.  Ids are written with a one-letter namespace prefix (``T``,
``m``, ``x``, ``v``, ``k``) that is stripped on parse.

The format exists so traces can be captured once and re-analyzed offline —
the same workflow the paper proposes for record & replay vindication (§4.3).

Streaming event protocol
------------------------

:func:`dump_trace` writes a header comment declaring the trace dimensions::

    # repro trace v1: threads=4 locks=8 vars=64 events=120000

(``volatiles=`` and ``classes=`` appear when nonzero; ``events=`` is a
hint, 0/absent when unknown.  Unknown ``key=count`` fields are ignored
for forward compatibility, but a header-prefixed line whose fields are
malformed raises :class:`TraceFormatError` — silently dropping declared
dimensions would surface later as a misleading "no header" error.)

:func:`stream_trace` returns a one-shot stream: its ``info`` attribute
is the :class:`~repro.trace.trace.TraceInfo` parsed from that header (or
``None`` for header-less text), and iterating it yields
:class:`~repro.trace.event.Event` objects parsed lazily — the full
:class:`~repro.trace.trace.Trace` is never materialized, so arbitrarily
large captures are analyzed in bounded memory (feed the stream to
:class:`repro.core.engine.MultiRunner`).  A stream is strictly one-shot:
it cannot be rewound, and a second iteration raises
:class:`RuntimeError`; it supports ``with`` for deterministic cleanup
when abandoned early (the shared lifecycle lives in
:class:`repro.trace.stream.TraceStreamBase`).  Malformed lines raise
:class:`TraceFormatError` carrying the offending line number
(``.lineno``).

Format autodetection
--------------------

There are two on-disk formats: this text format (``# repro trace v1``
header) and the v2 binary format of :mod:`repro.trace.binfmt`
(``# repro trace v2`` magic + varint-encoded events; >2x faster to
ingest).  :func:`stream_trace` and :func:`load_trace` sniff the leading
bytes of the source and pick the right reader — paths, binary file
objects (seekable or not), and text file objects all work, and no caller
ever passes a format flag.  ``repro convert`` translates between the
two; analysis entry points (``repro analyze --stream``, ``repro
compare``, :func:`repro.detect_races_stream`) accept either format
transparently.

:func:`load_trace` is the materializing wrapper: it drains a stream into
a :class:`~repro.trace.trace.Trace`, preferring header dimensions (so
e.g. a declared thread count survives a round trip even when some
threads logged no events).
"""

from __future__ import annotations

import io
from typing import BinaryIO, Iterator, Optional, TextIO, Union

from repro.trace.event import Event, KIND_NAMES, NAME_KINDS
from repro.trace.stream import TraceFormatError, TraceStreamBase
from repro.trace.trace import Trace, TraceInfo

__all__ = [
    "TraceFormatError",
    "TraceStream",
    "dump_trace",
    "dumps_trace",
    "format_event",
    "header_line",
    "load_trace",
    "loads_trace",
    "parse_event_line",
    "stream_trace",
]

_PREFIX = {
    "rd": "x",
    "wr": "x",
    "acq": "m",
    "rel": "m",
    "fork": "T",
    "join": "T",
    "vrd": "v",
    "vwr": "v",
    "sinit": "k",
    "sacc": "k",
}

_HEADER_PREFIX = "# repro trace v1:"

_HEADER_ATTRS = {
    "threads": "num_threads",
    "locks": "num_locks",
    "vars": "num_vars",
    "volatiles": "num_volatiles",
    "classes": "num_classes",
    "events": "num_events",
}


def format_event(event: Event) -> str:
    """One event as its text line (without the newline)."""
    name = KIND_NAMES[event.kind]
    return "T{} {} {}{} @{}".format(
        event.tid, name, _PREFIX[name], event.target, event.site)


def header_line(dims: Union[Trace, TraceInfo]) -> str:
    """The ``# repro trace v1:`` header for ``dims`` (a :class:`Trace`
    or :class:`TraceInfo`), without the newline.  ``volatiles=``,
    ``classes=`` and ``events=`` are written only when nonzero."""
    num_events = getattr(dims, "num_events", None)
    if num_events is None:
        num_events = len(dims)
    line = "{} threads={} locks={} vars={}".format(
        _HEADER_PREFIX, dims.num_threads, dims.num_locks, dims.num_vars)
    if dims.num_volatiles:
        line += " volatiles={}".format(dims.num_volatiles)
    if dims.num_classes:
        line += " classes={}".format(dims.num_classes)
    if num_events:
        line += " events={}".format(num_events)
    return line


def dumps_trace(trace: Trace) -> str:
    """Serialize ``trace`` to text."""
    out = io.StringIO()
    dump_trace(trace, out)
    return out.getvalue()


def dump_trace(trace: Trace, fp, binary: Optional[bool] = None) -> None:
    """Serialize ``trace`` to an open file.

    ``binary=True`` writes the v2 binary format (``fp`` must be a binary
    file), ``binary=False`` the v1 text format; the default ``None``
    infers from the handle: raw/buffered byte streams get binary, text
    streams (and duck-typed writers) get text.
    """
    if binary is None:
        binary = isinstance(fp, (io.RawIOBase, io.BufferedIOBase))
    if binary:
        from repro.trace.binfmt import dump_trace_binary
        dump_trace_binary(trace, fp)
        return
    fp.write(header_line(trace) + "\n")
    for e in trace.events:
        fp.write(format_event(e) + "\n")


def _parse_id(token: str, lineno: int) -> int:
    digits = token.lstrip("Tmxvk")
    if not digits.isdigit():
        raise TraceFormatError(
            "line {}: bad id {!r}".format(lineno, token), lineno)
    return int(digits)


def parse_event_line(line: str, lineno: int) -> Optional[Event]:
    """Parse one line; None for blanks/comments, TraceFormatError if bad."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split()
    if len(parts) not in (3, 4):
        raise TraceFormatError(
            "line {}: expected 'Tn op operand [@site]'".format(lineno),
            lineno)
    tid = _parse_id(parts[0], lineno)
    kind = NAME_KINDS.get(parts[1])
    if kind is None:
        raise TraceFormatError(
            "line {}: unknown operation {!r}".format(lineno, parts[1]),
            lineno)
    target = _parse_id(parts[2], lineno)
    site = 0
    if len(parts) == 4:
        if not parts[3].startswith("@"):
            raise TraceFormatError(
                "line {}: expected '@site', got {!r}".format(
                    lineno, parts[3]), lineno)
        try:
            site = int(parts[3][1:])
        except ValueError:
            raise TraceFormatError(
                "line {}: bad site {!r}".format(lineno, parts[3]), lineno)
    return Event(tid, kind, target, site)


def _parse_header(line: str, lineno: int) -> Optional[TraceInfo]:
    """Parse the ``# repro trace v1:`` header comment, if that's what
    ``line`` is.  Unknown ``key=count`` fields are ignored (forward
    compatibility), but malformed fields raise — a header-prefixed line
    declares dimensions, and dropping them silently turns into a
    misleading "no header" failure much later."""
    if not line.startswith(_HEADER_PREFIX):
        return None
    info = TraceInfo()
    for token in line[len(_HEADER_PREFIX):].split():
        key, eq, value = token.partition("=")
        if not eq or not value.isdigit():
            raise TraceFormatError(
                "line {}: bad trace-header field {!r} (expected "
                "key=count)".format(lineno, token), lineno)
        attr = _HEADER_ATTRS.get(key)
        if attr is not None:
            setattr(info, attr, int(value))
    return info


class TraceStream(TraceStreamBase):
    """A one-shot, lazily parsed event stream over v1 trace text.

    The lifecycle (ownership, close-on-init-failure, one-shot iteration,
    context-manager support) is shared with the binary reader — see
    :class:`repro.trace.stream.TraceStreamBase`.  ``info`` is the
    :class:`TraceInfo` from the header comment, or ``None`` if absent.
    """

    _OPEN_MODE = "r"

    def _read_header(self) -> None:
        # The header, when present, is the first line; peek at it so
        # ``info`` is available before iteration starts.
        try:
            self._pending: Optional[str] = self._fp.readline()
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                "line 1: trace is not valid text ({})".format(exc), 1)
        if self._pending:
            self.info = _parse_header(self._pending, 1)
            if self.info is not None:
                self._pending = None  # consumed as header

    def _events(self) -> Iterator[Event]:
        lineno = 0
        try:
            if self._pending is not None:
                lineno = 1
                event = parse_event_line(self._pending, lineno)
                self._pending = None
                if event is not None:
                    self.events_read += 1
                    yield event
            elif self.info is not None:
                lineno = 1  # the header line
            try:
                for line in self._fp:
                    lineno += 1
                    event = parse_event_line(line, lineno)
                    if event is not None:
                        self.events_read += 1
                        yield event
            except UnicodeDecodeError as exc:
                raise TraceFormatError(
                    "line {}: trace is not valid text ({})".format(
                        lineno + 1, exc), lineno + 1)
        finally:
            if self._owns_fp:
                self._fp.close()


class _PrefixedReader(io.RawIOBase):
    """Re-attaches sniffed magic bytes in front of an unseekable binary
    handle, so autodetection can fall back to the text reader without
    losing the bytes it peeked at.  Closing the adapter never closes the
    wrapped handle (it is not ours)."""

    def __init__(self, prefix: bytes, fp):
        self._prefix = prefix
        self._inner = fp

    def readable(self) -> bool:
        return True

    def readinto(self, b) -> int:
        if self._prefix:
            k = min(len(b), len(self._prefix))
            b[:k] = self._prefix[:k]
            self._prefix = self._prefix[k:]
            return k
        data = self._inner.read(len(b))
        if not data:
            return 0
        b[:len(data)] = data
        return len(data)


def stream_trace(source: Union[TextIO, BinaryIO, str]) -> TraceStreamBase:
    """Open a lazily parsed one-shot event stream over a recorded trace,
    autodetecting the format from the leading bytes.

    ``source`` is a file path, an open binary file object, or an open
    text file object.  A source starting with the v2 magic
    (:data:`repro.trace.binfmt.MAGIC`) gets the binary reader; anything
    else gets the text reader (text handles are taken at their word —
    binary content in a text handle fails to decode anyway).  Both
    readers honor the contract documented on
    :class:`repro.trace.stream.TraceStreamBase`.

    Example (bounded-memory walk over a capture in either format)::

        with repro.stream_trace("recorded.trace") as stream:
            info = stream.require_info()    # header-carried dimensions
            for event in stream:            # parsed lazily, one shot
                ...
    """
    from repro.trace import binfmt

    if isinstance(source, str):
        fp = open(source, "rb")
        try:
            prefix = fp.read(len(binfmt.MAGIC))
            if prefix == binfmt.MAGIC:
                return binfmt.BinaryTraceStream(fp, owns_fp=True,
                                                prefix=prefix)
            fp.seek(0)
            text = io.TextIOWrapper(fp, encoding="utf-8")
        except BaseException:
            fp.close()
            raise
        return TraceStream(text, owns_fp=True)
    probe = source.read(0)
    if isinstance(probe, str):
        return TraceStream(source)
    # Binary handle: sniff the magic without assuming seekability.
    prefix = b""
    while len(prefix) < len(binfmt.MAGIC):
        chunk = source.read(len(binfmt.MAGIC) - len(prefix))
        if not chunk:
            break
        prefix += chunk
    if prefix == binfmt.MAGIC:
        return binfmt.BinaryTraceStream(source, prefix=prefix)
    text = io.TextIOWrapper(_PrefixedReader(prefix, source),
                            encoding="utf-8")
    return TraceStream(text)


def loads_trace(text: str, validate: bool = True) -> Trace:
    """Parse trace text produced by :func:`dumps_trace`."""
    return load_trace(io.StringIO(text), validate=validate)


def load_trace(fp: Union[TextIO, str], validate: bool = True) -> Trace:
    """Parse a trace from an open file or a file path (either format;
    see :func:`stream_trace` for the autodetection rules).

    Built on :func:`stream_trace`; the header's declared dimensions are
    honored when they cover everything the events mention.
    """
    stream = stream_trace(fp)
    events = list(stream)
    info = stream.info
    derived = Trace(events, validate=validate)
    if info is None or (info.num_threads <= derived.num_threads
                        and info.num_locks <= derived.num_locks
                        and info.num_vars <= derived.num_vars
                        and info.num_volatiles <= derived.num_volatiles
                        and info.num_classes <= derived.num_classes):
        # header-less, or the header adds nothing over the events (the
        # common exact-header case): no second construction needed
        return derived
    return Trace(
        events,
        num_threads=max(info.num_threads, derived.num_threads),
        num_locks=max(info.num_locks, derived.num_locks),
        num_vars=max(info.num_vars, derived.num_vars),
        num_volatiles=max(info.num_volatiles, derived.num_volatiles),
        num_classes=max(info.num_classes, derived.num_classes),
        validate=False,  # already validated just above
    )
