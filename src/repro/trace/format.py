"""A line-oriented text format for traces, with a streaming reader.

One event per line::

    T0 acq m0
    T0 wr x3 @17
    T1 fork T2

Fields: thread, operation name (see :data:`repro.trace.event.KIND_NAMES`),
operand, optional ``@site``.  Comment lines start with ``#``; blank lines
are ignored.  Ids are written with a one-letter namespace prefix (``T``,
``m``, ``x``, ``v``, ``k``) that is stripped on parse.

The format exists so traces can be captured once and re-analyzed offline —
the same workflow the paper proposes for record & replay vindication (§4.3).

Streaming event protocol
------------------------

:func:`dump_trace` writes a header comment declaring the trace dimensions::

    # repro trace v1: threads=4 locks=8 vars=64

:func:`stream_trace` returns a :class:`TraceStream`: its ``info`` attribute
is the :class:`~repro.trace.trace.TraceInfo` parsed from that header (or
``None`` for header-less text), and iterating it yields
:class:`~repro.trace.event.Event` objects parsed lazily, one line at a
time — the full :class:`~repro.trace.trace.Trace` is never materialized,
so arbitrarily large captures are analyzed in bounded memory (feed the
stream to :class:`repro.core.engine.MultiRunner`).  A stream is strictly
one-shot: it cannot be rewound, and a second iteration raises
:class:`RuntimeError`.  Malformed lines raise :class:`TraceFormatError`
carrying the offending line number (``.lineno``).

:func:`load_trace` is the materializing wrapper: it drains a stream into a
:class:`~repro.trace.trace.Trace`, preferring header dimensions (so e.g. a
declared thread count survives a round trip even when some threads logged
no events).
"""

from __future__ import annotations

import io
from typing import Iterator, Optional, TextIO, Union

from repro.trace.event import Event, KIND_NAMES, NAME_KINDS
from repro.trace.trace import Trace, TraceInfo

_PREFIX = {
    "rd": "x",
    "wr": "x",
    "acq": "m",
    "rel": "m",
    "fork": "T",
    "join": "T",
    "vrd": "v",
    "vwr": "v",
    "sinit": "k",
    "sacc": "k",
}

_HEADER_PREFIX = "# repro trace v1:"


class TraceFormatError(ValueError):
    """Raised on malformed trace text; ``lineno`` is the offending line."""

    def __init__(self, message: str, lineno: int = 0):
        super().__init__(message)
        self.lineno = lineno


def dumps_trace(trace: Trace) -> str:
    """Serialize ``trace`` to text."""
    out = io.StringIO()
    dump_trace(trace, out)
    return out.getvalue()


def dump_trace(trace: Trace, fp: TextIO) -> None:
    """Serialize ``trace`` to an open text file."""
    fp.write("{} threads={} locks={} vars={}\n".format(
        _HEADER_PREFIX, trace.num_threads, trace.num_locks, trace.num_vars))
    for e in trace.events:
        name = KIND_NAMES[e.kind]
        fp.write("T{} {} {}{} @{}\n".format(
            e.tid, name, _PREFIX[name], e.target, e.site))


def _parse_id(token: str, lineno: int) -> int:
    digits = token.lstrip("Tmxvk")
    if not digits.isdigit():
        raise TraceFormatError(
            "line {}: bad id {!r}".format(lineno, token), lineno)
    return int(digits)


def parse_event_line(line: str, lineno: int) -> Optional[Event]:
    """Parse one line; None for blanks/comments, TraceFormatError if bad."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split()
    if len(parts) not in (3, 4):
        raise TraceFormatError(
            "line {}: expected 'Tn op operand [@site]'".format(lineno),
            lineno)
    tid = _parse_id(parts[0], lineno)
    kind = NAME_KINDS.get(parts[1])
    if kind is None:
        raise TraceFormatError(
            "line {}: unknown operation {!r}".format(lineno, parts[1]),
            lineno)
    target = _parse_id(parts[2], lineno)
    site = 0
    if len(parts) == 4:
        if not parts[3].startswith("@"):
            raise TraceFormatError(
                "line {}: expected '@site', got {!r}".format(
                    lineno, parts[3]), lineno)
        try:
            site = int(parts[3][1:])
        except ValueError:
            raise TraceFormatError(
                "line {}: bad site {!r}".format(lineno, parts[3]), lineno)
    return Event(tid, kind, target, site)


def _parse_header(line: str) -> Optional[TraceInfo]:
    """Parse the ``# repro trace v1:`` header comment, if that's what
    ``line`` is; malformed fields are ignored (it is just a comment)."""
    if not line.startswith(_HEADER_PREFIX):
        return None
    info = TraceInfo()
    for token in line[len(_HEADER_PREFIX):].split():
        key, _, value = token.partition("=")
        if not value.isdigit():
            continue
        attr = {"threads": "num_threads", "locks": "num_locks",
                "vars": "num_vars", "volatiles": "num_volatiles",
                "classes": "num_classes", "events": "num_events"}.get(key)
        if attr is not None:
            setattr(info, attr, int(value))
    return info


class TraceStream:
    """A one-shot, lazily parsed event stream over trace text.

    Attributes
    ----------
    info:
        :class:`TraceInfo` from the header comment, or None if absent.
    events_read:
        Events yielded so far (grows during iteration).

    Iterating yields :class:`Event` objects without ever materializing the
    trace.  The stream owns the file handle when constructed from a path
    and closes it when exhausted (or on error).
    """

    def __init__(self, source: Union[TextIO, str]):
        if isinstance(source, str):
            self._fp: TextIO = open(source)
            self._owns_fp = True
        else:
            self._fp = source
            self._owns_fp = False
        self._consumed = False
        self.events_read = 0
        # The header, when present, is the first line; peek at it so
        # ``info`` is available before iteration starts.
        self._pending: Optional[str] = self._fp.readline()
        self.info: Optional[TraceInfo] = None
        if self._pending:
            self.info = _parse_header(self._pending)
            if self.info is not None:
                self._pending = None  # consumed as header

    def close(self) -> None:
        """Release the underlying file if this stream owns it (iterating
        to exhaustion closes it automatically; this is for streams
        abandoned before or during iteration)."""
        if self._owns_fp:
            self._fp.close()

    def require_info(self) -> TraceInfo:
        """The header dimensions, or TraceFormatError if there were none
        (streaming analysis needs the thread count up front).  Closes the
        stream on failure — it is unusable for analysis anyway."""
        if self.info is None:
            self.close()
            raise TraceFormatError(
                "trace has no '{} ...' header; streaming analysis needs "
                "the declared dimensions (re-record with dump_trace, or "
                "load the trace in full)".format(_HEADER_PREFIX))
        return self.info

    def __iter__(self) -> Iterator[Event]:
        if self._consumed:
            raise RuntimeError(
                "TraceStream is one-shot and was already consumed; "
                "re-open the source to iterate again")
        self._consumed = True
        return self._generate()

    def _generate(self) -> Iterator[Event]:
        lineno = 0
        try:
            if self._pending is not None:
                lineno = 1
                event = parse_event_line(self._pending, lineno)
                self._pending = None
                if event is not None:
                    self.events_read += 1
                    yield event
            elif self.info is not None:
                lineno = 1  # the header line
            for line in self._fp:
                lineno += 1
                event = parse_event_line(line, lineno)
                if event is not None:
                    self.events_read += 1
                    yield event
        finally:
            if self._owns_fp:
                self._fp.close()


def stream_trace(source: Union[TextIO, str]) -> TraceStream:
    """Open a lazily parsed one-shot event stream over trace text.

    ``source`` is an open text file or a file path.  See
    :class:`TraceStream` and the module docstring for the protocol.
    """
    return TraceStream(source)


def loads_trace(text: str, validate: bool = True) -> Trace:
    """Parse trace text produced by :func:`dumps_trace`."""
    return load_trace(io.StringIO(text), validate=validate)


def load_trace(fp: Union[TextIO, str], validate: bool = True) -> Trace:
    """Parse a trace from an open text file or a file path.

    Built on :func:`stream_trace`; the header's declared dimensions are
    honored when they cover everything the events mention.
    """
    stream = stream_trace(fp)
    events = list(stream)
    info = stream.info
    derived = Trace(events, validate=validate)
    if info is None or (info.num_threads <= derived.num_threads
                        and info.num_locks <= derived.num_locks
                        and info.num_vars <= derived.num_vars):
        # header-less, or the header adds nothing over the events (the
        # common exact-header case): no second construction needed
        return derived
    return Trace(
        events,
        num_threads=max(info.num_threads, derived.num_threads),
        num_locks=max(info.num_locks, derived.num_locks),
        num_vars=max(info.num_vars, derived.num_vars),
        num_volatiles=derived.num_volatiles,
        num_classes=derived.num_classes,
        validate=False,  # already validated just above
    )
