"""A line-oriented text format for traces.

One event per line::

    T0 acq m0
    T0 wr x3 @17
    T1 fork T2

Fields: thread, operation name (see :data:`repro.trace.event.KIND_NAMES`),
operand, optional ``@site``.  Comment lines start with ``#``; blank lines
are ignored.  Ids are written with a one-letter namespace prefix (``T``,
``m``, ``x``, ``v``, ``k``) that is stripped on parse.

The format exists so traces can be captured once and re-analyzed offline —
the same workflow the paper proposes for record & replay vindication (§4.3).
"""

from __future__ import annotations

import io
from typing import TextIO, Union

from repro.trace.event import Event, KIND_NAMES, NAME_KINDS
from repro.trace.trace import Trace

_PREFIX = {
    "rd": "x",
    "wr": "x",
    "acq": "m",
    "rel": "m",
    "fork": "T",
    "join": "T",
    "vrd": "v",
    "vwr": "v",
    "sinit": "k",
    "sacc": "k",
}


class TraceFormatError(ValueError):
    """Raised on malformed trace text."""


def dumps_trace(trace: Trace) -> str:
    """Serialize ``trace`` to text."""
    out = io.StringIO()
    dump_trace(trace, out)
    return out.getvalue()


def dump_trace(trace: Trace, fp: TextIO) -> None:
    """Serialize ``trace`` to an open text file."""
    fp.write("# repro trace v1: threads={} locks={} vars={}\n".format(
        trace.num_threads, trace.num_locks, trace.num_vars))
    for e in trace.events:
        name = KIND_NAMES[e.kind]
        fp.write("T{} {} {}{} @{}\n".format(
            e.tid, name, _PREFIX[name], e.target, e.site))


def loads_trace(text: str, validate: bool = True) -> Trace:
    """Parse trace text produced by :func:`dumps_trace`."""
    return load_trace(io.StringIO(text), validate=validate)


def _parse_id(token: str, lineno: int) -> int:
    digits = token.lstrip("Tmxvk")
    if not digits.isdigit():
        raise TraceFormatError("line {}: bad id {!r}".format(lineno, token))
    return int(digits)


def load_trace(fp: Union[TextIO, str], validate: bool = True) -> Trace:
    """Parse a trace from an open text file or a file path."""
    if isinstance(fp, str):
        with open(fp) as handle:
            return load_trace(handle, validate=validate)
    events = []
    for lineno, line in enumerate(fp, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) not in (3, 4):
            raise TraceFormatError(
                "line {}: expected 'Tn op operand [@site]'".format(lineno))
        tid = _parse_id(parts[0], lineno)
        kind = NAME_KINDS.get(parts[1])
        if kind is None:
            raise TraceFormatError(
                "line {}: unknown operation {!r}".format(lineno, parts[1]))
        target = _parse_id(parts[2], lineno)
        site = 0
        if len(parts) == 4:
            if not parts[3].startswith("@"):
                raise TraceFormatError(
                    "line {}: expected '@site', got {!r}".format(lineno, parts[3]))
            site = int(parts[3][1:])
        events.append(Event(tid, kind, target, site))
    return Trace(events, validate=validate)
