"""Trace events.

Each event consists of a thread identifier and an operation (paper §2.1).
Operations carry a single operand — a variable, lock, thread, volatile
variable, or class — identified by a dense integer id per namespace.

Events also carry a *site*: an integer standing in for the static program
location that performed the operation.  The paper's race reporting counts
"statically distinct races (i.e., distinct program locations)" separately
from total dynamic races (Table 7), which requires sites.
"""

from __future__ import annotations

# Event kinds.  Plain ints (not an Enum) because analyses dispatch on the
# kind for every event of multi-million event traces.
READ = 0
WRITE = 1
ACQUIRE = 2
RELEASE = 3
FORK = 4  # target = forked thread id
JOIN = 5  # target = joined thread id
VOLATILE_READ = 6
VOLATILE_WRITE = 7
STATIC_INIT = 8  # target = class id ("class initialized", §5.1)
STATIC_ACCESS = 9  # target = class id ("class accessed", §5.1)

KIND_NAMES = {
    READ: "rd",
    WRITE: "wr",
    ACQUIRE: "acq",
    RELEASE: "rel",
    FORK: "fork",
    JOIN: "join",
    VOLATILE_READ: "vrd",
    VOLATILE_WRITE: "vwr",
    STATIC_INIT: "sinit",
    STATIC_ACCESS: "sacc",
}

NAME_KINDS = {name: kind for kind, name in KIND_NAMES.items()}


class Event:
    """A single trace event: ``(tid, kind, target, site)``.

    ``target`` is the operand id; its namespace depends on ``kind``
    (variable for rd/wr, lock for acq/rel, thread for fork/join, volatile
    variable for vrd/vwr, class for sinit/sacc).
    """

    __slots__ = ("tid", "kind", "target", "site")

    def __init__(self, tid: int, kind: int, target: int, site: int = 0):
        self.tid = tid
        self.kind = kind
        self.target = target
        self.site = site

    def __repr__(self) -> str:
        return "Event(T{} {}({}) @site{})".format(
            self.tid, KIND_NAMES[self.kind], self.target, self.site
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.tid == other.tid
            and self.kind == other.kind
            and self.target == other.target
            and self.site == other.site
        )

    def __hash__(self) -> int:
        return hash((self.tid, self.kind, self.target, self.site))


def is_read(event: Event) -> bool:
    """True for data (non-volatile) reads."""
    return event.kind == READ


def is_write(event: Event) -> bool:
    """True for data (non-volatile) writes."""
    return event.kind == WRITE


def is_access(event: Event) -> bool:
    """True for data (non-volatile) reads and writes."""
    return event.kind <= WRITE


def conflicts(a: Event, b: Event) -> bool:
    """The conflict relation ``a ≍ b`` (§2.2).

    Two events conflict if they access the same variable from different
    threads and at least one is a write.
    """
    return (
        is_access(a)
        and is_access(b)
        and a.target == b.target
        and a.tid != b.tid
        and (a.kind == WRITE or b.kind == WRITE)
    )
