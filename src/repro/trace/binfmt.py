"""The v2 binary trace format: magic line + varint-encoded events.

Text parsing dominates the streaming hot path (splitting and int-ing
every line costs far more than any analysis handler), so large captures
get a compact binary encoding next to the v1 text format.  Both formats
share the :class:`~repro.trace.trace.TraceInfo` header/dimension
protocol and the one-shot reader contract of
:class:`~repro.trace.stream.TraceStreamBase`;
:func:`repro.trace.format.stream_trace` autodetects the format from the
leading bytes, so nothing downstream needs to know which one it got.

Layout::

    magic   b"# repro trace v2\\n"          (text-tool friendly: looks
                                             like a comment line)
    header  6 varints: threads, locks, vars, volatiles, classes,
            events (0 = unknown; a hint, exactly like the text header's
            ``events=`` field)
    events  3 varints each:
              kind | tid << 4     (kind is 4 bits; see repro.trace.event)
              target
              site

Varints are the standard LEB128 unsigned encoding: 7 value bits per
byte, high bit set on continuation bytes.  A typical event is 3–5 bytes
against ~15 for its text line, and decoding is integer arithmetic
instead of string splitting — ingest runs >2x faster
(``benchmarks/bench_engine.py::test_binary_ingest_speedup``).

:class:`BinaryTraceWriter` is the streaming writer (header up front,
``write()`` per event) used by ``repro convert``;
:func:`dump_trace_binary` / :func:`dumps_trace_binary` serialize a
materialized trace.  :class:`BinaryTraceStream` is the reader; prefer
the format-agnostic :func:`repro.trace.format.stream_trace` /
:func:`repro.trace.format.load_trace` entry points over constructing it
directly.
"""

from __future__ import annotations

import io
from typing import BinaryIO, Iterator, Optional, Union

from repro.trace.event import Event, KIND_NAMES
from repro.trace.stream import TraceFormatError, TraceStreamBase
from repro.trace.trace import Trace, TraceInfo

#: First bytes of every v2 binary trace.  Deliberately a valid v1 text
#: comment line so a text tool peeking at the file sees something sane.
MAGIC = b"# repro trace v2\n"

_NUM_KINDS = len(KIND_NAMES)
#: Upper bound on one encoded event (3 varints of <= 10 bytes each).
#: The reader decodes whatever is buffered and treats an event that is
#: still incomplete after this many bytes as malformed (endless varint
#: continuation bits), bounding memory on adversarial input.
_MAX_EVENT_BYTES = 32
#: Varints cap at 10 bytes (LEB128 for a 64-bit value: 9 x 7 + 1 bits).
_MAX_VARINT_SHIFT = 63
_READ_SIZE = 1 << 16
_FLUSH_BYTES = 1 << 16


def _append_varint(buf: bytearray, value: int) -> None:
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


class BinaryTraceWriter:
    """Streaming v2 writer: header up front, one ``write()`` per event.

    ``sink`` is a path (owned and closed by :meth:`close`) or an open
    binary file object (left open).  ``dims`` is anything carrying the
    five ``num_*`` dimensions — a :class:`TraceInfo` or a full
    :class:`Trace`; the event-count hint is ``len(dims)`` (0 = unknown,
    fine for streaming conversion).  Supports ``with`` for
    flush-and-close.
    """

    def __init__(self, sink: Union[BinaryIO, str],
                 dims: Union[Trace, TraceInfo]):
        if isinstance(sink, str):
            self._fp: BinaryIO = open(sink, "wb")
            self._owns_fp = True
        else:
            self._fp = sink
            self._owns_fp = False
        self.events_written = 0
        buf = bytearray(MAGIC)
        for dim in (dims.num_threads, dims.num_locks, dims.num_vars,
                    dims.num_volatiles, dims.num_classes, len(dims)):
            _append_varint(buf, dim)
        self._buf = buf

    def write(self, event: Event) -> None:
        buf = self._buf
        _append_varint(buf, event.kind | (event.tid << 4))
        _append_varint(buf, event.target)
        _append_varint(buf, event.site)
        self.events_written += 1
        if len(buf) >= _FLUSH_BYTES:
            self.flush()

    def flush(self) -> None:
        if self._buf:
            self._fp.write(self._buf)
            self._buf = bytearray()

    def close(self) -> None:
        """Flush buffered bytes; close the file if this writer owns it."""
        self.flush()
        if self._owns_fp:
            self._fp.close()

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def dump_trace_binary(trace: Trace, fp: BinaryIO) -> None:
    """Serialize ``trace`` to an open binary file in the v2 format."""
    writer = BinaryTraceWriter(fp, trace)
    for event in trace.events:
        writer.write(event)
    writer.flush()


def dumps_trace_binary(trace: Trace) -> bytes:
    """Serialize ``trace`` to v2 bytes."""
    out = io.BytesIO()
    dump_trace_binary(trace, out)
    return out.getvalue()


class BinaryTraceStream(TraceStreamBase):
    """One-shot lazily decoded event stream over a v2 binary trace.

    Same contract as the text :class:`~repro.trace.format.TraceStream`
    (one-shot, ownership, context manager — see
    :class:`~repro.trace.stream.TraceStreamBase`), except that ``info``
    is always present: the binary header is mandatory, so
    :meth:`require_info` never fails.

    ``prefix`` is for the autodetection path: bytes already read off an
    unseekable handle while sniffing the magic, logically still the
    start of the stream.
    """

    _OPEN_MODE = "rb"

    def __init__(self, source: Union[BinaryIO, str],
                 owns_fp: Optional[bool] = None, prefix: bytes = b""):
        self._prefix = prefix
        super().__init__(source, owns_fp)

    def _read_header(self) -> None:
        # Parse incrementally, never requesting bytes beyond the header
        # itself: live sources (sockets, FIFOs) deliver the header the
        # moment the producer wrote it, and an over-sized probe would
        # stall a short live feed waiting for event bytes that may be
        # minutes away.  A one-byte-at-a-time tail costs nothing here
        # (the header is parsed once; events use the buffered fast path).
        data = self._prefix
        self._prefix = b""
        read = self._fp.read

        def ensure(k: int) -> bool:
            """Grow ``data`` to >= k bytes; False at end of input."""
            nonlocal data
            while len(data) < k:
                chunk = read(k - len(data))
                if not chunk:
                    return False
                data += chunk
            return True

        if not ensure(len(MAGIC)) or data[:len(MAGIC)] != MAGIC:
            raise TraceFormatError(
                "not a v2 binary trace: bad or truncated magic "
                "(expected {!r})".format(MAGIC))
        pos = len(MAGIC)
        dims = []
        for name in ("threads", "locks", "vars", "volatiles", "classes",
                     "events"):
            value = 0
            shift = 0
            while True:
                if pos >= len(data) and not ensure(pos + 1):
                    raise TraceFormatError(
                        "binary trace truncated in header "
                        "({} field)".format(name))
                b = data[pos]
                pos += 1
                if b < 0x80:
                    value |= b << shift
                    break
                value |= (b & 0x7F) << shift
                shift += 7
                if shift > _MAX_VARINT_SHIFT:
                    # endless continuation bits: reject instead of
                    # accumulating an unbounded int from a live feed
                    raise TraceFormatError(
                        "oversized varint in header ({} field)".format(
                            name))
            dims.append(value)
        self.info = TraceInfo(*dims)
        self._buffered = data[pos:]

    def _events(self) -> Iterator[Event]:
        fp = self._fp
        read = fp.read
        data = self._buffered
        self._buffered = b""
        pos = 0
        n = len(data)
        count = 0
        eof = False
        Event_ = Event
        # the header's declared count is authoritative: once reached,
        # stop without another read — a live source would otherwise
        # block waiting for an EOF the producer may never need to send
        declared = self.info.num_events
        try:
            while True:
                if pos >= n:
                    # buffer exhausted: one read of whatever is
                    # available (live sources return partial data — the
                    # incomplete-event case is handled below, so this
                    # never waits for bytes while decodable events sit
                    # in the buffer)
                    self.events_read = count
                    if eof:
                        return
                    data = read(_READ_SIZE)
                    if not data:
                        return
                    pos = 0
                    n = len(data)
                # Decode three varints inline; an IndexError means the
                # buffer ends inside an event — incomplete (wait for
                # more bytes) or, at end of input, truncated.
                start = pos
                try:
                    b = data[pos]
                    pos += 1
                    if b < 0x80:
                        head = b
                    else:
                        head = b & 0x7F
                        shift = 7
                        while True:
                            b = data[pos]
                            pos += 1
                            if b < 0x80:
                                head |= b << shift
                                break
                            head |= (b & 0x7F) << shift
                            shift += 7
                    b = data[pos]
                    pos += 1
                    if b < 0x80:
                        target = b
                    else:
                        target = b & 0x7F
                        shift = 7
                        while True:
                            b = data[pos]
                            pos += 1
                            if b < 0x80:
                                target |= b << shift
                                break
                            target |= (b & 0x7F) << shift
                            shift += 7
                    b = data[pos]
                    pos += 1
                    if b < 0x80:
                        site = b
                    else:
                        site = b & 0x7F
                        shift = 7
                        while True:
                            b = data[pos]
                            pos += 1
                            if b < 0x80:
                                site |= b << shift
                                break
                            site |= (b & 0x7F) << shift
                            shift += 7
                except IndexError:
                    self.events_read = count
                    if eof:
                        raise TraceFormatError(
                            "binary trace truncated mid-event after {} "
                            "events".format(count)) from None
                    if n - start >= _MAX_EVENT_BYTES:
                        # a complete event is at most 3 x 10-byte
                        # varints; endless continuation bits are
                        # malformed, not merely still in flight
                        raise TraceFormatError(
                            "oversized varint at event {}".format(
                                count)) from None
                    # incomplete event at the buffer's end: keep its
                    # prefix, wait for more bytes, retry the decode
                    tail = read(_READ_SIZE)
                    if not tail:
                        eof = True
                    data = data[start:] + tail
                    pos = 0
                    n = len(data)
                    continue
                kind = head & 0xF
                if kind >= _NUM_KINDS:
                    raise TraceFormatError(
                        "bad event kind {} at event {}".format(kind, count))
                count += 1
                yield Event_(head >> 4, kind, target, site)
                if count == declared:
                    return
        finally:
            self.events_read = count
            if self._owns_fp:
                fp.close()
