"""Shared lifecycle for one-shot trace event streams.

Both trace formats — the v1 text format (:mod:`repro.trace.format`) and
the v2 binary format (:mod:`repro.trace.binfmt`) — expose the same
reader contract, and :class:`TraceStreamBase` is its single
implementation:

* **ownership** — constructed from a path, the stream opens and owns the
  file handle and closes it when iteration finishes (exhaustion or
  error); constructed from an open file object it does not close it,
  unless ``owns_fp=True`` is passed (the format-autodetection path in
  :func:`repro.trace.format.stream_trace` hands over wrapped handles
  this way).
* **close-on-init-failure** — header parsing happens during
  construction; if it raises (truncated binary header, undecodable
  bytes, malformed text header), an owned handle is closed before the
  exception propagates, so no file descriptor leaks.
* **one-shot iteration** — the stream can be iterated exactly once and
  is never rewound; a second ``iter()`` raises :class:`RuntimeError`.
  This is what lets the single-pass engine consume multi-gigabyte
  captures in bounded memory.
* **context-manager support** — ``with stream_trace(path) as s:`` closes
  an owned handle on scope exit even when iteration is abandoned early.

Subclasses implement two hooks: ``_read_header`` (called during
construction; sets ``self.info`` when the source declares dimensions)
and ``_events`` (the lazy event generator).  The base class wraps
``_events`` so that :meth:`TraceStreamBase.close` runs when iteration
ends — by exhaustion *or* by an error raised mid-iteration — so no
subclass can leak its handle by forgetting a ``finally`` (subclasses may
still carry their own ``finally`` to update counters; ``close`` is
idempotent).
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from repro.trace.event import Event
from repro.trace.trace import TraceInfo


class TraceFormatError(ValueError):
    """Raised on malformed trace input.

    ``lineno`` is the offending line for text traces; binary traces have
    no lines, so it stays 0 and the message carries the event index.
    """

    def __init__(self, message: str, lineno: int = 0):
        super().__init__(message)
        self.lineno = lineno


class TraceStreamBase:
    """Base of the one-shot trace readers (see the module docstring).

    Attributes
    ----------
    info:
        :class:`TraceInfo` with the declared dimensions, or ``None`` when
        the source carries none (header-less text).
    events_read:
        Events yielded so far (grows during iteration; exact once the
        stream is exhausted).
    """

    _OPEN_MODE = "r"

    def __init__(self, source: Union[object, str],
                 owns_fp: Optional[bool] = None):
        if isinstance(source, str):
            self._fp = open(source, self._OPEN_MODE)
            self._owns_fp = True
        else:
            self._fp = source
            self._owns_fp = bool(owns_fp)
        self._consumed = False
        self.events_read = 0
        self.info: Optional[TraceInfo] = None
        try:
            self._read_header()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _read_header(self) -> None:
        """Consume the source's header, setting ``self.info``."""
        raise NotImplementedError

    def _events(self) -> Iterator[Event]:
        """The lazy event generator.  Closing on iteration end (by
        exhaustion or error) is enforced by ``__iter__``'s guard; a
        subclass ``finally`` is only needed for its own bookkeeping."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the underlying file if this stream owns it (iterating
        to exhaustion closes it automatically; this is for streams
        abandoned before or during iteration)."""
        if self._owns_fp:
            self._fp.close()

    def __enter__(self) -> "TraceStreamBase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def require_info(self) -> TraceInfo:
        """The declared dimensions, or TraceFormatError if there are none
        (streaming analysis needs the thread count up front).  Closes the
        stream on failure — it is unusable for analysis anyway."""
        if self.info is None:
            self.close()
            raise TraceFormatError(
                "trace has no '# repro trace v1: ...' header; streaming "
                "analysis needs the declared dimensions (re-record with "
                "dump_trace, or load the trace in full)")
        return self.info

    def __iter__(self) -> Iterator[Event]:
        if self._consumed:
            raise RuntimeError(
                "trace stream is one-shot and was already consumed; "
                "re-open the source to iterate again")
        self._consumed = True
        return self._guarded_events()

    def _guarded_events(self) -> Iterator[Event]:
        # Close-on-iteration-end is enforced here, once for every
        # subclass: a reader whose ``_events`` generator raises
        # mid-iteration (truncated input, undecodable bytes, a dropped
        # live connection) must not leak its underlying handle even if
        # its own generator has no ``finally``.  ``close()`` is
        # idempotent, so subclasses that do close themselves (and also
        # update counters in their ``finally``) are unaffected.
        try:
            yield from self._events()
        finally:
            self.close()
