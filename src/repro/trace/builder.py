"""A fluent builder for constructing traces from symbolic names.

Examples in the paper write traces as per-thread columns of operations like
``rd(x)`` and ``acq(m)``.  :class:`TraceBuilder` lets tests and examples
transcribe them directly::

    b = TraceBuilder()
    b.read("T1", "x")
    b.acquire("T1", "m")
    b.write("T1", "y")
    b.release("T1", "m")
    ...
    trace = b.build()

The builder interns thread/lock/variable names into dense ids and assigns a
distinct site to each (thread, operation, operand) triple unless an explicit
``site=`` is given.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.trace.event import (
    ACQUIRE,
    FORK,
    JOIN,
    READ,
    RELEASE,
    STATIC_ACCESS,
    STATIC_INIT,
    VOLATILE_READ,
    VOLATILE_WRITE,
    WRITE,
    Event,
)
from repro.trace.trace import Trace

Name = Union[str, int]


class _Interner:
    def __init__(self) -> None:
        self.ids: Dict[str, int] = {}
        self.names: List[str] = []

    def intern(self, name: Name) -> int:
        if isinstance(name, int):
            return name
        ident = self.ids.get(name)
        if ident is None:
            ident = len(self.names)
            self.ids[name] = ident
            self.names.append(name)
        return ident


class TraceBuilder:
    """Accumulates events; see module docstring."""

    def __init__(self) -> None:
        self._threads = _Interner()
        self._locks = _Interner()
        self._vars = _Interner()
        self._volatiles = _Interner()
        self._classes = _Interner()
        self._sites = _Interner()
        self.events: List[Event] = []

    # -- id helpers ----------------------------------------------------
    def thread_id(self, name: Name) -> int:
        """Dense id for a thread name (interning it if new)."""
        return self._threads.intern(name)

    def var_id(self, name: Name) -> int:
        """Dense id for a variable name (interning it if new)."""
        return self._vars.intern(name)

    def lock_id(self, name: Name) -> int:
        """Dense id for a lock name (interning it if new)."""
        return self._locks.intern(name)

    def _site(self, explicit: Optional[Name], default_key: str) -> int:
        if explicit is not None:
            return self._sites.intern(explicit)
        return self._sites.intern(default_key)

    def _emit(self, tid: int, kind: int, target: int, site: int) -> "TraceBuilder":
        self.events.append(Event(tid, kind, target, site))
        return self

    # -- operations -----------------------------------------------------
    def read(self, thread: Name, var: Name, site: Optional[Name] = None) -> "TraceBuilder":
        """Append ``rd(var)`` by ``thread``."""
        t = self._threads.intern(thread)
        x = self._vars.intern(var)
        return self._emit(t, READ, x, self._site(site, "rd:{}:{}".format(thread, var)))

    def write(self, thread: Name, var: Name, site: Optional[Name] = None) -> "TraceBuilder":
        """Append ``wr(var)`` by ``thread``."""
        t = self._threads.intern(thread)
        x = self._vars.intern(var)
        return self._emit(t, WRITE, x, self._site(site, "wr:{}:{}".format(thread, var)))

    def acquire(self, thread: Name, lock: Name) -> "TraceBuilder":
        """Append ``acq(lock)`` by ``thread``."""
        t = self._threads.intern(thread)
        m = self._locks.intern(lock)
        return self._emit(t, ACQUIRE, m, self._site(None, "acq:{}".format(lock)))

    def release(self, thread: Name, lock: Name) -> "TraceBuilder":
        """Append ``rel(lock)`` by ``thread``."""
        t = self._threads.intern(thread)
        m = self._locks.intern(lock)
        return self._emit(t, RELEASE, m, self._site(None, "rel:{}".format(lock)))

    def fork(self, parent: Name, child: Name) -> "TraceBuilder":
        """Append ``fork(child)`` by ``parent``."""
        t = self._threads.intern(parent)
        u = self._threads.intern(child)
        return self._emit(t, FORK, u, self._site(None, "fork:{}".format(child)))

    def join(self, joiner: Name, child: Name) -> "TraceBuilder":
        """Append ``join(child)`` by ``joiner``."""
        t = self._threads.intern(joiner)
        u = self._threads.intern(child)
        return self._emit(t, JOIN, u, self._site(None, "join:{}".format(child)))

    def volatile_read(self, thread: Name, var: Name, site: Optional[Name] = None) -> "TraceBuilder":
        """Append a volatile read by ``thread``."""
        t = self._threads.intern(thread)
        v = self._volatiles.intern(var)
        return self._emit(t, VOLATILE_READ, v, self._site(site, "vrd:{}".format(var)))

    def volatile_write(self, thread: Name, var: Name, site: Optional[Name] = None) -> "TraceBuilder":
        """Append a volatile write by ``thread``."""
        t = self._threads.intern(thread)
        v = self._volatiles.intern(var)
        return self._emit(t, VOLATILE_WRITE, v, self._site(site, "vwr:{}".format(var)))

    def static_init(self, thread: Name, cls: Name) -> "TraceBuilder":
        """Append a "class initialized" event (§5.1)."""
        t = self._threads.intern(thread)
        c = self._classes.intern(cls)
        return self._emit(t, STATIC_INIT, c, self._site(None, "sinit:{}".format(cls)))

    def static_access(self, thread: Name, cls: Name) -> "TraceBuilder":
        """Append a "class accessed" event (§5.1)."""
        t = self._threads.intern(thread)
        c = self._classes.intern(cls)
        return self._emit(t, STATIC_ACCESS, c, self._site(None, "sacc:{}".format(cls)))

    def sync(self, thread: Name, lock: Name) -> "TraceBuilder":
        """The paper's ``sync(o)`` shorthand (Figures 3 and 4).

        Emits ``acq(o); rd(oVar); wr(oVar); rel(o)`` — a critical section
        whose variable accesses conflict with every other ``sync(o)``,
        establishing rule (a) ordering between them.
        """
        var = "{}Var".format(lock)
        self.acquire(thread, lock)
        self.read(thread, var, site="sync-rd:{}".format(lock))
        self.write(thread, var, site="sync-wr:{}".format(lock))
        self.release(thread, lock)
        return self

    def wait(self, thread: Name, lock: Name) -> "TraceBuilder":
        """``wait()`` modeled as a release followed by an acquire (§5.1)."""
        self.release(thread, lock)
        self.acquire(thread, lock)
        return self

    # -- finishing -------------------------------------------------------
    def build(self, validate: bool = True) -> Trace:
        """Freeze the accumulated events into a :class:`Trace`."""
        return Trace(
            self.events,
            num_threads=max(len(self._threads.names), self._max_int_id("tid") + 1),
            num_locks=max(len(self._locks.names), 1),
            num_vars=max(len(self._vars.names), 1),
            num_volatiles=max(len(self._volatiles.names), 1),
            num_classes=max(len(self._classes.names), 1),
            names={
                "thread": self._threads.names,
                "lock": self._locks.names,
                "var": self._vars.names,
                "volatile": self._volatiles.names,
                "class": self._classes.names,
                "site": self._sites.names,
            },
            validate=validate,
        )

    def _max_int_id(self, _field: str) -> int:
        best = -1
        for e in self.events:
            if e.tid > best:
                best = e.tid
        return best
