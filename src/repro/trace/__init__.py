"""Execution traces: events, trace containers, builders, and a text format.

The paper's analyses are defined over *execution traces* (§2.1): totally
ordered lists of events, each a thread identifier plus an operation —
``wr(x)``, ``rd(x)``, ``acq(m)``, ``rel(m)`` — extended (§5.1) with thread
fork/join, volatile accesses, and class-initialization edges.
"""

from repro.trace.builder import TraceBuilder
from repro.trace.event import (
    ACQUIRE,
    FORK,
    JOIN,
    KIND_NAMES,
    READ,
    RELEASE,
    STATIC_ACCESS,
    STATIC_INIT,
    VOLATILE_READ,
    VOLATILE_WRITE,
    WRITE,
    Event,
    is_access,
    is_read,
    is_write,
)
from repro.trace.binfmt import (
    BinaryTraceStream,
    BinaryTraceWriter,
    dump_trace_binary,
    dumps_trace_binary,
)
from repro.trace.format import (
    TraceFormatError,
    TraceStream,
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
    stream_trace,
)
from repro.trace.live import (
    PipeTraceSource,
    SocketTraceSource,
    TraceListener,
    open_live_source,
    send_events,
    send_trace,
)
from repro.trace.stream import TraceStreamBase
from repro.trace.trace import Trace, TraceInfo, WellFormednessError

__all__ = [
    "ACQUIRE",
    "BinaryTraceStream",
    "BinaryTraceWriter",
    "Event",
    "FORK",
    "JOIN",
    "KIND_NAMES",
    "PipeTraceSource",
    "READ",
    "RELEASE",
    "STATIC_ACCESS",
    "STATIC_INIT",
    "SocketTraceSource",
    "Trace",
    "TraceBuilder",
    "TraceFormatError",
    "TraceInfo",
    "TraceListener",
    "TraceStream",
    "TraceStreamBase",
    "VOLATILE_READ",
    "VOLATILE_WRITE",
    "WRITE",
    "WellFormednessError",
    "dump_trace",
    "dump_trace_binary",
    "dumps_trace",
    "dumps_trace_binary",
    "is_access",
    "is_read",
    "is_write",
    "load_trace",
    "loads_trace",
    "open_live_source",
    "send_events",
    "send_trace",
    "stream_trace",
]
