"""Measurement machinery: wall-clock slowdowns and memory-usage factors.

The paper reports run time and memory *relative to uninstrumented
execution* (§5.2).  Our uninstrumented baseline is a bare walk over the
trace (the event stream with no analysis attached); memory is the peak
analysis-metadata footprint relative to the raw trace's storage (see
DESIGN.md §2 for why Python RSS is not meaningful here).

:class:`Measurements` memoizes (program, analysis) results so the table
builders (Tables 3–7 share the same underlying runs) measure each cell
once per process.

Beyond the per-cell path, :func:`measure_multi` times the single-pass
engine (:class:`repro.core.engine.MultiRunner`) — N analyses fed from one
iteration — and :func:`measure_stream` times the bounded-memory streaming
path over a recorded trace file; both are what ``benchmarks/bench_engine``
compares against sequential per-analysis runs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.base import RaceReport
from repro.core.engine import run_analyses, run_stream
from repro.core.registry import create
from repro.trace.trace import Trace
from repro.workloads.dacapo import dacapo_trace


class MeasureResult:
    """One (program, analysis) measurement."""

    def __init__(self, program: str, analysis: str, events: int,
                 seconds: float, baseline_seconds: float,
                 peak_bytes: int, trace_bytes: int, report: RaceReport):
        self.program = program
        self.analysis = analysis
        self.events = events
        self.seconds = seconds
        self.baseline_seconds = baseline_seconds
        self.peak_bytes = peak_bytes
        self.trace_bytes = trace_bytes
        self.report = report

    @property
    def slowdown(self) -> float:
        """Run time relative to uninstrumented execution."""
        if self.baseline_seconds <= 0:
            return 0.0
        return self.seconds / self.baseline_seconds

    @property
    def memory_factor(self) -> float:
        """Memory relative to uninstrumented execution (the modeled live
        heap of the program itself; see Trace.program_state_bytes)."""
        if self.trace_bytes <= 0:
            return 0.0
        return (self.trace_bytes + self.peak_bytes) / self.trace_bytes

    def __repr__(self) -> str:
        return "MeasureResult({} on {}: {:.1f}x time, {:.1f}x mem)".format(
            self.analysis, self.program, self.slowdown, self.memory_factor)


def uninstrumented_time(trace: Trace, repeats: int = 3) -> float:
    """Baseline: the best of ``repeats`` bare walks over the event stream."""
    events = trace.events
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        n = 0
        for e in events:
            if e.kind >= 0:  # touch the event like an uninstrumented run
                n += 1
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return max(best, 1e-9)


def measure_once(trace: Trace, analysis_name: str, program: str = "",
                 baseline: Optional[float] = None,
                 sample_every: int = 4096,
                 collect_cases: bool = False) -> MeasureResult:
    """Run one analysis over one trace, timing it against the baseline.

    ``collect_cases`` turns on per-case counting (Table 12 needs it);
    timed cells keep it off so the timing tables do not pay for it.
    """
    if baseline is None:
        baseline = uninstrumented_time(trace)
    analysis = create(analysis_name, trace, collect_cases=collect_cases)
    t0 = time.perf_counter()
    report = analysis.run(sample_every=sample_every)
    seconds = time.perf_counter() - t0
    return MeasureResult(
        program=program, analysis=analysis_name, events=len(trace),
        seconds=seconds, baseline_seconds=baseline,
        peak_bytes=report.peak_footprint_bytes,
        trace_bytes=trace.program_state_bytes(), report=report)


class MultiMeasureResult:
    """One timed single-pass run of N analyses over one event stream."""

    def __init__(self, program: str, analyses: List[str], events: int,
                 seconds: float, baseline_seconds: float,
                 reports: Dict[str, RaceReport], trace_bytes: int):
        self.program = program
        self.analyses = analyses
        self.events = events
        self.seconds = seconds
        self.baseline_seconds = baseline_seconds
        self.reports = reports
        self.trace_bytes = trace_bytes

    @property
    def slowdown(self) -> float:
        """Combined run time of the whole pass relative to uninstrumented
        execution (all N analyses together — the always-on scenario)."""
        if self.baseline_seconds <= 0:
            return 0.0
        return self.seconds / self.baseline_seconds

    def __repr__(self) -> str:
        return "MultiMeasureResult({} analyses on {}: {:.2f}s, {:.1f}x)".format(
            len(self.analyses), self.program, self.seconds, self.slowdown)


def measure_multi(trace: Trace, analysis_names: Sequence[str],
                  program: str = "", baseline: Optional[float] = None,
                  sample_every: int = 4096) -> MultiMeasureResult:
    """Time one single-pass engine run of N analyses over one trace."""
    if baseline is None:
        baseline = uninstrumented_time(trace)
    names = list(analysis_names)
    t0 = time.perf_counter()
    result = run_analyses(trace, names, sample_every=sample_every)
    seconds = time.perf_counter() - t0
    return MultiMeasureResult(
        program=program, analyses=names, events=result.events_processed,
        seconds=seconds, baseline_seconds=baseline,
        reports=result.reports, trace_bytes=trace.program_state_bytes())


def measure_stream(source, analysis_names: Sequence[str],
                   program: str = "",
                   sample_every: int = 4096,
                   window_events: int = 0,
                   workers: int = 1) -> MultiMeasureResult:
    """Time one bounded-memory streaming pass over a recorded trace file.

    ``source`` is a path or open handle in either trace format (v1 text
    or v2 binary, autodetected — binary ingests >2x faster, so the same
    capture measures meaningfully cheaper).  The baseline here is 0
    (there is no materialized trace to walk); ``seconds`` includes lazy
    parsing, which is the honest cost of the offline workflow.

    ``window_events`` > 0 switches to the session-backed incremental
    path (:meth:`repro.core.engine.MultiRunner.session`): the stream is
    drained in windows of that many events, exactly as a live ``repro
    serve`` loop drains a socket.  Reports are identical either way;
    the knob exists to measure the online path's overhead against the
    one-shot pass on the same capture.

    ``workers`` > 1 shards the analyses across worker processes
    (:class:`repro.core.parallel.ParallelRunner`); ``seconds`` then
    covers the whole sharded pass — parent parse + decode, broadcast,
    worker replay, and report merge — which is what
    ``benchmarks/bench_parallel.py`` compares against the in-process
    pass.
    """
    names = list(analysis_names)
    t0 = time.perf_counter()
    result = run_stream(source, names, sample_every=sample_every,
                        window_events=window_events, workers=workers)
    seconds = time.perf_counter() - t0
    return MultiMeasureResult(
        program=program, analyses=names, events=result.events_processed,
        seconds=seconds, baseline_seconds=0.0,
        reports=result.reports, trace_bytes=0)


class Measurements:
    """Memoized measurement matrix over the DaCapo-analog programs."""

    def __init__(self, scale: Optional[float] = None, trials: int = 1):
        self.scale = scale
        self.trials = trials
        self._results: Dict[Tuple[str, str], List[MeasureResult]] = {}
        self._baselines: Dict[str, float] = {}
        self._multi: Dict[Tuple[str, Tuple[str, ...]], MultiMeasureResult] = {}

    def trace_for(self, program: str) -> Trace:
        return dacapo_trace(program, scale=self.scale)

    def baseline(self, program: str) -> float:
        if program not in self._baselines:
            self._baselines[program] = uninstrumented_time(self.trace_for(program))
        return self._baselines[program]

    def runs(self, program: str, analysis: str,
             collect_cases: bool = False) -> List[MeasureResult]:
        """All trials for a cell, measuring on first use.

        ``collect_cases=True`` memoizes separately: case-counted runs
        (Table 12) pay extra per-access cost, so they must not pollute
        the timing cells.
        """
        key = (program, analysis, collect_cases)
        if key not in self._results:
            trace = self.trace_for(program)
            base = self.baseline(program)
            self._results[key] = [
                measure_once(trace, analysis, program, baseline=base,
                             collect_cases=collect_cases)
                for _ in range(self.trials)
            ]
        return self._results[key]

    def cell(self, program: str, analysis: str,
             collect_cases: bool = False) -> MeasureResult:
        """First-trial result for a cell (the common single-trial case)."""
        return self.runs(program, analysis, collect_cases)[0]

    def multi(self, program: str,
              analyses: Sequence[str]) -> MultiMeasureResult:
        """Memoized single-pass engine run of N analyses on a program."""
        key = (program, tuple(analyses))
        if key not in self._multi:
            self._multi[key] = measure_multi(
                self.trace_for(program), analyses, program=program,
                baseline=self.baseline(program))
        return self._multi[key]

    def slowdowns(self, program: str, analysis: str) -> List[float]:
        return [r.slowdown for r in self.runs(program, analysis)]

    def memory_factors(self, program: str, analysis: str) -> List[float]:
        return [r.memory_factor for r in self.runs(program, analysis)]
