"""A calibrated cost model of the paper's measurement platform.

Pure-Python wall-clock ratios cannot reproduce every performance effect
the paper measures on the JVM: there, the dominant per-event costs are
memory-system behaviour (shadow-metadata cache misses, allocation and GC
of vector clocks) and fine-grained metadata synchronization (§5.1), while
CPython's per-event interpreter dispatch flattens those differences.  Per
the substitution rule (DESIGN.md §2), this module *simulates the missing
substrate*: it prices each analysis's algorithmic work with coefficients
calibrated to the paper's environment, producing modeled slowdown factors
comparable to Tables 3–5.

Inputs are platform-independent structural counts of the trace:

* ``N`` events, ``A`` accesses, ``NSEA`` non-same-epoch accesses,
* ``S1``/``S2``/``S3`` NSEAs at lock depth ≥ 1/2/3 (so ``S1+S2+S3``
  is the number of per-held-lock rule (a) steps),
* acquire/release/other-synchronization counts, and the thread count
  ``T``.

The per-analysis formulas mirror exactly the work the algorithms do —
which tier pays vector-clock versus epoch costs, who maintains
``L^{r,w}_{m,x}`` and ``R_m``/``W_m``, whose rule (b) queues hold clocks
versus epochs, who builds a graph (§2.5, §4).  Two anchor coefficients
(the per-access cost of locked vector-clock metadata and of epoch
metadata) were calibrated against the paper's Unopt-HB ≈ 21× and
FT2 ≈ 7.1× geomeans; everything else follows structurally.  Measured
wall-clock factors are always reported alongside (Tables 3–6 print both).
"""

from __future__ import annotations

from typing import Dict

from repro.trace.event import ACQUIRE, READ, RELEASE, WRITE
from repro.trace.trace import Trace
from repro.workloads.stats import TraceCharacteristics, characterize

#: Modeled cost coefficients, in nanoseconds on the paper's platform
#: (14-core Xeon, HotSpot 1.8).  Calibrated by constrained fit against
#: paper Table 5 (mean multiplicative cell error ≈ 1.18×) with
#: per-program app work anchored on the Unopt-HB column; see
#: EXPERIMENTS.md for the procedure.
COEFF: Dict[str, float] = {
    "app": 5.0,               # default uninstrumented work per event
    "instr": 2.0,             # instrumentation epsilon per event
    "epoch_check": 10.2,      # lock-free same-epoch check per access
    # last-access metadata, per NSEA:
    "vc_access": 124.7,       # locked VC race checks + updates (base)
    "vc_access_per_t": 10.0,  # ... plus per-thread word costs
    "epoch_access": 20.1,     # epoch cases incl. metadata lock
    # unopt tier pays VC costs at *every* access (no epoch fast path for
    # the metadata representation: CV element reads + locking):
    "vc_all_access": 19.2,
    # rule (a) for Unopt/FTO: per held lock per NSEA, L^{r,w}_{m,x} lookup
    # + join + R_m/W_m insert + allocation/GC amortization:
    "rule_a_lookup": 68.3,
    "rule_a_per_t": 4.0,
    # release-time publication of L clocks (Unopt/FTO): per release,
    # proportional to variables accessed in the critical section:
    "publish_per_var": 360.8,
    # SmartTrack CCS: MultiCheck scan per CS-list entry + case logic:
    "st_scan": 8.0,
    "st_access": 34.3,        # CS-list snapshot/extra-metadata upkeep per NSEA
    # rule (b) queues, per acquire/release:
    "rule_b_vc_per_t": 7.6,    # VC entries (Unopt/FTO DC)
    "rule_b_epoch_per_t": 1.4,  # epoch entries (SmartTrack; WCP per-thread)
    # WCP's HB composition: extra clock per thread maintained at sync ops:
    "wcp_sync_per_t": 2.0,
    "wcp_access": 38.8,
    # lock acquire/release base cost (clock joins/copies):
    "sync_per_t": 1.5,
    # constraint graph (w/ G): per event node + per rule (a) step edge:
    "graph_node": 16.0,
    "graph_edge": 90.0,
}

#: Per-program uninstrumented work per event (ns), calibrated so the
#: modeled Unopt-HB column reproduces paper Table 5 (compute-bound tight
#: loops like sunflow do little work per event; request-bound tomcat does
#: a lot).  Programs not listed use ``COEFF["app"]``.
APP_NS: Dict[str, float] = {
    "avrora": 2.83, "batik": 6.87, "h2": 2.21, "jython": 2.67,
    "luindex": 1.95, "lusearch": 1.84, "pmd": 3.57, "sunflow": 0.44,
    "tomcat": 18.67, "xalan": 4.97,
}


class TraceProfile:
    """Structural counts of one trace, shared by all analyses' models."""

    def __init__(self, trace: Trace):
        ch: TraceCharacteristics = characterize(trace)
        self.threads = max(trace.num_threads, 2)
        self.events = len(trace)
        self.accesses = 0
        self.acquires = 0
        self.releases = 0
        self.other_sync = 0
        for e in trace.events:
            k = e.kind
            if k == READ or k == WRITE:
                self.accesses += 1
            elif k == ACQUIRE:
                self.acquires += 1
            elif k == RELEASE:
                self.releases += 1
            else:
                self.other_sync += 1
        self.nseas = ch.nseas
        self.s1 = ch.held_ge[1]
        self.s2 = ch.held_ge[2]
        self.s3 = ch.held_ge[3]
        self.rule_a_steps = self.s1 + self.s2 + self.s3
        # variables touched per critical section, for publication costs
        if self.releases:
            self.vars_per_cs = min(self.s1 / self.releases, 6.0)
        else:
            self.vars_per_cs = 0.0


_PROFILES: Dict[int, TraceProfile] = {}


def profile(trace: Trace) -> TraceProfile:
    """Memoized :class:`TraceProfile` for a trace."""
    key = id(trace)
    if key not in _PROFILES:
        _PROFILES[key] = TraceProfile(trace)
    return _PROFILES[key]


def modeled_nanos(trace: Trace, analysis: str) -> float:
    """Modeled analysis run time (ns) for one trace under the cost model."""
    p = profile(trace)
    c = COEFF
    T = p.threads
    syncs = p.acquires + p.releases + p.other_sync

    total = c["instr"] * p.events + c["epoch_check"] * p.accesses
    total += c["sync_per_t"] * T * syncs

    tier = ("unopt" if analysis.startswith("unopt") else
            "st" if analysis.startswith("st") else
            "epoch" if analysis == "ft2" else "fto")
    relation = ("hb" if analysis.endswith("hb") or analysis == "ft2" else
                "wcp" if "wcp" in analysis else
                "dc" if "dc" in analysis and "wdc" not in analysis else
                "wdc")
    graph = analysis.endswith("-g")

    # Last-access metadata and race checks.
    if tier == "unopt":
        total += c["vc_all_access"] * p.accesses
        total += (c["vc_access"] + c["vc_access_per_t"] * T) * p.nseas
    else:
        total += c["epoch_access"] * p.nseas

    if relation != "hb":
        # Rule (a): conflicting critical sections.
        if tier == "st":
            total += c["st_scan"] * p.rule_a_steps
            total += c["st_access"] * p.nseas
            total += c["sync_per_t"] * 2 * p.releases  # deferred CS update
        else:
            total += (c["rule_a_lookup"] + c["rule_a_per_t"] * T) * p.rule_a_steps
            total += c["publish_per_var"] * p.vars_per_cs * p.releases
        # Rule (b): release-release ordering queues.
        if relation == "dc":
            per_t = (c["rule_b_epoch_per_t"] if tier == "st"
                     else c["rule_b_vc_per_t"])
            total += per_t * T * (p.acquires + p.releases)
        elif relation == "wcp":
            # WCP's queues are per-(lock, thread) epochs (footnote 6)...
            total += c["rule_b_epoch_per_t"] * T * (p.acquires + p.releases)
            # ...but WCP also maintains the HB relation (§2.4).
            total += c["wcp_sync_per_t"] * T * syncs
            total += c["wcp_access"] * p.nseas
    if graph:
        total += c["graph_node"] * p.events
        total += c["graph_edge"] * p.rule_a_steps

    return total


def modeled_slowdown(trace: Trace, analysis: str,
                     program: str = "") -> float:
    """Modeled run-time factor relative to uninstrumented execution.

    ``program`` selects the calibrated per-program app work
    (:data:`APP_NS`); unknown programs use the default.
    """
    p = profile(trace)
    app = APP_NS.get(program, COEFF["app"])
    base = app * p.events
    return (base + modeled_nanos(trace, analysis)) / base
