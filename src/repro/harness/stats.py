"""Statistics for the harness: mean, geometric mean, 95% confidence
intervals (paper §5.2: every reported number is a mean of 10 trials;
Appendix A adds 95% confidence intervals)."""

from __future__ import annotations

import math
from typing import Sequence, Tuple

# Two-sided 95% t-distribution critical values by degrees of freedom.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
        30: 2.042}


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (empty input -> 0)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (empty input -> 0)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _t95(df: int) -> float:
    if df <= 0:
        return 0.0
    if df in _T95:
        return _T95[df]
    keys = sorted(_T95)
    for k in keys:
        if df < k:
            return _T95[k]
    return 1.960  # large-sample normal approximation


def confidence_interval(values: Sequence[float]) -> Tuple[float, float]:
    """(mean, 95% half-width) of a sample, Student-t based."""
    values = list(values)
    n = len(values)
    m = mean(values)
    if n < 2:
        return m, 0.0
    var = sum((v - m) ** 2 for v in values) / (n - 1)
    half = _t95(n - 1) * math.sqrt(var / n)
    return m, half


def fmt_factor(x: float) -> str:
    """Format a slowdown/usage factor the way the paper prints them
    (two significant digits, e.g. ``4.2x``, ``26x``, ``110x``)."""
    if x <= 0:
        return "-"
    if x >= 99.5:
        return "{:.0f}x".format(round(x / 10.0) * 10)
    if x >= 9.95:
        return "{:.0f}x".format(x)
    return "{:.1f}x".format(x)
