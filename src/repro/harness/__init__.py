"""Experiment harness: timing/memory measurement, statistics, and builders
that regenerate every table of the paper's evaluation (Tables 2–7 and the
appendix Tables 8–12).  See DESIGN.md §7 for the experiment index.
"""

from repro.harness.measure import MeasureResult, Measurements, uninstrumented_time
from repro.harness.stats import confidence_interval, geomean, mean

__all__ = [
    "MeasureResult",
    "Measurements",
    "confidence_interval",
    "geomean",
    "mean",
    "uninstrumented_time",
]
