"""Builders that regenerate every table of the paper's evaluation.

Each ``tableN`` function returns ``(text, data)``: a formatted table in
the paper's layout plus the underlying numbers.  All builders share one
:class:`~repro.harness.measure.Measurements`, so a cell measured for
Table 3 is reused by Tables 4–6.

Paper reference values are embedded where the comparison is meaningful
(Table 2 characteristics, Table 4 geomeans), so "paper vs measured" can be
read off directly; EXPERIMENTS.md records the same comparison per run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.registry import BY_RELATION
from repro.harness.measure import Measurements
from repro.harness.model import modeled_slowdown
from repro.harness.stats import confidence_interval, fmt_factor, geomean, mean
from repro.workloads.dacapo import PAPER_TABLE2, program_names
from repro.workloads.stats import characterize

RELATIONS = ("hb", "wcp", "dc", "wdc")
TIERS = ("unopt", "fto", "st")

#: Paper Table 4: geometric-mean slowdowns and memory factors.
PAPER_TABLE4 = {
    "time": {
        ("hb", "unopt"): 21, ("hb", "fto"): 7.0,
        ("wcp", "unopt"): 34, ("wcp", "fto"): 14, ("wcp", "st"): 9.4,
        ("dc", "unopt"): 29, ("dc", "fto"): 15, ("dc", "st"): 9.6,
        ("wdc", "unopt"): 27, ("wdc", "fto"): 13, ("wdc", "st"): 8.3,
    },
    "memory": {
        ("hb", "unopt"): 22, ("hb", "fto"): 4.9,
        ("wcp", "unopt"): 41, ("wcp", "fto"): 13, ("wcp", "st"): 11,
        ("dc", "unopt"): 29, ("dc", "fto"): 13, ("dc", "st"): 11,
        ("wdc", "unopt"): 28, ("wdc", "fto"): 11, ("wdc", "st"): 9.5,
    },
}


def _tier_name(relation: str, tier: str) -> Optional[str]:
    if relation == "hb":
        # HB has no SmartTrack variant, and FT2 is its own column
        # elsewhere (Table 3); the FTO representative is FTO-HB (§5.4).
        return {"unopt": "unopt-hb", "fto": "fto-hb"}.get(tier)
    return dict(zip(TIERS, BY_RELATION[relation])).get(tier)


# ----------------------------------------------------------------------
# Table 2: run-time characteristics
# ----------------------------------------------------------------------

def table2(meas: Measurements) -> Tuple[str, Dict]:
    """Run-time characteristics of the evaluated programs (paper Table 2)."""
    rows = []
    for prog in program_names():
        ch = characterize(meas.trace_for(prog), prog)
        paper = PAPER_TABLE2[prog]
        rows.append({
            "program": prog,
            "threads": ch.threads_total,
            "events": ch.events,
            "nseas": ch.nseas,
            "ge1": ch.pct_ge(1), "ge2": ch.pct_ge(2), "ge3": ch.pct_ge(3),
            "paper_ge1": paper["ge1"], "paper_ge2": paper["ge2"],
            "paper_ge3": paper["ge3"],
        })
    lines = ["Table 2: run-time characteristics (measured | paper %)",
             "{:<10} {:>5} {:>9} {:>9} {:>14} {:>14} {:>14}".format(
                 "program", "#Thr", "events", "NSEAs",
                 ">=1 lock", ">=2 locks", ">=3 locks")]
    for r in rows:
        lines.append(
            "{:<10} {:>5} {:>9} {:>9} {:>6.1f}|{:<6.1f} {:>6.1f}|{:<6.1f} {:>6.2f}|{:<6.2f}".format(
                r["program"], r["threads"], r["events"], r["nseas"],
                r["ge1"], r["paper_ge1"], r["ge2"], r["paper_ge2"],
                r["ge3"], r["paper_ge3"]))
    return "\n".join(lines), {"rows": rows}


# ----------------------------------------------------------------------
# Table 3: baselines (FT2/FTO vs unoptimized DC/WDC with/without graph)
# ----------------------------------------------------------------------

TABLE3_ANALYSES = ["ft2", "fto-hb", "unopt-dc-g", "unopt-dc",
                   "unopt-wdc-g", "unopt-wdc"]


def table3(meas: Measurements) -> Tuple[str, Dict]:
    """Baseline comparison (paper Table 3): run time and memory factors.

    Run time appears twice: modeled factors (the paper-comparable numbers,
    see :mod:`repro.harness.model`) and measured Python wall-clock factors.
    """
    data: Dict[str, Dict[str, Dict[str, float]]] = {
        "time": {}, "memory": {}, "wallclock": {}}
    for prog in program_names():
        data["time"][prog] = {}
        data["memory"][prog] = {}
        data["wallclock"][prog] = {}
        trace = meas.trace_for(prog)
        for name in TABLE3_ANALYSES:
            data["time"][prog][name] = modeled_slowdown(trace, name, prog)
            data["wallclock"][prog][name] = mean(meas.slowdowns(prog, name))
            data["memory"][prog][name] = mean(meas.memory_factors(prog, name))
    lines = []
    for metric, label in (("time", "Run time, modeled"),
                          ("wallclock", "Run time, measured wall-clock"),
                          ("memory", "Memory usage")):
        lines.append("Table 3 ({}): factors vs uninstrumented".format(label))
        lines.append("{:<10} {:>8} {:>8} {:>11} {:>11} {:>12} {:>12}".format(
            "program", "FT2", "FTO", "U-DC w/G", "U-DC", "U-WDC w/G", "U-WDC"))
        for prog in program_names():
            row = data[metric][prog]
            lines.append("{:<10} {:>8} {:>8} {:>11} {:>11} {:>12} {:>12}".format(
                prog, *[fmt_factor(row[n]) for n in TABLE3_ANALYSES]))
        lines.append("{:<10} {:>8} {:>8} {:>11} {:>11} {:>12} {:>12}".format(
            "geomean",
            *[fmt_factor(geomean([data[metric][p][n] for p in program_names()]))
              for n in TABLE3_ANALYSES]))
        lines.append("")
    return "\n".join(lines), data


# ----------------------------------------------------------------------
# Table 4: geometric means of the full matrix
# ----------------------------------------------------------------------

def table4(meas: Measurements) -> Tuple[str, Dict]:
    """Geomean run time and memory of the 11-analysis matrix (Table 4)."""
    data: Dict[str, Dict[Tuple[str, str], float]] = {
        "time": {}, "memory": {}, "wallclock": {}}
    for relation in RELATIONS:
        for tier in TIERS:
            name = _tier_name(relation, tier)
            if name is None:
                continue
            modeled, walls, mems = [], [], []
            for prog in program_names():
                modeled.append(
                    modeled_slowdown(meas.trace_for(prog), name, prog))
                walls.append(mean(meas.slowdowns(prog, name)))
                mems.append(mean(meas.memory_factors(prog, name)))
            data["time"][(relation, tier)] = geomean(modeled)
            data["wallclock"][(relation, tier)] = geomean(walls)
            data["memory"][(relation, tier)] = geomean(mems)
    lines = []
    for metric, label in (("time", "Run time, modeled"),
                          ("wallclock", "Run time, measured wall-clock"),
                          ("memory", "Memory usage")):
        lines.append("Table 4 ({}): geomean factors, measured (paper)".format(label))
        lines.append("{:<6} {:>16} {:>16} {:>16}".format(
            "", "Unopt-", "FTO-", "ST-"))
        for relation in RELATIONS:
            cells = []
            for tier in TIERS:
                value = data[metric].get((relation, tier))
                if value is None:
                    cells.append("{:>16}".format("N/A"))
                else:
                    paper = PAPER_TABLE4.get(metric, {}).get((relation, tier))
                    if paper is None:
                        cells.append("{:>16}".format(fmt_factor(value)))
                    else:
                        cells.append("{:>16}".format(
                            "{} ({})".format(fmt_factor(value), fmt_factor(paper))))
            lines.append("{:<6} {} {} {}".format(relation.upper(), *cells))
        lines.append("")
    return "\n".join(lines), data


# ----------------------------------------------------------------------
# Tables 5 and 6: per-program matrices
# ----------------------------------------------------------------------

def _per_program_matrix(meas: Measurements, metric: str,
                        title: str) -> Tuple[str, Dict]:
    data: Dict[str, Dict[Tuple[str, str], float]] = {}
    lines = [title]
    if metric == "time":
        lines.append("(each cell: modeled factor / measured wall-clock factor)")
    for prog in program_names():
        data[prog] = {}
        lines.append("-- {}".format(prog))
        lines.append("{:<6} {:>16} {:>16} {:>16}".format(
            "", "Unopt-", "FTO-", "ST-"))
        for relation in RELATIONS:
            cells = []
            for tier in TIERS:
                name = _tier_name(relation, tier)
                if name is None:
                    cells.append("{:>16}".format("N/A"))
                    continue
                if metric == "time":
                    value = modeled_slowdown(meas.trace_for(prog), name, prog)
                    wall = mean(meas.slowdowns(prog, name))
                    data[prog][(relation, tier)] = value
                    cells.append("{:>16}".format(
                        "{}/{}".format(fmt_factor(value), fmt_factor(wall))))
                else:
                    value = mean(meas.memory_factors(prog, name))
                    data[prog][(relation, tier)] = value
                    cells.append("{:>16}".format(fmt_factor(value)))
            lines.append("{:<6} {} {} {}".format(relation.upper(), *cells))
    return "\n".join(lines), data


def table5(meas: Measurements) -> Tuple[str, Dict]:
    """Per-program run-time factors (paper Table 5)."""
    return _per_program_matrix(
        meas, "time", "Table 5: run time vs uninstrumented, per program")


def table6(meas: Measurements) -> Tuple[str, Dict]:
    """Per-program memory factors (paper Table 6)."""
    return _per_program_matrix(
        meas, "memory", "Table 6: memory usage vs uninstrumented, per program")


# ----------------------------------------------------------------------
# Table 7: races reported
# ----------------------------------------------------------------------

def table7(meas: Measurements) -> Tuple[str, Dict]:
    """Static and dynamic race counts per program and analysis (Table 7)."""
    data: Dict[str, Dict[Tuple[str, str], Tuple[int, int]]] = {}
    lines = ["Table 7: races reported — static (dynamic)"]
    for prog in program_names():
        data[prog] = {}
        rows = []
        empty = True
        for relation in RELATIONS:
            cells = []
            for tier in TIERS:
                name = _tier_name(relation, tier)
                if name is None:
                    cells.append("{:>16}".format("N/A"))
                    continue
                report = meas.cell(prog, name).report
                st, dy = report.static_count, report.dynamic_count
                data[prog][(relation, tier)] = (st, dy)
                if dy:
                    empty = False
                cells.append("{:>16}".format("{} ({})".format(st, dy)))
            rows.append("{:<6} {} {} {}".format(relation.upper(), *cells))
        if empty:
            lines.append("-- {} (no races reported by any analysis)".format(prog))
            continue
        lines.append("-- {}".format(prog))
        lines.append("{:<6} {:>16} {:>16} {:>16}".format("", "Unopt-", "FTO-", "ST-"))
        lines.extend(rows)
    return "\n".join(lines), data


# ----------------------------------------------------------------------
# Table 12: SmartTrack-WDC case frequencies
# ----------------------------------------------------------------------

_READ_CASES = [("read_owned", "OwnExcl"), ("read_shared_owned", "OwnShared"),
               ("read_exclusive", "Excl"), ("read_share", "Share"),
               ("read_shared", "Shared")]
_WRITE_CASES = [("write_owned", "OwnExcl"), ("write_exclusive", "Excl"),
                ("write_shared", "Shared")]


def table12(meas: Measurements) -> Tuple[str, Dict]:
    """Frequencies of SmartTrack-WDC's non-same-epoch cases (Table 12)."""
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    lines = ["Table 12: SmartTrack-WDC case frequencies (% of non-same-epoch)"]
    lines.append("{:<10} {:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}".format(
        "program", "kind", "total", "OwnExcl", "OwnShared", "Excl",
        "Share", "Shared"))
    for prog in program_names():
        counts = meas.cell(prog, "st-wdc", collect_cases=True).report.case_counts
        data[prog] = {}
        for kind, cases in (("read", _READ_CASES), ("write", _WRITE_CASES)):
            total = sum(counts.get(c, 0) for c, _ in cases)
            row = {"total": total}
            cells = []
            for label in ("OwnExcl", "OwnShared", "Excl", "Share", "Shared"):
                case = next((c for c, lab in cases if lab == label), None)
                if case is None:
                    cells.append("{:>9}".format("N/A"))
                    continue
                pct = 100.0 * counts.get(case, 0) / total if total else 0.0
                row[label] = pct
                cells.append("{:>9.2f}".format(pct))
            data[prog][kind] = row
            lines.append("{:<10} {:<6} {:>9} {} {} {} {} {}".format(
                prog, kind, total, *cells))
    return "\n".join(lines), data


# ----------------------------------------------------------------------
# Confidence-interval variants (appendix Tables 8–11)
# ----------------------------------------------------------------------

def table_ci(meas: Measurements, metric: str = "time") -> Tuple[str, Dict]:
    """Per-program factors with 95% confidence intervals (Tables 8–10).

    Requires ``meas`` constructed with ``trials > 1``.
    """
    data: Dict[str, Dict[str, Tuple[float, float]]] = {}
    lines = ["Appendix: {} factors with 95% CIs ({} trials)".format(
        metric, meas.trials)]
    analyses = [n for rel in RELATIONS for n in
                [_tier_name(rel, t) for t in TIERS] if n]
    for prog in program_names():
        data[prog] = {}
        cells = []
        for name in analyses:
            values = (meas.slowdowns(prog, name) if metric == "time"
                      else meas.memory_factors(prog, name))
            m, half = confidence_interval(values)
            data[prog][name] = (m, half)
            cells.append("{}±{}".format(fmt_factor(m), fmt_factor(half)
                                        if half else "0"))
        lines.append("{:<10} {}".format(prog, "  ".join(cells)))
    return "\n".join(lines), data


# ----------------------------------------------------------------------
# Headline summary (§5.4/§5.5 claims)
# ----------------------------------------------------------------------

def headline_summary(table4_data: Dict) -> Tuple[str, Dict]:
    """The paper's headline speedup claims, recomputed from Table 4 data.

    §5.5: FTO gives a 1.9–3.0x speedup over Unopt for predictive
    analyses; SmartTrack adds 1.5–1.6x over FTO; overall 3.0–3.6x,
    approaching FTO-HB.
    """
    time = table4_data["time"]
    out = {}
    for relation in ("wcp", "dc", "wdc"):
        unopt = time[(relation, "unopt")]
        fto = time[(relation, "fto")]
        st = time[(relation, "st")]
        out[relation] = {
            "fto_speedup": unopt / fto if fto else 0.0,
            "st_over_fto": fto / st if st else 0.0,
            "st_speedup": unopt / st if st else 0.0,
            "st_vs_hb": st / time[("hb", "fto")] if time[("hb", "fto")] else 0.0,
        }
    lines = ["Headline claims (paper §5.5, measured):"]
    for relation, vals in out.items():
        lines.append(
            "  {}: FTO speedup {:.1f}x (paper 1.9-3.0x), ST/FTO {:.2f}x "
            "(paper 1.5-1.6x), ST total {:.1f}x (paper 3.0-3.6x), "
            "ST vs FTO-HB {:.2f}x".format(
                relation.upper(), vals["fto_speedup"], vals["st_over_fto"],
                vals["st_speedup"], vals["st_vs_hb"]))
    return "\n".join(lines), out
