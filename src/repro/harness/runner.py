"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.harness.runner --table 4           # one table
    python -m repro.harness.runner --all --scale 0.5   # everything, smaller
    python -m repro.harness.runner --table 7 --trials 3 --out bench_results/

Tables: 2 (characteristics), 3 (baselines), 4 (geomeans + headline
claims), 5 (per-program time), 6 (per-program memory), 7 (races),
8 (time CIs), 9 (memory CIs), 12 (SmartTrack-WDC case frequencies).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro.harness.measure import Measurements
from repro.harness import tables as T


def build_table(meas: Measurements, table: int) -> str:
    if table == 2:
        return T.table2(meas)[0]
    if table == 3:
        return T.table3(meas)[0]
    if table == 4:
        text, data = T.table4(meas)
        return text + "\n" + T.headline_summary(data)[0]
    if table == 5:
        return T.table5(meas)[0]
    if table == 6:
        return T.table6(meas)[0]
    if table == 7:
        return T.table7(meas)[0]
    if table == 8:
        return T.table_ci(meas, "time")[0]
    if table == 9:
        return T.table_ci(meas, "memory")[0]
    if table == 12:
        return T.table12(meas)[0]
    raise SystemExit("unknown table {} (choose 2-9 or 12)".format(table))


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the SmartTrack paper's evaluation tables")
    parser.add_argument("--table", type=int, action="append",
                        help="table number (repeatable)")
    parser.add_argument("--all", action="store_true",
                        help="regenerate every table")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default REPRO_SCALE or 1.0)")
    parser.add_argument("--trials", type=int, default=1,
                        help="trials per cell (use >1 for CI tables)")
    parser.add_argument("--out", type=str, default=None,
                        help="directory to also write table files into")
    args = parser.parse_args(argv)

    tables = args.table or []
    if args.all:
        tables = [2, 3, 4, 5, 6, 7, 12]
    if not tables:
        parser.error("pass --table N (repeatable) or --all")

    meas = Measurements(scale=args.scale, trials=args.trials)
    for number in tables:
        text = build_table(meas, number)
        print(text)
        print()
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "table{}.txt".format(number))
            with open(path, "w") as fp:
                fp.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
