"""The ten DaCapo-analog workload specs (paper §5.2, Table 2).

Each spec mirrors the measured run-time characteristics of its DaCapo
namesake: thread count (Table 2's #Thr), relative event volume, the
fraction of non-same-epoch accesses executing under ≥1/≥2/≥3 locks, and
the race profile of Table 7 (batik and lusearch report no races; xalan
reports many predictive-only races; etc.).  Event budgets are scaled-down
proportionally (Python trace analysis vs JVM instrumentation) and can be
multiplied via ``REPRO_SCALE`` or :func:`dacapo_trace`'s ``scale``.

``PAPER_TABLE2`` records the paper's measured values so the Table 2 bench
can print paper-vs-generated columns side by side.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.trace.trace import Trace
from repro.workloads.generator import generate_trace
from repro.workloads.spec import WorkloadSpec

#: Paper Table 2 (threads; events in millions; NSEAs in millions; % of
#: NSEAs holding >=1, >=2, >=3 locks).
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "avrora": {"threads": 7, "events_m": 1400, "nseas_m": 140, "ge1": 5.89, "ge2": 0.05, "ge3": 0.0},
    "batik": {"threads": 7, "events_m": 160, "nseas_m": 5.8, "ge1": 46.1, "ge2": 0.05, "ge3": 0.05},
    "h2": {"threads": 10, "events_m": 3800, "nseas_m": 300, "ge1": 82.8, "ge2": 80.1, "ge3": 0.17},
    "jython": {"threads": 2, "events_m": 730, "nseas_m": 170, "ge1": 3.82, "ge2": 0.23, "ge3": 0.05},
    "luindex": {"threads": 3, "events_m": 400, "nseas_m": 41, "ge1": 25.8, "ge2": 25.4, "ge3": 25.3},
    "lusearch": {"threads": 10, "events_m": 1400, "nseas_m": 140, "ge1": 3.79, "ge2": 0.39, "ge3": 0.05},
    "pmd": {"threads": 9, "events_m": 200, "nseas_m": 7.9, "ge1": 1.13, "ge2": 0.0, "ge3": 0.0},
    "sunflow": {"threads": 17, "events_m": 9700, "nseas_m": 3.5, "ge1": 0.78, "ge2": 0.05, "ge3": 0.0},
    "tomcat": {"threads": 37, "events_m": 49, "nseas_m": 11, "ge1": 14.0, "ge2": 8.45, "ge3": 3.95},
    "xalan": {"threads": 9, "events_m": 630, "nseas_m": 240, "ge1": 99.9, "ge2": 99.7, "ge3": 1.27},
}

#: Paper Table 7 statically distinct race counts (FTO column), used to
#: calibrate planted race patterns.
PAPER_STATIC_RACES: Dict[str, Dict[str, int]] = {
    "avrora": {"hb": 6, "predictive": 0},
    "batik": {"hb": 0, "predictive": 0},
    "h2": {"hb": 13, "predictive": 0},
    "jython": {"hb": 24, "predictive": 4},
    "luindex": {"hb": 1, "predictive": 0},
    "lusearch": {"hb": 0, "predictive": 0},
    "pmd": {"hb": 18, "predictive": 0},
    "sunflow": {"hb": 6, "predictive": 13},
    "tomcat": {"hb": 30, "predictive": 2},
    "xalan": {"hb": 8, "predictive": 43},
}


def _spec(name: str, threads: int, events: int, p_cs: float, nesting,
          burst: float, locks: int = 8, predictive: int = 0, hb: int = 0,
          hb1: int = 0, dyn: int = 1, seed: int = 0) -> WorkloadSpec:
    return WorkloadSpec(
        name=name, threads=threads, events=events, locks=locks,
        p_cs=p_cs, nesting=nesting, burst=burst,
        predictive_races=predictive, hb_races=hb, hb_single_races=hb1,
        dynamic_multiplier=dyn, seed=seed)


#: The evaluated programs (paper §5.2), tuned to Table 2 / Table 7 shape.
#: Statically distinct races per relation work out to roughly the paper's
#: FTO-column counts: an ``hb`` pattern races at 2 program locations, an
#: ``hb1`` pattern at 1, and a ``predictive`` pattern at 1 (found by
#: WCP/DC/WDC but not HB).  tomcat's ~600 sites are scaled to ~100 to keep
#: its (smallest) trace from being all race patterns.
DACAPO_SPECS: Dict[str, WorkloadSpec] = {
    # avrora: many same-epoch accesses, few in critical sections, 6 races.
    "avrora": _spec("avrora", 6, 22000, p_cs=0.035, nesting=(1.0, 0.0, 0.0),
                    burst=9.0, hb=3, dyn=8, seed=101),
    # batik: ~half of NSEAs under one lock, no races.
    "batik": _spec("batik", 6, 8000, p_cs=0.30, nesting=(1.0, 0.0, 0.0),
                   burst=14.0, seed=102),
    # h2: dominated by depth-2 critical sections, 13 racy sites.
    "h2": _spec("h2", 9, 37000, p_cs=0.62, nesting=(0.04, 0.95, 0.01),
                burst=5.0, hb=6, hb1=1, dyn=16, seed=103),
    # jython: 2 threads, mostly same-epoch, HB 24 / DC 27 racy sites.
    "jython": _spec("jython", 2, 16000, p_cs=0.025, nesting=(0.95, 0.05, 0.0),
                    burst=3.5, hb=11, hb1=2, predictive=3, dyn=2, seed=104),
    # luindex: deep (triple) nesting at a quarter of NSEAs, one race.
    "luindex": _spec("luindex", 2, 12000, p_cs=0.18, nesting=(0.01, 0.01, 0.98),
                     burst=6.0, hb1=1, seed=105),
    # lusearch: mostly thread-local, no races.
    "lusearch": _spec("lusearch", 9, 22000, p_cs=0.025, nesting=(0.9, 0.1, 0.0),
                      burst=7.0, seed=106),
    # pmd: almost everything thread-local, 18 racy sites.
    "pmd": _spec("pmd", 8, 8500, p_cs=0.008, nesting=(1.0, 0.0, 0.0),
                 burst=11.0, hb=8, hb1=2, dyn=2, seed=107),
    # sunflow: many threads, huge same-epoch rate, predictive-heavy races.
    "sunflow": _spec("sunflow", 16, 59000, p_cs=0.005, nesting=(1.0, 0.0, 0.0),
                     burst=28.0, hb1=6, predictive=13, dyn=1, seed=108),
    # tomcat: most threads, mixed nesting, by far the most racy sites.
    "tomcat": _spec("tomcat", 36, 10000, p_cs=0.10, nesting=(0.45, 0.35, 0.2),
                    burst=2.8, locks=12, hb=40, hb1=17, predictive=6, dyn=4,
                    seed=109),
    # xalan: nearly every NSEA under two locks; most predictive-only races.
    "xalan": _spec("xalan", 8, 15000, p_cs=0.90, nesting=(0.003, 0.99, 0.007),
                   burst=2.5, hb=4, predictive=43, dyn=12, seed=110),
}


def scale_factor(default: float = 1.0) -> float:
    """The global workload scale from ``REPRO_SCALE`` (default 1.0)."""
    raw = os.environ.get("REPRO_SCALE")
    if not raw:
        return default
    return float(raw)


_CACHE: Dict[str, Trace] = {}


def dacapo_trace(name: str, scale: Optional[float] = None,
                 cache: bool = True) -> Trace:
    """Generate (and memoize) the trace for one DaCapo-analog program."""
    if scale is None:
        scale = scale_factor()
    key = "{}@{}".format(name, scale)
    if cache and key in _CACHE:
        return _CACHE[key]
    spec = DACAPO_SPECS[name]
    if scale != 1.0:
        spec = spec.scaled(scale)
    trace = generate_trace(spec)
    if cache:
        _CACHE[key] = trace
    return trace


def program_names() -> List[str]:
    """The evaluated program names, in the paper's order."""
    return list(DACAPO_SPECS)
