"""Run-time characteristics of a trace (paper Table 2).

Computes total events, non-same-epoch accesses (NSEAs), and the fraction
of NSEAs executing while holding at least 1/2/3 locks — the quantities the
paper uses to explain which programs benefit most from SmartTrack's CCS
optimizations (§5.3).

"Same-epoch" reproduces FTO's fast-path semantics: a thread's repeated
access to a variable within one epoch (no interposed synchronization by
that thread, and no interposed conflicting state change) is skipped by the
analyses, so only NSEAs pay for race checks and rule (a).  The tracker
below mirrors the epoch state machine of Algorithm 2's same-epoch cases.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.clocks.vector_clock import VectorClock
from repro.trace.event import (
    ACQUIRE,
    FORK,
    READ,
    RELEASE,
    STATIC_INIT,
    VOLATILE_READ,
    VOLATILE_WRITE,
    WRITE,
)
from repro.trace.trace import Trace


class TraceCharacteristics:
    """Table 2 row for one trace."""

    def __init__(self, name: str, threads_total: int, threads_peak: int,
                 events: int, nseas: int, held_ge: Dict[int, int]):
        self.name = name
        self.threads_total = threads_total
        self.threads_peak = threads_peak
        self.events = events
        self.nseas = nseas
        self.held_ge = held_ge  # depth -> NSEAs holding >= depth locks

    def pct_ge(self, depth: int) -> float:
        """% of NSEAs holding at least ``depth`` locks."""
        if self.nseas == 0:
            return 0.0
        return 100.0 * self.held_ge.get(depth, 0) / self.nseas


def characterize(trace: Trace, name: str = "") -> TraceCharacteristics:
    """Compute the Table 2 characteristics of a trace."""
    width = trace.num_threads
    clock = [1] * width  # per-thread epoch counter (bumped like FTO's)
    read_meta: Dict[int, Union[tuple, list, None]] = {}
    write_meta: Dict[int, Optional[tuple]] = {}
    depth = [0] * width
    nseas = 0
    held_ge = {1: 0, 2: 0, 3: 0}
    threads_seen = set()
    live = set()
    peak = 0

    for e in trace.events:
        t = e.tid
        if t not in threads_seen:
            threads_seen.add(t)
            live.add(t)
            peak = max(peak, len(live))
        k = e.kind
        if k == READ or k == WRITE:
            epoch = (clock[t], t)
            r = read_meta.get(e.target)
            if k == READ:
                if r == epoch:
                    continue
                if type(r) is list and t < len(r) and r[t] == clock[t]:
                    continue
            else:
                if write_meta.get(e.target) == epoch:
                    continue
            nseas += 1
            d = depth[t]
            for level in (1, 2, 3):
                if d >= level:
                    held_ge[level] += 1
            if k == WRITE:
                write_meta[e.target] = epoch
                read_meta[e.target] = epoch
            else:
                if type(r) is list:
                    r[t] = clock[t]
                elif r is None or r[1] == t:
                    read_meta[e.target] = epoch
                else:
                    vc = [0] * width
                    vc[r[1]] = r[0]
                    vc[t] = clock[t]
                    read_meta[e.target] = vc
        elif k == ACQUIRE:
            depth[t] += 1
            clock[t] += 1
        elif k == RELEASE:
            depth[t] -= 1
            clock[t] += 1
        elif k in (VOLATILE_READ, VOLATILE_WRITE, FORK, STATIC_INIT):
            clock[t] += 1

    return TraceCharacteristics(
        name=name,
        threads_total=len(threads_seen),
        threads_peak=peak,
        events=len(trace),
        nseas=nseas,
        held_ge=held_ge,
    )
