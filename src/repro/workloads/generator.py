"""Seeded synthetic trace generation from a :class:`WorkloadSpec`.

The generator plays the role of RoadRunner + DaCapo in the paper's
evaluation (DESIGN.md §2): it produces large, well-formed multithreaded
execution traces whose *shape* — lock-nesting depth at accesses, same-epoch
hit rates, sharing structure, planted race patterns — is controlled by the
spec, so the relative analysis costs the paper measures are reproduced.

Structure of a generated execution:

* a main thread writes read-only "init" variables, forks the workers,
  occasionally publishes through volatiles, and joins the workers;
* each worker runs a random sequence of actions: thread-local access
  bursts, critical-section blocks at a chosen nesting depth over shared
  variables consistently protected by their lock, init-variable reads, and
  volatile publish/consume pairs;
* race patterns (Figure 1-shaped predictable races and plain HB races) are
  spliced into worker scripts at staggered positions.

Shared variables are partitioned across locks (consistent locking), so all
non-pattern sharing is race-free under every relation in the family; the
planted patterns fully determine which analyses report races.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.trace.event import (
    ACQUIRE,
    FORK,
    JOIN,
    READ,
    RELEASE,
    VOLATILE_READ,
    VOLATILE_WRITE,
    WRITE,
    Event,
)
from repro.trace.trace import Trace
from repro.workloads.spec import WorkloadSpec

Step = Tuple[int, int, int]  # (kind, target, site)


class _Ids:
    """Dense id allocation for the generated namespaces."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.n_threads = spec.threads + 1  # workers + main
        self.n_locks = spec.locks
        self.n_vars = 0
        self.n_volatiles = spec.threads + 1
        self._sites: Dict[str, int] = {}
        self.shared = [self._new_var() for _ in range(spec.shared_vars)]
        self.init_vars = [self._new_var() for _ in range(8)]
        self.locals = {
            t: [self._new_var() for _ in range(spec.local_vars)]
            for t in range(1, self.n_threads)
        }

    def _new_var(self) -> int:
        v = self.n_vars
        self.n_vars += 1
        return v

    def new_lock(self) -> int:
        m = self.n_locks
        self.n_locks += 1
        return m

    def new_var(self) -> int:
        return self._new_var()

    def site(self, key: str) -> int:
        s = self._sites.get(key)
        if s is None:
            s = len(self._sites)
            self._sites[key] = s
        return s

    def lock_of_var(self, v: int) -> int:
        """The lock consistently protecting a shared variable."""
        return v % self.spec.locks


def _geometric(rng: random.Random, mean: float) -> int:
    if mean <= 1.0:
        return 1
    p = 1.0 / mean
    n = 1
    while rng.random() > p and n < 64:
        n += 1
    return n


class _WorkerScript:
    """Builds one worker's step list."""

    def __init__(self, spec: WorkloadSpec, ids: _Ids, tid: int,
                 rng: random.Random):
        self.spec = spec
        self.ids = ids
        self.tid = tid
        self.rng = rng
        self.steps: List[Step] = []

    def generate(self, budget: int) -> List[Step]:
        while len(self.steps) < budget:
            r = self.rng.random()
            if r < self.spec.p_volatile:
                self._volatile_action()
            elif r < self.spec.p_volatile + 0.05:
                self._init_read()
            elif r < self.spec.p_volatile + 0.05 + self.spec.p_cs:
                self._critical_section()
            else:
                self._local_burst()
        return self.steps

    # -- actions -----------------------------------------------------------
    def _burst(self, var: int, tag: str) -> None:
        n = _geometric(self.rng, self.spec.burst)
        write_first = self.rng.random() > self.spec.read_fraction
        for k in range(n):
            kind = WRITE if (write_first and k == 0) else (
                WRITE if self.rng.random() > self.spec.read_fraction else READ)
            name = "wr" if kind == WRITE else "rd"
            self.steps.append(
                (kind, var, self.ids.site("{}:{}:{}".format(name, tag, var))))

    def _local_burst(self) -> None:
        var = self.rng.choice(self.ids.locals[self.tid])
        self._burst(var, "local")

    def _init_read(self) -> None:
        var = self.rng.choice(self.ids.init_vars)
        self.steps.append((READ, var, self.ids.site("rd:init:{}".format(var))))

    def _depth(self) -> int:
        w1, w2, w3 = self.spec.nesting
        r = self.rng.random() * (w1 + w2 + w3)
        if r < w1:
            return 1
        if r < w1 + w2:
            return 2
        return 3

    def _critical_section(self) -> None:
        depth = self._depth()
        locks = sorted(self.rng.sample(range(self.spec.locks),
                                       min(depth, self.spec.locks)))
        for m in locks:
            self.steps.append((ACQUIRE, m, 0))
        # accesses at full depth, on variables protected by the innermost lock
        inner = locks[-1]
        candidates = [v for v in self.ids.shared
                      if self.ids.lock_of_var(v) == inner]
        if candidates:
            for _ in range(self.rng.randint(1, 2)):
                self._burst(self.rng.choice(candidates), "cs")
        for m in reversed(locks):
            self.steps.append((RELEASE, m, 0))

    def _volatile_action(self) -> None:
        if self.rng.random() < 0.5:
            v = self.tid  # publish through own volatile
            self.steps.append(
                (VOLATILE_WRITE, v, self.ids.site("vwr:{}".format(v))))
        else:
            v = self.rng.randrange(self.ids.n_volatiles)
            self.steps.append(
                (VOLATILE_READ, v, self.ids.site("vrd:{}".format(v))))


Chunk = Tuple[int, List[Step]]  # (worker index, steps emitted atomically)


def _pattern_chunks(spec: WorkloadSpec, ids: _Ids,
                    rng: random.Random, workers: int) -> List[List[Chunk]]:
    """Build the race-pattern emission plans (see module docstring).

    Each pattern is a list of (worker, steps) chunks that the trace tail
    emits *in order*, which makes the planted races deterministic: pattern
    variables and locks are dedicated, so no incidental synchronization
    from the main program body can order the racing accesses.
    """
    patterns: List[List[Chunk]] = []
    if workers < 2:
        return patterns
    for k in range(spec.predictive_races):
        a, b = _pick_pair(rng, workers)
        x = ids.new_var()
        m = ids.new_lock()
        junk_a, junk_b = ids.new_var(), ids.new_var()
        gate = ids.new_lock()
        chunks: List[Chunk] = [
            # Figure 1's thread 1: the racy read, then an unrelated
            # critical section on the shared lock (HB-orders, WCP/DC/WDC
            # do not: the critical sections do not conflict).
            (a, [(READ, x, ids.site("prace-a:{}".format(k))),
                 (ACQUIRE, m, 0),
                 (WRITE, junk_a, ids.site("prace-junk-a:{}".format(k))),
                 (RELEASE, m, 0)]),
            (b, [(ACQUIRE, m, 0),
                 (READ, junk_b, ids.site("prace-junk-b:{}".format(k))),
                 (RELEASE, m, 0)]),
        ]
        for _ in range(spec.dynamic_multiplier):
            chunks.append(
                (b, [(ACQUIRE, gate, 0),
                     (WRITE, x, ids.site("prace-b:{}".format(k))),
                     (RELEASE, gate, 0)]))
        patterns.append(chunks)
    for k in range(spec.hb_races):
        a, b = _pick_pair(rng, workers)
        x = ids.new_var()
        gate_a, gate_b = ids.new_lock(), ids.new_lock()
        chunks = [(a, [(ACQUIRE, gate_a, 0),
                       (WRITE, x, ids.site("hbrace-a:{}".format(k))),
                       (RELEASE, gate_a, 0)])]
        # Alternate unsynchronized accesses: every access after the first
        # races, so the dynamic count scales with the multiplier in every
        # optimization tier (the per-lock "gates" only separate epochs).
        for r in range(spec.dynamic_multiplier):
            chunks.append(
                (b, [(ACQUIRE, gate_b, 0),
                     (READ, x, ids.site("hbrace-b:{}".format(k))),
                     (RELEASE, gate_b, 0)]))
            if r + 1 < spec.dynamic_multiplier:
                chunks.append(
                    (a, [(ACQUIRE, gate_a, 0),
                         (WRITE, x, ids.site("hbrace-a:{}".format(k))),
                         (RELEASE, gate_a, 0)]))
        patterns.append(chunks)
    for k in range(spec.hb_single_races):
        a, b = _pick_pair(rng, workers)
        x = ids.new_var()
        patterns.append([
            (a, [(WRITE, x, ids.site("hb1race-a:{}".format(k)))]),
            (b, [(READ, x, ids.site("hb1race-b:{}".format(k)))]),
        ])
    return patterns


def _pick_pair(rng: random.Random, workers: int) -> Tuple[int, int]:
    a = rng.randrange(workers)
    b = rng.randrange(workers)
    while b == a:
        b = rng.randrange(workers)
    return a, b


def generate_trace(spec: WorkloadSpec) -> Trace:
    """Generate a well-formed trace from a workload spec (deterministic
    in ``spec.seed``)."""
    rng = random.Random(spec.seed)
    ids = _Ids(spec)
    workers = spec.threads
    per_worker = max((spec.events - 4 * workers - 16) // max(workers, 1), 8)
    scripts = [
        _WorkerScript(spec, ids, t, random.Random(rng.randrange(1 << 30)))
        .generate(per_worker)
        for t in range(1, workers + 1)
    ]
    patterns = _pattern_chunks(spec, ids, rng, workers)

    events: List[Event] = []
    main = 0
    for v in ids.init_vars:
        events.append(Event(main, WRITE, v, ids.site("rd:init-write")))
    for t in range(1, workers + 1):
        events.append(Event(main, FORK, t, 0))

    # Interleave worker scripts: random runnable thread, random pace.
    pointers = [0] * workers
    held: Dict[int, int] = {}
    pace = [rng.uniform(0.5, 2.0) for _ in range(workers)]
    active = [t for t in range(workers) if scripts[t]]
    while active:
        weights = [pace[t] for t in active]
        t = rng.choices(active, weights=weights, k=1)[0]
        steps = scripts[t]
        run = _geometric(rng, 3.0)
        for _ in range(run):
            p = pointers[t]
            if p >= len(steps):
                break
            kind, target, site = steps[p]
            if kind == ACQUIRE:
                holder = held.get(target)
                if holder is not None and holder != t:
                    break  # blocked; let another thread run
                held[target] = t
            elif kind == RELEASE:
                held.pop(target, None)
            events.append(Event(t + 1, kind, target, site))
            pointers[t] = p + 1
        active = [u for u in active if pointers[u] < len(scripts[u])]
        # No deadlock is possible: scripts are lock-balanced and acquire
        # nested locks in a global order, so some holder always progresses.

    # Emit the race-pattern tails.  Each pattern is emitted contiguously:
    # interleaving two patterns that share a thread would chain their
    # synchronization through program order and could (incidentally)
    # HB-order another pattern's racing accesses, making race counts
    # nondeterministic.  Pattern order itself is shuffled.
    rng.shuffle(patterns)
    for chunks in patterns:
        for worker, steps in chunks:
            for kind, target, site in steps:
                events.append(Event(worker + 1, kind, target, site))

    for t in range(1, workers + 1):
        events.append(Event(main, JOIN, t, 0))

    return Trace(
        events,
        num_threads=ids.n_threads,
        num_locks=ids.n_locks,
        num_vars=ids.n_vars,
        num_volatiles=ids.n_volatiles,
        num_classes=1,
        validate=True,
    )
