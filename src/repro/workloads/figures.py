"""The paper's example executions, transcribed as traces.

Each function returns a fresh :class:`~repro.trace.trace.Trace` for one of
the paper's figures.  The claimed properties of every figure are asserted in
``tests/test_figures.py`` against both the oracle closure and the analysis
implementations:

* Figure 1(a): no HB-race but a predictable race on ``x`` (WCP/DC/WDC-race).
* Figure 2(a): a DC-race on ``x`` that is **not** a WCP-race.
* Figure 3: a WDC-race on ``x`` that is not a DC-race and not a predictable
  race (vindication must reject it).
* Figure 4(a–d): executions driving SmartTrack's CCS machinery — deferred
  release times, the [Read Share] case where FTO takes [Read Exclusive], and
  the "extra" metadata at writes.

``*_extended`` variants append accesses that turn the internal-tracking
differences of Figure 4(b–d) into externally visible (false-)race behaviour
for black-box testing.
"""

from __future__ import annotations

from repro.trace.builder import TraceBuilder
from repro.trace.trace import Trace


def figure1() -> Trace:
    """Figure 1(a): predictable race on ``x`` with no HB-race."""
    b = TraceBuilder()
    b.read("T1", "x")
    b.acquire("T1", "m")
    b.write("T1", "y")
    b.release("T1", "m")
    b.acquire("T2", "m")
    b.read("T2", "z")
    b.release("T2", "m")
    b.write("T2", "x")
    return b.build()


def figure1_predicted() -> Trace:
    """Figure 1(b): a predicted trace of Figure 1(a) exposing the race."""
    b = TraceBuilder()
    b.acquire("T2", "m")
    b.read("T2", "z")
    b.release("T2", "m")
    b.read("T1", "x")
    b.write("T2", "x")
    return b.build()


def figure2() -> Trace:
    """Figure 2(a): a DC-race on ``x`` that is not a WCP-race."""
    b = TraceBuilder()
    b.read("T1", "x")
    b.acquire("T1", "m")
    b.write("T1", "y")
    b.release("T1", "m")
    b.acquire("T2", "m")
    b.read("T2", "y")
    b.release("T2", "m")
    b.acquire("T2", "n")
    b.release("T2", "n")
    b.acquire("T3", "n")
    b.release("T3", "n")
    b.write("T3", "x")
    return b.build()


def figure2_predicted() -> Trace:
    """Figure 2(b): a predicted trace of Figure 2(a) exposing the race."""
    b = TraceBuilder()
    b.acquire("T3", "n")
    b.release("T3", "n")
    b.read("T1", "x")
    b.write("T3", "x")
    return b.build()


def figure3() -> Trace:
    """Figure 3: a WDC-race on ``x`` that is *not* a predictable race.

    DC rule (b) orders ``rel(m)`` by T1 before ``rel(m)`` by T3, so there is
    no DC-race; WDC omits rule (b) and reports the (false) race.
    """
    b = TraceBuilder()
    b.acquire("T1", "m")
    b.sync("T1", "o")
    b.read("T1", "x")
    b.release("T1", "m")
    b.sync("T2", "o")
    b.sync("T2", "p")
    b.acquire("T3", "m")
    b.sync("T3", "p")
    b.release("T3", "m")
    b.write("T3", "x")
    return b.build()


def figure4a() -> Trace:
    """Figure 4(a): the execution used to illustrate SmartTrack-DC.

    Exercises deferred release times (T1 still holds ``p`` at T2's
    ``rd(x)``), the [Read Share] case where FTO-DC would take
    [Read Exclusive], and the conflicting-critical-section join on ``p`` at
    T3's ``wr(x)``.  There is no race under any of the relations.
    """
    b = TraceBuilder()
    b.acquire("T1", "p")
    b.acquire("T1", "m")
    b.acquire("T1", "n")
    b.write("T1", "x")
    b.release("T1", "n")
    b.release("T1", "m")
    b.acquire("T2", "m")
    b.read("T2", "x")
    b.release("T1", "p")
    b.release("T2", "m")
    b.sync("T2", "o")
    b.sync("T3", "o")
    b.acquire("T3", "p")
    b.write("T3", "x")
    b.release("T3", "p")
    return b.build()


def figure4b() -> Trace:
    """Figure 4(b): motivates [Read Share] where FTO takes [Read Exclusive].

    If SmartTrack took [Read Exclusive] at T2's ``rd(x)`` it would lose
    T1's critical section on ``m`` and miss the rule (a) ordering from T1's
    ``rel(m)`` to T3's ``wr(x)``.
    """
    b = TraceBuilder()
    b.acquire("T1", "m")
    b.read("T1", "x")
    b.sync("T1", "o")
    b.sync("T2", "o")
    b.read("T2", "x")
    b.sync("T2", "p")
    b.release("T1", "m")
    b.sync("T3", "p")
    b.acquire("T3", "m")
    b.write("T3", "x")
    b.release("T3", "m")
    return b.build()


def figure4b_extended() -> Trace:
    """Figure 4(b) plus accesses that expose lost tracking as a false race.

    T1 writes ``z`` inside its critical section on ``m``; T3 reads ``z``
    after its own critical section on ``m``.  ``wr(z)`` by T1 is DC-ordered
    before ``rd(z)`` by T3 only through the rule (a) edge from T1's
    ``rel(m)`` to T3's ``wr(x)``, so an implementation that loses T1's
    critical-section information reports a false race on ``z``.
    """
    b = TraceBuilder()
    b.acquire("T1", "m")
    b.read("T1", "x")
    b.write("T1", "z")
    b.sync("T1", "o")
    b.sync("T2", "o")
    b.read("T2", "x")
    b.sync("T2", "p")
    b.release("T1", "m")
    b.sync("T3", "p")
    b.acquire("T3", "m")
    b.write("T3", "x")
    b.release("T3", "m")
    b.read("T3", "z")
    return b.build()


def figure4c() -> Trace:
    """Figure 4(c): motivates the "extra" metadata ``E^w_x``/``E^r_x``.

    T2's ``wr(x)`` executes outside any critical section and overwrites
    ``L^r_x``/``L^w_x``, losing T1's critical section on ``m``; the extra
    metadata must preserve it so T3's ``rd(x)`` (inside a critical section
    on ``m``) still picks up the rule (a) ordering from T1's ``rel(m)``.
    """
    b = TraceBuilder()
    b.acquire("T1", "m")
    b.write("T1", "x")
    b.sync("T1", "o")
    b.sync("T2", "o")
    b.write("T2", "x")
    b.sync("T2", "p")
    b.release("T1", "m")
    b.sync("T3", "p")
    b.acquire("T3", "m")
    b.read("T3", "x")
    b.release("T3", "m")
    return b.build()


def figure4c_extended() -> Trace:
    """Figure 4(c) plus a ``z`` access pair visible only through ``E^w_x``."""
    b = TraceBuilder()
    b.acquire("T1", "m")
    b.write("T1", "x")
    b.write("T1", "z")
    b.sync("T1", "o")
    b.sync("T2", "o")
    b.write("T2", "x")
    b.sync("T2", "p")
    b.release("T1", "m")
    b.sync("T3", "p")
    b.acquire("T3", "m")
    b.read("T3", "x")
    b.release("T3", "m")
    b.read("T3", "z")
    return b.build()


def figure4d() -> Trace:
    """Figure 4(d): the read-then-write variant motivating ``E^r_x``."""
    b = TraceBuilder()
    b.acquire("T1", "m")
    b.read("T1", "x")
    b.sync("T1", "o")
    b.sync("T2", "o")
    b.write("T2", "x")
    b.sync("T2", "p")
    b.release("T1", "m")
    b.sync("T3", "p")
    b.acquire("T3", "m")
    b.write("T3", "x")
    b.release("T3", "m")
    return b.build()


def figure4d_extended() -> Trace:
    """Figure 4(d) plus a ``z`` access pair visible only through ``E^r_x``."""
    b = TraceBuilder()
    b.acquire("T1", "m")
    b.read("T1", "x")
    b.write("T1", "z")
    b.sync("T1", "o")
    b.sync("T2", "o")
    b.write("T2", "x")
    b.sync("T2", "p")
    b.release("T1", "m")
    b.sync("T3", "p")
    b.acquire("T3", "m")
    b.write("T3", "x")
    b.release("T3", "m")
    b.read("T3", "z")
    return b.build()


ALL_FIGURES = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4a": figure4a,
    "figure4b": figure4b,
    "figure4b_extended": figure4b_extended,
    "figure4c": figure4c,
    "figure4c_extended": figure4c_extended,
    "figure4d": figure4d,
    "figure4d_extended": figure4d_extended,
}
