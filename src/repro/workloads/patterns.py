"""Reusable micro-patterns for trace construction.

Each pattern appends a small per-thread event script to a generator plan;
the interleaver later merges the scripts into a single well-formed trace.
Patterns are also used directly by tests via :func:`build_pattern_trace`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.trace.builder import TraceBuilder
from repro.trace.trace import Trace

# A script step is (op, operand, site); operands are symbolic names.
Step = Tuple[str, str, str]


def predictive_race_steps(tag: str, repeats: int = 1
                          ) -> Tuple[List[Step], List[Step]]:
    """A Figure 1-shaped predictable race on ``x_<tag>``.

    Thread A reads ``x`` then runs a critical section touching only its own
    junk variable; thread B later runs a critical section on the same lock
    touching a *different* junk variable and then writes ``x``.  The
    release–acquire pair orders the accesses under HB, but no relation in
    the predictive family orders them (the critical sections do not
    conflict), so WCP/DC/WDC all report the race and HB misses it.
    """
    x = "xp_" + tag
    m = "mp_" + tag
    a_steps: List[Step] = [("rd", x, "prace-a:" + tag)]
    for r in range(repeats):
        a_steps += [("acq", m, ""), ("wr", "ya_" + tag, "junk-a:" + tag),
                    ("rel", m, "")]
    b_steps: List[Step] = []
    for r in range(repeats):
        b_steps += [("acq", m, ""), ("rd", "yb_" + tag, "junk-b:" + tag),
                    ("rel", m, "")]
    b_steps.append(("wr", x, "prace-b:" + tag))
    return a_steps, b_steps


def hb_race_steps(tag: str) -> Tuple[List[Step], List[Step]]:
    """A plain unsynchronized race on ``x_<tag>`` (every analysis finds it)."""
    x = "xh_" + tag
    return ([("wr", x, "hbrace-a:" + tag)], [("rd", x, "hbrace-b:" + tag)])


def protected_counter_steps(tag: str, lock: str, rounds: int) -> List[Step]:
    """A lock-protected read-modify-write loop (race-free everywhere)."""
    steps: List[Step] = []
    x = "c_" + tag
    for _ in range(rounds):
        steps += [("acq", lock, ""), ("rd", x, "ctr-rd:" + tag),
                  ("wr", x, "ctr-wr:" + tag), ("rel", lock, "")]
    return steps


def build_pattern_trace(per_thread: List[List[Step]],
                        interleave: str = "round-robin") -> Trace:
    """Materialize per-thread step scripts into a trace.

    ``interleave`` is ``"round-robin"`` (one step per thread per turn) or
    ``"sequential"`` (thread 0's script, then thread 1's, ...).  Round-robin
    skips steps that would acquire a held lock until it frees up.
    """
    b = TraceBuilder()
    threads = ["T{}".format(k) for k in range(len(per_thread))]
    emit = _make_emitter(b)
    if interleave == "sequential":
        for tname, steps in zip(threads, per_thread):
            for step in steps:
                emit(tname, step)
        return b.build()
    pointers = [0] * len(per_thread)
    held = {}
    progress = True
    while progress:
        progress = False
        for k, steps in enumerate(per_thread):
            p = pointers[k]
            if p >= len(steps):
                continue
            op, operand, _site = steps[p]
            if op == "acq" and operand in held:
                continue
            if op == "acq":
                held[operand] = k
            elif op == "rel":
                held.pop(operand, None)
            emit(threads[k], steps[p])
            pointers[k] += 1
            progress = True
    if any(p < len(s) for p, s in zip(pointers, per_thread)):
        raise ValueError("pattern scripts deadlocked during interleaving")
    return b.build()


def _make_emitter(b: TraceBuilder):
    def emit(tname: str, step: Step) -> None:
        op, operand, site = step
        site_arg = site or None
        if op == "rd":
            b.read(tname, operand, site=site_arg)
        elif op == "wr":
            b.write(tname, operand, site=site_arg)
        elif op == "acq":
            b.acquire(tname, operand)
        elif op == "rel":
            b.release(tname, operand)
        elif op == "vrd":
            b.volatile_read(tname, operand, site=site_arg)
        elif op == "vwr":
            b.volatile_write(tname, operand, site=site_arg)
        else:
            raise ValueError("unknown op {!r}".format(op))
    return emit
