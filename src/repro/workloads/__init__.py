"""Workloads: the paper's example executions, micro-patterns, and the
synthetic DaCapo-analog benchmark programs (see DESIGN.md §2).
"""

from repro.workloads.dacapo import DACAPO_SPECS, dacapo_trace
from repro.workloads.figures import (
    figure1,
    figure1_predicted,
    figure2,
    figure2_predicted,
    figure3,
    figure4a,
    figure4b,
    figure4b_extended,
    figure4c,
    figure4c_extended,
    figure4d,
    figure4d_extended,
)
from repro.workloads.generator import generate_trace
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "DACAPO_SPECS",
    "WorkloadSpec",
    "dacapo_trace",
    "figure1",
    "figure1_predicted",
    "figure2",
    "figure2_predicted",
    "figure3",
    "figure4a",
    "figure4b",
    "figure4b_extended",
    "figure4c",
    "figure4c_extended",
    "figure4d",
    "figure4d_extended",
    "generate_trace",
]
