"""Litmus gallery: crafted executions beyond the paper's figures.

Each litmus is a small execution whose per-relation race verdicts are
known by construction; ``EXPECTED`` maps every litmus to the set of racy
variables per relation.  They pin down the separations and corner cases of
the HB ⊇ WCP ⊇ DC ⊇ WDC hierarchy and the analyses' event handling:

* relation separations beyond Figures 1–3 (multi-hop rule (a) chains,
  rule (b) through nested locks),
* synchronization-primitive corner cases (wait(), volatile publication
  chains, class initialization, fork/join trees),
* metadata corner cases (write-after-shared-reads, read-owned churn,
  many-reader upgrades).

Tests assert every analysis agrees with ``EXPECTED`` (and with the oracle
closure) on all of them.
"""

from __future__ import annotations

from typing import Callable, Dict, Set

from repro.trace.builder import TraceBuilder
from repro.trace.trace import Trace

Expected = Dict[str, Set[str]]


def _build(fn: Callable[[TraceBuilder], None]) -> Trace:
    b = TraceBuilder()
    fn(b)
    return b.build()


# ----------------------------------------------------------------------
# relation separations
# ----------------------------------------------------------------------

def rule_a_chain() -> Trace:
    """A two-hop rule (a) chain orders the racy pair in all predictive
    relations (and HB): no race anywhere."""
    def body(b):
        b.acquire("T1", "m").write("T1", "x").write("T1", "a")
        b.release("T1", "m")
        b.acquire("T2", "m").read("T2", "a").release("T2", "m")
        b.acquire("T2", "n").write("T2", "b").release("T2", "n")
        b.acquire("T3", "n").read("T3", "b").release("T3", "n")
        b.read("T3", "x")
    return _build(body)


def hb_only_sync() -> Trace:
    """Classic Figure 1 shape with the racy access on the *lock user's*
    side: empty critical sections order only under HB."""
    def body(b):
        b.write("T1", "x")
        b.acquire("T1", "m").release("T1", "m")
        b.acquire("T2", "m").release("T2", "m")
        b.read("T2", "x")
    return _build(body)


def wcp_not_dc_via_hb_bridge() -> Trace:
    """Conflicting critical sections followed by an HB-only bridge: WCP
    (composing with HB) orders the pair, DC does not (Figure 2's essence
    with a fork standing in for the second lock)."""
    def body(b):
        b.read("T1", "x")
        b.acquire("T1", "m").write("T1", "y").release("T1", "m")
        b.acquire("T2", "m").read("T2", "y").release("T2", "m")
        b.acquire("T2", "n").release("T2", "n")
        b.acquire("T3", "n").release("T3", "n")
        b.write("T3", "x")
    return _build(body)


def dc_not_wdc_nested() -> Trace:
    """Figure 3's rule (b) pattern through *nested* critical sections:
    DC orders the pair (no race), WDC reports it, and it is not
    predictable."""
    def body(b):
        b.acquire("T1", "m")
        b.acquire("T1", "q")
        b.sync("T1", "o")
        b.release("T1", "q")
        b.read("T1", "x")
        b.release("T1", "m")
        b.sync("T2", "o")
        b.sync("T2", "p")
        b.acquire("T3", "m")
        b.sync("T3", "p")
        b.release("T3", "m")
        b.write("T3", "x")
    return _build(body)


def independent_locks() -> Trace:
    """Same variable consistently protected by two different locks in two
    thread pairs: the cross-pair accesses race in every relation."""
    def body(b):
        b.acquire("T1", "m").write("T1", "x").release("T1", "m")
        b.acquire("T2", "n").write("T2", "x").release("T2", "n")
    return _build(body)


# ----------------------------------------------------------------------
# synchronization-primitive corner cases
# ----------------------------------------------------------------------

def wait_releases_lock() -> Trace:
    """wait() = release + acquire (§5.1): the waiting thread's lock is
    genuinely released, so another thread's protected write is ordered
    only by the lock — reacquisition makes the later read race-free under
    HB but the accesses stay predictively racy (no conflicting critical
    sections)."""
    def body(b):
        b.read("T1", "x")
        b.acquire("T1", "m")
        b.wait("T1", "m")  # release; acquire
        b.release("T1", "m")
        b.acquire("T2", "m").release("T2", "m")
        b.write("T2", "x")
    return _build(body)


def volatile_chain() -> Trace:
    """Two-hop volatile publication orders in every relation."""
    def body(b):
        b.write("T1", "x")
        b.volatile_write("T1", "g1")
        b.volatile_read("T2", "g1")
        b.volatile_write("T2", "g2")
        b.volatile_read("T3", "g2")
        b.read("T3", "x")
    return _build(body)


def volatile_read_not_transitive_backwards() -> Trace:
    """A volatile read does not order the *reader's earlier* events after
    the writer: those still race."""
    def body(b):
        b.volatile_write("T1", "g")
        b.write("T1", "x")
        b.volatile_read("T2", "g")
        b.write("T2", "x")
    return _build(body)


def fork_join_tree() -> Trace:
    """Parent forks two children, joins both, then reads what they wrote:
    race-free everywhere; the children race with each other on their
    shared scratch variable."""
    def body(b):
        b.write("T0", "out")
        b.fork("T0", "T1")
        b.fork("T0", "T2")
        b.write("T1", "scratch")
        b.write("T2", "scratch")
        b.join("T0", "T1")
        b.join("T0", "T2")
        b.read("T0", "scratch")
    return _build(body)


def class_init_once() -> Trace:
    """Class initialization edge orders the initializer's writes before
    every later access to the class (§5.1)."""
    def body(b):
        b.write("T1", "k_static")
        b.static_init("T1", "K")
        b.static_access("T2", "K")
        b.read("T2", "k_static")
        b.static_access("T3", "K")
        b.write("T3", "k_static2")
    return _build(body)


# ----------------------------------------------------------------------
# metadata corner cases
# ----------------------------------------------------------------------

def many_readers_then_write() -> Trace:
    """Four ordered readers upgrade R_x to a vector clock; a properly
    synchronized writer then checks against all of them: race-free."""
    def body(b):
        b.write("T0", "x")
        b.volatile_write("T0", "g")
        for reader in ("T1", "T2", "T3", "T4"):
            b.volatile_read(reader, "g")
            b.read(reader, "x")
            b.volatile_write(reader, "done_" + reader)
        for reader in ("T1", "T2", "T3", "T4"):
            b.volatile_read("T0", "done_" + reader)
        b.write("T0", "x")
    return _build(body)


def one_racy_reader_among_many() -> Trace:
    """Same as above but one reader never signals: only that reader's
    read races with the final write."""
    def body(b):
        b.write("T0", "x")
        b.volatile_write("T0", "g")
        for reader in ("T1", "T2", "T3"):
            b.volatile_read(reader, "g")
            b.read(reader, "x")
        for reader in ("T1", "T2"):
            b.volatile_write(reader, "done_" + reader)
        for reader in ("T1", "T2"):
            b.volatile_read("T0", "done_" + reader)
        b.write("T0", "x")
    return _build(body)


def write_owned_churn() -> Trace:
    """A thread repeatedly writing its own variable across many epochs
    stays in the owned fast path and never races."""
    def body(b):
        for _ in range(6):
            b.acquire("T1", "m")
            b.write("T1", "x")
            b.release("T1", "m")
        b.acquire("T2", "m").write("T2", "x").release("T2", "m")
    return _build(body)


#: litmus name -> (builder, expected racy variables per relation)
LITMUS: Dict[str, Callable[[], Trace]] = {
    "rule_a_chain": rule_a_chain,
    "hb_only_sync": hb_only_sync,
    "wcp_not_dc_via_hb_bridge": wcp_not_dc_via_hb_bridge,
    "dc_not_wdc_nested": dc_not_wdc_nested,
    "independent_locks": independent_locks,
    "wait_releases_lock": wait_releases_lock,
    "volatile_chain": volatile_chain,
    "volatile_read_not_transitive_backwards": volatile_read_not_transitive_backwards,
    "fork_join_tree": fork_join_tree,
    "class_init_once": class_init_once,
    "many_readers_then_write": many_readers_then_write,
    "one_racy_reader_among_many": one_racy_reader_among_many,
    "write_owned_churn": write_owned_churn,
}

EXPECTED: Dict[str, Expected] = {
    "rule_a_chain": {
        "hb": set(), "wcp": set(), "dc": set(), "wdc": set()},
    "hb_only_sync": {
        "hb": set(), "wcp": {"x"}, "dc": {"x"}, "wdc": {"x"}},
    "wcp_not_dc_via_hb_bridge": {
        "hb": set(), "wcp": set(), "dc": {"x"}, "wdc": {"x"}},
    "dc_not_wdc_nested": {
        "hb": set(), "wcp": set(), "dc": set(), "wdc": {"x"}},
    "independent_locks": {
        "hb": {"x"}, "wcp": {"x"}, "dc": {"x"}, "wdc": {"x"}},
    "wait_releases_lock": {
        "hb": set(), "wcp": {"x"}, "dc": {"x"}, "wdc": {"x"}},
    "volatile_chain": {
        "hb": set(), "wcp": set(), "dc": set(), "wdc": set()},
    "volatile_read_not_transitive_backwards": {
        "hb": {"x"}, "wcp": {"x"}, "dc": {"x"}, "wdc": {"x"}},
    "fork_join_tree": {
        "hb": {"scratch"}, "wcp": {"scratch"}, "dc": {"scratch"},
        "wdc": {"scratch"}},
    "class_init_once": {
        "hb": set(), "wcp": set(), "dc": set(), "wdc": set()},
    "many_readers_then_write": {
        "hb": set(), "wcp": set(), "dc": set(), "wdc": set()},
    "one_racy_reader_among_many": {
        "hb": {"x"}, "wcp": {"x"}, "dc": {"x"}, "wdc": {"x"}},
    "write_owned_churn": {
        "hb": set(), "wcp": set(), "dc": set(), "wdc": set()},
}
