"""Workload specifications for the synthetic benchmark generator.

A :class:`WorkloadSpec` captures the trace-shape parameters that drive the
relative costs the paper measures (Table 2's run-time characteristics):
thread count, how many accesses execute under how many nested locks, how
often accesses repeat within an epoch (same-epoch hit rate), read/write
mix, and how many race patterns of each kind are planted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass
class WorkloadSpec:
    """Shape parameters for one synthetic program (see module docstring).

    Attributes
    ----------
    name:
        Program name (the DaCapo analogs use the paper's names).
    threads:
        Worker thread count, *excluding* the main thread that forks and
        joins them (paper Table 2 counts total created threads).
    events:
        Approximate total event budget across all threads.
    locks / shared_vars / local_vars:
        Namespace sizes; each shared variable is protected by exactly one
        lock (consistent locking — protected sharing is race-free under
        every relation in the family).
    p_cs:
        Probability that an access burst runs inside a critical section
        (drives Table 2's "locks held at NSEAs ≥ 1").
    nesting:
        Distribution over critical-section depth 1/2/3 given ``p_cs``
        (drives the ≥ 2 and ≥ 3 columns).
    read_fraction:
        Fraction of accesses that are reads.
    burst:
        Mean same-variable access-run length (drives the same-epoch hit
        rate: total events vs NSEAs in Table 2).
    p_volatile:
        Probability of a volatile publish/consume action.
    predictive_races / hb_races / hb_single_races:
        Planted Figure 1-style patterns (detected by WCP/DC/WDC but not
        HB) and plain unsynchronized races (detected by everything).
        ``hb_races`` alternate accesses (two racy program locations each,
        dynamic count scaling with the multiplier); ``hb_single_races``
        race exactly once at one location.
    dynamic_multiplier:
        How many times each planted racy access repeats (dynamic vs static
        race counts, Table 7).
    """

    name: str
    threads: int
    events: int
    locks: int = 8
    shared_vars: int = 64
    local_vars: int = 16
    p_cs: float = 0.3
    nesting: Tuple[float, float, float] = (0.9, 0.08, 0.02)
    read_fraction: float = 0.7
    burst: float = 6.0
    p_volatile: float = 0.02
    predictive_races: int = 0
    hb_races: int = 0
    hb_single_races: int = 0
    dynamic_multiplier: int = 1
    seed: int = 0

    def scaled(self, factor: float) -> "WorkloadSpec":
        """A copy with the event budget scaled by ``factor``."""
        out = WorkloadSpec(**self.__dict__)
        out.events = max(int(self.events * factor), 500)
        return out
