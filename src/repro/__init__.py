"""repro — SmartTrack: efficient predictive data-race detection (PLDI 2020).

A complete reproduction of Roemer, Genç, and Bond's SmartTrack system: the
HB/WCP/DC/WDC relation family, the Unopt/FTO/SmartTrack optimization tiers
(paper Algorithms 1–3), vindication of predictive races, an oracle
(executable specification), synthetic DaCapo-analog workloads, and a
harness regenerating every table of the paper's evaluation.

Quick start::

    import repro
    from repro.workloads import figure1

    trace = figure1()
    print(repro.detect_races(trace, "fto-hb").dynamic_count)   # 0: no HB-race
    print(repro.detect_races(trace, "st-dc").dynamic_count)    # 1: predictive race
    print(repro.vindicate_first_race(trace, "st-wdc").witness) # a reordering

Online analysis: the engine also runs *during* execution — bind a live
source (:mod:`repro.trace.live`: Unix/TCP socket or FIFO, either wire
format) and drain it through an incremental
:class:`~repro.core.engine.EngineSession`
(``MultiRunner.session()`` → ``feed``/``snapshot``/``finish``), or just
run ``python -m repro serve /tmp/repro.sock`` and point a producer
(``repro generate --to-socket``) at it.  Reports are identical to the
offline pass on the same events.

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the system
inventory.
"""

from __future__ import annotations

from repro.core.base import Analysis, RaceRecord, RaceReport
from repro.core.engine import (
    EngineSession,
    MultiResult,
    MultiRunner,
    SessionSnapshot,
    run_analyses,
    run_stream,
)
from repro.core.parallel import ParallelRunner, plan_shards, run_parallel
from repro.core.registry import ANALYSIS_NAMES, MAIN_MATRIX, create, relation_of, tier_of
from repro.trace.builder import TraceBuilder
from repro.trace.event import Event
from repro.trace.format import (
    TraceFormatError,
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
    stream_trace,
)
from repro.server import ServerApp, ServerConfig
from repro.trace.live import PipeTraceSource, TraceListener, send_trace
from repro.trace.trace import Trace, TraceInfo, WellFormednessError

__version__ = "1.0.0"

__all__ = [
    "ANALYSIS_NAMES",
    "Analysis",
    "EngineSession",
    "Event",
    "MAIN_MATRIX",
    "MultiResult",
    "MultiRunner",
    "ParallelRunner",
    "PipeTraceSource",
    "RaceRecord",
    "RaceReport",
    "ServerApp",
    "ServerConfig",
    "SessionSnapshot",
    "Trace",
    "TraceBuilder",
    "TraceListener",
    "TraceFormatError",
    "TraceInfo",
    "WellFormednessError",
    "create",
    "detect_races",
    "detect_races_multi",
    "detect_races_parallel",
    "detect_races_stream",
    "dump_trace",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "plan_shards",
    "relation_of",
    "run_analyses",
    "run_parallel",
    "run_stream",
    "send_trace",
    "stream_trace",
    "tier_of",
    "vindicate_first_race",
]


def detect_races(trace: Trace, analysis: str = "st-wdc",
                 sample_footprint_every: int = 0,
                 collect_cases: bool = False) -> RaceReport:
    """Run one analysis over a trace and return its race report.

    ``analysis`` is a registry name (see :data:`ANALYSIS_NAMES`); the
    default is SmartTrack-WDC, the paper's cheapest predictive analysis.
    ``collect_cases=True`` fills the report's ``case_counts`` (Table 12);
    it is off by default because the counting costs a dict update on
    nearly every access.

    >>> import repro
    >>> from repro.workloads import figure1
    >>> report = repro.detect_races(figure1(), "st-wdc")
    >>> report.dynamic_count, report.static_count
    (1, 1)
    >>> report.first_race.access
    'write'
    """
    return create(analysis, trace, collect_cases=collect_cases).run(
        sample_every=sample_footprint_every)


def detect_races_multi(trace: Trace, analyses=None,
                       sample_footprint_every: int = 0) -> MultiResult:
    """Run several analyses over one iteration of the trace.

    ``analyses`` is a sequence of registry names (default: the paper's
    eleven-configuration :data:`MAIN_MATRIX`).  All analyses share a
    single pass over the events (see :class:`repro.core.engine.MultiRunner`).

    >>> import repro
    >>> from repro.workloads import figure1
    >>> result = repro.detect_races_multi(figure1(), ["fto-hb", "st-dc"])
    >>> result.report("fto-hb").dynamic_count  # HB misses the race
    0
    >>> result.report("st-dc").dynamic_count   # DC predicts it
    1
    """
    return run_analyses(trace, list(analyses or MAIN_MATRIX),
                        sample_every=sample_footprint_every)


def detect_races_stream(source, analyses=None,
                        sample_footprint_every: int = 0) -> MultiResult:
    """Analyze a recorded trace file in one bounded-memory streaming pass.

    ``source`` is a path or open handle of a trace written by
    :func:`dump_trace` — v1 text or v2 binary, autodetected from the
    leading bytes; events are parsed lazily and the full trace is never
    materialized.  ``analyses`` defaults to ``["st-wdc"]`` (the paper's
    cheapest predictive configuration).

    Example (record, then analyze the file in bounded memory)::

        import repro
        from repro.workloads import figure1

        with open("fig1.trace", "w") as fp:
            repro.dump_trace(figure1(), fp)
        result = repro.detect_races_stream("fig1.trace", ["st-wdc"])
        assert result.report("st-wdc").dynamic_count == 1
    """
    return run_stream(source, list(analyses or ["st-wdc"]),
                      sample_every=sample_footprint_every)


def detect_races_parallel(source, analyses=None, workers: int = 2,
                          sample_footprint_every: int = 0) -> MultiResult:
    """Analyze a recorded trace file with multiprocess analysis shards.

    The sharded counterpart of :func:`detect_races_stream`: the trace is
    still parsed (and same-epoch-filtered) exactly once, in the parent,
    and decoded chunks are broadcast to ``workers`` worker processes,
    each running a family-aware shard of ``analyses`` (default: the full
    :data:`MAIN_MATRIX`) — see :class:`repro.core.parallel.ParallelRunner`.
    Reports are bit-identical to the in-process pass; an analysis of a
    worker that died carries an
    :class:`~repro.core.engine.AnalysisFailure` instead of a report.

    Example (shard the paper's full matrix over 4 processes)::

        import repro

        result = repro.detect_races_parallel("big.bin", workers=4)
        if result.ok:
            print(result.report("st-wdc").dynamic_count)
    """
    return run_parallel(source, list(analyses or MAIN_MATRIX),
                        workers=workers,
                        sample_every=sample_footprint_every)


def vindicate_first_race(trace: Trace, analysis: str = "st-wdc"):
    """Detect races with ``analysis`` and vindicate the first one.

    Returns a :class:`repro.vindication.vindicate.VindicationResult` (whose
    ``verdict`` is ``"no-race"`` when the analysis reports nothing).
    """
    from repro.vindication.vindicate import VindicationResult, vindicate

    report = detect_races(trace, analysis)
    first = report.first_race
    if first is None:
        return VindicationResult("no-race", None, None)
    return vindicate(trace, first)
