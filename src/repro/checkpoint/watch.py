"""``repro watch DIR``: re-analyze traces as they change.

A poll loop over one directory: every interval, stat each regular file
directly in the directory and run any whose ``(mtime_ns, size)``
signature changed — through :func:`repro.checkpoint.cache.analyze_cached`,
so an unchanged trace costs a stat, a re-run of a known trace costs a
warm cache hit, and an appended trace replays only its suffix from the
nearest checkpoint.  Files that are not readable traces are reported
once per signature and skipped until they change again.

Polling (rather than inotify/kqueue) keeps the loop portable and
dependency-free; the per-scan cost is a handful of stats.  The loop
runs until interrupted (``repro``'s usual exit 130) or, with
``max_scans``/``once``, for a bounded number of scans — the testable
entry point.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, Optional, Sequence, Tuple

from repro.trace.stream import TraceFormatError
from repro.trace.trace import WellFormednessError

__all__ = ["watch_directory"]


def _scan(directory: str) -> Dict[str, Tuple[int, int]]:
    """Current ``path -> (mtime_ns, size)`` for regular files directly
    in ``directory`` (hidden files skipped — editors drop swap files)."""
    out: Dict[str, Tuple[int, int]] = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return out
    for name in names:
        if name.startswith("."):
            continue
        path = os.path.join(directory, name)
        try:
            st = os.stat(path)
        except OSError:
            continue
        if os.path.isfile(path):
            out[path] = (st.st_mtime_ns, st.st_size)
    return out


def watch_directory(directory: str, cache_dir: str,
                    analyses: Sequence[str], max_races: int = 10,
                    interval: float = 2.0, once: bool = False,
                    max_scans: Optional[int] = None,
                    out=None, err=None) -> int:
    """Watch ``directory`` and analyze changed traces through the cache.

    Returns the combined exit code of the scans run so far when the
    loop ends (``once``/``max_scans``): 2 if any trace was unreadable
    or partially failed, else 1 if any race was found, else 0 — the
    same precedence the ``analyze`` contract documents.
    """
    from repro.checkpoint.cache import analyze_cached

    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    if not os.path.isdir(directory):
        print("error: watch needs a directory; {} is not one".format(
            directory), file=err)
        return 2
    seen: Dict[str, Tuple[int, int]] = {}
    worst = 0
    scans = 0
    limit = 1 if once else max_scans
    while True:
        scans += 1
        current = _scan(directory)
        for path in list(seen):
            if path not in current:
                del seen[path]
        for path, signature in current.items():
            if seen.get(path) == signature:
                continue
            seen[path] = signature
            print("watch: analyzing {}".format(path), file=err)
            try:
                code = analyze_cached(cache_dir, path, analyses,
                                      max_races=max_races, out=out,
                                      err=err)
            except (TraceFormatError, WellFormednessError, OSError) as exc:
                print("watch: {} is not an analyzable trace: {}".format(
                    path, exc), file=err)
                code = 2
            worst = max(worst, code)
        if limit is not None and scans >= limit:
            return worst
        time.sleep(interval)
