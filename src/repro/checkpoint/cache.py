"""The on-disk result cache behind ``repro analyze --cache DIR``.

Layout under the cache root::

    results/<key>.json        one finished run: the rendered summary
                              text, its exit code, and provenance
    checkpoints/<cfg>-<N>.ckpt    engine checkpoint at event N
    checkpoints/<cfg>-<N>.json    its sidecar: segment hashes of the
                                  trace as it was when the checkpoint
                                  was written

The **result key** hashes everything the printed summary depends on:
the whole-file trace digest, the on-disk format, the ordered analysis
list, ``max_races``, and :data:`CACHE_SCHEMA` (checkpoint state version
+ kernels replay version — bumping either invalidates every cached
result rather than replaying stale semantics).  A warm hit therefore
returns the byte-identical summary with **zero** events replayed.

On a miss, the trace's segment hashes (:mod:`repro.trace.segments`) are
matched against each compatible checkpoint's sidecar; the newest
checkpoint whose event offset lies inside the still-identical prefix is
restored and only the suffix is replayed.  Replay accounting goes to
stderr (stdout carries exactly the summary, so cold and warm output
remain byte-comparable)::

    cache: replayed 4096 of 120000 events (resumed from checkpoint at ...)

Checkpoints are written at the largest segment boundary at or below the
trace's event count, so a later append resumes from within one segment
of the old end.  At most :data:`MAX_CHECKPOINTS` checkpoints are kept
per configuration (oldest pruned).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import sys
from itertools import islice
from typing import Iterator, List, Optional, Sequence

from repro.checkpoint.state import (
    STATE_VERSION,
    CheckpointError,
    restore_session,
    save_session,
)
from repro.core.engine import MultiRunner
from repro.core.kernels import KERNELS_VERSION
from repro.core.registry import create
from repro.reporting import print_entries
from repro.trace.event import Event
from repro.trace.format import parse_event_line, stream_trace
from repro.trace.segments import (
    SEGMENT_EVENTS,
    TraceSegments,
    match_events,
    segment_trace,
)

__all__ = [
    "CACHE_SCHEMA",
    "MAX_CHECKPOINTS",
    "ResultCache",
    "analyze_cached",
]

#: Versions whose change invalidates every cached result and checkpoint.
CACHE_SCHEMA = "state{}-kernels{}".format(STATE_VERSION, KERNELS_VERSION)

#: Checkpoints kept per (analysis set, format) configuration.
MAX_CHECKPOINTS = 4


def _key(*parts) -> str:
    blob = json.dumps(parts, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:32]


def _suffix_events(path: str, segs: TraceSegments,
                   from_events: int) -> Iterator[Event]:
    """Iterate the trace's events from the segment boundary at
    ``from_events`` (a multiple of the segment size covered by
    ``segs.boundaries``) — seeking straight to the boundary's byte
    offset, so the skipped prefix is never parsed."""
    if from_events == 0:
        stream = stream_trace(path)
        return iter(stream)
    offset = segs.header_end + segs.boundaries[
        from_events // segs.segment_events - 1]
    remaining = segs.total_events - from_events
    if segs.fmt == "binary-v2":
        from repro.trace.binfmt import BinaryTraceStream

        # hand the reader the real header (re-read from the file) as its
        # sniffed prefix, with the handle already seeked to the suffix
        fp = open(path, "rb")
        try:
            header = fp.read(segs.header_end)
            fp.seek(offset)
        except BaseException:
            fp.close()
            raise
        stream = BinaryTraceStream(fp, owns_fp=True, prefix=header)
        return islice(iter(stream), remaining)

    def _text() -> Iterator[Event]:
        fp = open(path, "rb")
        fp.seek(offset)
        text = io.TextIOWrapper(fp, encoding="utf-8")
        try:
            lineno = 0
            for line in text:
                lineno += 1
                event = parse_event_line(line, lineno)
                if event is not None:
                    yield event
        finally:
            text.close()

    return islice(_text(), remaining)


class ResultCache:
    """One cache root: result lookups, checkpoint placement and pruning."""

    def __init__(self, root: str):
        self.root = root
        self.results_dir = os.path.join(root, "results")
        self.checkpoints_dir = os.path.join(root, "checkpoints")
        os.makedirs(self.results_dir, exist_ok=True)
        os.makedirs(self.checkpoints_dir, exist_ok=True)

    # -- results ---------------------------------------------------------
    def result_key(self, segs: TraceSegments, analyses: Sequence[str],
                   max_races: int) -> str:
        return _key("result", CACHE_SCHEMA, segs.fmt, segs.trace_digest,
                    list(analyses), max_races)

    def load_result(self, key: str) -> Optional[dict]:
        path = os.path.join(self.results_dir, key + ".json")
        try:
            with open(path, "r", encoding="utf-8") as fp:
                doc = json.load(fp)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or "summary" not in doc:
            return None
        return doc

    def store_result(self, key: str, doc: dict) -> None:
        path = os.path.join(self.results_dir, key + ".json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fp:
            json.dump(doc, fp, sort_keys=True, indent=1)
        os.replace(tmp, path)

    # -- checkpoints -----------------------------------------------------
    def config_key(self, fmt: str, analyses: Sequence[str],
                   segment_events: int) -> str:
        return _key("config", CACHE_SCHEMA, fmt, list(analyses),
                    segment_events)

    def _sidecars(self, cfg: str) -> List[str]:
        prefix = cfg + "-"
        try:
            names = os.listdir(self.checkpoints_dir)
        except OSError:
            return []
        return sorted(n for n in names
                      if n.startswith(prefix) and n.endswith(".json"))

    def best_checkpoint(self, cfg: str,
                        segs: TraceSegments) -> Optional[dict]:
        """The usable checkpoint with the largest event offset: its
        sidecar's segment hashes must still match a prefix of ``segs``
        covering the checkpoint's offset.  Returns the sidecar doc with
        ``"path"`` pointing at the ``.ckpt`` file, or None."""
        best: Optional[dict] = None
        for name in self._sidecars(cfg):
            path = os.path.join(self.checkpoints_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as fp:
                    doc = json.load(fp)
                saved = TraceSegments.from_doc(doc["segments"])
                events = doc["events"]
            except (OSError, ValueError, KeyError):
                continue
            if events > match_events(saved, segs):
                continue
            ckpt = path[:-len(".json")] + ".ckpt"
            if not os.path.exists(ckpt):
                continue
            if best is None or events > best["events"]:
                doc["path"] = ckpt
                best = doc
        return best

    def store_checkpoint(self, cfg: str, session, events: int,
                         segs: TraceSegments,
                         analyses: Sequence[str]) -> str:
        """Checkpoint ``session`` (which must be positioned at
        ``events``) and write its sidecar; prunes old checkpoints past
        :data:`MAX_CHECKPOINTS`."""
        stem = os.path.join(self.checkpoints_dir,
                            "{}-{:012d}".format(cfg, events))
        tmp = stem + ".ckpt.tmp"
        with open(tmp, "wb") as fp:
            save_session(session, fp)
        os.replace(tmp, stem + ".ckpt")
        sidecar = {
            "schema": CACHE_SCHEMA,
            "config": cfg,
            "analyses": list(analyses),
            "events": events,
            "segments": segs.to_doc(),
        }
        tmp = stem + ".json.tmp"
        with open(tmp, "w", encoding="utf-8") as fp:
            json.dump(sidecar, fp, sort_keys=True)
        os.replace(tmp, stem + ".json")
        self._prune(cfg)
        return stem + ".ckpt"

    def _prune(self, cfg: str) -> None:
        names = self._sidecars(cfg)  # sorted ascending by event offset
        for name in names[:-MAX_CHECKPOINTS]:
            stem = os.path.join(self.checkpoints_dir, name[:-len(".json")])
            for suffix in (".json", ".ckpt"):
                try:
                    os.unlink(stem + suffix)
                except OSError:
                    pass


def analyze_cached(cache_dir: str, trace_path: str,
                   analyses: Sequence[str], max_races: int = 10,
                   out=None, err=None,
                   segment_events: int = SEGMENT_EVENTS) -> int:
    """``repro analyze TRACE --cache DIR``: cached, checkpointed,
    streaming analysis.  Returns the CLI exit code (0/1/2 contract);
    the summary goes to ``out`` (default stdout) and the replay
    accounting line to ``err`` (default stderr), so stdout is
    byte-identical across cold, resumed, and warm runs.
    """
    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    analyses = list(analyses)
    cache = ResultCache(cache_dir)
    segs = segment_trace(trace_path, segment_events)
    total = segs.total_events

    result_key = cache.result_key(segs, analyses, max_races)
    cached = cache.load_result(result_key)
    if cached is not None:
        out.write(cached["summary"])
        print("cache: warm hit - replayed 0 of {} events".format(total),
              file=err)
        return cached["exit"]

    cfg = cache.config_key(segs.fmt, analyses, segment_events)
    resumed_from = 0
    session = None
    checkpoint = cache.best_checkpoint(cfg, segs)
    if checkpoint is not None:
        try:
            session = restore_session(checkpoint["path"])
            resumed_from = checkpoint["events"]
        except CheckpointError:
            session = None  # unreadable checkpoint: fall back to cold
            resumed_from = 0
    if session is None:
        stream = stream_trace(trace_path)
        info = stream.require_info()
        runner = MultiRunner([create(name, info) for name in analyses])
        session = runner.session()
        source = iter(stream)
    else:
        source = _suffix_events(trace_path, segs, resumed_from)

    # replay to the newest segment boundary, checkpoint there (so the
    # next append resumes within one segment of this trace's end), then
    # replay the partial tail
    boundary = (total // segment_events) * segment_events
    if boundary > resumed_from:
        session.feed(source, max_events=boundary - resumed_from)
        cache.store_checkpoint(cfg, session, boundary, segs, analyses)
    session.feed(source)
    result = session.finish()

    buf = io.StringIO()
    races_found = print_entries(result, max_races=max_races, out=buf)
    exit_code = 2 if not result.ok else races_found
    summary = buf.getvalue()
    out.write(summary)
    if resumed_from:
        print("cache: replayed {} of {} events (resumed from checkpoint "
              "at {})".format(total - resumed_from, total, resumed_from),
              file=err)
    else:
        print("cache: replayed {} of {} events (cold)".format(total, total),
              file=err)
    cache.store_result(result_key, {
        "schema": CACHE_SCHEMA,
        "analyses": analyses,
        "max_races": max_races,
        "format": segs.fmt,
        "trace_digest": segs.trace_digest,
        "events": total,
        "exit": exit_code,
        "summary": summary,
    })
    return exit_code
