"""Engine-session checkpoints: serialize a live pass, resume elsewhere.

A checkpoint is the *complete* resumable state of an
:class:`~repro.core.engine.EngineSession` mid-stream — the thing
:class:`~repro.core.engine.SessionSnapshot` deliberately is not.  One
pickle of the session's object graph captures:

* every analysis' mutable state — vector clocks, packed epochs,
  per-variable metadata maps, SmartTrack CS lists — via the
  serialization contract on :meth:`repro.core.base.Analysis.__getstate__`
  (which also demotes the ``trace`` back-reference to its dimensions and
  drops the unpicklable compiled dispatch table);
* the shared HB clock banks *with their sharing intact*: because the
  banks and their member analyses travel in the same pickle, every
  member's ``hh``/``vol_w``/``vol_r``/``cls_clocks``/``lock_hb``
  aliases reconstruct pointing at the same bank objects, and the saved
  refcounts stay correct — no per-member deep copy, which is exactly
  the cost the sharing exists to avoid (DESIGN.md §5.2);
* the engine's cross-installment state: the event offset, per-entry
  peaks and failures, and the shared same-epoch filter's tokens
  (exported as plain dicts, so a checkpoint written under the
  vectorized numpy filter restores into the scalar one and vice versa).

What is *not* serialized — and why that is correct:

* **batch kernels** (:mod:`repro.core.kernels`): they hold numpy views
  into the analyses' live columns, which cannot outlive the process.
  :func:`save_session` flushes them first (settling lazily-derived
  metadata into the analyses), and :func:`restore_session` attaches
  fresh kernels by the *restoring* environment's capability — a
  checkpoint written with numpy restores fine without it, and vice
  versa, because kernel and scalar replay are bit-identical by
  invariant (the differential fuzz sweep proves it);
* **group topology decisions**: shared-HB groups are locked in when the
  first session opens, so the restored runner marks grouping and kernel
  attachment as already done; non-grouped entries may gain kernels, but
  a pickled group never gains or loses members;
* the progress callback (not picklable, presentation-only).

File layout: a magic line, one JSON metadata line (version, event
offset, analysis names — readable without unpickling via
:func:`peek_checkpoint`), then the pickle payload.
"""

from __future__ import annotations

import json
import pickle
from typing import BinaryIO, Union

from repro.core.engine import AnalysisFailure, EngineSession, MultiRunner

__all__ = [
    "MAGIC",
    "STATE_VERSION",
    "CheckpointError",
    "peek_checkpoint",
    "restore_session",
    "save_session",
]

#: First line of every checkpoint file (a valid text comment, like the
#: trace formats' magic, so a peeking text tool sees something sane).
MAGIC = b"# repro checkpoint v1\n"

#: Version of the serialized state's shape; bump on any change to what
#: the payload contains or how it is reconstructed.  Part of the result
#: cache's key, so stale checkpoints are never restored.
STATE_VERSION = 1

_PROTOCOL = 4


class CheckpointError(ValueError):
    """A file that is not a readable checkpoint of this version."""


def _portable_error(error: BaseException) -> BaseException:
    """The failure's exception if it survives a pickle round trip, else
    a stand-in carrying its repr (exceptions with custom constructors
    may not unpickle; a checkpoint must never fail over a diagnostic)."""
    try:
        pickle.loads(pickle.dumps(error, protocol=_PROTOCOL))
        return error
    except Exception:
        return RuntimeError(repr(error))


def save_session(session: EngineSession,
                 fp: Union[BinaryIO, str]) -> dict:
    """Write ``session``'s full resumable state to ``fp`` (a binary file
    object or a path); returns the metadata dict that was embedded.

    Non-destructive: the session stays open and feedable.  Races already
    delivered by earlier :meth:`~repro.core.engine.EngineSession.feed`
    calls are not re-delivered by the restored session (their records
    are in the analysis state, so final reports are unaffected).
    Raises :class:`CheckpointError` for a finished session.
    """
    if session.finished:
        raise CheckpointError("cannot checkpoint a finished session; "
                              "checkpoints capture a live mid-stream pass")
    runner = session.runner
    entries = session.entries
    # settle lazily-derived metadata (e.g. StKernel CS lists) into the
    # analyses before pickling them; the kernels themselves are not
    # serialized (numpy views die with the process)
    for entry in entries:
        if entry.kernel is not None and entry.failure is None:
            entry.kernel.flush()
    index = {id(entry): i for i, entry in enumerate(entries)}
    payload = {
        "version": STATE_VERSION,
        "events": session.events_processed,
        "analyses": [entry.analysis for entry in entries],
        "groups": [(bank, [index[id(m)] for m in members])
                   for bank, members in runner.hb_groups],
        "failures": [(i, entry.failure.name, entry.failure.event_index,
                      _portable_error(entry.failure.error))
                     for i, entry in enumerate(entries)
                     if entry.failure is not None],
        "peaks": [entry.peak for entry in entries],
        "filter": session._filter_state(),
        # bounded-window bookkeeping (empty/None when windowing is off);
        # restored with .get() so pre-window checkpoints still load
        "window": (dict(session._var_last), session._next_evict),
        "config": {
            "sample_every": runner.sample_every,
            "chunk_events": runner.chunk_events,
            "share_hb": runner._share_hb,
            "use_kernels": runner._use_kernels,
            "max_pending_races": runner.max_pending_races,
            "window_events": runner.window_events,
        },
    }
    meta = {
        "version": STATE_VERSION,
        "events": session.events_processed,
        "analyses": [entry.name for entry in entries],
    }
    owns = isinstance(fp, str)
    out = open(fp, "wb") if owns else fp
    try:
        out.write(MAGIC)
        out.write(json.dumps(meta, sort_keys=True).encode("utf-8") + b"\n")
        pickle.dump(payload, out, protocol=_PROTOCOL)
    finally:
        if owns:
            out.close()
    return meta


def _read_meta(fp: BinaryIO) -> dict:
    magic = fp.readline()
    if magic != MAGIC:
        raise CheckpointError(
            "not a repro checkpoint (expected leading {!r})".format(MAGIC))
    line = fp.readline()
    try:
        meta = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            "corrupt checkpoint metadata line: {}".format(exc))
    if not isinstance(meta, dict) or meta.get("version") != STATE_VERSION:
        raise CheckpointError(
            "unsupported checkpoint version {!r} (this build reads "
            "version {})".format(
                meta.get("version") if isinstance(meta, dict) else None,
                STATE_VERSION))
    return meta


def peek_checkpoint(fp: Union[BinaryIO, str]) -> dict:
    """The checkpoint's metadata (version, event offset, analysis
    names) without unpickling any state."""
    owns = isinstance(fp, str)
    inp = open(fp, "rb") if owns else fp
    try:
        return _read_meta(inp)
    finally:
        if owns:
            inp.close()


def restore_session(fp: Union[BinaryIO, str]) -> EngineSession:
    """Rebuild the runner and return its open session, positioned at the
    checkpoint's event offset.

    Feed the trace suffix from that offset onwards and
    :meth:`~repro.core.engine.EngineSession.finish`; the reports are
    bit-identical to one uninterrupted pass over the whole trace.
    Raises :class:`CheckpointError` for anything unreadable.
    """
    owns = isinstance(fp, str)
    inp = open(fp, "rb") if owns else fp
    try:
        _read_meta(inp)
        try:
            payload = pickle.load(inp)
        except Exception as exc:
            raise CheckpointError(
                "corrupt checkpoint payload: {!r}".format(exc))
    finally:
        if owns:
            inp.close()
    config = payload["config"]
    runner = MultiRunner(
        payload["analyses"],
        sample_every=config["sample_every"],
        chunk_events=config["chunk_events"],
        share_hb=config["share_hb"],
        use_kernels=config["use_kernels"],
        max_pending_races=config["max_pending_races"],
        window_events=config.get("window_events"),
    )
    entries = runner.entries
    for i, peak in enumerate(payload["peaks"]):
        entries[i].peak = peak
    for i, name, event_index, error in payload["failures"]:
        entries[i].failure = AnalysisFailure(name, event_index, error)
    # the saved group topology is final: grouping decisions were locked
    # in when the original first session opened
    runner.hb_groups = [(bank, [entries[i] for i in idxs])
                        for bank, idxs in payload["groups"]]
    runner._groups_formed = True
    runner._kernels_attached = True
    # fresh kernels by the *restoring* environment's capability; grouped
    # entries never get one (a kernel entry replays solo), and kernels
    # attach mid-run exactly (StKernel seeds its repair log from the
    # restored lock stacks)
    grouped = {id(m) for _, members in runner.hb_groups for m in members}
    if (config["use_kernels"] is not False and not config["sample_every"]
            and config.get("window_events") is None):
        from repro.core import kernels

        if kernels.kernels_available():
            for entry in entries:
                if entry.failure is None and id(entry) not in grouped:
                    entry.kernel = entry.analysis.make_kernel()
    runner._kernels_on = any(e.kernel is not None for e in entries)
    session = runner.session()
    session._events_seen = payload["events"]
    window = payload.get("window")
    if window is not None and runner.window_events is not None:
        var_last, next_evict = window
        session._var_last = dict(var_last)
        session._next_evict = next_evict
    toks, last_r, last_w = payload["filter"]
    session._seed_filter(toks, last_r, last_w)
    return session
