"""Checkpointed incremental re-analysis.

The pipeline's offline story used to be all-or-nothing: any change to a
recorded trace — one appended window, a re-recorded tail — cost a full
replay.  This package makes re-analysis proportional to what actually
changed (ROADMAP open item 5):

* :mod:`repro.checkpoint.state` — serialize a live
  :class:`~repro.core.engine.EngineSession` (every analysis' clocks,
  epochs, per-variable metadata and CS lists, the shared HB clock banks
  with refcount-correct reconstruction, the same-epoch filter tokens)
  and restore it in another process, positioned to replay the remaining
  suffix with reports bit-identical to an uninterrupted pass;
* :mod:`repro.checkpoint.cache` — an on-disk result cache keyed by
  (trace digest, analysis set, format/kernel version): a warm hit
  returns the byte-identical summary with zero events replayed, a stale
  trace resumes from the nearest still-valid checkpoint (staleness via
  :mod:`repro.trace.segments`);
* :mod:`repro.checkpoint.watch` — ``repro watch DIR``: poll a directory
  and re-analyze traces as they change, through the cache.
"""

from repro.checkpoint.state import (
    MAGIC,
    STATE_VERSION,
    CheckpointError,
    peek_checkpoint,
    restore_session,
    save_session,
)
from repro.checkpoint.cache import CACHE_SCHEMA, ResultCache, analyze_cached
from repro.checkpoint.watch import watch_directory

__all__ = [
    "CACHE_SCHEMA",
    "CheckpointError",
    "MAGIC",
    "ResultCache",
    "STATE_VERSION",
    "analyze_cached",
    "peek_checkpoint",
    "restore_session",
    "save_session",
    "watch_directory",
]
