"""Shared result formatting for the CLI and the detection server.

``repro analyze``, ``repro serve`` (single mode), and every tenant
summary a multi-tenant server prints must be *byte-identical* for the
same trace — that is what lets the server-smoke CI job diff a tenant's
summary block against a solo ``repro analyze`` run.  The only way to
keep three call sites byte-identical is to have one formatter, so the
helpers live here rather than in :mod:`repro.cli` (where they started)
or :mod:`repro.server`.

Everything writes through an explicit ``out`` stream (default
``sys.stdout``); the server passes a per-call buffer so one tenant's
summary block lands atomically even with many producer threads
printing.
"""

from __future__ import annotations

import json
import sys
from typing import Optional

__all__ = [
    "emit_live_race",
    "emit_summary_jsonl",
    "print_entries",
    "print_report",
]


def print_report(name: str, report, max_races: int = 10,
                 memory: bool = False, out=None) -> int:
    """Print one analysis report; returns 1 if it found races, else 0."""
    out = out or sys.stdout
    line = "{:<12} {} static / {} dynamic race(s)".format(
        name, report.static_count, report.dynamic_count)
    if memory:
        line += "  [peak metadata {}K]".format(
            report.peak_footprint_bytes // 1024)
    print(line, file=out)
    for race in report.races[:max_races]:
        print("   event {:>6}  T{}  {} of x{}  ({})".format(
            race.index, race.tid, race.access, race.var, race.kinds),
            file=out)
    if report.dynamic_count > max_races:
        print("   ... and {} more".format(
            report.dynamic_count - max_races), file=out)
    return 1 if report.dynamic_count else 0


def print_entries(result, max_races: int = 10, memory: bool = False,
                  vindicate_trace=None, out=None) -> int:
    """The per-analysis summary block shared by ``analyze [--stream]``
    and ``serve``: one FAILED line or one report per entry.  With
    ``vindicate_trace``, each racy report's first race is vindicated
    inline (the materialized-trace ``analyze --vindicate`` path).
    Returns 1 if any surviving analysis found races."""
    out = out or sys.stdout
    races_found = 0
    for entry in result.entries:
        if entry.failure is not None:
            print("{:<12} FAILED at event {}: {!r}".format(
                entry.name, entry.failure.event_index, entry.failure.error),
                file=out)
            continue
        races_found |= print_report(entry.name, entry.report,
                                    max_races=max_races, memory=memory,
                                    out=out)
        if vindicate_trace is not None and entry.report.races:
            from repro.vindication.vindicate import vindicate
            verdict = vindicate(vindicate_trace, entry.report.first_race)
            print("   vindication of first race: {}".format(verdict.verdict),
                  file=out)
    return races_found


def emit_live_race(name: str, race, emit_json: bool,
                   tenant: Optional[str] = None, out=None) -> None:
    """Print one just-discovered race (flushed: the consumer is live).

    ``tenant`` tags the line with its session in multi-tenant mode; the
    single-producer output (``tenant=None``) is byte-identical to what
    ``repro serve`` has always printed.
    """
    out = out or sys.stdout
    if emit_json:
        payload = {"type": "race", "analysis": name, "event": race.index,
                   "tid": race.tid, "var": race.var, "site": race.site,
                   "access": race.access, "kinds": race.kinds}
        if tenant is not None:
            payload["tenant"] = tenant
        print(json.dumps(payload, sort_keys=True), file=out, flush=True)
    else:
        prefix = "" if tenant is None else "[{}] ".format(tenant)
        print("{}race {:<12} event {:>6}  T{}  {} of x{}  ({})".format(
            prefix, name, race.index, race.tid, race.access, race.var,
            race.kinds), file=out, flush=True)


def emit_summary_jsonl(result, tenant: Optional[str] = None,
                       out=None) -> int:
    """The ``--emit jsonl`` final summary: one ``failure`` or
    ``summary`` object per analysis.  Returns 1 if any surviving
    analysis found races."""
    out = out or sys.stdout
    races_found = 0
    for entry in result.entries:
        if entry.failure is not None:
            payload = {"type": "failure", "analysis": entry.name,
                       "event": entry.failure.event_index,
                       "error": repr(entry.failure.error)}
        else:
            payload = {"type": "summary", "analysis": entry.name,
                       "dynamic": entry.report.dynamic_count,
                       "static": entry.report.static_count,
                       "events": result.events_processed}
            races_found |= 1 if entry.report.dynamic_count else 0
        if tenant is not None:
            payload["tenant"] = tenant
        print(json.dumps(payload, sort_keys=True), file=out, flush=True)
    return races_found
