"""The constraint graph built online by the "w/ G" analyses (paper §4.3).

Nodes are trace events; edges record the cross-thread orderings the
analysis discovered — rule (a) joins (release → conflicting access) and
rule (b) joins (release → release).  Program order and hard
(fork/join/volatile/class-init) edges are implicit in the trace and are
re-derived by the vindicator, as they need no analysis state to compute.

Building the graph is a deliberate cost: Table 3's "w/ G" columns measure
exactly this time and memory overhead, which motivates the paper's
record & replay alternative (§4.3).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

NODE_BYTES = 16
EDGE_BYTES = 24


class ConstraintGraph:
    """Event-indexed DAG of analysis-discovered ordering edges."""

    def __init__(self, num_events_hint: int = 0):
        self.num_events_hint = num_events_hint
        self.edges: List[Tuple[int, int, str]] = []
        self._edge_set: Set[Tuple[int, int]] = set()
        self._events_noted = 0

    def note_event(self, i: int) -> None:
        """Register an event node (models Vindicator's per-event node cost)."""
        self._events_noted += 1

    def add_edge(self, src: int, dst: int, label: str) -> None:
        """Record an ordering edge ``src`` → ``dst`` (deduplicated)."""
        key = (src, dst)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self.edges.append((src, dst, label))

    def edges_labeled(self, label: str) -> List[Tuple[int, int]]:
        """All (src, dst) pairs carrying the given label."""
        return [(s, d) for s, d, lab in self.edges if lab == label]

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def footprint_bytes(self) -> int:
        """Approximate bytes held by nodes and edges."""
        return self._events_noted * NODE_BYTES + len(self.edges) * EDGE_BYTES
