"""VindicateRace: confirm or refute a DC/WDC-race (paper §2.4, §3, §4.3).

DC and WDC analyses can report races that are not predictable races
(Figure 3).  Vindication checks a reported race by attempting to construct
a *predicted trace* that exposes it.  Following prior work's Vindicator
[Roemer et al. 2018] — which the paper reuses unchanged for WDC-races,
since it never relies on DC rule (b) — vindication here proceeds in two
phases:

1. **Constraint-guided construction** (the Vindicator approach): build the
   ordering constraints a witness must respect — program order, hard
   (fork/join/volatile/class-init) edges, rule (a) edges, and last-writer
   dependences — take the backward closure from the racing pair, and
   greedily linearize it (original-trace order as the tie-breaker),
   respecting lock mutual exclusion.  The candidate is validated with the
   predicted-trace checker.
2. **Exhaustive fallback**: when the greedy construction fails, an
   exhaustive memoized schedule search decides the pair exactly (on small
   traces), so false races are *refuted* rather than left unknown.

The result verdicts: ``"vindicated"`` (witness attached), ``"refuted"``
(proof of no witness), or ``"inconclusive"`` (search budget exhausted).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.base import RaceRecord
from repro.oracle.closure import (
    _hard_edges,
    _po_edges,
    _rule_a_edges,
    compute_closure,
)
from repro.oracle.predictable import check_predicted_trace, search_witness
from repro.trace.event import ACQUIRE, READ, RELEASE, WRITE, conflicts
from repro.trace.trace import Trace
from repro.vindication.graph import ConstraintGraph

Pair = Tuple[int, int]


class VindicationResult:
    """Outcome of vindicating one reported race."""

    def __init__(self, verdict: str, witness: Optional[List[int]],
                 pair: Optional[Pair]):
        self.verdict = verdict
        self.witness = witness
        self.pair = pair

    @property
    def vindicated(self) -> bool:
        return self.verdict == "vindicated"

    def __repr__(self) -> str:
        return "VindicationResult({}, pair={})".format(self.verdict, self.pair)


def candidate_pairs(trace: Trace, race: Union[RaceRecord, Pair]) -> List[Pair]:
    """Racing-pair candidates for a reported race.

    Analyses report the *second* access of a race (§5.1); the earlier
    conflicting accesses unordered by WDC — the weakest relation, hence the
    superset of candidates — are the possible partners, tried latest-first
    (the last conflicting access is what the analysis actually compared).
    """
    if isinstance(race, RaceRecord):
        second = race.index
    else:
        return [race]
    closure = compute_closure(trace, "wdc")
    events = trace.events
    out = []
    for i in range(second - 1, -1, -1):
        if conflicts(events[i], events[second]) and not closure.before[second, i]:
            out.append((i, second))
    return out


def vindicate(trace: Trace, race: Union[RaceRecord, Pair],
              graph: Optional[ConstraintGraph] = None,
              max_states: int = 400_000) -> VindicationResult:
    """Vindicate a reported race (see module docstring).

    ``graph`` may be the constraint graph built by an ``unopt-*-g``
    analysis; its recorded rule (a) edges are used instead of recomputing
    them from the trace.
    """
    pairs = candidate_pairs(trace, race)
    if not pairs:
        return VindicationResult("refuted", None, None)
    exhausted_all = True
    for pair in pairs:
        witness = _construct(trace, pair, graph)
        if witness is not None and check_predicted_trace(
                trace, witness, require_race_pair=pair):
            return VindicationResult("vindicated", witness, pair)
        witness, exhausted = search_witness(trace, pair, max_states=max_states)
        if witness is not None:
            return VindicationResult("vindicated", witness, pair)
        exhausted_all = exhausted_all and exhausted
    return VindicationResult(
        "refuted" if exhausted_all else "inconclusive", None, None)


# ----------------------------------------------------------------------
# Phase 1: constraint-guided construction
# ----------------------------------------------------------------------

def _constraint_edges(trace: Trace,
                      graph: Optional[ConstraintGraph]) -> List[Pair]:
    """PO + hard + rule (a) + last-writer edges (never rule (b), §3)."""
    edges = list(_po_edges(trace)) + list(_hard_edges(trace))
    if graph is not None:
        edges.extend(graph.edges_labeled("rule-a"))
    else:
        edges.extend(_rule_a_edges(trace))
    last_writer: Dict[int, int] = {}
    for i, e in enumerate(trace.events):
        if e.kind == WRITE:
            last_writer[e.target] = i
        elif e.kind == READ and e.target in last_writer:
            edges.append((last_writer[e.target], i))
    return edges


def _backward_closure(preds: Dict[int, List[int]], seeds: Sequence[int]) -> Set[int]:
    out: Set[int] = set()
    stack = list(seeds)
    while stack:
        i = stack.pop()
        if i in out:
            continue
        out.add(i)
        stack.extend(preds.get(i, ()))
    return out


def _construct(trace: Trace, pair: Pair,
               graph: Optional[ConstraintGraph]) -> Optional[List[int]]:
    """Vindicator-style witness construction; None on failure.

    Computes the set of events that *must* precede the racing pair — the
    backward closure over program order, hard edges, rule (a) edges, and
    last-writer dependences, additionally closed under lock semantics (if
    an acquire is included, the previous critical section on that lock
    must complete first, so its release is included too).  Because every
    constraint edge points forward in the observed trace, replaying the
    must-set in original order is then a valid schedule; it fails only if
    the closure pulls in the racing events themselves (the pair cannot be
    made adjacent under these — conservative — constraints).
    """
    e1, e2 = pair
    events = trace.events
    edges = _constraint_edges(trace, graph)
    preds: Dict[int, List[int]] = {}
    for src, dst in edges:
        preds.setdefault(dst, []).append(src)

    po_pred: Dict[int, int] = {}
    last_by_thread: Dict[int, int] = {}
    for i, e in enumerate(events):
        if e.tid in last_by_thread:
            po_pred[i] = last_by_thread[e.tid]
        last_by_thread[e.tid] = i

    seeds = [po_pred[racer] for racer in (e1, e2) if racer in po_pred]
    must = _backward_closure(preds, seeds)
    must = _lock_closure(trace, preds, must)
    if must is None:
        return None  # an earlier critical section can never complete
    must.discard(e1)
    must.discard(e2)
    if any(_po_after(trace, i, e1) or _po_after(trace, i, e2) for i in must):
        return None  # a constraint pulls in the race events themselves
    first, second = _final_order(trace, e1, e2)
    return sorted(must) + [first, second]


def _lock_closure(trace: Trace, preds: Dict[int, List[int]],
                  must: Set[int]) -> Optional[Set[int]]:
    """Close ``must`` under lock semantics (see :func:`_construct`).

    For every included acquire, every earlier (partially included)
    critical section on the same lock must complete first: its release is
    pulled in, along with the release's own constraint closure.  Returns
    None when an earlier critical section never releases in the observed
    trace (the witness prefix is infeasible).
    """
    sections: Dict[int, List[Tuple[int, Optional[int]]]] = {}
    open_acq: Dict[Tuple[int, int], int] = {}
    for i, e in enumerate(trace.events):
        if e.kind == ACQUIRE:
            open_acq[(e.tid, e.target)] = i
        elif e.kind == RELEASE:
            acq = open_acq.pop((e.tid, e.target))
            sections.setdefault(e.target, []).append((acq, i))
    for (tid, lock), acq in open_acq.items():
        sections.setdefault(lock, []).append((acq, None))
    for cs_list in sections.values():
        cs_list.sort()

    out = set(must)
    changed = True
    while changed:
        changed = False
        for cs_list in sections.values():
            included = [k for k, (acq, _rel) in enumerate(cs_list)
                        if acq in out]
            if not included:
                continue
            latest = max(included)
            for k in range(latest):
                acq, rel = cs_list[k]
                if acq in out and (rel is None or rel not in out):
                    if rel is None:
                        return None
                    out.add(rel)
                    out |= _backward_closure(preds, [rel])
                    changed = True
    return out


def _po_after(trace: Trace, i: int, racer: int) -> bool:
    e, r = trace.events[i], trace.events[racer]
    return e.tid == r.tid and i >= racer


def _final_order(trace: Trace, e1: int, e2: int) -> Pair:
    a, b = trace.events[e1], trace.events[e2]
    if a.kind == WRITE and b.kind == READ:
        return e2, e1
    return e1, e2
