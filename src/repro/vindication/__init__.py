"""Vindication: checking that a DC/WDC-race is a true predictable race.

DC (and WDC) are unsound relations: a reported race may not correspond to
any feasible reordering.  Prior work's Vindicator [Roemer et al. 2018]
builds a constraint graph during the analysis and later attempts to
construct a reordered trace exposing the race; the paper reuses it
unchanged for WDC-races (§3) and discusses its cost (§4.3, Table 3 "w/ G").

* :class:`~repro.vindication.graph.ConstraintGraph` — the event graph built
  online by the ``unopt-*-g`` analyses.
* :func:`~repro.vindication.vindicate.vindicate` — VindicateRace-style
  witness construction and validation.
"""

from repro.vindication.graph import ConstraintGraph
from repro.vindication.vindicate import VindicationResult, vindicate

__all__ = ["ConstraintGraph", "VindicationResult", "vindicate"]
