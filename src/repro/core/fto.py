"""Algorithm 2: FTO-based predictive analyses (FTO-{WCP, DC, WDC}).

Applies FastTrack-Ownership's epoch and ownership optimizations to the
predictive analyses (paper §4.1):

* ``W_x`` becomes an epoch; ``R_x`` an epoch or vector clock representing
  the last reads *and writes*.
* Same-epoch and owned cases skip race checks (and their metadata updates
  stay O(1)).
* Conflicting-critical-section (rule (a)) metadata is unchanged from
  Algorithm 1 — ``L^r_{m,x}`` now covers reads and writes, and ``R_m``
  covers read and written variables — which is exactly the remaining cost
  SmartTrack's CCS optimizations then attack (§4.2).

The local clock is incremented at acquires as well as releases to support
the same-epoch checks (Algorithm 2 line 3).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple, Union

from repro.clocks.epoch import TID_BITS, TID_MASK, epoch_leq
from repro.clocks.vector_clock import VectorClock
from repro.core.base import (
    DICT_ENTRY_BYTES,
    EPOCH_BYTES,
    VectorClockAnalysis,
    _vc_bytes,
)
from repro.core.rule_b import RuleBQueues
from repro.core.unopt import _WcpMixin
from repro.trace.trace import Trace

Meta = Union[None, int, VectorClock]


class FTOPredictive(VectorClockAnalysis):
    """Shared implementation of Algorithm 2 (see module docstring)."""

    tier = "fto"
    BUMP_AT_ACQUIRE = True
    #: implements the [Same Epoch] fast paths (Algorithm 2)
    SAME_EPOCH_SKIP = True
    USES_RULE_B = False
    EPOCH_ACQ_QUEUES = False
    #: see UnoptPredictive.SPLIT_L_BY_THREAD (WCP-only precision fix)
    SPLIT_L_BY_THREAD = False

    def __init__(self, trace: Trace, rule_b_style: str = "log",
                 collect_cases: bool = False):
        super().__init__(trace, collect_cases=collect_cases)
        self._read: Dict[int, Meta] = {}
        self._write: Dict[int, Optional[int]] = {}
        self._lr: Dict[Tuple[int, int], VectorClock] = {}
        self._lw: Dict[Tuple[int, int], VectorClock] = {}
        self._rm: Dict[int, Set[int]] = {}  # reads and writes (§4.1)
        self._wm: Dict[int, Set[int]] = {}
        self._queues: Optional[RuleBQueues] = None
        if self.USES_RULE_B:
            self._queues = RuleBQueues(
                self.width, epoch_acquires=self.EPOCH_ACQ_QUEUES,
                style=rule_b_style)

    # -- synchronization (Algorithm 2 lines 1–13) -------------------------
    def acquire(self, t: int, m: int, i: int, site: int) -> None:
        self._acquire_compose(t, m)
        if self._queues is not None:
            self._queues.on_acquire(t, m, self._time(t), self.cc[t])
        self.held[t].append(m)
        self._bump(t)  # supports same-epoch checks (line 3)

    def release(self, t: int, m: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        if self._queues is not None:
            self._queues.on_release(t, m, cc_t, self._publish_clock(t))
        publish = self._publish_clock(t)
        rm = self._rm.get(m)
        if rm:
            for x in rm:
                self._l_update(self._lr, t, m, x, publish)
            rm.clear()
        wm = self._wm.get(m)
        if wm:
            for x in wm:
                self._l_update(self._lw, t, m, x, publish)
            wm.clear()
        self._release_publish(t, m)
        stack = self.held[t]
        if stack and stack[-1] == m:
            stack.pop()
        else:
            stack.remove(m)
        self._bump(t)

    # -- L^{r,w}_{m,x} maintenance ------------------------------------------
    def _l_update(self, store, t: int, m: int, x: int,
                  publish: VectorClock) -> None:
        """Join this release's time into L (per-thread split for WCP)."""
        if self.SPLIT_L_BY_THREAD:
            per_thread = store.get((m, x))
            if per_thread is None:
                store[(m, x)] = {t: publish.copy()}
            else:
                clock = per_thread.get(t)
                if clock is None:
                    per_thread[t] = publish.copy()
                else:
                    clock.join(publish)
            return
        clock = store.get((m, x))
        if clock is None:
            store[(m, x)] = publish.copy()
        else:
            clock.join(publish)

    def _l_join(self, store, t: int, m: int, x: int) -> None:
        """Join prior conflicting critical sections into C_t (rule (a))."""
        entry = store.get((m, x))
        if entry is None:
            return
        cc_t = self.cc[t]
        if self.SPLIT_L_BY_THREAD:
            for u, clock in entry.items():
                if u != t:
                    cc_t.join(clock)
        else:
            cc_t.join(entry)

    # -- accesses (Algorithm 2 lines 14–44) --------------------------------
    def write(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        e = self._time(t) << TID_BITS | t
        w = self._write.get(x)
        if w == e:
            return  # [Write Same Epoch]
        for m in self.held[t]:  # rule (a), lines 16–19
            self._l_join(self._lr, t, m, x)
            self._l_join(self._lw, t, m, x)
            self._wm.setdefault(m, set()).add(x)
            self._rm.setdefault(m, set()).add(x)
        r = self._read.get(x)
        if type(r) is VectorClock:
            self._count("write_shared")
            if not r.leq_except(cc_t, t):  # [Write Shared]
                self._race(i, site, x, t, "write", "access-write")
        elif r is None or (r & TID_MASK) == t:
            self._count("write_owned" if r is not None else "write_exclusive")
        else:
            self._count("write_exclusive")
            if not epoch_leq(r, cc_t, t):  # [Write Exclusive]
                self._race(i, site, x, t, "write", "access-write")
        self._write[x] = e
        self._read[x] = e  # line 25: R_x tracks reads and writes

    def read(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = self._time(t)
        e = time << TID_BITS | t
        r = self._read.get(x)
        if r == e:
            return  # [Read Same Epoch]
        is_vc = type(r) is VectorClock
        if is_vc and r[t] == time:
            return  # [Shared Same Epoch]
        for m in self.held[t]:  # rule (a), lines 29–31
            self._l_join(self._lw, t, m, x)
            self._rm.setdefault(m, set()).add(x)
        if is_vc:
            if r[t] != 0:
                self._count("read_shared_owned")
                r[t] = time  # [Read Shared Owned]
                return
            self._count("read_shared")
            if not epoch_leq(self._write.get(x), cc_t, t):  # [Read Shared]
                self._race(i, site, x, t, "read", "write-read")
            r[t] = time
            return
        if r is None:
            self._count("read_exclusive")
            self._read[x] = e
            return
        if (r & TID_MASK) == t:
            self._count("read_owned")
            self._read[x] = e  # [Read Owned]
            return
        if epoch_leq(r, cc_t, t):
            self._count("read_exclusive")
            self._read[x] = e  # [Read Exclusive]
            return
        self._count("read_share")
        if not epoch_leq(self._write.get(x), cc_t, t):  # [Read Share]
            self._race(i, site, x, t, "read", "write-read")
        vc = VectorClock.zeros(self.width)
        vc[r & TID_MASK] = r >> TID_BITS
        vc[t] = time
        self._read[x] = vc

    # -- bounded-window mode --------------------------------------------------
    def evict_window(self, cutoff: int, stale) -> None:
        """Drop per-variable access and rule (a) metadata of stale
        variables (per-lock clocks and rule (b) queues are O(locks),
        not per-variable, and stay; DESIGN.md §11)."""
        if not stale:
            return
        for x in stale:
            self._read.pop(x, None)
            self._write.pop(x, None)
        for store in (self._lr, self._lw):
            for key in [k for k in store if k[1] in stale]:
                del store[key]
        for s in self._rm.values():
            s.difference_update(stale)
        for s in self._wm.values():
            s.difference_update(stale)

    # -- memory --------------------------------------------------------------
    def footprint_bytes(self) -> int:
        vc = _vc_bytes(self.width)
        total = self._base_footprint()
        total += len(self._write) * (EPOCH_BYTES + DICT_ENTRY_BYTES)
        for r in self._read.values():
            total += DICT_ENTRY_BYTES
            total += vc if isinstance(r, VectorClock) else EPOCH_BYTES
        if self.SPLIT_L_BY_THREAD:
            n_l = sum(len(e) for e in self._lr.values())
            n_l += sum(len(e) for e in self._lw.values())
        else:
            n_l = len(self._lr) + len(self._lw)
        total += n_l * (vc + DICT_ENTRY_BYTES)
        for s in self._rm.values():
            total += DICT_ENTRY_BYTES + 8 * len(s)
        for s in self._wm.values():
            total += DICT_ENTRY_BYTES + 8 * len(s)
        if self._queues is not None:
            total += self._queues.footprint_bytes()
        return total


class FTOWCP(_WcpMixin, FTOPredictive):
    """FTO-WCP (Table 1)."""

    name = "fto-wcp"
    USES_RULE_B = True
    EPOCH_ACQ_QUEUES = True


class FTODC(FTOPredictive):
    """FTO-DC: Algorithm 2 as printed (Table 1)."""

    name = "fto-dc"
    relation = "dc"
    USES_RULE_B = True


class FTOWDC(FTOPredictive):
    """FTO-WDC: Algorithm 2 minus rule (b) (§3, §4.1)."""

    name = "fto-wdc"
    relation = "wdc"
    USES_RULE_B = False
