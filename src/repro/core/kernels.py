"""Columnar batch kernels for the engine's replay hot path (DESIGN.md §8).

The engine decodes each chunk into five flat int columns (index, kind,
tid, target, site).  Replay then dispatches per event in pure Python —
~µs of interpreter work per event even when the event lands on a
[Same Epoch] fast path that is semantically one integer compare.  This
module vectorizes exactly those provably-cheap decisions over a whole
chunk at once with numpy, and falls back to the per-event handlers for
everything else:

* :class:`VecSameEpochFilter` — the decode-time shared same-epoch filter
  (same drop rule as the scalar loop in :meth:`EngineSession.feed`,
  replayed chunk-at-a-time with sort/cumsum group machinery).
* :class:`HbEpochKernel` / :class:`StKernel` — per-analysis chunk
  kernels for the epoch tiers (FT2, FTO-HB, SmartTrack-*).  Each chunk
  they (1) reconstruct every event's *exact* packed epoch from the
  per-class clock-bump sites (``BUMP_KINDS``: local clocks advance by
  exactly one per bump event, and joins never raise a thread's own
  component), (2) gather the per-variable last-access columns, and
  (3) classify each access as **drop** (same-epoch no-op), **fast**
  (the handler's fast path, applied as a vector scatter), or **slow**
  (everything else — read-share, extra-metadata absorption, race
  recording).  Only the slow residue and the synchronization events walk
  through the per-event dispatch table, in original order.

Correctness of the chunk-at-once classification rests on two facts:

* *Chaining*: an access may be classified from vector state only while
  every earlier access to the same target in the chunk was itself
  classified fast or drop.  The fast paths write nothing but the
  last-access epochs, so the *effective* ``R_x``/``W_x`` at each chained
  position is the epoch of the nearest earlier chained read/write in the
  chunk (a per-group prefix scan), falling back to the chunk-start
  columns.  The first access that fails its checks breaks the chain:
  it and everything after it on that target walk the per-event
  handlers, which re-read live state.  Fast positions therefore always
  precede slow positions of their target, and committing the per-group
  *last* fast epoch before the walk preserves program order.
* *Monotonicity*: the HB kernels judge ``epoch ⪯ C`` against a
  chunk-start snapshot of the clock matrix.  Clocks only grow during a
  chunk, so a true snapshot verdict is true at the event; a false one
  merely demotes the access to the slow path, which recomputes it.
  Same-thread chains — the common shape in bursty traces — never
  break on snapshot staleness, because an own epoch compares by tid.

Everything is gated on :func:`kernels_available`: numpy importable and
``REPRO_NO_NUMPY`` unset.  Without numpy the engine keeps its pure-Python
scalar paths — same reports, bit for bit (the fuzz sweep asserts this).
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import List, Sequence, Tuple

from repro.clocks.epoch import META_VC, TID_BITS, TID_MASK

try:  # optional dependency: the [kernels] extra
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

#: Version of the kernels' replay semantics, part of the on-disk result
#: cache key (:mod:`repro.checkpoint.cache`): bump whenever a kernel
#: change could alter which events reach the handlers or how per-variable
#: metadata is derived, so stale cached summaries are never replayed.
KERNELS_VERSION = 1


def kernels_available() -> bool:
    """True when the batch kernels can run: numpy is importable and the
    ``REPRO_NO_NUMPY`` environment knob (force the pure-Python paths,
    used by the differential tests and the no-numpy CI job) is unset."""
    return np is not None and not os.environ.get("REPRO_NO_NUMPY")


def make_kernel(analysis):
    """Build the batch kernel matching ``analysis.KERNEL_STYLE``.

    Called by the analyses' :meth:`~repro.core.base.Analysis.make_kernel`
    overrides; returns None when kernels are unavailable or the style is
    unknown (the engine then keeps the per-event replay path).
    """
    if not kernels_available():
        return None
    style = getattr(analysis, "KERNEL_STYLE", "")
    if style in ("ft2", "fto"):
        return HbEpochKernel(analysis)
    if style == "st":
        return StKernel(analysis)
    return None


def make_filter(width: int, epoch_enders: Sequence[bool]):
    """Build the vectorized same-epoch filter, or None when unavailable.

    ``epoch_enders`` is the engine's by-kind epoch-ender table (the union
    of every tier's bump sites).
    """
    if not kernels_available():
        return None
    return VecSameEpochFilter(width, epoch_enders)


# -- shared group machinery --------------------------------------------------

def _counts_before(group, flags, order=None):
    """Per-position count of earlier True ``flags`` with the same
    ``group`` value (an exclusive per-group running count).

    One stable argsort + cumsum; this is the workhorse behind both the
    exact epoch reconstruction (bumps by this thread before position p)
    and the filter's token streams.  Pass a precomputed stable argsort
    of ``group`` to amortize it across calls.
    """
    if order is None:
        order = np.argsort(group, kind="stable")
    sg = group[order]
    sf = flags[order].astype(np.int64)
    cum = np.cumsum(sf)
    cum -= sf  # exclusive
    n = len(sg)
    new = np.empty(n, bool)
    new[0] = True
    np.not_equal(sg[1:], sg[:-1], out=new[1:])
    gid = np.cumsum(new) - 1
    starts = np.flatnonzero(new)
    out = np.empty(n, np.int64)
    out[order] = cum - cum[starts][gid]
    return out


class ChunkPlan:
    """One decoded chunk, shared across every kernel in the pass.

    Holds references to the engine's five Python list buffers (the walk
    reads event operands from them, so plain ints — never numpy scalars —
    reach the handlers and the race records) plus int64 views of the
    kind/tid/target columns.  Per-chunk derived data that does not depend
    on analysis state — the per-position bump counts for each distinct
    ``BUMP_KINDS`` signature and the per-target grouping — is computed
    once and cached, so N kernels over the same chunk share it.
    """

    __slots__ = ("indices", "kinds", "tids", "targets", "sites", "n",
                 "kv", "tv", "xv", "is_rd", "is_wr", "is_acc",
                 "_bumps", "_part", "_sctx", "_scols", "_tid_range",
                 "_tvorder", "_maxx", "memo")

    def __init__(self, indices, kinds, tids, targets, sites, n: int):
        self.indices = indices
        self.kinds = kinds
        self.tids = tids
        self.targets = targets
        self.sites = sites
        self.n = n
        self.kv = np.fromiter(kinds, np.int64, count=n)
        self.tv = np.fromiter(tids, np.int64, count=n)
        self.xv = np.fromiter(targets, np.int64, count=n)
        self.is_rd = self.kv == 0
        self.is_wr = self.kv == 1
        self.is_acc = self.kv <= 1
        self._bumps = {}
        self._part = None
        self._sctx = None
        self._scols = None
        self._tid_range = None
        self._tvorder = None
        self._maxx = None
        self.memo = {}

    def tids_in_range(self, width: int) -> bool:
        """True when every tid fits the clock width — a malformed feed
        (lying header) otherwise, which the kernels hand back to the
        per-event handlers so the failure carries its event index."""
        rng = self._tid_range
        if rng is None:
            rng = self._tid_range = (int(self.tv.min()), int(self.tv.max()))
        return 0 <= rng[0] and rng[1] < width

    def bumps_for(self, bump_kinds: Tuple[int, ...]):
        """Per-position count of this-thread clock bumps earlier in the
        chunk, for a tier bumping at the given event kinds — the exact
        increment over the thread's chunk-start local time."""
        got = self._bumps.get(bump_kinds)
        if got is None:
            lut = np.zeros(16, np.int64)
            lut[list(bump_kinds)] = 1
            order = self._tvorder
            if order is None:  # one by-thread argsort, shared by signature
                order = self._tvorder = np.argsort(self.tv, kind="stable")
            got = _counts_before(self.tv, lut[self.kv] != 0, order)
            self._bumps[bump_kinds] = got
        return got

    def _partition(self):
        """Stable per-target grouping of the access positions (sync
        positions collapse into one ignorable group)."""
        part = self._part
        if part is None:
            key = np.where(self.is_acc, self.xv, np.int64(-1))
            order = np.argsort(key, kind="stable")
            sk = key[order]
            new = np.empty(self.n, bool)
            new[0] = True
            np.not_equal(sk[1:], sk[:-1], out=new[1:])
            gid = np.cumsum(new) - 1
            starts = np.flatnonzero(new)
            part = self._part = (order, gid, starts)
        return part

    def sorted_ctx(self):
        """Sorted-space scaffolding for the chain scans, cached across
        kernels: ``order`` (stable by-target permutation), ``gstart``
        (each sorted position's group start), ``end_pos`` (positions of
        group-final elements), their ``gstart`` values, and a shared
        ``arange(n)``."""
        ctx = self._sctx
        if ctx is None:
            order, gid, starts = self._partition()
            gstart = starts[gid]
            ends = np.empty(self.n, bool)
            ends[-1] = True
            np.equal(gstart[1:], np.arange(1, self.n), out=ends[:-1])
            end_pos = np.flatnonzero(ends)
            ctx = self._sctx = (order, gstart, end_pos, gstart[end_pos],
                                np.arange(1, self.n + 1, dtype=np.int64))
        return ctx

    def max_target(self) -> int:
        """Largest access target in the chunk (−1 when it has none) —
        drives the analyses' grow-on-demand, computed once per chunk."""
        m = self._maxx
        if m is None:
            if self.is_acc.any():
                m = int(self.xv[self.is_acc].max())
            else:
                m = -1
            self._maxx = m
        return m

    def sorted_cols(self):
        """The kind/tid/target columns gathered into sorted space, cached
        once for all kernels of the pass: ``(acc_s, rd_s, wr_s, tv_s, xs,
        xs_safe)`` where ``xs_safe`` clamps sync positions to target 0."""
        cols = self._scols
        if cols is None:
            order = self.sorted_ctx()[0]
            acc_s = self.is_acc[order]
            xs = self.xv[order]
            cols = self._scols = (acc_s, self.is_rd[order],
                                  self.is_wr[order], self.tv[order], xs,
                                  np.where(acc_s, xs, 0))
        return cols


def _epochs_sorted(plan, bump_kinds, base, tv, order):
    """Exact packed epochs in sorted order, cached on the plan: kernels
    with the same bump signature and the same chunk-start local times
    (the ft2/fto pair, the three SmartTrack tiers) share one
    reconstruction."""
    key = (bump_kinds, base.tobytes())
    e_s = plan.memo.get(key)
    if e_s is None:
        e = ((base[tv] + plan.bumps_for(bump_kinds)) << TID_BITS) | tv
        e_s = plan.memo[key] = e[order]
    return e_s


def _prev_in_group(mask_s, vals_s, fallback_s, gstart, arange1):
    """For each sorted position: ``vals_s`` at the nearest *earlier*
    position in the same group where ``mask_s`` holds, else that
    position's ``fallback_s`` (the chunk-start column value).

    ``arange1`` is ``arange(1, n+1)``: ``arange1 * mask − 1`` is the
    masked position (or −1) without a full-width ``np.where``."""
    pos = arange1 * mask_s
    pos -= 1
    last = np.maximum.accumulate(pos)
    prev = np.empty_like(last)
    prev[0] = -1
    prev[1:] = last[:-1]
    ok = prev >= gstart
    return np.where(ok, vals_s[np.maximum(prev, 0)], fallback_s)


def _commit_last(col, mask_s, xs, es, end_pos, gend, arange1):
    """Scatter each group's *last* ``mask_s`` epoch into ``col`` — one
    well-defined store per target, matching the state the per-event
    handlers would have left.  Returns the (targets, epochs) stored.

    ``end_pos``/``gend`` are the group-final sorted positions and their
    group starts (tiny arrays, one entry per distinct target)."""
    pos = arange1 * mask_s
    pos -= 1
    last = np.maximum.accumulate(pos)
    sel = last[end_pos]
    sel = sel[sel >= gend]
    if len(sel):
        tx, te = xs[sel], es[sel]
        col[tx] = te
        return tx, te
    return (), ()


# -- per-analysis kernels ----------------------------------------------------

class HbEpochKernel:
    """Chunk kernel for the HB epoch tiers (FT2 and FTO-HB).

    Fast-path masks (mirroring the handlers in
    :mod:`repro.core.fasttrack`, judged against the chunk-start clock
    snapshot — see the module docstring for why that is safe):

    * FT2: last read not shared, last write and last read both ordered
      before the access.  Reads scatter ``R_x``; writes scatter ``W_x``.
    * FTO: last read not shared and (bottom, owned, or ordered).  Reads
      scatter ``R_x``; writes scatter both ``W_x`` and ``R_x``.
    """

    def __init__(self, analysis):
        self.a = analysis
        self.style = analysis.KERNEL_STYLE
        self.bump_kinds = tuple(analysis.BUMP_KINDS)

    def flush(self) -> None:
        """Nothing deferred: the HB tiers' columns are always current."""

    def process_chunk(self, plan: ChunkPlan) -> None:
        a = self.a
        n = plan.n
        if not n:
            return
        tv = plan.tv
        cc = a.cc
        width = a.width
        if not plan.tids_in_range(width):
            self._walk(plan, list(range(n)))
            return
        base = np.fromiter((cc[u][u] for u in range(width)), np.int64,
                           count=width)
        maxx = plan.max_target()
        if maxx >= len(a._read):
            a._grow_vars(maxx + 1)
        R = np.frombuffer(a._read, dtype=np.int64)
        W = np.frombuffer(a._write, dtype=np.int64)
        CMf = np.array([list(c) for c in cc], dtype=np.int64).ravel()

        order, gstart, end_pos, gend, arange1 = plan.sorted_ctx()
        e_s = _epochs_sorted(plan, self.bump_kinds, base, tv, order)
        acc_s, rd_s, wr_s, tv_s, xs, xs_safe = plan.sorted_cols()
        # effective last-read/last-write epochs at each chained position:
        # the nearest earlier same-target read/write in the chunk (their
        # value is its epoch whether it ran fast or skipped), else the
        # chunk-start column.  FTO's R_x covers reads *and* writes.
        effW = _prev_in_group(wr_s, e_s, W[xs_safe], gstart, arange1)
        rmask = acc_s if self.style == "fto" else rd_s
        effR = _prev_in_group(rmask, e_s, R[xs_safe], gstart, arange1)
        skip_s = (rd_s & (effR == e_s)) | (wr_s & (effW == e_s))
        tvw = tv_s * width

        def leq(ep):
            neg = ep < 0
            etid = (ep & TID_MASK) * ~neg
            return neg | (etid == tv_s) | ((ep >> TID_BITS) <= CMf[tvw + etid])

        not_vc = effR != META_VC
        if self.style == "ft2":
            cond = not_vc & leq(effW) & leq(effR)
        else:  # fto: owned cases need no clock comparison at all
            owned = (effR >= 0) & ((effR & TID_MASK) == tv_s)
            cond = not_vc & ((effR < 0) | owned | leq(effR))
        # chain gate: no earlier same-target access failed its checks
        bad = acc_s & ~(skip_s | cond)
        cb = np.cumsum(bad)
        cb -= bad  # exclusive
        chain = (cb - cb[gstart]) == 0
        fast_s = acc_s & chain & cond & ~skip_s
        drop_s = acc_s & chain & skip_s
        slow_s = acc_s & ~fast_s & ~drop_s
        fw_s = fast_s & wr_s
        _commit_last(W, fw_s, xs, e_s, end_pos, gend, arange1)
        _commit_last(R, fast_s if self.style == "fto" else fast_s & rd_s,
                     xs, e_s, end_pos, gend, arange1)
        pos = order[slow_s | ~acc_s]
        if len(pos):
            pos.sort()  # back to program order
            self._walk(plan, pos.tolist())

    def _walk(self, plan: ChunkPlan, positions: List[int]) -> None:
        """Dispatch the slow residue and sync events in original order
        (``j`` is read by :meth:`MultiRunner._failure_index`)."""
        table = self.a.dispatch_table()
        kinds = plan.kinds
        tids = plan.tids
        targets = plan.targets
        indices = plan.indices
        sites = plan.sites
        for p in positions:
            j = indices[p]
            table[kinds[p]](tids[p], targets[p], j, sites[p])


class StKernel:
    """Chunk kernel for SmartTrack-{WCP,DC,WDC}.

    Algorithm 3's owned cases need no clock comparison at all: a read is
    fast when the last access is bottom or its own thread's epoch and
    ``E^w_x`` is empty (nothing to absorb); a write additionally needs
    ``E^r_x`` empty (lines 19–23 would otherwise run).  The per-variable
    ``_eflags`` column mirrors exactly that emptiness, so the masks are two
    gathers and a bitwise test.

    The handlers pair every last-access epoch with a CS-list snapshot
    (``L^w_x``/``L^r_x`` := H_t) — a per-event Python object store that
    would dominate the batch path.  The kernel instead derives snapshots
    from epochs: SmartTrack bumps the local clock at both acquire and
    release (``BUMP_KINDS``), so one (tid, time) pair identifies exactly
    one lock-stack state, recorded in a per-thread log appended during
    the walk (the only place stacks mutate).  Fast accesses are then pure
    epoch scatters whose targets go on a dirty set; the stale ``L`` slots
    are *repaired* from the columns just in time — in the walk, right
    before a slow access to that variable dispatches (by then every sync
    event preceding it in program order has been walked and logged) — and
    once more at :meth:`flush`, restoring the handlers' invariant that an
    epoch ``R_x ≥ 0`` (resp. ``W_x``) is always paired with its
    access-time snapshot.  The repaired tuples hold the same live
    :class:`CSEntry` references an eager store would, so releases
    finalize them in place identically.
    """

    def __init__(self, analysis):
        self.a = analysis
        self.bump_kinds = tuple(analysis.BUMP_KINDS)
        width = analysis.width
        # Each thread's log is seeded with its *current* lock stack at
        # time 0 (the empty tuple on a fresh analysis).  A kernel may be
        # attached to a mid-run analysis — a checkpoint restore
        # (repro.checkpoint) rebuilds kernels against restored state —
        # and every epoch a *future* fast access can commit carries a
        # time >= the thread's current time, so one entry covering
        # [0, now] with the present stack keeps ``_repair`` exact.
        self._log_times = [[0] for _ in range(width)]
        self._log_snaps = [[tuple(s)] for s in analysis._stack]
        self._dirty = set()

    def process_chunk(self, plan: ChunkPlan) -> None:
        a = self.a
        n = plan.n
        if not n:
            return
        tv = plan.tv
        width = a.width
        if not plan.tids_in_range(width):
            self._walk(plan, list(range(n)))
            return
        time = a._time
        base = np.fromiter((time(u) for u in range(width)), np.int64,
                           count=width)
        maxx = plan.max_target()
        if maxx >= len(a._read):
            a._grow_vars(maxx + 1)
        # The three SmartTrack tiers bump identically and usually carry
        # byte-identical last-access columns (they only diverge when a
        # relation-specific residual lands in E^r/E^w, which flips an
        # eflag).  Classification is a pure function of (base, R, W, F)
        # plus the shared plan, so sibling kernels reuse the first
        # tier's masks and just redo the scatters and the walk.
        key = (self.bump_kinds, base.tobytes(), a._read.tobytes(),
               a._write.tobytes(), a._eflags.tobytes())
        hit = plan.memo.get(key)
        if hit is not None:
            wx, we, rx, re_, positions = hit
            if len(wx):
                np.frombuffer(a._write, dtype=np.int64)[wx] = we
            if len(rx):
                np.frombuffer(a._read, dtype=np.int64)[rx] = re_
                self._dirty.update(rx.tolist())
            if positions:
                self._walk(plan, positions)
            return
        R = np.frombuffer(a._read, dtype=np.int64)
        W = np.frombuffer(a._write, dtype=np.int64)
        F = np.frombuffer(a._eflags, dtype=np.int8)

        order, gstart, end_pos, gend, arange1 = plan.sorted_ctx()
        e_s = _epochs_sorted(plan, self.bump_kinds, base, tv, order)
        acc_s, rd_s, wr_s, tv_s, xs, xs_safe = plan.sorted_cols()
        # fast accesses set R_x := e (writes also W_x := e) and nothing
        # else, so the effective last-access/last-write epoch at a
        # chained position is a per-group prefix scan; E^r/E^w only
        # change in slow handlers, so the chunk-start flags stay valid
        # for the whole chain.
        effW = _prev_in_group(wr_s, e_s, W[xs_safe], gstart, arange1)
        effR = _prev_in_group(acc_s, e_s, R[xs_safe], gstart, arange1)
        Fv_s = F[xs_safe]
        skip_s = (rd_s & (effR == e_s)) | (wr_s & (effW == e_s))
        owned = (effR >= 0) & ((effR & TID_MASK) == tv_s)
        base_ok = (effR != META_VC) & ((effR < 0) | owned)
        # reads need eflag bit 2 clear, writes bit 1: (F >> is_read) & 1
        cond = (((Fv_s >> rd_s) & 1) == 0) & base_ok
        bad = acc_s & ~(skip_s | cond)
        cb = np.cumsum(bad)
        cb -= bad  # exclusive
        chain = (cb - cb[gstart]) == 0
        fast_s = acc_s & chain & cond & ~skip_s
        drop_s = acc_s & chain & skip_s
        slow_s = acc_s & ~fast_s & ~drop_s
        wx, we = _commit_last(W, fast_s & wr_s, xs, e_s, end_pos, gend,
                              arange1)
        rx, re_ = _commit_last(R, fast_s, xs, e_s, end_pos, gend, arange1)
        if len(rx):  # fast writes also commit R, so this covers W
            self._dirty.update(rx.tolist())
        pos = order[slow_s | ~acc_s]
        pos.sort()  # back to program order
        positions = pos.tolist()
        plan.memo[key] = (wx, we, rx, re_, positions)
        if positions:
            self._walk(plan, positions)

    def _repair(self, x: int) -> None:
        """Re-pair variable ``x``'s CS-list slots with its last-access
        epochs (a no-op when they are already current)."""
        a = self.a
        r = a._read[x]
        if r >= 0:
            t = r & TID_MASK
            times = self._log_times[t]
            i = bisect_right(times, r >> TID_BITS) - 1
            a._lr[x] = self._log_snaps[t][i]
        w = a._write[x]
        if w >= 0:
            t = w & TID_MASK
            times = self._log_times[t]
            i = bisect_right(times, w >> TID_BITS) - 1
            a._lw[x] = self._log_snaps[t][i]

    def flush(self) -> None:
        """Repair every still-dirty variable — called by the session
        before the analysis takes its final footprint sample and report."""
        repair = self._repair
        for x in self._dirty:
            repair(x)
        self._dirty.clear()

    def _walk(self, plan: ChunkPlan, positions: List[int]) -> None:
        """Dispatch the slow residue and sync events in original order
        (``j`` is read by ``_failure_index``), appending each
        acquire/release's new (time, stack snapshot) to the per-thread
        log the lazy CS-list derivation reads, and repairing each slow
        access's ``L`` slots just before its handler runs."""
        a = self.a
        table = a.dispatch_table()
        kinds = plan.kinds
        tids = plan.tids
        targets = plan.targets
        indices = plan.indices
        sites = plan.sites
        stacks = a._stack
        time = a._time
        log_times = self._log_times
        log_snaps = self._log_snaps
        dirty = self._dirty
        for p in positions:
            k = kinds[p]
            t = tids[p]
            j = indices[p]
            if k <= 1:  # access: its handler reads L^w_x/L^r_x
                x = targets[p]
                if x in dirty:
                    self._repair(x)
                    dirty.discard(x)
            table[k](t, targets[p], j, sites[p])
            if k == 2 or k == 3:  # acquire/release mutate H_t
                log_times[t].append(time(t))
                log_snaps[t].append(tuple(stacks[t]))


#: Code objects of the kernels' ordered walks, matched by
#: :meth:`MultiRunner._failure_index` to attribute a handler exception to
#: its event index (the walk keeps the index in its ``j`` local).
WALK_CODES = frozenset({
    HbEpochKernel._walk.__code__,
    StKernel._walk.__code__,
})


# -- decode-time same-epoch filter -------------------------------------------

class VecSameEpochFilter:
    """Vectorized twin of the engine's scalar same-epoch decode filter.

    Same observable behavior, chunk-at-a-time: an access is dropped when
    a repeat of the same (thread, kind, variable) with no intervening
    epoch-ending event by that thread — and, for reads, no intervening
    *kept* write to the variable — makes it a [Same Epoch] no-op in every
    analysis.  Tokens are ``bumps << TID_BITS | tid`` (unique per thread)
    carried across chunks in ``_base``; per-variable last-reader /
    last-writer tokens are carried in grow-on-demand int64 arrays
    (−1 = absent, matching the scalar dicts' missing keys).

    Two passes over one chunk, both via stable per-variable grouping:
    writes first (a write is dropped iff its token equals the previous
    write's token for that variable), then reads against the merged
    stream of reads and *kept* writes (a read is dropped iff its nearest
    predecessor is a same-token read; a kept write in between clears the
    run, and a dropped write — like the scalar loop — does not).
    """

    def __init__(self, width: int, epoch_enders: Sequence[bool]):
        self.width = width
        lut = np.zeros(16, bool)
        lut[:len(epoch_enders)] = np.asarray(epoch_enders, dtype=bool)
        self._ender_lut = lut
        self._base = np.arange(width, dtype=np.int64)
        self._last_r = np.full(1, -1, dtype=np.int64)
        self._last_w = np.full(1, -1, dtype=np.int64)

    def _grow(self, need: int) -> None:
        have = len(self._last_r)
        if need > have:
            size = max(need, 2 * have)
            for attr in ("_last_r", "_last_w"):
                old = getattr(self, attr)
                new = np.full(size, -1, dtype=np.int64)
                new[:have] = old
                setattr(self, attr, new)

    def export_state(self):
        """The filter's cross-chunk state as three plain dicts — the
        exact representation the engine's scalar filter keeps — so a
        checkpoint (:mod:`repro.checkpoint`) is numpy-free and restores
        into either filter implementation."""
        toks = {t: int(v) for t, v in enumerate(self._base) if v != t}
        last_r = {x: int(v) for x, v in enumerate(self._last_r) if v != -1}
        last_w = {x: int(v) for x, v in enumerate(self._last_w) if v != -1}
        return toks, last_r, last_w

    def seed_state(self, toks, last_r, last_w) -> None:
        """Load state previously captured by :meth:`export_state` (or by
        the scalar filter's dicts); the inverse of that method."""
        for t, v in toks.items():
            self._base[t] = v
        top = max(max(last_r, default=-1), max(last_w, default=-1))
        if top >= 0:
            self._grow(top + 1)
        for x, v in last_r.items():
            self._last_r[x] = v
        for x, v in last_w.items():
            self._last_w[x] = v

    def apply(self, indices, kinds, tids, targets, sites, n: int) -> int:
        """Filter one decoded chunk in place; returns the kept length.

        The five buffers are the engine's Python list columns; kept
        events are compacted to the front (order preserved).
        """
        if not n:
            return 0
        kv = np.fromiter(kinds, np.int64, count=n)
        tv = np.fromiter(tids, np.int64, count=n)
        if len(tv) and (int(tv.min()) < 0 or int(tv.max()) >= self.width):
            # out-of-range tid (malformed feed): keep everything and let
            # the analyses surface the error per entry, as the scalar
            # replay path would
            return n
        xv = np.fromiter(targets, np.int64, count=n)
        is_rd = kv == 0
        is_wr = kv == 1
        ender = self._ender_lut[kv]
        tok = (self._base[tv]
               + (_counts_before(tv, ender) << TID_BITS))
        acc = is_rd | is_wr
        drop = np.zeros(n, bool)
        if acc.any():
            self._grow(int(xv[acc].max()) + 1)
            last_r = self._last_r
            last_w = self._last_w
            # pass 1: writes against the per-variable write stream
            wpos = np.flatnonzero(is_wr)
            if len(wpos):
                wx = xv[wpos]
                order = np.argsort(wx, kind="stable")
                spos = wpos[order]
                sx = wx[order]
                st = tok[spos]
                new = np.empty(len(sx), bool)
                new[0] = True
                np.not_equal(sx[1:], sx[:-1], out=new[1:])
                prev = np.empty(len(sx), np.int64)
                prev[1:] = st[:-1]
                prev[new] = last_w[sx[new]]
                wdrop = st == prev
                drop[spos[wdrop]] = True
                ends = np.empty(len(sx), bool)
                ends[-1] = True
                ends[:-1] = new[1:]
                last_w[sx[ends]] = st[ends]
            # pass 2: reads against the merged reads + kept-writes stream
            rel = is_rd | (is_wr & ~drop)
            rpos = np.flatnonzero(rel)
            if len(rpos):
                rx = xv[rpos]
                order = np.argsort(rx, kind="stable")
                spos = rpos[order]
                sx = rx[order]
                st = tok[spos]
                sr = is_rd[spos]
                new = np.empty(len(sx), bool)
                new[0] = True
                np.not_equal(sx[1:], sx[:-1], out=new[1:])
                prev = np.empty(len(sx), np.int64)
                prev[1:] = st[:-1]
                prev_rd = np.empty(len(sx), bool)
                prev_rd[1:] = sr[:-1]
                # carried last_r holds only read tokens (−1 when a kept
                # write cleared the run or the variable is untouched)
                prev[new] = last_r[sx[new]]
                prev_rd[new] = True
                rdrop = sr & prev_rd & (st == prev)
                drop[spos[rdrop]] = True
                ends = np.empty(len(sx), bool)
                ends[-1] = True
                ends[:-1] = new[1:]
                last_r[sx[ends]] = np.where(sr[ends], st[ends], -1)
        if ender.any():
            np.add.at(self._base, tv[ender], 1 << TID_BITS)
        if not drop.any():
            return n
        keep = np.flatnonzero(~drop).tolist()
        m = int(np.argmax(drop))  # first dropped position: prefix is in place
        for p in keep[m:]:
            indices[m] = indices[p]
            kinds[m] = kinds[p]
            tids[m] = tids[p]
            targets[m] = targets[p]
            sites[m] = sites[p]
            m += 1
        return m
