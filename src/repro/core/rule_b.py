"""Rule (b) queue machinery (Algorithms 1–3, Acquire/Release).

DC/WCP rule (b) orders release events of two critical sections on the same
lock when the earlier critical section's acquire is ordered before the
later release.  The analyses detect this with the aligned queues of the
paper's algorithms:

* ``Acq_{m,t}(t')`` — times of acquires of ``m`` by ``t'`` not yet known to
  be ordered before a release of ``m`` by ``t``;
* ``Rel_{m,t}(t')`` — the corresponding release times.

At ``rel(m)`` by ``t``, while the front acquire of some ``t'`` is ordered
before ``C_t``, the matching release time is joined into ``C_t``.

Entry representation is the tier's key cost lever (paper §4.2 "Optimizing
Acq"): Unopt/FTO DC enqueue full vector clocks and compare with ``⊑``;
SmartTrack (and all WCP tiers, cf. footnote 6) enqueue epochs and compare
with ``⪯``.

Two storage realizations are provided:

* ``style="log"`` (default): per (lock, producer) append-only logs of
  (acquire time, release time) with a per-(lock, consumer, producer)
  cursor.  Semantically identical to the per-pair queues — a consumer's
  cursor position *is* its queue front — but an acquire costs O(1) instead
  of fan-out to T−1 queues, which matters under Python's constant factors.
  Fully-consumed prefixes are compacted away.
* ``style="pairwise"``: the published formulation (enqueue into T−1 queues
  per acquire).  Kept for the ablation benchmark
  (``benchmarks/bench_ablations.py``) that measures what the restructuring
  is worth.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.clocks.epoch import TID_BITS, epoch_leq
from repro.clocks.vector_clock import VectorClock
from repro.core.base import EPOCH_BYTES, QUEUE_ENTRY_OVERHEAD, VC_BYTES_BASE, VC_BYTES_PER_SLOT

_COMPACT_EVERY = 128


class _LockLog:
    """Per-(lock, producer) acquire/release history with consumer cursors."""

    __slots__ = ("acqs", "rels", "cursors", "base")

    def __init__(self):
        self.acqs: List = []
        self.rels: List = []
        self.cursors: Dict[int, int] = {}  # consumer -> absolute position
        self.base = 0  # absolute position of acqs[0] after compaction

    def compact(self, potential_consumers: int) -> None:
        """Drop the prefix every consumer has already processed.

        Only safe once every potential consumer has a cursor — a thread
        that first releases this lock later must still see the full
        history (its virtual queue starts at position 0).
        """
        if len(self.cursors) < potential_consumers:
            return
        low = min(self.cursors.values())
        drop = low - self.base
        if drop <= 0:
            return
        del self.acqs[:drop]
        del self.rels[:drop]
        self.base = low


class RuleBQueues:
    """Rule (b) acquire/release queues (see module docstring)."""

    def __init__(self, width: int, epoch_acquires: bool,
                 track_graph: bool = False, style: str = "log"):
        self.width = width
        self.epoch_acquires = epoch_acquires
        self.track_graph = track_graph
        self.style = style
        # log style: (lock, producer) -> _LockLog
        self._logs: Dict[Tuple[int, int], _LockLog] = {}
        self._producers: Dict[int, List[int]] = {}  # lock -> producer tids
        # pairwise style: (lock, consumer, producer) -> deque
        self._acq: Dict[Tuple[int, int, int], Deque] = {}
        self._rel: Dict[Tuple[int, int, int], Deque] = {}
        self._acq_entries = 0
        self._rel_entries = 0

    # ------------------------------------------------------------------
    def on_acquire(self, t: int, m: int, time: int, vc: VectorClock) -> None:
        """Record ``acq(m)`` by ``t`` (Algorithm 1 line 2).

        ``time`` is the thread's local clock; ``vc`` its current clock
        (copied once; vector-clock entries are shared between queues).
        Epoch entries are packed ints (:mod:`repro.clocks.epoch`).
        """
        entry = (time << TID_BITS | t) if self.epoch_acquires else vc.copy()
        if self.style == "log":
            log = self._logs.get((m, t))
            if log is None:
                log = _LockLog()
                self._logs[(m, t)] = log
                self._producers.setdefault(m, []).append(t)
            log.acqs.append(entry)
            self._acq_entries += 1
            return
        for consumer in range(self.width):
            if consumer == t:
                continue
            q = self._acq.get((m, consumer, t))
            if q is None:
                q = deque()
                self._acq[(m, consumer, t)] = q
            q.append(entry)
            self._acq_entries += 1

    # ------------------------------------------------------------------
    def on_release(self, t: int, m: int, cc_t: VectorClock,
                   publish: VectorClock, eid: int = -1,
                   graph=None) -> None:
        """Process rule (b) at ``rel(m)`` by ``t`` (Algorithm 1 lines 4–8):
        join ordered predecessors' release times into ``cc_t`` and record
        this release for the other threads."""
        if self.style == "log":
            self._release_log(t, m, cc_t, publish, eid, graph)
        else:
            self._release_pairwise(t, m, cc_t, publish, eid, graph)

    def _release_log(self, t, m, cc_t, publish, eid, graph):
        producers = self._producers.get(m)
        if producers is not None:
            for producer in producers:
                if producer == t:
                    continue
                log = self._logs[(m, producer)]
                pos = log.cursors.get(t, log.base)
                acqs = log.acqs
                rels = log.rels
                base = log.base
                # only entries whose release completed are matchable (the
                # producer cannot hold m while the consumer releases it)
                n = min(len(acqs), len(rels)) + base
                if self.epoch_acquires:
                    while pos < n and epoch_leq(acqs[pos - base], cc_t, t):
                        self._join_release(cc_t, rels[pos - base], eid, graph)
                        pos += 1
                else:
                    while pos < n and acqs[pos - base].leq(cc_t):
                        self._join_release(cc_t, rels[pos - base], eid, graph)
                        pos += 1
                log.cursors[t] = pos
        # Record this release: producers' own log (consumers cursor past it).
        log = self._logs.get((m, t))
        if log is None:
            # A well-formed trace always acquires before releasing, so the
            # log exists already; this is defensive initialization only.
            log = _LockLog()
            self._logs[(m, t)] = log
            self._producers.setdefault(m, []).append(t)
        entry = (publish, eid) if self.track_graph else publish
        log.rels.append(entry)
        self._rel_entries += 1
        if len(log.rels) % _COMPACT_EVERY == 0:
            before = len(log.acqs)
            log.compact(potential_consumers=self.width - 1)
            freed = before - len(log.acqs)
            self._acq_entries -= freed
            self._rel_entries -= freed

    def _release_pairwise(self, t, m, cc_t, publish, eid, graph):
        for producer in range(self.width):
            if producer == t:
                continue
            qa = self._acq.get((m, t, producer))
            if not qa:
                continue
            qr = self._rel.get((m, t, producer))
            if self.epoch_acquires:
                while qa and epoch_leq(qa[0], cc_t, t):
                    qa.popleft()
                    self._acq_entries -= 1
                    self._join_release(cc_t, qr.popleft(), eid, graph)
                    self._rel_entries -= 1
            else:
                while qa and qa[0].leq(cc_t):
                    qa.popleft()
                    self._acq_entries -= 1
                    self._join_release(cc_t, qr.popleft(), eid, graph)
                    self._rel_entries -= 1
        entry = (publish, eid) if self.track_graph else publish
        for consumer in range(self.width):
            if consumer == t:
                continue
            q = self._rel.get((m, consumer, t))
            if q is None:
                q = deque()
                self._rel[(m, consumer, t)] = q
            q.append(entry)
            self._rel_entries += 1

    @staticmethod
    def _join_release(cc_t: VectorClock, rel_entry, eid: int, graph) -> None:
        if type(rel_entry) is tuple:
            clock, src_eid = rel_entry
            cc_t.join(clock)
            if graph is not None and eid >= 0:
                graph.add_edge(src_eid, eid, "rule-b")
        else:
            cc_t.join(rel_entry)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """Approximate bytes held by live queue entries.

        In the pairwise realization acquire/release clocks are shared
        across the per-thread queues, so entries are charged one queue slot
        plus their share of the clock; in the log realization each entry is
        stored once.
        """
        vc_bytes = VC_BYTES_BASE + VC_BYTES_PER_SLOT * self.width
        if self.style == "log":
            acq_entry = QUEUE_ENTRY_OVERHEAD + (
                EPOCH_BYTES if self.epoch_acquires else vc_bytes)
            rel_entry = QUEUE_ENTRY_OVERHEAD + vc_bytes
            return (self._acq_entries * acq_entry
                    + self._rel_entries * rel_entry)
        fan_out = max(self.width - 1, 1)
        if self.epoch_acquires:
            acq_entry = QUEUE_ENTRY_OVERHEAD + EPOCH_BYTES
        else:
            acq_entry = QUEUE_ENTRY_OVERHEAD + vc_bytes // fan_out
        rel_entry = QUEUE_ENTRY_OVERHEAD + vc_bytes // fan_out
        return self._acq_entries * acq_entry + self._rel_entries * rel_entry
