"""Sync-preserving race prediction (Mathur, Pavlogiannis & Viswanathan).

A *sync-preserving* correct reordering may reorder critical sections on
the same lock but must preserve the order of the acquires it keeps — it
never invents lock-release-to-acquire communication that the observed
trace did not perform.  The induced ordering relation (SP) is therefore
weaker than HB: a release ``rel(m)₁`` orders before a *later acquire*
``acq(m)₂`` of the same lock only when the first critical section's
acquire is already SP-ordered before ``acq(m)₂`` — the acquiring thread
has observed ``acq(m)₁``, so no sync-preserving reordering can move the
second critical section before the first.  Unordered conflicting
accesses are SP-races; every HB-race is an SP-race (the conditional
edges are a subset of HB's unconditional release→acquire edges).

Two configurations mirror the repo's tier split:

* :class:`UnoptSyncP` (``unopt-sp``) — the reference: per lock, the
  full list of closed critical sections ``(tid, thr, C_rel)`` is
  rescanned to a fixpoint at every acquire, joining the release clock of
  every entry whose acquire threshold the acquiring thread has reached.
* :class:`SyncP` (``sp``) — the optimized configuration: the history is
  bucketed per owning thread and kept sorted by acquire threshold.  A
  thread's release clocks are monotone, so the *latest* eligible entry
  of each bucket (one binary search) dominates all earlier ones; joining
  only that entry reaches the identical fixpoint.

Both publish release clocks *before* the release's local-clock bump
(the clock covers the release event itself, matching the oracle's
include-edge semantics) and stamp acquire thresholds *after* the
acquire's bump (``C_t(t)+1``): knowledge of the acquire can only travel
through a later publishing event of the owner, so a cross-thread clock
component ``>= thr`` holds iff the acquire is in the observer's SP past.

Access checks keep full last-read/last-write vector clocks per variable
(the Unopt-HB shape); SP contains program order, so per-thread last
accesses are a complete summary.  There is no shared-HB bank tie-in: the
SP clocks are weaker than HB clocks and the relation needs no HB
composition (unlike WCP), so ``TRACKS_HB``/``HB_RELATION`` stay False
and the engine schedules ``sp`` standalone (DESIGN.md §11).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.clocks.vector_clock import VectorClock
from repro.core.base import (
    CS_ENTRY_BYTES,
    DICT_ENTRY_BYTES,
    VectorClockAnalysis,
    _vc_bytes,
)
from repro.trace.trace import Trace


class _SyncPBase(VectorClockAnalysis):
    """State and handlers shared by both SP configurations."""

    relation = "sp"
    #: acquires stamp a threshold epoch, so they end the thread's epoch
    #: (same discipline as the predictive tiers, cf. Algorithm 2 line 3)
    BUMP_AT_ACQUIRE = True
    #: implements the §5.1-style ``r[t] == time`` same-epoch skip
    SAME_EPOCH_SKIP = True

    def __init__(self, trace: Trace, collect_cases: bool = False):
        super().__init__(trace, collect_cases=collect_cases)
        self._read: Dict[int, VectorClock] = {}
        self._write: Dict[int, VectorClock] = {}
        #: critical sections currently open, per (thread, lock); a stack
        #: so a (malformed) reentrant feed cannot corrupt the history
        self._open: Dict[Tuple[int, int], List[list]] = {}

    # -- per-lock acquisition history (tier-specific) --------------------
    def _absorb(self, t: int, m: int) -> None:
        """Join eligible prior release clocks of ``m`` into ``C_t``,
        to a fixpoint (a joined clock can raise further thresholds)."""
        raise NotImplementedError

    def _commit(self, m: int, entry: list) -> None:
        """File one closed critical section into ``m``'s history."""
        raise NotImplementedError

    # -- synchronization -------------------------------------------------
    def acquire(self, t: int, m: int, i: int, site: int) -> None:
        self._absorb(t, m)
        # Threshold = the local time of events program-ordered *after*
        # this acquire; the owner's clock is only published (and so only
        # observable) at later releases/volatiles, which carry >= thr.
        entry = [t, self._time(t) + 1, None, -1]
        self._open.setdefault((t, m), []).append(entry)
        self.held[t].append(m)
        self._bump(t)

    def release(self, t: int, m: int, i: int, site: int) -> None:
        stack = self._open.get((t, m))
        if stack:
            entry = stack.pop()
            if not stack:
                del self._open[(t, m)]
            # publish before the bump: the clock covers the release
            # event itself (include-edge semantics, like L_m in HB)
            entry[2] = self.cc[t].copy()
            entry[3] = i
            self._commit(m, entry)
        held = self.held[t]
        if held and held[-1] == m:
            held.pop()
        elif m in held:
            held.remove(m)
        self._bump(t)

    # -- accesses (Unopt-HB shape: full VCs, per-thread last access) -----
    def read(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        r = self._read.get(x)
        if r is not None and r[t] == time:
            return  # same-epoch-like skip (§5.1)
        w = self._write.get(x)
        if w is not None and not w.leq_except(cc_t, t):
            self._race(i, site, x, t, "read", "write-read")
        if r is None:
            r = VectorClock.zeros(self.width)
            self._read[x] = r
        r[t] = time

    def write(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        w = self._write.get(x)
        if w is not None and w[t] == time:
            return  # same-epoch-like skip (§5.1)
        kinds = []
        if w is not None and not w.leq_except(cc_t, t):
            kinds.append("write-write")
        r = self._read.get(x)
        if r is not None and not r.leq_except(cc_t, t):
            kinds.append("read-write")
        if kinds:
            self._race(i, site, x, t, "write", "+".join(kinds))
        if w is None:
            w = VectorClock.zeros(self.width)
            self._write[x] = w
        w[t] = time

    # -- bounded-window mode ---------------------------------------------
    def evict_window(self, cutoff: int, stale) -> None:
        """Window eviction: drop stale access metadata and critical
        sections released before the cutoff (DESIGN.md §11).  Both SP
        configurations prune on the same release-index criterion, so
        ``unopt-sp == sp`` bit-identity survives windowed runs."""
        for x in stale:
            self._read.pop(x, None)
            self._write.pop(x, None)
        self._prune_history(cutoff)

    def _prune_history(self, cutoff: int) -> None:
        raise NotImplementedError

    def _history_footprint(self) -> int:
        raise NotImplementedError

    def footprint_bytes(self) -> int:
        vc = _vc_bytes(self.width)
        n = len(self._read) + len(self._write)
        open_cs = sum(len(s) for s in self._open.values())
        return (self._base_footprint()
                + n * (vc + DICT_ENTRY_BYTES)
                + open_cs * (CS_ENTRY_BYTES + DICT_ENTRY_BYTES)
                + self._history_footprint())


class UnoptSyncP(_SyncPBase):
    """Reference SP analysis: naive full-history fixpoint per acquire."""

    name = "unopt-sp"
    tier = "unopt"

    def __init__(self, trace: Trace, collect_cases: bool = False):
        super().__init__(trace, collect_cases=collect_cases)
        #: lock -> [[tid, thr, release clock, release index], ...]
        self._hist: Dict[int, List[list]] = {}

    def _commit(self, m: int, entry: list) -> None:
        self._hist.setdefault(m, []).append(entry)

    def _absorb(self, t: int, m: int) -> None:
        hist = self._hist.get(m)
        if not hist:
            return
        cc_t = self.cc[t]
        changed = True
        while changed:
            changed = False
            for tid1, thr, clock, _rel in hist:
                if cc_t[tid1] >= thr and not clock.leq(cc_t):
                    cc_t.join(clock)
                    changed = True

    def _prune_history(self, cutoff: int) -> None:
        for m in list(self._hist):
            kept = [e for e in self._hist[m] if e[3] >= cutoff]
            if kept:
                self._hist[m] = kept
            else:
                del self._hist[m]

    def _history_footprint(self) -> int:
        vc = _vc_bytes(self.width)
        entries = sum(len(h) for h in self._hist.values())
        return (len(self._hist) * DICT_ENTRY_BYTES
                + entries * (CS_ENTRY_BYTES + vc))


class SyncP(_SyncPBase):
    """Optimized SP analysis: per-owner history buckets, sorted by
    acquire threshold; one binary search replaces the bucket scan."""

    name = "sp"
    tier = "sp"

    def __init__(self, trace: Trace, collect_cases: bool = False):
        super().__init__(trace, collect_cases=collect_cases)
        #: lock -> owner tid -> [(thr, release clock, release index), ...]
        #: ascending by thr (a thread's local clock is monotone)
        self._hist: Dict[int, Dict[int, List[tuple]]] = {}

    def _commit(self, m: int, entry: list) -> None:
        tid, thr, clock, rel = entry
        self._hist.setdefault(m, {}).setdefault(tid, []).append(
            (thr, clock, rel))

    def _absorb(self, t: int, m: int) -> None:
        buckets = self._hist.get(m)
        if not buckets:
            return
        cc_t = self.cc[t]
        changed = True
        while changed:
            changed = False
            for u, entries in buckets.items():
                cu = cc_t[u]
                if cu < entries[0][0]:
                    continue
                # rightmost entry with thr <= cu; its release clock
                # dominates every earlier eligible entry of this owner
                lo, hi = 1, len(entries)
                while lo < hi:
                    mid = (lo + hi) >> 1
                    if entries[mid][0] <= cu:
                        lo = mid + 1
                    else:
                        hi = mid
                clock = entries[lo - 1][1]
                if not clock.leq(cc_t):
                    cc_t.join(clock)
                    changed = True

    def _prune_history(self, cutoff: int) -> None:
        for m in list(self._hist):
            buckets = self._hist[m]
            for u in list(buckets):
                kept = [e for e in buckets[u] if e[2] >= cutoff]
                if kept:
                    buckets[u] = kept
                else:
                    del buckets[u]
            if not buckets:
                del self._hist[m]

    def _history_footprint(self) -> int:
        vc = _vc_bytes(self.width)
        buckets = sum(len(b) for b in self._hist.values())
        entries = sum(len(es) for b in self._hist.values()
                      for es in b.values())
        return ((len(self._hist) + buckets) * DICT_ENTRY_BYTES
                + entries * (CS_ENTRY_BYTES + vc))
