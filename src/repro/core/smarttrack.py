"""Algorithm 3: SmartTrack-{WCP, DC, WDC} (paper §4.2).

SmartTrack extends FTO (Algorithm 2) with the conflicting-critical-section
(CCS) optimizations — the paper's central contribution:

* Per-variable CS lists ``L^w_x``/``L^r_x`` mirror the last-access epochs
  ``W_x``/``R_x``, replacing the per-(lock, variable) clocks
  ``L^{r,w}_{m,x}`` and the per-critical-section sets ``R_m``/``W_m``.
* Release times are published *by reference* through each thread's active
  CS list ``H_t``, deferring the update to the release (∞ until then).
* ``MultiCheck`` fuses the CCS detection with the race check, traversing a
  CS list outermost-to-innermost and stopping at the first critical
  section that is already ordered to the current access or that conflicts
  with a held lock.
* "Extra" metadata ``E^r_x``/``E^w_x`` preserves residual critical
  sections that writes would otherwise overwrite (Figures 4(c)/(d)).
* Rule (b) acquire queues hold epochs instead of vector clocks.

Deviations from the preprint listing (see DESIGN.md §4): ``MultiCheck``
calls over ``L^w_x`` pass the last *writer's* thread id, and the clearing
loop of the extra metadata at writes nests inside the held-locks loop.

Last-access epochs live in flat ``array('q')`` columns (sentinels from
:mod:`repro.clocks.epoch`; read vector clocks in the ``_read_vc`` side
dict) and the CS lists in ``None``-filled Python lists, so the batch
kernels (:mod:`repro.core.kernels`, DESIGN.md §8) can gather per-chunk.
``_eflags`` mirrors, per variable, whether ``E^r_x`` (bit 0) / ``E^w_x``
(bit 1) is non-empty — the kernels' fast paths require the relevant extra
metadata to be absent.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple, Union

from repro.clocks.epoch import (
    META_VC,
    PACKED_BOTTOM,
    TID_BITS,
    TID_MASK,
    packed_epoch_leq,
)
from repro.clocks.vector_clock import INF, VectorClock
from repro.core.base import (
    DICT_ENTRY_BYTES,
    EPOCH_BYTES,
    VectorClockAnalysis,
    _vc_bytes,
)
from repro.core.cslist import CS_ENTRY_BYTES, CSEntry, CSList, EMPTY, open_entry
from repro.core.rule_b import RuleBQueues
from repro.core.unopt import _WcpMixin
from repro.trace.trace import Trace

_BOTTOM_WORD = b"\xff" * 8  # int64 -1 == PACKED_BOTTOM

#: L^r_x is a CS list while R_x is an epoch, or a per-thread dict of CS
#: lists while R_x is a vector clock; ``None`` before the first access.
ReadCS = Union[None, CSList, Dict[int, CSList]]


class SmartTrack(VectorClockAnalysis):
    """Shared implementation of Algorithm 3 (see module docstring)."""

    tier = "st"
    BUMP_AT_ACQUIRE = True
    #: implements the [Same Epoch] fast paths (Algorithm 3)
    SAME_EPOCH_SKIP = True
    USES_RULE_B = False
    #: event kinds at which this tier bumps the local clock (acquire AND
    #: release, plus the hard edges); the batch kernels derive exact
    #: per-position epochs from this set.
    BUMP_KINDS = (2, 3, 4, 6, 7, 8)
    #: which mask family repro.core.kernels builds for this class
    KERNEL_STYLE = "st"

    def __init__(self, trace: Trace, rule_b_style: str = "log",
                 collect_cases: bool = False):
        super().__init__(trace, collect_cases=collect_cases)
        nv = max(getattr(trace, "num_vars", 0) or 0, 1)
        self._read = array("q", _BOTTOM_WORD * nv)
        self._write = array("q", _BOTTOM_WORD * nv)
        #: read slots promoted to vector clocks (column holds META_VC)
        self._read_vc: Dict[int, VectorClock] = {}
        self._lw: List[Optional[CSList]] = [None] * nv
        self._lr: List[ReadCS] = [None] * nv
        #: bit 0: E^r_x non-empty; bit 1: E^w_x non-empty
        self._eflags = array("b", bytes(nv))
        # E^r_x / E^w_x: var -> thread -> lock -> release-clock reference
        self._er: Dict[int, Dict[int, Dict[int, VectorClock]]] = {}
        self._ew: Dict[int, Dict[int, Dict[int, VectorClock]]] = {}
        # H_t: active critical sections, innermost last
        self._stack: List[List[CSEntry]] = [[] for _ in range(self.width)]
        self._queues: Optional[RuleBQueues] = None
        if self.USES_RULE_B:
            self._queues = RuleBQueues(self.width, epoch_acquires=True,
                                       style=rule_b_style)

    def _grow_vars(self, need: int) -> None:
        """Extend the per-variable columns to at least ``need`` slots."""
        have = len(self._read)
        if need > have:
            pad = _BOTTOM_WORD * (need - have)
            self._read.frombytes(pad)
            self._write.frombytes(pad)
            self._lw.extend([None] * (need - have))
            self._lr.extend([None] * (need - have))
            self._eflags.frombytes(bytes(need - have))

    def make_kernel(self):
        """See :meth:`repro.core.base.Analysis.make_kernel`."""
        if self.case_counts is not None:
            return None
        from repro.core import kernels

        return kernels.make_kernel(self)

    # -- synchronization (Algorithm 3 lines 1–16) --------------------------
    def acquire(self, t: int, m: int, i: int, site: int) -> None:
        self._acquire_compose(t, m)
        if self._queues is not None:
            self._queues.on_acquire(t, m, self._time(t), self.cc[t])
        self._stack[t].append(open_entry(self.width, t, m))
        self.held[t].append(m)
        self._bump(t)

    def release(self, t: int, m: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        if self._queues is not None:
            self._queues.on_release(t, m, cc_t, self._publish_clock(t))
        stack = self._stack[t]
        if stack and stack[-1].lock == m:
            entry = stack.pop()
        else:  # non-LIFO unlock order
            pos = next(k for k in range(len(stack) - 1, -1, -1)
                       if stack[k].lock == m)
            entry = stack.pop(pos)
        entry.clock.assign(self._publish_clock(t))  # lines 13–14
        self._release_publish(t, m)
        held = self.held[t]
        if held and held[-1] == m:
            held.pop()
        else:
            held.remove(m)
        self._bump(t)

    # -- MultiCheck (Algorithm 3 lines 26–35) --------------------------------
    def _multicheck(self, t: int, cs_list: CSList, u: int,
                    check: Optional[int]) -> Tuple[Optional[Dict[int, VectorClock]], bool]:
        """Fused CCS/race check over one CS list.

        ``check`` is the last-access epoch to race-check (a packed epoch
        from :mod:`repro.clocks.epoch`; ``None`` or a negative column
        sentinel means "no check").

        Traverses outermost-to-innermost.  A critical section whose release
        is already ordered before the current access — or whose lock the
        current thread holds (a conflicting critical section, whose release
        time is then joined) — subsumes the inner entries and the race
        check.  Unordered, unheld critical sections accumulate in the
        residual map ``E`` for the extra metadata.

        Returns ``(E or None, race_check_failed)``.
        """
        cc_t = self.cc[t]
        held = self.held[t]
        residual: Optional[Dict[int, VectorClock]] = None
        for entry in cs_list:
            clock = entry.clock
            if clock[u] <= cc_t[u]:
                return residual, False  # ordered: subsumes the rest
            if entry.lock in held:
                cc_t.join(clock)  # conflicting critical sections: rule (a)
                return residual, False
            if residual is None:
                residual = {}
            residual[entry.lock] = clock
        raced = not packed_epoch_leq(check, cc_t, t)
        return residual, raced

    # -- writes (Algorithm 3 Write) -------------------------------------------
    def write(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = self._time(t)
        e = time << TID_BITS | t
        try:
            w = self._write[x]
        except IndexError:
            self._grow_vars(x + 1)
            w = PACKED_BOTTOM
        if w == e:
            return  # [Write Same Epoch]
        er = self._er.get(x)
        if er:  # lines 19–23: absorb and clear extra metadata
            ew = self._ew.get(x)
            for m in self.held[t]:
                for u in list(er):
                    if u == t:
                        continue
                    locks = er[u]
                    clock = locks.pop(m, None)
                    if clock is not None:
                        cc_t.join(clock)
                    if not locks:
                        del er[u]
                if ew:
                    for u in list(ew):
                        if u == t:
                            continue
                        locks = ew[u]
                        locks.pop(m, None)
                        if not locks:
                            del ew[u]
            er.pop(t, None)
            if ew is not None:
                ew.pop(t, None)
            if not er:
                self._er.pop(x, None)
            if ew is not None and not ew:
                self._ew.pop(x, None)
        r = self._read[x]
        if r == META_VC:  # [Write Shared], lines 30–35
            self._count("write_shared")
            rvc = self._read_vc.pop(x)
            lr = self._lr[x]
            w_tid = (w & TID_MASK) if w >= 0 else -1
            raced = False
            for u in range(self.width):
                ru = rvc[u]
                if u == t or ru == 0:
                    continue
                cs_u = lr.get(u, EMPTY) if isinstance(lr, dict) else EMPTY
                residual, bad = self._multicheck(
                    t, cs_u, u, ru << TID_BITS | u)
                raced = raced or bad
                if residual:
                    self._er.setdefault(x, {})[u] = residual
                    if u == w_tid:
                        w_res, _ = self._multicheck(
                            t, self._lw[x] or EMPTY, u, None)
                        if w_res:
                            self._ew.setdefault(x, {})[u] = w_res
            if raced:
                self._race(i, site, x, t, "write", "access-write")
        elif r < 0 or (r & TID_MASK) == t:  # [Write Owned]
            self._count("write_owned" if r >= 0 else "write_exclusive")
        else:  # [Write Exclusive], lines 25–29
            self._count("write_exclusive")
            u = r & TID_MASK
            residual, raced = self._multicheck(
                t, self._lr[x] or EMPTY, u, r)
            if residual:
                self._er.setdefault(x, {})[u] = residual
                w_tid = (w & TID_MASK) if w >= 0 else -1
                if w_tid >= 0:
                    w_res, _ = self._multicheck(
                        t, self._lw[x] or EMPTY, w_tid, None)
                    if w_res:
                        self._ew.setdefault(x, {})[w_tid] = w_res
            if raced:
                self._race(i, site, x, t, "write", "access-write")
        self._eflags[x] = ((1 if self._er.get(x) else 0)
                           | (2 if self._ew.get(x) else 0))
        snap = tuple(self._stack[t])  # line 36
        self._lw[x] = snap
        self._lr[x] = snap
        self._write[x] = e  # line 37
        self._read[x] = e

    # -- reads (Algorithm 3 Read) ----------------------------------------------
    def read(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = self._time(t)
        e = time << TID_BITS | t
        try:
            r = self._read[x]
        except IndexError:
            self._grow_vars(x + 1)
            r = PACKED_BOTTOM
        if r == e:
            return  # [Read Same Epoch]
        is_vc = r == META_VC
        if is_vc:
            rvc = self._read_vc[x]
            if rvc[t] == time:
                return  # [Shared Same Epoch]
        ew = self._ew.get(x)
        if ew:  # lines 4–6: reads absorb (but keep) residual write CSs
            for m in self.held[t]:
                for u, locks in ew.items():
                    if u == t:
                        continue
                    clock = locks.get(m)
                    if clock is not None:
                        cc_t.join(clock)
        w = self._write[x]
        if is_vc:
            if rvc[t] != 0:  # [Read Shared Owned], lines 19–21
                self._count("read_shared_owned")
                self._lr_set_thread(x, t)
                rvc[t] = time
                return
            self._count("read_shared")  # [Read Shared], lines 22–25
            w_tid = (w & TID_MASK) if w >= 0 else -1
            residual, raced = self._multicheck(
                t, self._lw[x] or EMPTY, w_tid, w)
            if residual and w >= 0:
                # Deviation (DESIGN.md §4): keep the residual write CSs in
                # E^w_x so later owned-case reads inside critical sections
                # still absorb the rule (a) ordering.
                self._ew.setdefault(x, {})[w_tid] = residual
                self._eflags[x] |= 2
            if raced:
                self._race(i, site, x, t, "read", "write-read")
            self._lr_set_thread(x, t)
            rvc[t] = time
            return
        if r < 0:  # first access: trivial [Read Exclusive]
            self._count("read_exclusive")
            self._lr[x] = tuple(self._stack[t])
            self._read[x] = e
            return
        if (r & TID_MASK) == t:  # [Read Owned], lines 7–9
            self._count("read_owned")
            self._lr[x] = tuple(self._stack[t])
            self._read[x] = e
            return
        u = r & TID_MASK
        lr = self._lr[x] or EMPTY
        # lines 10–11: the last access's *outermost* release time decides
        # between [Read Exclusive] and [Read Share]
        if lr:
            outer = lr[0].clock
            ordered = outer[u] <= cc_t[u]
        else:
            ordered = packed_epoch_leq(r, cc_t, t)
        if ordered:  # [Read Exclusive], lines 12–14
            self._count("read_exclusive")
            self._lr[x] = tuple(self._stack[t])
            self._read[x] = e
            return
        self._count("read_share")  # [Read Share], lines 15–18
        w_tid = (w & TID_MASK) if w >= 0 else -1
        residual, raced = self._multicheck(
            t, self._lw[x] or EMPTY, w_tid, w)
        if residual and w >= 0:
            # Deviation (DESIGN.md §4): see [Read Shared] above.
            self._ew.setdefault(x, {})[w_tid] = residual
            self._eflags[x] |= 2
        if raced:
            self._race(i, site, x, t, "read", "write-read")
        self._lr[x] = {u: lr, t: tuple(self._stack[t])}
        vc = VectorClock.zeros(self.width)
        vc[u] = r >> TID_BITS
        vc[t] = time
        self._read_vc[x] = vc
        self._read[x] = META_VC

    def _lr_set_thread(self, x: int, t: int) -> None:
        lr = self._lr[x]
        if not isinstance(lr, dict):
            lr = {}
            self._lr[x] = lr
        lr[t] = tuple(self._stack[t])

    # -- bounded-window mode -------------------------------------------------
    def evict_window(self, cutoff: int, stale) -> None:
        """Reset per-variable epochs/CS-lists/extra-clock maps of stale
        variables (per-thread CS stacks and rule (b) queues are not
        per-variable and stay; DESIGN.md §11)."""
        read = self._read
        write = self._write
        lw = self._lw
        lr = self._lr
        eflags = self._eflags
        nv = len(read)
        for x in stale:
            if x < nv:
                read[x] = PACKED_BOTTOM
                write[x] = PACKED_BOTTOM
                lw[x] = None
                lr[x] = None
                eflags[x] = 0
            self._read_vc.pop(x, None)
            self._er.pop(x, None)
            self._ew.pop(x, None)

    # -- memory -------------------------------------------------------------
    def footprint_bytes(self) -> int:
        vc = _vc_bytes(self.width)
        total = self._base_footprint()
        writes = sum(1 for w in self._write if w != PACKED_BOTTOM)
        total += writes * (EPOCH_BYTES + DICT_ENTRY_BYTES)
        reads = sum(1 for r in self._read if r != PACKED_BOTTOM)
        shared = len(self._read_vc)
        total += reads * DICT_ENTRY_BYTES
        total += shared * vc + (reads - shared) * EPOCH_BYTES
        for cs in self._lw:
            if cs is not None:
                total += DICT_ENTRY_BYTES + len(cs) * 8  # entries shared
        for lr in self._lr:
            if lr is None:
                continue
            if isinstance(lr, dict):
                for cs in lr.values():
                    total += DICT_ENTRY_BYTES + len(cs) * 8
            else:
                total += DICT_ENTRY_BYTES + len(lr) * 8
        for emap in (self._er, self._ew):
            for per_thread in emap.values():
                for locks in per_thread.values():
                    total += DICT_ENTRY_BYTES + len(locks) * 16
        for stack in self._stack:
            total += len(stack) * (CS_ENTRY_BYTES + vc)
        if self._queues is not None:
            total += self._queues.footprint_bytes()
        return total


class SmartTrackWCP(_WcpMixin, SmartTrack):
    """SmartTrack-WCP (Table 1)."""

    name = "st-wcp"
    USES_RULE_B = True


class SmartTrackDC(SmartTrack):
    """SmartTrack-DC: Algorithm 3 as printed (Table 1)."""

    name = "st-dc"
    relation = "dc"
    USES_RULE_B = True


class SmartTrackWDC(SmartTrack):
    """SmartTrack-WDC: Algorithm 3 minus rule (b) (§3, §4.2)."""

    name = "st-wdc"
    relation = "wdc"
    USES_RULE_B = False
