"""Algorithm 3: SmartTrack-{WCP, DC, WDC} (paper §4.2).

SmartTrack extends FTO (Algorithm 2) with the conflicting-critical-section
(CCS) optimizations — the paper's central contribution:

* Per-variable CS lists ``L^w_x``/``L^r_x`` mirror the last-access epochs
  ``W_x``/``R_x``, replacing the per-(lock, variable) clocks
  ``L^{r,w}_{m,x}`` and the per-critical-section sets ``R_m``/``W_m``.
* Release times are published *by reference* through each thread's active
  CS list ``H_t``, deferring the update to the release (∞ until then).
* ``MultiCheck`` fuses the CCS detection with the race check, traversing a
  CS list outermost-to-innermost and stopping at the first critical
  section that is already ordered to the current access or that conflicts
  with a held lock.
* "Extra" metadata ``E^r_x``/``E^w_x`` preserves residual critical
  sections that writes would otherwise overwrite (Figures 4(c)/(d)).
* Rule (b) acquire queues hold epochs instead of vector clocks.

Deviations from the preprint listing (see DESIGN.md §4): ``MultiCheck``
calls over ``L^w_x`` pass the last *writer's* thread id, and the clearing
loop of the extra metadata at writes nests inside the held-locks loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.clocks.epoch import TID_BITS, TID_MASK, epoch_leq
from repro.clocks.vector_clock import INF, VectorClock
from repro.core.base import (
    DICT_ENTRY_BYTES,
    EPOCH_BYTES,
    VectorClockAnalysis,
    _vc_bytes,
)
from repro.core.cslist import CS_ENTRY_BYTES, CSEntry, CSList, EMPTY, open_entry
from repro.core.rule_b import RuleBQueues
from repro.core.unopt import _WcpMixin
from repro.trace.trace import Trace

Meta = Union[None, int, VectorClock]
#: L^r_x is a CS list while R_x is an epoch, or a per-thread dict of CS
#: lists while R_x is a vector clock.
ReadCS = Union[CSList, Dict[int, CSList]]


class SmartTrack(VectorClockAnalysis):
    """Shared implementation of Algorithm 3 (see module docstring)."""

    tier = "st"
    BUMP_AT_ACQUIRE = True
    #: implements the [Same Epoch] fast paths (Algorithm 3)
    SAME_EPOCH_SKIP = True
    USES_RULE_B = False

    def __init__(self, trace: Trace, rule_b_style: str = "log",
                 collect_cases: bool = False):
        super().__init__(trace, collect_cases=collect_cases)
        self._read: Dict[int, Meta] = {}
        self._write: Dict[int, Optional[int]] = {}
        self._lw: Dict[int, CSList] = {}
        self._lr: Dict[int, ReadCS] = {}
        # E^r_x / E^w_x: var -> thread -> lock -> release-clock reference
        self._er: Dict[int, Dict[int, Dict[int, VectorClock]]] = {}
        self._ew: Dict[int, Dict[int, Dict[int, VectorClock]]] = {}
        # H_t: active critical sections, innermost last
        self._stack: List[List[CSEntry]] = [[] for _ in range(self.width)]
        self._queues: Optional[RuleBQueues] = None
        if self.USES_RULE_B:
            self._queues = RuleBQueues(self.width, epoch_acquires=True,
                                       style=rule_b_style)

    # -- synchronization (Algorithm 3 lines 1–16) --------------------------
    def acquire(self, t: int, m: int, i: int, site: int) -> None:
        self._acquire_compose(t, m)
        if self._queues is not None:
            self._queues.on_acquire(t, m, self._time(t), self.cc[t])
        self._stack[t].append(open_entry(self.width, t, m))
        self.held[t].append(m)
        self._bump(t)

    def release(self, t: int, m: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        if self._queues is not None:
            self._queues.on_release(t, m, cc_t, self._publish_clock(t))
        stack = self._stack[t]
        if stack and stack[-1].lock == m:
            entry = stack.pop()
        else:  # non-LIFO unlock order
            pos = next(k for k in range(len(stack) - 1, -1, -1)
                       if stack[k].lock == m)
            entry = stack.pop(pos)
        entry.clock.assign(self._publish_clock(t))  # lines 13–14
        self._release_publish(t, m)
        held = self.held[t]
        if held and held[-1] == m:
            held.pop()
        else:
            held.remove(m)
        self._bump(t)

    # -- MultiCheck (Algorithm 3 lines 26–35) --------------------------------
    def _multicheck(self, t: int, cs_list: CSList, u: int,
                    check: Optional[int]) -> Tuple[Optional[Dict[int, VectorClock]], bool]:
        """Fused CCS/race check over one CS list.

        ``check`` is the last-access epoch to race-check (a packed epoch
        from :mod:`repro.clocks.epoch`, or None for "no check").

        Traverses outermost-to-innermost.  A critical section whose release
        is already ordered before the current access — or whose lock the
        current thread holds (a conflicting critical section, whose release
        time is then joined) — subsumes the inner entries and the race
        check.  Unordered, unheld critical sections accumulate in the
        residual map ``E`` for the extra metadata.

        Returns ``(E or None, race_check_failed)``.
        """
        cc_t = self.cc[t]
        held = self.held[t]
        residual: Optional[Dict[int, VectorClock]] = None
        for entry in cs_list:
            clock = entry.clock
            if clock[u] <= cc_t[u]:
                return residual, False  # ordered: subsumes the rest
            if entry.lock in held:
                cc_t.join(clock)  # conflicting critical sections: rule (a)
                return residual, False
            if residual is None:
                residual = {}
            residual[entry.lock] = clock
        raced = not epoch_leq(check, cc_t, t)
        return residual, raced

    # -- writes (Algorithm 3 Write) -------------------------------------------
    def write(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = self._time(t)
        e = time << TID_BITS | t
        w = self._write.get(x)
        if w == e:
            return  # [Write Same Epoch]
        er = self._er.get(x)
        if er:  # lines 19–23: absorb and clear extra metadata
            ew = self._ew.get(x)
            for m in self.held[t]:
                for u in list(er):
                    if u == t:
                        continue
                    locks = er[u]
                    clock = locks.pop(m, None)
                    if clock is not None:
                        cc_t.join(clock)
                    if not locks:
                        del er[u]
                if ew:
                    for u in list(ew):
                        if u == t:
                            continue
                        locks = ew[u]
                        locks.pop(m, None)
                        if not locks:
                            del ew[u]
            er.pop(t, None)
            if ew is not None:
                ew.pop(t, None)
            if not er:
                self._er.pop(x, None)
            if ew is not None and not ew:
                self._ew.pop(x, None)
        r = self._read.get(x)
        if type(r) is VectorClock:  # [Write Shared], lines 30–35
            self._count("write_shared")
            lr = self._lr.get(x)
            w_tid = (w & TID_MASK) if w is not None else -1
            raced = False
            for u in range(self.width):
                ru = r[u]
                if u == t or ru == 0:
                    continue
                cs_u = lr.get(u, EMPTY) if isinstance(lr, dict) else EMPTY
                residual, bad = self._multicheck(
                    t, cs_u, u, ru << TID_BITS | u)
                raced = raced or bad
                if residual:
                    self._er.setdefault(x, {})[u] = residual
                    if u == w_tid:
                        w_res, _ = self._multicheck(
                            t, self._lw.get(x, EMPTY), u, None)
                        if w_res:
                            self._ew.setdefault(x, {})[u] = w_res
            if raced:
                self._race(i, site, x, t, "write", "access-write")
        elif r is None or (r & TID_MASK) == t:  # [Write Owned]
            self._count("write_owned" if r is not None else "write_exclusive")
        else:  # [Write Exclusive], lines 25–29
            self._count("write_exclusive")
            u = r & TID_MASK
            residual, raced = self._multicheck(
                t, self._lr.get(x, EMPTY), u, r)
            if residual:
                self._er.setdefault(x, {})[u] = residual
                w_tid = (w & TID_MASK) if w is not None else -1
                if w_tid >= 0:
                    w_res, _ = self._multicheck(
                        t, self._lw.get(x, EMPTY), w_tid, None)
                    if w_res:
                        self._ew.setdefault(x, {})[w_tid] = w_res
            if raced:
                self._race(i, site, x, t, "write", "access-write")
        snap = tuple(self._stack[t])  # line 36
        self._lw[x] = snap
        self._lr[x] = snap
        self._write[x] = e  # line 37
        self._read[x] = e

    # -- reads (Algorithm 3 Read) ----------------------------------------------
    def read(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = self._time(t)
        e = time << TID_BITS | t
        r = self._read.get(x)
        if r == e:
            return  # [Read Same Epoch]
        is_vc = type(r) is VectorClock
        if is_vc and r[t] == time:
            return  # [Shared Same Epoch]
        ew = self._ew.get(x)
        if ew:  # lines 4–6: reads absorb (but keep) residual write CSs
            for m in self.held[t]:
                for u, locks in ew.items():
                    if u == t:
                        continue
                    clock = locks.get(m)
                    if clock is not None:
                        cc_t.join(clock)
        w = self._write.get(x)
        if is_vc:
            if r[t] != 0:  # [Read Shared Owned], lines 19–21
                self._count("read_shared_owned")
                self._lr_set_thread(x, t)
                r[t] = time
                return
            self._count("read_shared")  # [Read Shared], lines 22–25
            w_tid = (w & TID_MASK) if w is not None else -1
            residual, raced = self._multicheck(
                t, self._lw.get(x, EMPTY), w_tid, w)
            if residual and w is not None:
                # Deviation (DESIGN.md §4): keep the residual write CSs in
                # E^w_x so later owned-case reads inside critical sections
                # still absorb the rule (a) ordering.
                self._ew.setdefault(x, {})[w_tid] = residual
            if raced:
                self._race(i, site, x, t, "read", "write-read")
            self._lr_set_thread(x, t)
            r[t] = time
            return
        if r is None:  # first access: trivial [Read Exclusive]
            self._count("read_exclusive")
            self._lr[x] = tuple(self._stack[t])
            self._read[x] = e
            return
        if (r & TID_MASK) == t:  # [Read Owned], lines 7–9
            self._count("read_owned")
            self._lr[x] = tuple(self._stack[t])
            self._read[x] = e
            return
        u = r & TID_MASK
        lr = self._lr.get(x, EMPTY)
        # lines 10–11: the last access's *outermost* release time decides
        # between [Read Exclusive] and [Read Share]
        if lr:
            outer = lr[0].clock
            ordered = outer[u] <= cc_t[u]
        else:
            ordered = epoch_leq(r, cc_t, t)
        if ordered:  # [Read Exclusive], lines 12–14
            self._count("read_exclusive")
            self._lr[x] = tuple(self._stack[t])
            self._read[x] = e
            return
        self._count("read_share")  # [Read Share], lines 15–18
        w_tid = (w & TID_MASK) if w is not None else -1
        residual, raced = self._multicheck(
            t, self._lw.get(x, EMPTY), w_tid, w)
        if residual and w is not None:
            # Deviation (DESIGN.md §4): see [Read Shared] above.
            self._ew.setdefault(x, {})[w_tid] = residual
        if raced:
            self._race(i, site, x, t, "read", "write-read")
        self._lr[x] = {u: lr, t: tuple(self._stack[t])}
        vc = VectorClock.zeros(self.width)
        vc[u] = r >> TID_BITS
        vc[t] = time
        self._read[x] = vc

    def _lr_set_thread(self, x: int, t: int) -> None:
        lr = self._lr.get(x)
        if not isinstance(lr, dict):
            lr = {} if lr is None else {}
            self._lr[x] = lr
        lr[t] = tuple(self._stack[t])

    # -- memory -------------------------------------------------------------
    def footprint_bytes(self) -> int:
        vc = _vc_bytes(self.width)
        total = self._base_footprint()
        total += len(self._write) * (EPOCH_BYTES + DICT_ENTRY_BYTES)
        for r in self._read.values():
            total += DICT_ENTRY_BYTES
            total += vc if isinstance(r, VectorClock) else EPOCH_BYTES
        for cs in self._lw.values():
            total += DICT_ENTRY_BYTES + len(cs) * 8  # entries shared
        for lr in self._lr.values():
            if isinstance(lr, dict):
                for cs in lr.values():
                    total += DICT_ENTRY_BYTES + len(cs) * 8
            else:
                total += DICT_ENTRY_BYTES + len(lr) * 8
        for emap in (self._er, self._ew):
            for per_thread in emap.values():
                for locks in per_thread.values():
                    total += DICT_ENTRY_BYTES + len(locks) * 16
        for stack in self._stack:
            total += len(stack) * (CS_ENTRY_BYTES + vc)
        if self._queues is not None:
            total += self._queues.footprint_bytes()
        return total


class SmartTrackWCP(_WcpMixin, SmartTrack):
    """SmartTrack-WCP (Table 1)."""

    name = "st-wcp"
    USES_RULE_B = True


class SmartTrackDC(SmartTrack):
    """SmartTrack-DC: Algorithm 3 as printed (Table 1)."""

    name = "st-dc"
    relation = "dc"
    USES_RULE_B = True


class SmartTrackWDC(SmartTrack):
    """SmartTrack-WDC: Algorithm 3 minus rule (b) (§3, §4.2)."""

    name = "st-wdc"
    relation = "wdc"
    USES_RULE_B = False
