"""Analysis framework: base classes, race reports, and the event driver.

Every analysis in the matrix (paper Table 1) subclasses
:class:`VectorClockAnalysis`, which provides:

* per-thread clocks (``C_t``; plus ``H_t`` for WCP, which composes with HB),
* the local-clock/epoch discipline, including the increment-at-acquire
  policy for predictive analyses (§5.1),
* handling of the additional synchronization events (§5.1): thread
  fork/join, conflicting volatile accesses, and class-initialization edges,
  which establish order in every analysis,
* race reporting (one dynamic race per access; distinct sites are the
  "statically distinct" races of Table 7), and
* metadata footprint accounting for the memory experiments (Tables 3/4/6).

Relation-specific behaviour is captured by three small hooks
(`_acquire_compose`, `_release_publish`, `_publish_clock`) so that each
algorithm (Algorithms 1–3) is written once and instantiated per relation.

Dispatch-table contract
-----------------------

Analyses never branch on the event kind: every concrete analysis is a set
of per-kind handler methods (``read``, ``write``, ..., ``static_access``),
and :meth:`Analysis.dispatch_table` compiles them once into a tuple of
bound handlers indexed by the integer event kind (:data:`HANDLER_NAMES`
fixes the kind → method-name mapping).  Drivers — :meth:`Analysis.run` for
one analysis over a materialized trace, and
:class:`repro.core.engine.MultiRunner` for N analyses over one event
stream — call ``table[event.kind](tid, target, index, site)`` with no
per-event ``if kind ==`` chains.  Handlers must be self-contained per
instance: all mutable state (clocks, metadata maps, race lists, footprint
counters) lives on ``self``, so arbitrarily many instances — including two
instances of the *same* analysis — can be driven over one stream side by
side without interference.

An analysis can be constructed from a full :class:`Trace` or from a
:class:`~repro.trace.trace.TraceInfo` (dimensions only); only
:meth:`Analysis.run` requires materialized events — external drivers feed
the dispatch table directly and collect the report via
:meth:`Analysis.finish`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.clocks.epoch import MAX_TID, TID_BITS
from repro.clocks.vector_clock import VectorClock
from repro.trace.event import (
    ACQUIRE,
    FORK,
    JOIN,
    READ,
    RELEASE,
    STATIC_ACCESS,
    STATIC_INIT,
    VOLATILE_READ,
    VOLATILE_WRITE,
    WRITE,
    KIND_NAMES,
)
from repro.trace.trace import Trace

#: Event kind -> handler method name; index == kind (the dispatch-table
#: contract, see module docstring).
HANDLER_NAMES = (
    "read",            # READ
    "write",           # WRITE
    "acquire",         # ACQUIRE
    "release",         # RELEASE
    "fork",            # FORK
    "join",            # JOIN
    "volatile_read",   # VOLATILE_READ
    "volatile_write",  # VOLATILE_WRITE
    "static_init",     # STATIC_INIT
    "static_access",   # STATIC_ACCESS
)

# The table above must stay aligned with the kind constants.
assert (HANDLER_NAMES.index("read"), HANDLER_NAMES.index("write")) == (READ, WRITE)
assert HANDLER_NAMES.index("acquire") == ACQUIRE
assert HANDLER_NAMES.index("release") == RELEASE
assert HANDLER_NAMES.index("fork") == FORK
assert HANDLER_NAMES.index("join") == JOIN
assert HANDLER_NAMES.index("volatile_read") == VOLATILE_READ
assert HANDLER_NAMES.index("volatile_write") == VOLATILE_WRITE
assert HANDLER_NAMES.index("static_init") == STATIC_INIT
assert HANDLER_NAMES.index("static_access") == STATIC_ACCESS
assert len(HANDLER_NAMES) == len(KIND_NAMES)

# Byte-cost model for metadata footprints.  The constants model a
# shadow-memory implementation like the paper's (RoadRunner attaches
# metadata objects to variables/locks directly), not CPython dicts: a
# vector clock is a T-slot array plus a header, an epoch is one word, and
# a metadata slot costs a couple of words of indirection.
VC_BYTES_BASE = 24
VC_BYTES_PER_SLOT = 8
EPOCH_BYTES = 8
QUEUE_ENTRY_OVERHEAD = 8
DICT_ENTRY_BYTES = 16
CS_ENTRY_BYTES = 32


class RaceRecord:
    """One dynamic race: the access where a check failed (§5.1)."""

    __slots__ = ("index", "site", "var", "tid", "access", "kinds")

    def __init__(self, index: int, site: int, var: int, tid: int,
                 access: str, kinds: str):
        self.index = index
        self.site = site
        self.var = var
        self.tid = tid
        self.access = access  # "read" or "write"
        self.kinds = kinds  # e.g. "write-read", "write-write+read-write"

    def __repr__(self) -> str:
        return "RaceRecord(event={}, site={}, var={}, T{}, {}: {})".format(
            self.index, self.site, self.var, self.tid, self.access, self.kinds)


class RaceReport:
    """The result of running one analysis over one trace.

    ``dynamic_count`` and ``static_count`` follow Table 7's counting: each
    access detecting one or more races counts as a single dynamic race, and
    dynamic races at the same program location are one static race.

    ``trimmed_dynamic``/``trimmed_sites`` account for race *records* an
    unbounded-feed session dropped to cap memory
    (:meth:`Analysis.trim_races`): the counts stay exact — trimmed races
    still contribute to ``dynamic_count``/``static_count`` — but their
    :class:`RaceRecord` details are gone, so ``races`` holds only the
    retained tail and ``racy_vars``/``races_on`` cover only that tail.
    Both default to empty; offline runs never trim.
    """

    def __init__(self, analysis_name: str, relation: str, tier: str,
                 races: List[RaceRecord], events_processed: int,
                 peak_footprint_bytes: int = 0,
                 case_counts: Optional[Dict[str, int]] = None,
                 trimmed_dynamic: int = 0,
                 trimmed_sites: Optional[Set[int]] = None):
        self.analysis_name = analysis_name
        self.relation = relation
        self.tier = tier
        self.races = races
        self.events_processed = events_processed
        self.peak_footprint_bytes = peak_footprint_bytes
        self.case_counts = case_counts or {}
        self.trimmed_dynamic = trimmed_dynamic
        self.trimmed_sites = frozenset(trimmed_sites or ())

    @property
    def dynamic_count(self) -> int:
        """Total dynamic races (one per racing access)."""
        return self.trimmed_dynamic + len(self.races)

    @property
    def static_count(self) -> int:
        """Statically distinct races (distinct program locations)."""
        return len({r.site for r in self.races} | self.trimmed_sites)

    @property
    def racy_vars(self) -> Set[int]:
        """Variables involved in at least one reported race."""
        return {r.var for r in self.races}

    @property
    def first_race(self) -> Optional[RaceRecord]:
        """The earliest dynamic race, or None."""
        return self.races[0] if self.races else None

    def races_on(self, var: int) -> List[RaceRecord]:
        """All dynamic races on one variable."""
        return [r for r in self.races if r.var == var]

    def __repr__(self) -> str:
        return "RaceReport({}: {} static / {} dynamic races over {} events)".format(
            self.analysis_name, self.static_count, self.dynamic_count,
            self.events_processed)


def _count_disabled(case: str) -> None:
    """Stand-in for :meth:`Analysis._count` when case counting is off."""


class Analysis:
    """Abstract analysis: per-event handlers driven over a trace.

    ``collect_cases=True`` turns on per-case counting (``case_counts`` in
    the report; paper Table 12).  It is *off* by default: the count is a
    dict update on nearly every access, which default runs should not pay.
    """

    name = "abstract"
    relation = "?"
    tier = "?"
    #: predictive analyses increment the local clock at acquires (§5.1)
    BUMP_AT_ACQUIRE = False
    #: True when repeated same-(thread, kind, variable) accesses within
    #: one epoch are no-ops for this analysis (the [Same Epoch] fast
    #: paths of §4.1 / §5.1).  The engine's shared same-epoch filter
    #: only drops events when *every* registered analysis declares this;
    #: subclasses without the fast-path semantics must leave it False.
    #: Declaring it also promises the thread's local clock advances
    #: *only* at the kinds marked in
    #: :data:`repro.core.engine._EPOCH_ENDERS` (acquire, release, fork,
    #: volatiles, static init) — the filter's epoch boundaries;
    #: ``tests/test_engine.py`` cross-checks that table against every
    #: registry analysis's observed bump sites.
    SAME_EPOCH_SKIP = False

    def __init__(self, trace: Trace, collect_cases: bool = False):
        # ``trace`` may be a full Trace or a TraceInfo (dimensions only);
        # only run() requires materialized events.
        self.trace = trace
        self.races: List[RaceRecord] = []
        # bounded-state accounting: races whose records were dropped by
        # trim_races() but whose counts must survive into the report
        self._trimmed_dynamic = 0
        self._trimmed_sites: Set[int] = set()
        self._events_processed = 0
        self._dispatch = None  # compiled lazily by dispatch_table()
        if collect_cases:
            self.case_counts: Optional[Dict[str, int]] = {}
        else:
            self.case_counts = None
            self._count = _count_disabled  # type: ignore[assignment]

    def _count(self, case: str) -> None:
        """Bump one case counter (only bound when ``collect_cases``)."""
        counts = self.case_counts
        counts[case] = counts.get(case, 0) + 1

    # -- state serialization (checkpoint contract) ----------------------
    def __getstate__(self):
        """The checkpoint serialization contract (:mod:`repro.checkpoint`).

        Everything an analysis owns — vector clocks, packed-epoch
        columns, per-variable metadata, CS lists, rule-(b) queues — is
        ordinary picklable state whose *object identity sharing* (CS
        entries shared between a thread's stack and the per-variable
        lists, shared HB bank clocks) pickle preserves within one dump.
        Two members need explicit handling:

        * ``trace`` is demoted to its :class:`~repro.trace.trace.TraceInfo`
          dimensions — a checkpoint must not embed the materialized
          event list, and a restored analysis is driven by the engine
          (never by solo :meth:`run`, which needs events);
        * ``_dispatch`` (a cached tuple of bound methods) is dropped and
          recompiled lazily after restore.
        """
        state = self.__dict__.copy()
        state["_dispatch"] = None
        trace = state.get("trace")
        if isinstance(trace, Trace):
            from repro.trace.trace import TraceInfo
            state["trace"] = TraceInfo.of(trace)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._dispatch = None

    # -- handlers (overridden by concrete analyses) ---------------------
    def read(self, t: int, x: int, i: int, site: int) -> None:
        raise NotImplementedError

    def write(self, t: int, x: int, i: int, site: int) -> None:
        raise NotImplementedError

    def acquire(self, t: int, m: int, i: int, site: int) -> None:
        raise NotImplementedError

    def release(self, t: int, m: int, i: int, site: int) -> None:
        raise NotImplementedError

    def fork(self, t: int, u: int, i: int, site: int) -> None:
        raise NotImplementedError

    def join(self, t: int, u: int, i: int, site: int) -> None:
        raise NotImplementedError

    def volatile_read(self, t: int, v: int, i: int, site: int) -> None:
        raise NotImplementedError

    def volatile_write(self, t: int, v: int, i: int, site: int) -> None:
        raise NotImplementedError

    def static_init(self, t: int, c: int, i: int, site: int) -> None:
        raise NotImplementedError

    def static_access(self, t: int, c: int, i: int, site: int) -> None:
        raise NotImplementedError

    # -- driving ----------------------------------------------------------
    def dispatch_table(self):
        """The precompiled per-event-kind dispatch table.

        A tuple of bound handlers indexed by the integer event kind (see
        :data:`HANDLER_NAMES` and the module docstring); compiled once per
        instance and cached.  External drivers call
        ``table[kind](tid, target, index, site)`` directly.
        """
        table = self._dispatch
        if table is None:
            table = tuple(getattr(self, name) for name in HANDLER_NAMES)
            self._dispatch = table
        return table

    def make_kernel(self):
        """Build this analysis' chunk batch kernel, or return ``None``.

        The capability contract behind :mod:`repro.core.kernels`: an
        analysis that can replay *whole decoded chunks* through
        vectorized fast paths (falling back to its own per-event
        handlers for slow paths) returns a kernel object exposing
        ``process_chunk(plan)``; the engine then drives the kernel
        instead of the dispatch table, with bit-identical reports.
        Analyses return ``None`` when they have no kernel, when numpy
        is unavailable (``repro.core.kernels.kernels_available()``), or
        when per-event bookkeeping is on (``case_counts``) — the engine
        falls back to ordinary chunked replay.
        """
        return None

    def run(self, sample_every: int = 0) -> RaceReport:
        """Process the whole (materialized) trace and return the report.

        ``sample_every`` > 0 samples the metadata footprint every that many
        events (plus once at the end) and records the peak.  To analyze an
        event *stream* (or many analyses in one pass), drive the dispatch
        table externally via :class:`repro.core.engine.MultiRunner` and
        collect the report with :meth:`finish`.
        """
        if not (getattr(self, "_hb_owner", True)
                and getattr(self, "_cc_owner", True)):
            raise RuntimeError(
                "{} reads clock state from an engine-shared bank and "
                "cannot be run solo; create a fresh instance".format(
                    self.name))
        handlers = self.dispatch_table()
        events = self.trace.events
        peak = 0
        if sample_every > 0:
            for i, e in enumerate(events):
                handlers[e.kind](e.tid, e.target, i, e.site)
                if i % sample_every == 0:
                    fp = self.footprint_bytes()
                    if fp > peak:
                        peak = fp
        else:
            for i, e in enumerate(events):
                handlers[e.kind](e.tid, e.target, i, e.site)
        return self.finish(len(events), peak)

    def finish(self, events_processed: int, peak_footprint: int = 0) -> RaceReport:
        """Seal the analysis after the driver fed its dispatch table.

        Takes a final footprint sample and returns the
        :class:`RaceReport`; ``peak_footprint`` is the largest sample the
        driver observed mid-run (0 if it never sampled).
        """
        fp = self.footprint_bytes()
        if fp > peak_footprint:
            peak_footprint = fp
        self._events_processed = events_processed
        return RaceReport(
            self.name, self.relation, self.tier, self.races,
            self._events_processed, peak_footprint, self.case_counts,
            trimmed_dynamic=self._trimmed_dynamic,
            trimmed_sites=self._trimmed_sites)

    def trim_races(self, count: int) -> int:
        """Drop the ``count`` oldest retained race records, keeping the
        report's counts exact.

        The bounded-state hook for infinite live feeds (see
        :class:`~repro.core.engine.MultiRunner`'s ``max_pending_races``):
        a race-heavy tenant would otherwise grow ``races`` without bound.
        The dropped records' dynamic count and distinct sites are folded
        into the trimmed accounting :meth:`finish` hands to
        :class:`RaceReport`, so ``dynamic_count``/``static_count`` are
        unaffected — only the per-race details of the dropped prefix are
        gone.  Returns the number of records actually dropped.
        """
        count = min(count, len(self.races))
        if count <= 0:
            return 0
        dropped = self.races[:count]
        del self.races[:count]
        self._trimmed_dynamic += count
        self._trimmed_sites.update(r.site for r in dropped)
        return count

    # -- race reporting ----------------------------------------------------
    def _race(self, i: int, site: int, x: int, t: int, access: str,
              kinds: str) -> None:
        self.races.append(RaceRecord(i, site, x, t, access, kinds))

    # -- bounded-window mode (engine ``window_events``; DESIGN.md §11) ------
    def evict_window(self, cutoff: int, stale) -> None:
        """Age out metadata older than the engine's event window.

        Called by the engine at window boundaries with the first event
        index still inside the window (``cutoff``) and the set of
        variables whose last access predates it (``stale``).  Analyses
        drop per-variable access metadata for ``stale`` variables and may
        prune any other per-event state older than ``cutoff``; dropping
        metadata trades precision for bounded state (races against
        evicted accesses are no longer reported).  The default is a
        no-op, which keeps unwindowed behavior for analyses that opt out.
        """

    # -- memory -------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """Estimated bytes of live analysis metadata (see DESIGN.md §2)."""
        return 0


def _vc_bytes(width: int) -> int:
    return VC_BYTES_BASE + VC_BYTES_PER_SLOT * width


class VectorClockAnalysis(Analysis):
    """Shared clock infrastructure for every analysis in the matrix.

    Subclasses use:

    * ``self.cc[t]`` — the relation clock ``C_t`` (HB clock for HB
      analyses, DC/WDC clock for those relations, WCP clock for WCP).
    * ``self.hh[t]`` — the HB clock ``H_t``; only non-None for WCP, which
      composes with HB (§2.4).
    * ``self._time(t)`` / ``self._epoch(t)`` — the thread's local clock
      (``C_t(t)``, or ``H_t(t)`` for WCP, since WCP does not contain PO).
    * ``self._bump(t)`` — advance the local clock (ends the thread's epoch).
    * ``self.held[t]`` — the thread's lock stack (innermost last).
    """

    #: True for WCP analyses: maintain HB clocks alongside.
    TRACKS_HB = False
    #: True for the pure-HB tier (Unopt-HB, FT2, FTO-HB): the relation
    #: clock *is* an HB clock with FastTrack's release-only local-clock
    #: discipline, identical across the tier — so the engine can hand
    #: co-scheduled instances one shared clock bank (DESIGN.md §3.1).
    HB_RELATION = False
    def __init__(self, trace: Trace, collect_cases: bool = False):
        super().__init__(trace, collect_cases=collect_cases)
        width = max(trace.num_threads, 1)
        if width > MAX_TID + 1:
            raise ValueError(
                "trace declares {} threads; packed epochs support at most "
                "{} (TID_BITS={})".format(width, MAX_TID + 1, TID_BITS))
        self.width = width
        #: False when this instance reads HB state from a shared bank
        #: (engine shared-HB mode) instead of maintaining it privately.
        self._hb_owner = True
        #: False when the *relation* clocks themselves are a shared bank
        #: (engine shared-HB mode for the pure-HB tier).
        self._cc_owner = True
        self.cc: List[VectorClock] = []
        for t in range(width):
            c = VectorClock.zeros(width)
            if not self.TRACKS_HB:
                c[t] = 1  # C_t(t) starts at 1 (paper §2.4)
            self.cc.append(c)
        if self.TRACKS_HB:
            self.hh: Optional[List[VectorClock]] = []
            for t in range(width):
                h = VectorClock.zeros(width)
                h[t] = 1
                self.hh.append(h)
        else:
            self.hh = None
        self.held: List[List[int]] = [[] for _ in range(width)]
        # lazily populated hard-edge clocks
        self._vol_w: Dict[int, VectorClock] = {}
        self._vol_r: Dict[int, VectorClock] = {}
        self._cls: Dict[int, VectorClock] = {}
        if self.TRACKS_HB:
            self._hvol_w: Dict[int, VectorClock] = {}
            self._hvol_r: Dict[int, VectorClock] = {}
            self._hcls: Dict[int, VectorClock] = {}

    # -- time -----------------------------------------------------------
    def _time(self, t: int) -> int:
        if self.hh is not None:
            return self.hh[t][t]
        return self.cc[t][t]

    def _epoch(self, t: int):
        # hot handlers inline this expression; keep the helper as the
        # single documented packing point for cold paths and tests
        return self._time(t) << TID_BITS | t

    def _bump(self, t: int) -> None:
        # shared-HB modes: the bank performs the single bump per event
        if self.hh is not None:
            if self._hb_owner:
                self.hh[t][t] += 1
        elif self._cc_owner:
            self.cc[t][t] += 1

    def _event_clock(self, t: int) -> VectorClock:
        """A copy of ``C_t`` that *includes the current event itself*.

        For HB/DC/WDC this is just a copy (the own component is the local
        clock).  For WCP the own component of ``C_t`` is the thread's true
        WCP knowledge, so the local clock is patched in; used when
        publishing hard (fork/volatile/class-init) edges, which order the
        publishing event itself in every relation (§5.1).
        """
        out = self.cc[t].copy()
        if self.hh is not None:
            out[t] = self.hh[t][t]
        return out

    # -- relation hooks (overridden for WCP) -----------------------------
    def _acquire_compose(self, t: int, m: int) -> None:
        """Join lock-release knowledge at an acquire (WCP/HB only)."""

    def _release_publish(self, t: int, m: int) -> None:
        """Publish release-time knowledge at a release (WCP/HB only)."""

    def _publish_clock(self, t: int) -> VectorClock:
        """The clock stored into rule (a)/(b) metadata at a release.

        DC/WDC store the DC clock; WCP stores the HB clock (WCP composes
        with HB on the left, so everything HB-before the release becomes
        WCP-before any event the release gets rule (a)/(b)-ordered to).
        """
        if self.hh is not None:
            return self.hh[t].copy()
        return self.cc[t].copy()

    # -- shared HB (engine mode; see repro.core.hb_shared) -----------------
    def adopt_shared_cc(self, bank) -> None:
        """Read the *relation* clocks from a shared bank (pure-HB tier).

        The Unopt-HB/FT2/FTO-HB relation clock is plain HB with
        FastTrack's release-only bump discipline, identical across the
        tier, so co-scheduled fresh instances can share one bank
        (``bump_at_acquire=False``).  Mirrors :meth:`adopt_shared_hb`:
        all relation-clock mutations are disabled (``_cc_owner=False``)
        and the engine's fused group replay applies each event's
        transition once via the bank.
        """
        if not self.HB_RELATION or self.hh is not None:
            raise TypeError(
                "{}'s relation clock is not plain HB; cannot share".format(
                    self.name))
        if bank.width != self.width:
            raise ValueError("shared clock bank width {} != analysis "
                             "width {}".format(bank.width, self.width))
        self.cc = bank.hh
        self._vol_w = bank.vol_w
        self._vol_r = bank.vol_r
        self._cls = bank.cls_clocks
        self._cc_owner = False

    def adopt_shared_hb(self, bank) -> None:
        """Read HB state from a shared bank instead of maintaining it.

        Only meaningful for ``TRACKS_HB`` analyses and only on a *fresh*
        instance (no events processed).  All private HB structures are
        replaced by references into the bank, so every HB read
        (``_time``/``_event_clock``/``_publish_clock`` and the footprint
        accounting) observes the shared state; every HB *mutation* in this
        instance's handlers is disabled (``_hb_owner = False``) — the bank
        applies the per-event HB transition exactly once, after the member
        handlers ran (see :class:`repro.core.engine.MultiRunner`).
        """
        if not self.TRACKS_HB or self.hh is None:
            raise TypeError(
                "{} does not track HB clocks; nothing to share".format(
                    self.name))
        if bank.width != self.width:
            raise ValueError("shared HB bank width {} != analysis width {}"
                             .format(bank.width, self.width))
        self.hh = bank.hh
        self._hvol_w = bank.vol_w
        self._hvol_r = bank.vol_r
        self._hcls = bank.cls_clocks
        self._hb_owner = False

    # -- hard edges (§5.1) -------------------------------------------------
    # All relation-clock (cc/_vol/_cls) mutations are gated on
    # ``_cc_owner`` and all HB-clock mutations on ``_hb_owner``: in the
    # engine's shared-HB modes the bank applies each event's transition
    # exactly once, after the member handlers ran.
    def fork(self, t: int, u: int, i: int, site: int) -> None:
        if self._cc_owner:
            self.cc[u].join(self._event_clock(t))
        if self.hh is not None and self._hb_owner:
            self.hh[u].join(self.hh[t])
        self._bump(t)

    def join(self, t: int, u: int, i: int, site: int) -> None:
        if self._cc_owner:
            self.cc[t].join(self._event_clock(u))
        if self.hh is not None and self._hb_owner:
            self.hh[t].join(self.hh[u])

    def volatile_write(self, t: int, v: int, i: int, site: int) -> None:
        if self._cc_owner:
            w = self._vol_w.get(v)
            if w is not None:
                self.cc[t].join(w)
            r = self._vol_r.get(v)
            if r is not None:
                self.cc[t].join(r)
        if self.hh is not None and self._hb_owner:
            hw = self._hvol_w.get(v)
            if hw is not None:
                self.hh[t].join(hw)
            hr = self._hvol_r.get(v)
            if hr is not None:
                self.hh[t].join(hr)
        if self._cc_owner:
            ec = self._event_clock(t)
            if w is None:
                self._vol_w[v] = ec
            else:
                w.join(ec)
        if self.hh is not None and self._hb_owner:
            if v not in self._hvol_w:
                self._hvol_w[v] = self.hh[t].copy()
            else:
                self._hvol_w[v].join(self.hh[t])
        self._bump(t)

    def volatile_read(self, t: int, v: int, i: int, site: int) -> None:
        if self._cc_owner:
            w = self._vol_w.get(v)
            if w is not None:
                self.cc[t].join(w)
        if self.hh is not None and self._hb_owner:
            hw = self._hvol_w.get(v)
            if hw is not None:
                self.hh[t].join(hw)
        if self._cc_owner:
            ec = self._event_clock(t)
            r = self._vol_r.get(v)
            if r is None:
                self._vol_r[v] = ec
            else:
                r.join(ec)
        if self.hh is not None and self._hb_owner:
            if v not in self._hvol_r:
                self._hvol_r[v] = self.hh[t].copy()
            else:
                self._hvol_r[v].join(self.hh[t])
        # A volatile read also *publishes* (it orders before later
        # conflicting volatile writes), so it ends the thread's epoch.
        self._bump(t)

    def static_init(self, t: int, c: int, i: int, site: int) -> None:
        if self._cc_owner:
            ec = self._event_clock(t)
            if c not in self._cls:
                self._cls[c] = ec
            else:
                self._cls[c].join(ec)
        if self.hh is not None and self._hb_owner:
            if c not in self._hcls:
                self._hcls[c] = self.hh[t].copy()
            else:
                self._hcls[c].join(self.hh[t])
        self._bump(t)

    def static_access(self, t: int, c: int, i: int, site: int) -> None:
        if self._cc_owner:
            k = self._cls.get(c)
            if k is not None:
                self.cc[t].join(k)
        if self.hh is not None and self._hb_owner:
            hk = self._hcls.get(c)
            if hk is not None:
                self.hh[t].join(hk)

    # -- memory ------------------------------------------------------------
    def _base_footprint(self) -> int:
        vcs = len(self.cc) + len(self._vol_w) + len(self._vol_r) + len(self._cls)
        if self.hh is not None:
            vcs += len(self.hh) + len(self._hvol_w) + len(self._hvol_r) + len(self._hcls)
        return vcs * _vc_bytes(self.width)
