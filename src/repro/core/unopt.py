"""Algorithm 1: unoptimized predictive analyses (Unopt-{WCP, DC, WDC}).

Vector clocks everywhere: per-thread ``C_t``; last-access clocks ``R_x``,
``W_x``; conflicting-critical-section clocks ``L^r_{m,x}``/``L^w_{m,x}``
per (lock, variable); per-critical-section access sets ``R_m``/``W_m``; and
rule (b) acquire/release queues (DC and WCP only).

Variants (paper Table 1):

* ``Unopt-DC`` — Algorithm 1 as printed.
* ``Unopt-WDC`` — Algorithm 1 minus rule (b) (lines 2, 4–8); §3.
* ``Unopt-WCP`` — composes with HB (§2.4): each thread also tracks an HB
  clock; lock acquires join the lock's WCP and HB release clocks; rule
  (a)/(b) metadata stores HB release times (left composition); rule (b)
  acquire entries are epochs (footnote 6's cheaper queues).

Each variant can build a constraint graph for vindication ("w/ G" columns
of Table 3): nodes are events; edges record the rule (a)/(b) orderings the
analysis discovered (program order and hard edges are implicit in the
trace).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.clocks.vector_clock import VectorClock
from repro.core.base import DICT_ENTRY_BYTES, VectorClockAnalysis, _vc_bytes
from repro.core.rule_b import RuleBQueues
from repro.trace.trace import Trace
from repro.vindication.graph import ConstraintGraph


class UnoptPredictive(VectorClockAnalysis):
    """Shared implementation of Algorithm 1 (see module docstring)."""

    tier = "unopt"
    BUMP_AT_ACQUIRE = True
    #: implements the §5.1-style same-epoch skip at accesses
    SAME_EPOCH_SKIP = True
    USES_RULE_B = False
    EPOCH_ACQ_QUEUES = False
    #: WCP only: keep L^{r,w}_{m,x} split per contributing thread, because
    #: rule (a) requires *conflicting* (cross-thread) events — a thread
    #: must not absorb its own releases' HB times into its WCP clock
    #: (WCP does not contain HB; DC/WDC contain PO, so merging is safe).
    SPLIT_L_BY_THREAD = False

    def __init__(self, trace: Trace, build_graph: bool = False,
                 rule_b_style: str = "log", collect_cases: bool = False):
        super().__init__(trace, collect_cases=collect_cases)
        self._read: Dict[int, VectorClock] = {}
        self._write: Dict[int, VectorClock] = {}
        # L^r_{m,x} / L^w_{m,x}: (lock, var) -> accumulated release clock
        self._lr: Dict[Tuple[int, int], VectorClock] = {}
        self._lw: Dict[Tuple[int, int], VectorClock] = {}
        # R_m / W_m: variables read/written by the ongoing critical section
        self._rm: Dict[int, Set[int]] = {}
        self._wm: Dict[int, Set[int]] = {}
        self._queues: Optional[RuleBQueues] = None
        if self.USES_RULE_B:
            self._queues = RuleBQueues(
                self.width, epoch_acquires=self.EPOCH_ACQ_QUEUES,
                track_graph=build_graph, style=rule_b_style)
        self.graph: Optional[ConstraintGraph] = (
            ConstraintGraph(len(trace)) if build_graph else None)
        # release event ids contributing to each L clock (graph mode only)
        self._lr_eids: Dict[Tuple[int, int], list] = {}
        self._lw_eids: Dict[Tuple[int, int], list] = {}
        if build_graph:
            self.name = self.name + "-g"

    # -- synchronization -------------------------------------------------
    def acquire(self, t: int, m: int, i: int, site: int) -> None:
        self._acquire_compose(t, m)
        if self._queues is not None:
            self._queues.on_acquire(t, m, self._time(t), self.cc[t])
        self.held[t].append(m)
        if self.graph is not None:
            self.graph.note_event(i)
        self._bump(t)

    def release(self, t: int, m: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        if self._queues is not None:
            self._queues.on_release(
                t, m, cc_t, self._publish_clock(t), eid=i, graph=self.graph)
        publish = self._publish_clock(t)
        rm = self._rm.get(m)
        if rm:
            for x in rm:
                self._l_update(self._lr, t, m, x, publish)
                if self.graph is not None:
                    self._lr_eids.setdefault((m, x), []).append(i)
            rm.clear()
        wm = self._wm.get(m)
        if wm:
            for x in wm:
                self._l_update(self._lw, t, m, x, publish)
                if self.graph is not None:
                    self._lw_eids.setdefault((m, x), []).append(i)
            wm.clear()
        self._release_publish(t, m)
        stack = self.held[t]
        if stack and stack[-1] == m:
            stack.pop()
        else:
            stack.remove(m)
        if self.graph is not None:
            self.graph.note_event(i)
        self._bump(t)

    # -- L^{r,w}_{m,x} maintenance ------------------------------------------
    def _l_update(self, store, t: int, m: int, x: int,
                  publish: VectorClock) -> None:
        """Join this release's time into L (per-thread split for WCP)."""
        if self.SPLIT_L_BY_THREAD:
            per_thread = store.get((m, x))
            if per_thread is None:
                store[(m, x)] = {t: publish.copy()}
            else:
                clock = per_thread.get(t)
                if clock is None:
                    per_thread[t] = publish.copy()
                else:
                    clock.join(publish)
            return
        clock = store.get((m, x))
        if clock is None:
            store[(m, x)] = publish.copy()
        else:
            clock.join(publish)

    def _l_join(self, store, t: int, m: int, x: int) -> bool:
        """Join prior conflicting critical sections into C_t (rule (a))."""
        entry = store.get((m, x))
        if entry is None:
            return False
        cc_t = self.cc[t]
        if self.SPLIT_L_BY_THREAD:
            for u, clock in entry.items():
                if u != t:
                    cc_t.join(clock)
            return True
        cc_t.join(entry)
        return True

    # -- accesses ----------------------------------------------------------
    def read(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = self._time(t)
        r = self._read.get(x)
        if r is not None and r[t] == time:
            return  # [Shared Same Epoch]-like check (§5.1)
        for m in self.held[t]:
            if self._l_join(self._lw, t, m, x):
                if self.graph is not None:
                    for eid in self._lw_eids.get((m, x), ()):
                        self.graph.add_edge(eid, i, "rule-a")
            self._rm.setdefault(m, set()).add(x)
        w = self._write.get(x)
        if w is not None and not w.leq_except(cc_t, t):
            self._race(i, site, x, t, "read", "write-read")
        if r is None:
            r = VectorClock.zeros(self.width)
            self._read[x] = r
        r[t] = time
        if self.graph is not None:
            self.graph.note_event(i)

    def write(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = self._time(t)
        w = self._write.get(x)
        if w is not None and w[t] == time:
            return  # [Write Same Epoch]-like check (§5.1)
        for m in self.held[t]:
            if self._l_join(self._lr, t, m, x):
                if self.graph is not None:
                    for eid in self._lr_eids.get((m, x), ()):
                        self.graph.add_edge(eid, i, "rule-a")
            if self._l_join(self._lw, t, m, x):
                if self.graph is not None:
                    for eid in self._lw_eids.get((m, x), ()):
                        self.graph.add_edge(eid, i, "rule-a")
            self._wm.setdefault(m, set()).add(x)
        kinds = []
        if w is not None and not w.leq_except(cc_t, t):
            kinds.append("write-write")
        r = self._read.get(x)
        if r is not None and not r.leq_except(cc_t, t):
            kinds.append("read-write")
        if kinds:
            self._race(i, site, x, t, "write", "+".join(kinds))
        if w is None:
            w = VectorClock.zeros(self.width)
            self._write[x] = w
        w[t] = time
        if self.graph is not None:
            self.graph.note_event(i)

    # -- bounded-window mode ------------------------------------------------
    def evict_window(self, cutoff: int, stale) -> None:
        """Drop per-variable access and rule (a) metadata of stale
        variables (per-lock clocks and rule (b) queues are O(locks),
        not per-variable, and stay; DESIGN.md §11)."""
        if not stale:
            return
        for x in stale:
            self._read.pop(x, None)
            self._write.pop(x, None)
        for store in (self._lr, self._lw, self._lr_eids, self._lw_eids):
            for key in [k for k in store if k[1] in stale]:
                del store[key]
        for s in self._rm.values():
            s.difference_update(stale)
        for s in self._wm.values():
            s.difference_update(stale)

    # -- memory ------------------------------------------------------------
    def footprint_bytes(self) -> int:
        vc = _vc_bytes(self.width)
        n_vcs = len(self._read) + len(self._write)
        if self.SPLIT_L_BY_THREAD:
            for entry in self._lr.values():
                n_vcs += len(entry)
            for entry in self._lw.values():
                n_vcs += len(entry)
        else:
            n_vcs += len(self._lr) + len(self._lw)
        total = self._base_footprint() + n_vcs * (vc + DICT_ENTRY_BYTES)
        for s in self._rm.values():
            total += DICT_ENTRY_BYTES + 8 * len(s)
        for s in self._wm.values():
            total += DICT_ENTRY_BYTES + 8 * len(s)
        if self._queues is not None:
            total += self._queues.footprint_bytes()
        if self.graph is not None:
            total += self.graph.footprint_bytes()
            total += sum(16 * len(v) for v in self._lr_eids.values())
            total += sum(16 * len(v) for v in self._lw_eids.values())
        return total


class _WcpMixin:
    """WCP relation hooks: HB composition on both sides (§2.4)."""

    TRACKS_HB = True
    SPLIT_L_BY_THREAD = True
    relation = "wcp"

    def __init__(self, trace: Trace, **kw):
        super().__init__(trace, **kw)
        self._lock_wcp: Dict[int, VectorClock] = {}
        self._lock_hb: Dict[int, VectorClock] = {}

    def adopt_shared_hb(self, bank) -> None:
        """See :meth:`VectorClockAnalysis.adopt_shared_hb`; also rebinds
        the per-lock HB release clocks to the bank's."""
        super().adopt_shared_hb(bank)
        self._lock_hb = bank.lock_hb

    def _acquire_compose(self, t: int, m: int) -> None:
        wcp = self._lock_wcp.get(m)
        if wcp is not None:
            self.cc[t].join(wcp)
        if self._hb_owner:
            hb = self._lock_hb.get(m)
            if hb is not None:
                self.hh[t].join(hb)

    def _release_publish(self, t: int, m: int) -> None:
        self._lock_wcp[m] = self.cc[t].copy()
        if self._hb_owner:
            self._lock_hb[m] = self.hh[t].copy()

    def footprint_bytes(self) -> int:
        vc = _vc_bytes(self.width)
        return (super().footprint_bytes()
                + (len(self._lock_wcp) + len(self._lock_hb))
                * (vc + DICT_ENTRY_BYTES))


class UnoptWCP(_WcpMixin, UnoptPredictive):
    """Unopt-WCP (Kini et al. 2017 as recast by Algorithm 1; Table 1)."""

    name = "unopt-wcp"
    USES_RULE_B = True
    EPOCH_ACQ_QUEUES = True


class UnoptDC(UnoptPredictive):
    """Unopt-DC: Algorithm 1 as printed (Table 1)."""

    name = "unopt-dc"
    relation = "dc"
    USES_RULE_B = True


class UnoptWDC(UnoptPredictive):
    """Unopt-WDC: Algorithm 1 minus rule (b) (§3)."""

    name = "unopt-wdc"
    relation = "wdc"
    USES_RULE_B = False
