"""Analysis registry: every configuration of paper Table 1 by name.

Names follow ``<tier>-<relation>``::

    unopt-hb   ft2        fto-hb
    unopt-wcp             fto-wcp   st-wcp
    unopt-dc   unopt-dc-g fto-dc    st-dc
    unopt-wdc  unopt-wdc-g fto-wdc  st-wdc

plus the post-paper sync-preserving family (``unopt-sp`` reference,
``sp`` optimized; see :mod:`repro.core.syncp` and DESIGN.md §11).

The ``-g`` suffix builds a constraint graph for vindication (Table 3's
"w/ G" columns).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.base import Analysis
from repro.core.fasttrack import FastTrack2, FTOHb
from repro.core.fto import FTODC, FTOWCP, FTOWDC
from repro.core.hb_vc import UnoptHB
from repro.core.smarttrack import SmartTrackDC, SmartTrackWCP, SmartTrackWDC
from repro.core.syncp import SyncP, UnoptSyncP
from repro.core.unopt import UnoptDC, UnoptWCP, UnoptWDC
from repro.trace.trace import Trace

_FACTORIES: Dict[str, Callable[[Trace], Analysis]] = {
    "unopt-hb": UnoptHB,
    "ft2": FastTrack2,
    "fto-hb": FTOHb,
    "unopt-wcp": UnoptWCP,
    "unopt-dc": UnoptDC,
    "unopt-wdc": UnoptWDC,
    "unopt-dc-g": lambda trace, **kw: UnoptDC(trace, build_graph=True, **kw),
    "unopt-wdc-g": lambda trace, **kw: UnoptWDC(trace, build_graph=True, **kw),
    "fto-wcp": FTOWCP,
    "fto-dc": FTODC,
    "fto-wdc": FTOWDC,
    "st-wcp": SmartTrackWCP,
    "st-dc": SmartTrackDC,
    "st-wdc": SmartTrackWDC,
    "unopt-sp": UnoptSyncP,
    "sp": SyncP,
}

#: All registry names, in Table 1 order.
ANALYSIS_NAMES: List[str] = list(_FACTORIES)

#: The eleven analyses of the paper's main results (Tables 4–7).
MAIN_MATRIX: List[str] = [
    "unopt-hb", "fto-hb",
    "unopt-wcp", "fto-wcp", "st-wcp",
    "unopt-dc", "fto-dc", "st-dc",
    "unopt-wdc", "fto-wdc", "st-wdc",
]

#: Analyses per relation, in increasing optimization order.
BY_RELATION: Dict[str, List[str]] = {
    "hb": ["unopt-hb", "ft2", "fto-hb"],
    "wcp": ["unopt-wcp", "fto-wcp", "st-wcp"],
    "dc": ["unopt-dc", "fto-dc", "st-dc"],
    "wdc": ["unopt-wdc", "fto-wdc", "st-wdc"],
    "sp": ["unopt-sp", "sp"],
}


def create(name: str, trace: Trace, **kwargs) -> Analysis:
    """Instantiate the named analysis for one trace.

    ``kwargs`` are forwarded to the analysis constructor — e.g.
    ``collect_cases=True`` turns on per-case counting (Table 12), which
    default runs skip for speed.
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            "unknown analysis {!r}; choose from {}".format(
                name, ", ".join(ANALYSIS_NAMES)))
    return factory(trace, **kwargs)


def relation_of(name: str) -> str:
    """The relation ("hb"/"wcp"/"dc"/"wdc") an analysis computes."""
    probe = _FACTORIES[name]
    if name.endswith("-g"):
        return relation_of(name[:-2])
    return probe.relation if hasattr(probe, "relation") else "dc"


def tier_of(name: str) -> str:
    """The optimization tier ("unopt"/"epoch"/"fto"/"st"/"sp")."""
    if name.startswith("unopt"):
        return "unopt"
    if name == "ft2":
        return "epoch"
    if name.startswith("fto"):
        return "fto"
    if name == "sp":
        return "sp"
    return "st"
