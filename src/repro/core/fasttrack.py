"""FastTrack-family HB analyses: FT2 and FTO-HB (paper §2.3, §4.1, Table 1).

* :class:`FastTrack2` ("FT2") — the FastTrack2 algorithm [Flanagan & Freund
  2017]: write epochs, read epoch-or-vector-clock, same-epoch fast paths.
  Per §5.1, this implementation (unlike RoadRunner's) updates last-access
  metadata at races, never stops analyzing a variable, and counts every
  race.
* :class:`FTOHb` ("FTO") — the FastTrack-Ownership variant [Wood et al.
  2017]: adds the owned cases, which skip race checks when the last access
  is by the current thread, and maintains ``R_x`` as the last reads *and
  writes*.  SmartTrack builds on FTO's case structure (Algorithm 2/3).

HB analyses increment the local clock only at outgoing synchronization
(releases, volatile writes, forks), like FastTrack; predictive tiers also
increment at acquires (§5.1).

Epochs are packed ints (``c << TID_BITS | t``; see
:mod:`repro.clocks.epoch`): the same-epoch fast path is a single ``==``
between the stored metadata and the current thread's packed epoch, and no
tuple is allocated per access.

Last-access metadata lives in flat ``array('q')`` columns (one slot per
variable, negative sentinels for bottom/VC/reset — see the packed-column
constants in :mod:`repro.clocks.epoch`) so the engine's batch kernels
(:mod:`repro.core.kernels`, DESIGN.md §8) can gather and compare whole
chunks at once; read vector clocks live in the ``_read_vc`` side dict.
"""

from __future__ import annotations

from array import array
from typing import Dict

from repro.clocks.epoch import (
    META_RESET,
    META_VC,
    PACKED_BOTTOM,
    TID_BITS,
    TID_MASK,
    packed_epoch_leq,
)
from repro.clocks.vector_clock import VectorClock
from repro.core.base import DICT_ENTRY_BYTES, EPOCH_BYTES, VectorClockAnalysis, _vc_bytes
from repro.trace.trace import Trace

_BOTTOM_WORD = b"\xff" * 8  # int64 -1 == PACKED_BOTTOM, little/big agnostic


class _EpochHbBase(VectorClockAnalysis):
    """Shared lock handling and metadata for FT2/FTO-HB."""

    HB_RELATION = True
    #: implements the [Read/Write Same Epoch] fast paths
    SAME_EPOCH_SKIP = True
    #: event kinds at which this tier bumps the local clock (release,
    #: fork, volatile read/write, static init — *not* acquire); the batch
    #: kernels derive exact per-position epochs from this set.
    BUMP_KINDS = (3, 4, 6, 7, 8)
    #: which mask family repro.core.kernels builds for this class
    KERNEL_STYLE = ""

    def __init__(self, trace: Trace, collect_cases: bool = False):
        super().__init__(trace, collect_cases=collect_cases)
        self._lock_clock: Dict[int, VectorClock] = {}
        nv = max(getattr(trace, "num_vars", 0) or 0, 1)
        self._read = array("q", _BOTTOM_WORD * nv)
        self._write = array("q", _BOTTOM_WORD * nv)
        #: read metadata slots promoted to vector clocks (column holds
        #: META_VC); keyed by variable
        self._read_vc: Dict[int, VectorClock] = {}

    def _grow_vars(self, need: int) -> None:
        """Extend the metadata columns to at least ``need`` slots."""
        have = len(self._read)
        if need > have:
            pad = _BOTTOM_WORD * (need - have)
            self._read.frombytes(pad)
            self._write.frombytes(pad)

    def make_kernel(self):
        """See :meth:`repro.core.base.Analysis.make_kernel`."""
        if self.case_counts is not None:
            return None
        from repro.core import kernels

        return kernels.make_kernel(self)

    def adopt_shared_cc(self, bank) -> None:
        """See :meth:`VectorClockAnalysis.adopt_shared_cc`; also rebinds
        the per-lock release clocks to the bank's."""
        super().adopt_shared_cc(bank)
        self._lock_clock = bank.lock_hb

    def acquire(self, t: int, m: int, i: int, site: int) -> None:
        if self._cc_owner:
            clock = self._lock_clock.get(m)
            if clock is not None:
                self.cc[t].join(clock)
        self.held[t].append(m)

    def release(self, t: int, m: int, i: int, site: int) -> None:
        if self._cc_owner:
            self._lock_clock[m] = self.cc[t].copy()
        stack = self.held[t]
        if stack and stack[-1] == m:
            stack.pop()
        else:
            stack.remove(m)
        self._bump(t)

    def evict_window(self, cutoff: int, stale) -> None:
        """Bounded-window mode: reset epochs of stale variables to bottom
        and drop their shared-read clocks (per-lock clocks are O(locks),
        not per-variable, and stay; DESIGN.md §11)."""
        read = self._read
        write = self._write
        nv = len(read)
        for x in stale:
            if x < nv:
                read[x] = PACKED_BOTTOM
                write[x] = PACKED_BOTTOM
            self._read_vc.pop(x, None)

    def footprint_bytes(self) -> int:
        vc = _vc_bytes(self.width)
        total = self._base_footprint()
        total += len(self._lock_clock) * (vc + DICT_ENTRY_BYTES)
        writes = sum(1 for w in self._write if w != PACKED_BOTTOM)
        total += writes * (EPOCH_BYTES + DICT_ENTRY_BYTES)
        reads = sum(1 for r in self._read if r != PACKED_BOTTOM)
        shared = len(self._read_vc)
        total += reads * DICT_ENTRY_BYTES
        total += shared * vc + (reads - shared) * EPOCH_BYTES
        return total


class FastTrack2(_EpochHbBase):
    """The FastTrack2 HB analysis ("FT2" in Table 1)."""

    name = "ft2"
    relation = "hb"
    tier = "epoch"
    KERNEL_STYLE = "ft2"

    def read(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        e = time << TID_BITS | t
        try:
            r = self._read[x]
        except IndexError:
            self._grow_vars(x + 1)
            r = PACKED_BOTTOM
        if r == e:
            return  # [Read Same Epoch]
        w = self._write[x]
        if r == META_VC:
            rvc = self._read_vc[x]
            if rvc[t] == time:
                self._count("read_shared_same_epoch")
                return
            if not packed_epoch_leq(w, cc_t, t):
                self._race(i, site, x, t, "read", "write-read")
            self._count("read_shared")
            rvc[t] = time
            return
        if not packed_epoch_leq(w, cc_t, t):
            self._race(i, site, x, t, "read", "write-read")
        if r < 0 or packed_epoch_leq(r, cc_t, t):
            self._count("read_exclusive")
            self._read[x] = e
        else:
            self._count("read_share")
            vc = VectorClock.zeros(self.width)
            vc[r & TID_MASK] = r >> TID_BITS
            vc[t] = time
            self._read_vc[x] = vc
            self._read[x] = META_VC

    def write(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        e = time << TID_BITS | t
        try:
            w = self._write[x]
        except IndexError:
            self._grow_vars(x + 1)
            w = PACKED_BOTTOM
        if w == e:
            return  # [Write Same Epoch]
        r = self._read[x]
        kinds = []
        if not packed_epoch_leq(w, cc_t, t):
            kinds.append("write-write")
        if r == META_VC:
            self._count("write_shared")
            if not self._read_vc.pop(x).leq_except(cc_t, t):
                kinds.append("read-write")
            # FastTrack2 [Write Shared] resets the read metadata to bottom.
            self._read[x] = META_RESET
        else:
            self._count("write_exclusive")
            if not packed_epoch_leq(r, cc_t, t):
                kinds.append("read-write")
        if kinds:
            self._race(i, site, x, t, "write", "+".join(kinds))
        self._write[x] = e


class FTOHb(_EpochHbBase):
    """FTO-HB: FastTrack with ownership cases ("FTO" in Table 1).

    ``R_x`` tracks the last reads *and writes*; the owned cases ([Read
    Owned], [Read Shared Owned], [Write Owned]) skip race checks when the
    last access was by the current thread (Algorithm 2's case structure,
    restricted to HB).
    """

    name = "fto-hb"
    relation = "hb"
    tier = "fto"
    KERNEL_STYLE = "fto"

    def read(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        e = time << TID_BITS | t
        try:
            r = self._read[x]
        except IndexError:
            self._grow_vars(x + 1)
            r = PACKED_BOTTOM
        if r == e:
            return  # [Read Same Epoch]
        if r == META_VC:
            rvc = self._read_vc[x]
            if rvc[t] == time:
                self._count("read_shared_same_epoch")
                return
            if rvc[t] != 0:
                self._count("read_shared_owned")
                rvc[t] = time
                return
            self._count("read_shared")
            if not packed_epoch_leq(self._write[x], cc_t, t):
                self._race(i, site, x, t, "read", "write-read")
            rvc[t] = time
            return
        if r < 0:
            self._count("read_exclusive")
            self._read[x] = e
            return
        if (r & TID_MASK) == t:
            self._count("read_owned")
            self._read[x] = e
            return
        if packed_epoch_leq(r, cc_t, t):
            self._count("read_exclusive")
            self._read[x] = e
            return
        self._count("read_share")
        if not packed_epoch_leq(self._write[x], cc_t, t):
            self._race(i, site, x, t, "read", "write-read")
        vc = VectorClock.zeros(self.width)
        vc[r & TID_MASK] = r >> TID_BITS
        vc[t] = time
        self._read_vc[x] = vc
        self._read[x] = META_VC

    def write(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        e = time << TID_BITS | t
        try:
            w = self._write[x]
        except IndexError:
            self._grow_vars(x + 1)
            w = PACKED_BOTTOM
        if w == e:
            return  # [Write Same Epoch]
        r = self._read[x]
        if r == META_VC:
            self._count("write_shared")
            if not self._read_vc.pop(x).leq_except(cc_t, t):
                self._race(i, site, x, t, "write", "read-write")
        elif r < 0 or (r & TID_MASK) == t:
            self._count("write_owned" if r >= 0 else "write_exclusive")
        else:
            self._count("write_exclusive")
            if not packed_epoch_leq(r, cc_t, t):
                self._race(i, site, x, t, "write", "access-write")
        self._write[x] = e
        self._read[x] = e
