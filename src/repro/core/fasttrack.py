"""FastTrack-family HB analyses: FT2 and FTO-HB (paper §2.3, §4.1, Table 1).

* :class:`FastTrack2` ("FT2") — the FastTrack2 algorithm [Flanagan & Freund
  2017]: write epochs, read epoch-or-vector-clock, same-epoch fast paths.
  Per §5.1, this implementation (unlike RoadRunner's) updates last-access
  metadata at races, never stops analyzing a variable, and counts every
  race.
* :class:`FTOHb` ("FTO") — the FastTrack-Ownership variant [Wood et al.
  2017]: adds the owned cases, which skip race checks when the last access
  is by the current thread, and maintains ``R_x`` as the last reads *and
  writes*.  SmartTrack builds on FTO's case structure (Algorithm 2/3).

HB analyses increment the local clock only at outgoing synchronization
(releases, volatile writes, forks), like FastTrack; predictive tiers also
increment at acquires (§5.1).

Epochs are packed ints (``c << TID_BITS | t``; see
:mod:`repro.clocks.epoch`): the same-epoch fast path is a single ``==``
between the stored metadata and the current thread's packed epoch, and no
tuple is allocated per access.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.clocks.epoch import TID_BITS, TID_MASK, epoch_leq
from repro.clocks.vector_clock import VectorClock
from repro.core.base import DICT_ENTRY_BYTES, EPOCH_BYTES, VectorClockAnalysis, _vc_bytes
from repro.trace.trace import Trace

Meta = Union[None, int, VectorClock]


class _EpochHbBase(VectorClockAnalysis):
    """Shared lock handling and metadata for FT2/FTO-HB."""

    HB_RELATION = True
    #: implements the [Read/Write Same Epoch] fast paths
    SAME_EPOCH_SKIP = True

    def __init__(self, trace: Trace, collect_cases: bool = False):
        super().__init__(trace, collect_cases=collect_cases)
        self._lock_clock: Dict[int, VectorClock] = {}
        self._read: Dict[int, Meta] = {}
        self._write: Dict[int, Optional[int]] = {}

    def adopt_shared_cc(self, bank) -> None:
        """See :meth:`VectorClockAnalysis.adopt_shared_cc`; also rebinds
        the per-lock release clocks to the bank's."""
        super().adopt_shared_cc(bank)
        self._lock_clock = bank.lock_hb

    def acquire(self, t: int, m: int, i: int, site: int) -> None:
        if self._cc_owner:
            clock = self._lock_clock.get(m)
            if clock is not None:
                self.cc[t].join(clock)
        self.held[t].append(m)

    def release(self, t: int, m: int, i: int, site: int) -> None:
        if self._cc_owner:
            self._lock_clock[m] = self.cc[t].copy()
        stack = self.held[t]
        if stack and stack[-1] == m:
            stack.pop()
        else:
            stack.remove(m)
        self._bump(t)

    def footprint_bytes(self) -> int:
        vc = _vc_bytes(self.width)
        total = self._base_footprint()
        total += len(self._lock_clock) * (vc + DICT_ENTRY_BYTES)
        total += len(self._write) * (EPOCH_BYTES + DICT_ENTRY_BYTES)
        for r in self._read.values():
            total += DICT_ENTRY_BYTES
            total += vc if isinstance(r, VectorClock) else EPOCH_BYTES
        return total


class FastTrack2(_EpochHbBase):
    """The FastTrack2 HB analysis ("FT2" in Table 1)."""

    name = "ft2"
    relation = "hb"
    tier = "epoch"

    def read(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        e = time << TID_BITS | t
        r = self._read.get(x)
        if r == e:
            return  # [Read Same Epoch]
        w = self._write.get(x)
        if type(r) is VectorClock:
            if r[t] == time:
                self._count("read_shared_same_epoch")
                return
            if not epoch_leq(w, cc_t, t):
                self._race(i, site, x, t, "read", "write-read")
            self._count("read_shared")
            r[t] = time
            return
        if not epoch_leq(w, cc_t, t):
            self._race(i, site, x, t, "read", "write-read")
        if r is None or epoch_leq(r, cc_t, t):
            self._count("read_exclusive")
            self._read[x] = e
        else:
            self._count("read_share")
            vc = VectorClock.zeros(self.width)
            vc[r & TID_MASK] = r >> TID_BITS
            vc[t] = time
            self._read[x] = vc

    def write(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        e = time << TID_BITS | t
        w = self._write.get(x)
        if w == e:
            return  # [Write Same Epoch]
        r = self._read.get(x)
        kinds = []
        if not epoch_leq(w, cc_t, t):
            kinds.append("write-write")
        if type(r) is VectorClock:
            self._count("write_shared")
            if not r.leq_except(cc_t, t):
                kinds.append("read-write")
            # FastTrack2 [Write Shared] resets the read metadata to bottom.
            self._read[x] = None
        else:
            self._count("write_exclusive")
            if not epoch_leq(r, cc_t, t):
                kinds.append("read-write")
        if kinds:
            self._race(i, site, x, t, "write", "+".join(kinds))
        self._write[x] = e


class FTOHb(_EpochHbBase):
    """FTO-HB: FastTrack with ownership cases ("FTO" in Table 1).

    ``R_x`` tracks the last reads *and writes*; the owned cases ([Read
    Owned], [Read Shared Owned], [Write Owned]) skip race checks when the
    last access was by the current thread (Algorithm 2's case structure,
    restricted to HB).
    """

    name = "fto-hb"
    relation = "hb"
    tier = "fto"

    def read(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        e = time << TID_BITS | t
        r = self._read.get(x)
        if r == e:
            return  # [Read Same Epoch]
        if type(r) is VectorClock:
            if r[t] == time:
                self._count("read_shared_same_epoch")
                return
            if r[t] != 0:
                self._count("read_shared_owned")
                r[t] = time
                return
            self._count("read_shared")
            if not epoch_leq(self._write.get(x), cc_t, t):
                self._race(i, site, x, t, "read", "write-read")
            r[t] = time
            return
        if r is None:
            self._count("read_exclusive")
            self._read[x] = e
            return
        if (r & TID_MASK) == t:
            self._count("read_owned")
            self._read[x] = e
            return
        if epoch_leq(r, cc_t, t):
            self._count("read_exclusive")
            self._read[x] = e
            return
        self._count("read_share")
        if not epoch_leq(self._write.get(x), cc_t, t):
            self._race(i, site, x, t, "read", "write-read")
        vc = VectorClock.zeros(self.width)
        vc[r & TID_MASK] = r >> TID_BITS
        vc[t] = time
        self._read[x] = vc

    def write(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        e = time << TID_BITS | t
        w = self._write.get(x)
        if w == e:
            return  # [Write Same Epoch]
        r = self._read.get(x)
        if type(r) is VectorClock:
            self._count("write_shared")
            if not r.leq_except(cc_t, t):
                self._race(i, site, x, t, "write", "read-write")
        elif r is None or (r & TID_MASK) == t:
            self._count("write_owned" if r is not None else "write_exclusive")
        else:
            self._count("write_exclusive")
            if not epoch_leq(r, cc_t, t):
                self._race(i, site, x, t, "write", "access-write")
        self._write[x] = e
        self._read[x] = e
