"""Multiprocess analysis sharding: one decode, N worker processes.

The single-pass engine (:class:`repro.core.engine.MultiRunner`) made one
Python process beat sequential replay, but the GIL caps the whole
11-analysis configuration at one core.  SmartTrack-style multi-tier runs
are embarrassingly parallel across the *analysis* axis — every tier
consumes the same decoded event stream independently — so
:class:`ParallelRunner` shards the co-scheduled analysis set across
worker processes instead of sharding the event stream across them
(chunk-parallel sharding would need cross-chunk vector-clock handoff;
see DESIGN.md §6.1):

* **one decode** — the parent iterates the event source exactly once,
  decoding each event into the engine's flat int chunk representation
  (five parallel ``int64`` arrays: index, kind, tid, target, site) and
  applying the shared same-epoch filter once for everybody, exactly as
  a serial :class:`~repro.core.engine.EngineSession` would;
* **shared-memory broadcast** — each decoded chunk is copied into a
  per-worker single-producer/single-consumer ring buffer in
  :mod:`multiprocessing.shared_memory` (semaphore flow control, no
  pickling on the hot path); platforms without POSIX shared memory fall
  back to a pickled-queue transport (``REPRO_PARALLEL_TRANSPORT``
  forces either for testing);
* **family-aware shards** — the pure-HB tier stays together and the
  WCP family stays together, so the engine's shared-HB-bank fusion
  (DESIGN.md §3) keeps working *within* a shard; the independent
  DC/WDC analyses are spread to balance load (:func:`plan_shards`);
* **private engine per worker** — each worker runs an ordinary
  :class:`~repro.core.engine.MultiRunner` session over its shard
  (entering via :meth:`~repro.core.engine.EngineSession.feed_decoded`)
  and ships ``(analysis_name, RaceRecord)`` batches plus per-analysis
  reports back over a result queue, so races stream out of
  :meth:`ParallelSession.drain` the moment a worker finds them;
* **failure isolation** — an analysis that raises inside a worker is
  detached by that worker's engine exactly as in a serial pass; a
  worker process that *dies* maps onto the same detach semantics (every
  analysis of the dead shard becomes an
  :class:`~repro.core.engine.AnalysisFailure`, the survivors keep
  their reports, and the CLI's documented partial-summary exit-2 path
  fires).  Reports are bit-identical to serial runs either way — the
  differential fuzz sweep asserts it across randomized worker counts.

Quick use::

    from repro.core.parallel import ParallelRunner
    result = ParallelRunner(["st-wdc", "fto-hb"], trace, workers=2).run(trace)
    result.report("st-wdc").dynamic_count

The CLI surface is ``repro analyze/compare/serve --workers N`` and
``measure_stream(..., workers=N)``; ``benchmarks/bench_parallel.py``
records the scaling curve.
"""

from __future__ import annotations

import os
import queue as queue_module
import signal
import threading
import traceback
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.clocks.epoch import MAX_TID, TID_BITS
from repro.core.engine import _EPOCH_ENDERS, AnalysisFailure, MultiResult
from repro.core.registry import ANALYSIS_NAMES, create, relation_of
from repro.trace.event import Event
from repro.trace.trace import Trace, TraceInfo

#: Ring slots per worker: enough to pipeline parent decode against
#: worker replay without unbounded buffering.
RING_SLOTS = 4

#: Slot header words: [0] event count (-1 = end of stream), [1] the
#: parent's cumulative source-event count after this chunk.
_HEADER_WORDS = 2
_WORD = 8  # bytes per int64 slot word

#: Serializes forking workers against every parent-side interaction with
#: multiprocessing's resource tracker: shm/semaphore creation registers
#: (transport build) and shm unlink unregisters (teardown), both under
#: the tracker's process-private heap RLock.  A fork taken in thread A
#: while thread B holds that RLock hands every worker a copy that is
#: locked forever — so builds, forks, and teardowns of *different*
#: sessions must not overlap.  RLock: the construction failure path
#: tears down while the build still holds it.
_FORK_LOCK = threading.RLock()


class WorkerDied(RuntimeError):
    """A worker process exited without delivering its shard's reports."""


class RemoteAnalysisError(RuntimeError):
    """An analysis failure reconstructed from a worker process.

    The original exception may not be picklable, so workers ship its
    ``repr``; this wrapper carries it across the process boundary while
    keeping the parent-side detach semantics
    (:class:`~repro.core.engine.AnalysisFailure`) unchanged.
    """


class ShardEntry:
    """Parent-side slot for one analysis that ran in a worker process.

    Mirrors the attribute surface :class:`~repro.core.engine.MultiResult`
    reads from :class:`~repro.core.engine.EngineEntry` (``name``,
    ``report``, ``failure``), without holding an analysis instance —
    the instance lives (and dies) in the worker.
    """

    __slots__ = ("name", "report", "failure", "shard")

    def __init__(self, name: str, shard: int):
        self.name = name
        self.shard = shard
        self.report = None
        self.failure: Optional[AnalysisFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def plan_shards(names: Sequence[str], workers: int) -> List[List[int]]:
    """Family-aware shard assignment: positions of ``names`` per worker.

    Policy (DESIGN.md §6.2): the pure-HB tier (relation ``hb``) is
    placed as one atomic group, the WCP family (relation ``wcp``) as
    another — so the engine's shared-clock-bank fusion keeps paying
    off inside a shard — and the sync-preserving family (relation
    ``sp``) as a third, keeping its reference/optimized pair
    co-scheduled; the remaining analyses (DC/WDC tiers, which share
    nothing) are spread one by one onto the least-loaded shard.
    ``workers`` is clamped to ``len(names)``; shards left empty by
    atomic-group placement are dropped, so every returned shard is
    non-empty.

    >>> plan_shards(["unopt-hb", "fto-hb", "st-wcp", "st-dc"], 8)
    [[0, 1], [2], [3]]
    """
    workers = max(1, min(workers, len(names)))
    hb: List[int] = []
    wcp: List[int] = []
    sp: List[int] = []
    rest: List[int] = []
    for pos, name in enumerate(names):
        rel = relation_of(name)
        (hb if rel == "hb" else wcp if rel == "wcp"
         else sp if rel == "sp" else rest).append(pos)
    shards: List[List[int]] = [[] for _ in range(workers)]

    def lightest() -> List[int]:
        return min(shards, key=len)

    for group in sorted((hb, wcp, sp), key=len, reverse=True):
        if group:
            lightest().extend(group)
    for pos in rest:
        lightest().append(pos)
    return [shard for shard in shards if shard]


def _transport_kind() -> str:
    forced = os.environ.get("REPRO_PARALLEL_TRANSPORT", "")
    if forced in ("shm", "pickle"):
        return forced
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - exotic platforms
        return "pickle"
    return "shm"


def _mp_context():
    """The start method for worker processes.

    ``fork`` is preferred: workers inherit the parent's imported modules
    (no re-import cost per run) and the transport primitives directly.
    Platforms without it (Windows) use ``spawn`` — the worker main and
    every argument it takes are top-level/picklable for exactly that
    reason.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


# ---------------------------------------------------------------------------
# chunk transports (parent -> worker)
# ---------------------------------------------------------------------------

class _ShmRing:
    """Parent side of one worker's shared-memory chunk ring.

    A fixed number of slots in a single ``SharedMemory`` segment; each
    slot is a 2-word header plus five ``chunk_events``-long int64
    columns.  Flow control is two semaphores (classic bounded buffer):
    the parent acquires ``free``, memcpys the chunk columns in, and
    releases ``filled``; the worker does the mirror image.  Single
    producer, single consumer, so slot indices advance locally on each
    side with no shared cursor.
    """

    def __init__(self, ctx, chunk_events: int):
        from multiprocessing import shared_memory

        self.chunk_events = chunk_events
        self.slot_words = _HEADER_WORDS + 5 * chunk_events
        self.shm = shared_memory.SharedMemory(
            create=True, size=RING_SLOTS * self.slot_words * _WORD)
        self.free = ctx.Semaphore(RING_SLOTS)
        self.filled = ctx.Semaphore(0)
        self._fork = ctx.get_start_method() == "fork"
        self._words = memoryview(self.shm.buf).cast("q")
        self._slot = 0

    def worker_args(self) -> tuple:
        # Forked workers take the parent's SharedMemory object itself
        # (the mapping survives the fork), NOT the name: attaching by
        # name calls resource_tracker.register, whose heap RLock may
        # have been captured in a locked state by the fork — see
        # _FORK_LOCK and _ShmRingReader.  Spawned workers get the name;
        # a fresh process attaches safely.
        return ("shm", self.shm if self._fork else self.shm.name,
                self.chunk_events, self.free, self.filled)

    def put(self, bufs, n: int, events_seen: int, alive) -> None:
        """Publish one chunk; raises :class:`WorkerDied` if the consumer
        is gone (a full ring that never drains would block forever)."""
        while not self.free.acquire(timeout=0.2):
            if not alive():
                raise WorkerDied("worker stopped draining its chunk ring")
        words = self._words
        base = self._slot * self.slot_words
        words[base] = n
        words[base + 1] = events_seen
        off = base + _HEADER_WORDS
        for buf in bufs:
            if n > 0:
                words[off:off + n] = memoryview(buf)[:n]
            off += self.chunk_events
        self._slot = (self._slot + 1) % RING_SLOTS
        self.filled.release()

    def close(self) -> None:
        self._words.release()
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class _ShmRingReader:
    """Worker side of the ring: attach by name, drain slots."""

    def __init__(self, shm_or_name, chunk_events: int, free, filled):
        if isinstance(shm_or_name, str):
            # Spawned worker: attach by name.  This registers with the
            # worker's (= the parent's) resource tracker — a set no-op
            # there, and the parent's single unlink retires the segment
            # cleanly; do NOT unregister here (a second unregister
            # would KeyError in the tracker when the parent unlinks).
            from multiprocessing import shared_memory

            self.shm = shared_memory.SharedMemory(name=shm_or_name)
            self._owns_shm = True
        else:
            # Forked worker: the parent's mapping came through the
            # fork.  Never attach by name here — SharedMemory.__init__
            # unconditionally calls resource_tracker.register, and the
            # tracker's heap RLock may have been forked in a locked
            # state (another parent thread mid-register/unregister),
            # deadlocking this process on a lock no thread of it owns.
            self.shm = shm_or_name
            self._owns_shm = False
        self.chunk_events = chunk_events
        self.slot_words = _HEADER_WORDS + 5 * chunk_events
        self.free = free
        self.filled = filled
        self._words = memoryview(self.shm.buf).cast("q")
        self._slot = 0

    def get(self) -> tuple:
        """The next ``(n, events_seen, columns)`` chunk (blocking).

        The five columns are copied out (``tolist``) before the slot is
        recycled, so the parent may overwrite it immediately.
        """
        self.filled.acquire()
        words = self._words
        base = self._slot * self.slot_words
        n = words[base]
        events_seen = words[base + 1]
        cols = []
        off = base + _HEADER_WORDS
        for _ in range(5):
            cols.append(words[off:off + n].tolist() if n > 0 else [])
            off += self.chunk_events
        self._slot = (self._slot + 1) % RING_SLOTS
        self.free.release()
        return n, events_seen, cols

    def close(self) -> None:
        self._words.release()
        # An inherited mapping is left alone: forked copies of the
        # parent's exported memoryviews pin its mmap (closing would
        # raise BufferError), and the worker process is about to exit
        # anyway, which releases the descriptor and the mapping.
        if self._owns_shm:
            self.shm.close()


class _PickleChannel:
    """Fallback transport: a bounded queue of pickled chunk columns."""

    def __init__(self, ctx, chunk_events: int):
        self.chunk_events = chunk_events
        self.q = ctx.Queue(maxsize=RING_SLOTS)

    def worker_args(self) -> tuple:
        return ("pickle", self.q)

    def put(self, bufs, n: int, events_seen: int, alive) -> None:
        payload = (n, events_seen,
                   [memoryview(buf)[:n].tolist() if n > 0 else []
                    for buf in bufs])
        while True:
            try:
                self.q.put(payload, timeout=0.2)
                return
            except queue_module.Full:
                if not alive():
                    raise WorkerDied(
                        "worker stopped draining its chunk queue")

    def close(self) -> None:
        self.q.close()
        self.q.cancel_join_thread()


class _PickleChannelReader:
    def __init__(self, q):
        self.q = q

    def get(self) -> tuple:
        return self.q.get()

    def close(self) -> None:
        pass


def _attach_transport(args):
    if args[0] == "shm":
        return _ShmRingReader(*args[1:])
    return _PickleChannelReader(args[1])


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

def _close_inherited_sockets() -> None:
    """Close every socket descriptor in this (worker) process.

    Workers communicate over pipes and shared memory only; see the
    call site in :func:`_worker_main` for why inherited sockets are
    actively harmful.  Best-effort: without ``/proc`` the scan walks a
    bounded descriptor range.
    """
    import stat as stat_module
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except OSError:  # pragma: no cover - no /proc
        fds = list(range(3, 256))
    for fd in fds:
        try:
            if stat_module.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def _worker_main(shard_id: int, names: Sequence[str], info_dims: tuple,
                 transport_args: tuple, result_q, sample_every: int,
                 chunk_events: int, window_events: Optional[int],
                 crash_after: Optional[int]) -> None:
    """One worker: a private engine session over this shard's analyses.

    Drains decoded chunks from the transport until the end-of-stream
    marker, replaying each through
    :meth:`~repro.core.engine.EngineSession.feed_decoded`, and ships
    ``("races", shard_id, [(name, RaceRecord), ...])`` batches as races
    are found, then one ``("done", shard_id, [(report, failure), ...])``
    with the shard's sealed per-analysis results (entry order = shard
    order).  A worker-level crash ships ``("fatal", shard_id,
    traceback)`` when it still can; a hard death (kill, crashed
    interpreter) is detected by the parent via the process exit code.

    ``crash_after`` is a test hook: hard-exit (``os._exit``) after that
    many chunks, simulating a worker dying mid-stream.
    """
    from repro.core.engine import MultiRunner

    # Ctrl-C is delivered to the whole foreground process group; the
    # *parent* owns shutdown (it collects partial results, reaps the
    # workers, and unlinks the shared memory), so a worker must not kill
    # itself mid-protocol — that would turn an orderly interrupt into a
    # "worker process died" failure and lose the shard's partial reports.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic start method
        pass
    # A forked worker inherits every socket the parent had open —
    # listening endpoints, accepted producer connections, anything a
    # threaded server was serving at fork time.  Holding those copies
    # is worse than useless: a peer's close only produces EOF once the
    # *last* descriptor drops, so an inherited connection can stall the
    # parent's reads until its timeout.  Workers speak only pipes and
    # shared memory; drop every inherited socket.
    _close_inherited_sockets()
    rx = None
    try:
        info = TraceInfo(*info_dims)
        runner = MultiRunner([create(name, info) for name in names],
                             sample_every=sample_every,
                             chunk_events=chunk_events,
                             window_events=window_events)
        session = runner.session()
        rx = _attach_transport(transport_args)
        chunks = 0
        while True:
            n, events_seen, cols = rx.get()
            if n < 0:
                session.feed_decoded([], [], [], [], [], 0, events_seen)
                break
            races = session.feed_decoded(cols[0], cols[1], cols[2],
                                         cols[3], cols[4], n, events_seen)
            if races:
                result_q.put(("races", shard_id, races))
            chunks += 1
            if crash_after is not None and chunks >= crash_after:
                os._exit(70)
        result = session.finish()
        done = []
        for entry in result.entries:
            if entry.failure is None:
                done.append((entry.report, None))
            else:
                done.append((None, (entry.failure.event_index,
                                    repr(entry.failure.error))))
        result_q.put(("done", shard_id, done))
    except BaseException:  # noqa: BLE001 - report, then die visibly
        try:
            result_q.put(("fatal", shard_id, traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already broken
            pass
    finally:
        if rx is not None:
            rx.close()


# ---------------------------------------------------------------------------
# parent
# ---------------------------------------------------------------------------

class _Shard:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("id", "positions", "tx", "proc", "alive", "done",
                 "silent_polls")

    def __init__(self, shard_id: int, positions: List[int], tx, proc):
        self.id = shard_id
        self.positions = positions
        self.tx = tx
        self.proc = proc
        self.alive = True   # still being fed
        self.done = False   # delivered its "done"/"fatal" message
        self.silent_polls = 0


class ParallelSession:
    """An in-flight :class:`ParallelRunner` pass.

    Mirrors the serving subset of
    :class:`~repro.core.engine.EngineSession`: :meth:`drain` consumes
    the event source to exhaustion, yielding ``(analysis_name,
    RaceRecord)`` pairs the moment a worker reports them, and
    :meth:`finish` merges the per-shard reports into one
    :class:`~repro.core.engine.MultiResult`.  When the *source* raises
    mid-stream (malformed live feed, read timeout), the already-decoded
    events are flushed to the workers, their results are collected, the
    races they found are yielded, and then the error propagates — the
    session can still :meth:`finish` for the partial summary, exactly
    like the serial session.

    Ordering: each analysis' races arrive in event order (each lives in
    exactly one worker), but interleaving *across* shards follows worker
    scheduling, so cross-analysis arrival order is unspecified — unlike
    the serial session's globally index-sorted stream.  The merged
    reports are unaffected.
    """

    def __init__(self, runner: "ParallelRunner"):
        self._runner = runner
        self._finished = False
        self._collected = False
        chunk = runner.chunk_events
        self._bufs = tuple(array("q", bytes(8 * chunk)) for _ in range(5))
        # shared same-epoch filter state (see EngineSession.feed)
        self._toks: Dict[int, int] = {}
        self._last_r: Dict[int, int] = {}
        self._last_w: Dict[int, int] = {}
        # bounded-window mode: the workers evict; the parent only clamps
        # its broadcast chunks at window boundaries (serial == parallel)
        self._window = runner.window_events
        self._next_evict = self._window
        self._i = -1
        self.entries = [ShardEntry(name, -1) for name in runner.names]
        ctx = _mp_context()
        self._shards: List[_Shard] = []
        kind = _transport_kind()
        info = runner.info
        info_dims = (info.num_threads, info.num_locks, info.num_vars,
                     info.num_volatiles, info.num_classes, info.num_events)
        with _FORK_LOCK:
            self._results = ctx.Queue()
            try:
                for shard_id, positions in enumerate(runner.shards):
                    tx = (_ShmRing(ctx, chunk) if kind == "shm"
                          else _PickleChannel(ctx, chunk))
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(shard_id,
                              [runner.names[p] for p in positions],
                              info_dims, tx.worker_args(), self._results,
                              runner.sample_every, chunk,
                              runner.window_events,
                              runner._crash_after.get(shard_id)),
                        daemon=True)
                    shard = _Shard(shard_id, positions, tx, proc)
                    for p in positions:
                        self.entries[p].shard = shard_id
                    self._shards.append(shard)
                    proc.start()
            except BaseException:
                self._teardown()
                raise

    def _entries_at(self, positions: List[int]) -> List[ShardEntry]:
        return [self.entries[p] for p in positions]

    @property
    def events_processed(self) -> int:
        """Source events decoded so far (filtered accesses included)."""
        return self._i + 1

    @property
    def events_acked(self) -> int:
        """The resume-safe offset a reconnecting producer may resend
        from (mirrors :attr:`~repro.core.engine.EngineSession.events_acked`).

        For the sharded pass this is the parent's decode-and-broadcast
        count: a chunk handed to the rings is replayed by every healthy
        worker before it reads the next slot, and a worker that dies
        instead surfaces as a detached shard in the final report — so
        resending from this offset never double-applies an event to a
        shard that will still produce a report.
        """
        return self._i + 1

    # -- decode (parent side) ---------------------------------------------
    def _fill_chunk(self, source: Iterator[Event], limit: int):
        """Decode up to ``limit`` events into the flat column buffers.

        Same decode-plus-shared-same-epoch-filter loop as
        :meth:`EngineSession.feed`, writing int64 array columns instead
        of lists so a chunk can be memcpy'd into the worker rings.
        Returns ``(n, exhausted, source_error)`` — on a source error the
        events decoded so far are kept (the caller flushes them to the
        workers before re-raising, mirroring the serial session).
        """
        i = self._i
        n = 0
        exhausted = False
        err: Optional[BaseException] = None
        idx_b, kind_b, tid_b, tgt_b, site_b = self._bufs
        toks = self._toks
        last_r = self._last_r
        last_w = self._last_w
        toks_get = toks.get
        last_r_get = last_r.get
        last_w_get = last_w.get
        epoch_enders = _EPOCH_ENDERS
        try:
            if self._runner._filter_on:
                for e in source:
                    i += 1
                    k = e.kind
                    t = e.tid
                    x = e.target
                    if k <= 1:  # READ/WRITE: shared same-epoch filter
                        tok = toks_get(t, t)
                        if k == 0:
                            if last_r_get(x) == tok:
                                continue  # no-op in every analysis
                            last_r[x] = tok
                        else:
                            if last_w_get(x) == tok:
                                continue  # no-op in every analysis
                            last_w[x] = tok
                            if x in last_r:
                                del last_r[x]
                    elif epoch_enders[k]:
                        toks[t] = toks_get(t, t) + (1 << TID_BITS)
                    idx_b[n] = i
                    kind_b[n] = k
                    tid_b[n] = t
                    tgt_b[n] = x
                    site_b[n] = e.site
                    n += 1
                    if n == limit:
                        break
                else:
                    exhausted = True
            else:
                for e in source:
                    i += 1
                    idx_b[n] = i
                    kind_b[n] = e.kind
                    tid_b[n] = e.tid
                    targ = e.target
                    tgt_b[n] = targ
                    site_b[n] = e.site
                    n += 1
                    if n == limit:
                        break
                else:
                    exhausted = True
        except BaseException as exc:
            err = exc
        self._i = i
        return n, exhausted, err

    # -- worker I/O --------------------------------------------------------
    def _live_shards(self) -> List[_Shard]:
        return [s for s in self._shards if s.alive]

    def _mark_dead(self, shard: _Shard, why: str) -> None:
        shard.alive = False
        shard.done = True
        exit_code = shard.proc.exitcode
        for entry in self._entries_at(shard.positions):
            if entry.failure is None and entry.report is None:
                entry.failure = AnalysisFailure(
                    entry.name, -1,
                    WorkerDied("{} (exit code {})".format(why, exit_code)))

    def _broadcast(self, n: int) -> None:
        events_seen = self._i + 1
        for shard in self._live_shards():
            try:
                shard.tx.put(self._bufs, n, events_seen,
                             alive=shard.proc.is_alive)
            except WorkerDied:
                self._mark_dead(shard, "worker process died mid-stream")

    def _handle(self, msg, pending: List[tuple]) -> None:
        kind, shard_id, payload = msg
        shard = self._shards[shard_id]
        if kind == "races":
            pending.extend(payload)
        elif kind == "done":
            shard.done = True
            shard.alive = False
            for entry, (report, failure) in zip(
                    self._entries_at(shard.positions), payload):
                if failure is None:
                    entry.report = report
                else:
                    event_index, err_repr = failure
                    entry.failure = AnalysisFailure(
                        entry.name, event_index,
                        RemoteAnalysisError(err_repr))
        else:  # "fatal": the worker loop itself crashed
            shard.done = True
            shard.alive = False
            for entry in self._entries_at(shard.positions):
                if entry.failure is None and entry.report is None:
                    entry.failure = AnalysisFailure(
                        entry.name, -1, RemoteAnalysisError(payload))

    def _poll_results(self, pending: List[tuple]) -> None:
        """Drain every result message currently queued (non-blocking)."""
        while True:
            try:
                msg = self._results.get_nowait()
            except queue_module.Empty:
                return
            self._handle(msg, pending)

    def _collect(self, pending: List[tuple]) -> None:
        """Block until every shard delivered its results or died.

        A worker that exited without a ``done``/``fatal`` message (hard
        kill, interpreter abort) is declared dead after a short grace
        period that lets an already-queued message flush through the
        result pipe.
        """
        if self._collected:
            return
        self._collected = True
        self._broadcast(-1)  # end-of-stream marker, final event count
        while any(not s.done for s in self._shards):
            try:
                msg = self._results.get(timeout=0.2)
            except queue_module.Empty:
                for shard in self._shards:
                    if shard.done or shard.proc.is_alive():
                        continue
                    shard.silent_polls += 1
                    if shard.silent_polls >= 10:
                        self._mark_dead(
                            shard, "worker process exited without results")
                continue
            self._handle(msg, pending)

    # -- driving -----------------------------------------------------------
    def drain(self, events: Union[Trace, Iterable[Event]],
              window: int = 0, seal: bool = True) -> Iterator[tuple]:
        """Feed ``events`` to exhaustion, yielding each ``(analysis_name,
        RaceRecord)`` pair as a worker reports it.

        ``window`` caps how many events are decoded before a chunk is
        broadcast (default: the runner's ``chunk_events``); smaller
        windows surface races sooner, exactly like the serial session's
        drain window.  On a source error the decoded prefix is flushed,
        every worker's results are collected and yielded, and then the
        error propagates with the session still :meth:`finish`-able.

        ``seal=False`` keeps the workers alive past exhaustion (and past
        a source error): no end-of-stream marker is broadcast, so a
        *later* ``drain`` call may feed more events to the same pass —
        the multi-tenant server's reconnect-with-resume path.  Races a
        worker reports after the last poll of an unsealed drain surface
        in the next drain (or in :meth:`finish`'s merged reports, which
        are complete either way).
        """
        if self._finished:
            raise RuntimeError("parallel session is finished")
        source = iter(events.events if isinstance(events, Trace)
                      else events)
        limit = min(window, self._runner.chunk_events) if window > 0 \
            else self._runner.chunk_events
        pending: List[tuple] = []
        while True:
            step = limit
            if self._window is not None:
                # never decode across an eviction boundary (mirrors the
                # serial session's chunk clamping)
                room = self._next_evict - (self._i + 1)
                if room < step:
                    step = room
            n, exhausted, err = self._fill_chunk(source, step)
            if n:
                self._broadcast(n)
            if (self._window is not None
                    and self._i + 1 == self._next_evict):
                self._next_evict += self._window
            self._poll_results(pending)
            while pending:
                yield pending.pop(0)
            if err is not None:
                if seal:
                    self._collect(pending)
                    while pending:
                        yield pending.pop(0)
                raise err
            if exhausted:
                break
        if seal:
            self._collect(pending)
        while pending:
            yield pending.pop(0)

    def finish(self) -> MultiResult:
        """Seal the pass and merge per-shard results.

        Returns a :class:`~repro.core.engine.MultiResult` whose entries
        are ordered like the runner's analysis names; analyses of a
        shard that died carry an :class:`~repro.core.engine.AnalysisFailure`
        (so ``result.ok`` is False — the CLI's partial-summary exit-2
        path).  Reports of surviving shards are bit-identical to a
        serial run over the same events.
        """
        if self._finished:
            raise RuntimeError("parallel session is already finished")
        self._finished = True
        try:
            if not self._collected:
                # finish() without a full drain (a source error or an
                # interrupt handled by the caller): collect whatever the
                # workers have — they ignore SIGINT, so they are alive to
                # seal their shards' partial reports
                leftovers: List[tuple] = []
                self._collect(leftovers)
        finally:
            # reap processes and unlink shared memory even when the
            # collect itself is interrupted (second Ctrl-C)
            self._teardown()
            self._runner._session_open = False
        return MultiResult(self.entries, self.events_processed)

    def close(self) -> None:
        """Abandon the pass: kill workers, release transports."""
        self._finished = True
        self._teardown()
        self._runner._session_open = False

    def _teardown(self) -> None:
        for shard in self._shards:
            if shard.proc.is_alive():
                shard.proc.terminate()
        for shard in self._shards:
            if shard.proc.pid is not None:
                shard.proc.join(timeout=5)
                if shard.proc.is_alive():  # pragma: no cover - wedged
                    shard.proc.kill()
                    shard.proc.join(timeout=5)
            try:
                shard.proc.close()  # releases the sentinel fd
            except ValueError:  # pragma: no cover - still not reaped
                pass
        with _FORK_LOCK:
            # transport close unregisters/unlinks shared memory — a
            # tracker interaction that must not overlap another
            # session's fork (see _FORK_LOCK)
            for shard in self._shards:
                try:
                    shard.tx.close()
                except Exception:  # pragma: no cover - best-effort
                    pass
        self._results.close()
        self._results.cancel_join_thread()
        # Queue.close() is a producer-side no-op in this process (we only
        # ever get()); the pipe fds would otherwise live until the session
        # object is garbage-collected — too long for a server that keeps
        # sealed sessions in its registry.
        for conn in (self._results._reader, self._results._writer):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


class ParallelRunner:
    """Run N analyses sharded across worker processes, one decode total.

    The constructor takes analysis *names* (not instances — instances
    are created inside each worker, where they stay) plus the trace
    dimensions; :meth:`run` is the one-shot pass and :meth:`session`
    the incremental/serving one.

    >>> from repro.workloads import figure1
    >>> trace = figure1()
    >>> runner = ParallelRunner(["fto-hb", "st-wdc"], trace, workers=2)
    >>> result = runner.run(trace)
    >>> result.ok and result.report("st-wdc").dynamic_count
    1

    Parameters
    ----------
    names:
        Registry analysis names (see
        :data:`repro.core.registry.ANALYSIS_NAMES`); duplicates allowed.
    info:
        A :class:`~repro.trace.trace.Trace` or
        :class:`~repro.trace.trace.TraceInfo` carrying the dimensions.
    workers:
        Worker process count; clamped to ``len(names)``, and the
        family-aware shard plan (:func:`plan_shards`) may use fewer when
        atomic family groups leave shards empty.
    sample_every:
        Per-analysis footprint sampling cadence, as in
        :class:`~repro.core.engine.MultiRunner` (sampling runs inside
        the workers; it disables the parent's same-epoch filter exactly
        as it does in the serial engine).
    chunk_events:
        Decode/broadcast chunk size; also the unit of shared-memory
        slot sizing (five int64 columns of this length per slot).
    window_events:
        Bounded-window mode, as in
        :class:`~repro.core.engine.MultiRunner`: each worker session
        ages out per-variable metadata older than this many events.
        The parent clamps its broadcast chunks at window boundaries and
        disables its shared same-epoch filter, so windowed sharded
        reports are bit-identical to a windowed serial pass.
    """

    def __init__(self, names: Sequence[str], info: Union[Trace, TraceInfo],
                 workers: int = 2, sample_every: int = 0,
                 chunk_events: int = 8192,
                 window_events: Optional[int] = None,
                 _crash_after: Optional[Dict[int, int]] = None):
        self.names = list(names)
        if not self.names:
            raise ValueError("ParallelRunner needs at least one analysis")
        for name in self.names:
            if name not in ANALYSIS_NAMES:
                raise ValueError(
                    "unknown analysis {!r}; choose from {}".format(
                        name, ", ".join(ANALYSIS_NAMES)))
        self.info = TraceInfo.of(info) if isinstance(info, Trace) else info
        if self.info.num_threads > MAX_TID + 1:
            raise ValueError(
                "trace declares {} threads; packed epochs support at most "
                "{} (TID_BITS={})".format(self.info.num_threads,
                                          MAX_TID + 1, TID_BITS))
        self.workers = max(1, min(int(workers), len(self.names)))
        self.shards = plan_shards(self.names, self.workers)
        self.sample_every = sample_every
        self.chunk_events = max(chunk_events, 1)
        if window_events is not None:
            window_events = int(window_events)
            if window_events < 1:
                raise ValueError(
                    "window_events must be >= 1 (got {})".format(
                        window_events))
        self.window_events = window_events
        # The parent applies the engine's shared same-epoch filter once
        # for every worker; legal under exactly the serial conditions
        # (every analysis declares the fast-path semantics, no sampling,
        # no bounded window — filtered repeats would not refresh ages).
        probe = TraceInfo(num_threads=1)
        self._filter_on = (sample_every == 0
                           and window_events is None
                           and all(create(name, probe).SAME_EPOCH_SKIP
                                   for name in set(self.names)))
        self._crash_after = _crash_after or {}
        self._session_open = False

    def session(self) -> ParallelSession:
        """Open an incremental pass (spawns the worker processes).

        Exactly one session may be open per runner; it is released by
        :meth:`ParallelSession.finish` or
        :meth:`ParallelSession.close`.
        """
        if self._session_open:
            raise RuntimeError(
                "another parallel session over these analyses is still "
                "open; finish() or close() it first")
        self._session_open = True
        try:
            return ParallelSession(self)
        except BaseException:
            self._session_open = False
            raise

    def run(self, events: Union[Trace, Iterable[Event]]) -> MultiResult:
        """One sharded pass over ``events``; returns the merged result.

        ``events`` may be a :class:`~repro.trace.trace.Trace` or any
        iterable of events (e.g. a lazily-parsed
        :class:`~repro.trace.format.TraceStream`) — it is iterated
        exactly once, in the parent.
        """
        session = self.session()
        try:
            for _ in session.drain(events):
                pass
        except BaseException:
            session.close()
            raise
        return session.finish()


def run_parallel(source, names: Sequence[str], workers: int,
                 sample_every: int = 0,
                 window_events: int = 0,
                 evict_window: int = 0) -> MultiResult:
    """Analyze a trace file (or open handle) with sharded workers.

    The parallel counterpart of :func:`repro.core.engine.run_stream`:
    the trace — v1 text or v2 binary, autodetected — is parsed lazily
    in the parent and broadcast to ``workers`` analysis shards.  The
    file must declare its dimensions up front (both formats written by
    :func:`repro.trace.format.dump_trace` do).  ``window_events`` > 0
    caps the broadcast chunk size (the serving-loop granularity knob);
    ``evict_window`` > 0 turns on the engine's bounded-window metadata
    eviction inside every worker (see
    :class:`~repro.core.engine.MultiRunner` ``window_events``).
    """
    from repro.trace.format import stream_trace

    # everything after the open lives inside the with: a bad analysis
    # name or hostile header dimensions must not leak the descriptor
    with stream_trace(source) as stream:
        info = stream.require_info()
        runner = ParallelRunner(
            names, info, workers=workers, sample_every=sample_every,
            window_events=evict_window if evict_window > 0 else None)
        session = runner.session()
        try:
            for _ in session.drain(stream, window=window_events):
                pass
        except BaseException:
            session.close()
            raise
        return session.finish()
