"""The paper's contribution: the race-detection analysis matrix.

Analyses are organized by optimization tier (paper Table 1):

* ``unopt`` — vector-clock analyses: :mod:`repro.core.hb_vc` (Unopt-HB) and
  :mod:`repro.core.unopt` (Algorithm 1: Unopt-WCP/DC/WDC, optionally
  building a constraint graph for vindication).
* ``epoch`` — :class:`repro.core.fasttrack.FastTrack2` (FT2).
* ``fto`` — FastTrack-Ownership: :class:`repro.core.fasttrack.FTOHb` and
  :mod:`repro.core.fto` (Algorithm 2: FTO-WCP/DC/WDC).
* ``st`` — SmartTrack: :mod:`repro.core.smarttrack` (Algorithm 3:
  SmartTrack-WCP/DC/WDC).

Use :func:`repro.core.registry.create` (or :func:`repro.detect_races`) to
instantiate analyses by name.  :mod:`repro.core.engine` drives many
analyses over one iteration of an event stream (the single-pass engine).
"""

from repro.core.base import Analysis, HANDLER_NAMES, RaceRecord, RaceReport
from repro.core.engine import (
    AnalysisFailure,
    MultiResult,
    MultiRunner,
    run_analyses,
    run_stream,
)
from repro.core.registry import ANALYSIS_NAMES, create, relation_of, tier_of

__all__ = [
    "ANALYSIS_NAMES",
    "Analysis",
    "AnalysisFailure",
    "HANDLER_NAMES",
    "MultiResult",
    "MultiRunner",
    "RaceRecord",
    "RaceReport",
    "create",
    "relation_of",
    "run_analyses",
    "run_stream",
    "tier_of",
]
