"""Unopt-HB: classical vector-clock happens-before analysis (Djit+-style).

Maintains full vector clocks for last reads (``R_x``) and last writes
(``W_x``) per variable, per-thread clocks ``C_t``, and per-lock release
clocks ``L_m``.  Release–acquire edges on the same lock order events;
conflicting accesses unordered by HB are races (paper §2.3).

Following the paper's implementations (§5.1), a "[Shared Same Epoch]-like"
check skips accesses repeated within a thread's current epoch.
"""

from __future__ import annotations

from typing import Dict

from repro.clocks.vector_clock import VectorClock
from repro.core.base import DICT_ENTRY_BYTES, VectorClockAnalysis, _vc_bytes
from repro.trace.trace import Trace


class UnoptHB(VectorClockAnalysis):
    """Vector-clock HB analysis ("Unopt-HB" in Table 1)."""

    name = "unopt-hb"
    relation = "hb"
    tier = "unopt"
    HB_RELATION = True
    #: implements the §5.1-style ``r[t] == time`` same-epoch skip
    SAME_EPOCH_SKIP = True

    def __init__(self, trace: Trace, collect_cases: bool = False):
        super().__init__(trace, collect_cases=collect_cases)
        self._lock_clock: Dict[int, VectorClock] = {}
        self._read: Dict[int, VectorClock] = {}
        self._write: Dict[int, VectorClock] = {}

    def adopt_shared_cc(self, bank) -> None:
        """See :meth:`VectorClockAnalysis.adopt_shared_cc`; also rebinds
        the per-lock release clocks to the bank's."""
        super().adopt_shared_cc(bank)
        self._lock_clock = bank.lock_hb

    def acquire(self, t: int, m: int, i: int, site: int) -> None:
        if self._cc_owner:
            clock = self._lock_clock.get(m)
            if clock is not None:
                self.cc[t].join(clock)
        self.held[t].append(m)

    def release(self, t: int, m: int, i: int, site: int) -> None:
        if self._cc_owner:
            self._lock_clock[m] = self.cc[t].copy()
        stack = self.held[t]
        if stack and stack[-1] == m:
            stack.pop()
        else:
            stack.remove(m)
        self._bump(t)

    def read(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        r = self._read.get(x)
        if r is not None and r[t] == time:
            return  # same-epoch-like skip (§5.1)
        w = self._write.get(x)
        if w is not None and not w.leq_except(cc_t, t):
            self._race(i, site, x, t, "read", "write-read")
        if r is None:
            r = VectorClock.zeros(self.width)
            self._read[x] = r
        r[t] = time

    def write(self, t: int, x: int, i: int, site: int) -> None:
        cc_t = self.cc[t]
        time = cc_t[t]
        w = self._write.get(x)
        if w is not None and w[t] == time:
            return  # same-epoch-like skip (§5.1)
        kinds = []
        if w is not None and not w.leq_except(cc_t, t):
            kinds.append("write-write")
        r = self._read.get(x)
        if r is not None and not r.leq_except(cc_t, t):
            kinds.append("read-write")
        if kinds:
            self._race(i, site, x, t, "write", "+".join(kinds))
        if w is None:
            w = VectorClock.zeros(self.width)
            self._write[x] = w
        w[t] = time

    def evict_window(self, cutoff: int, stale) -> None:
        """Bounded-window mode: drop last-access clocks of stale
        variables (per-lock/volatile clocks are O(locks), not per-var,
        and stay; DESIGN.md §11)."""
        for x in stale:
            self._read.pop(x, None)
            self._write.pop(x, None)

    def footprint_bytes(self) -> int:
        vc = _vc_bytes(self.width)
        n = len(self._lock_clock) + len(self._read) + len(self._write)
        return self._base_footprint() + n * (vc + DICT_ENTRY_BYTES)
