"""Shared HB clock bank: compute happens-before once per event.

Every WCP-family analysis (``TRACKS_HB = True``) composes with HB (§2.4)
and therefore carries a full HB substrate next to its WCP clocks: the
per-thread ``H_t`` bank plus the HB release clocks of volatiles, class
initializers, and locks.  Crucially, that substrate evolves as a function
of the *event stream alone* — no HB update reads WCP clocks or race
metadata — so when the single-pass engine co-schedules N WCP analyses,
N−1 of the HB banks are redundant.

:class:`SharedHBClocks` is the one bank they share.  The engine hands it
to each member via
:meth:`repro.core.base.VectorClockAnalysis.adopt_shared_hb`, which
rebinds the member's ``hh``/volatile/class-init HB structures to the
bank's and turns off the member's own HB mutations.  The engine then
replays shared-HB members *fused per event*: every member's handler runs
first (reading the pre-event HB state, exactly what a solo run would
read at the same point — HB joins never advance a thread's own
component, so local-time reads are unaffected), and the bank's handler
applies the event's HB transition once.

The bank's per-event transition mirrors the HB half of
:class:`~repro.core.base.VectorClockAnalysis`'s handlers plus the
``_WcpMixin`` lock hooks, with the increment-at-acquire discipline every
predictive WCP analysis uses (§5.1).  Because the transition is applied
once per event and members only ever read, reports are bit-identical to
solo runs — the differential fuzz sweep asserts exactly that.

The bank is reference-counted (:meth:`retain`/:meth:`drop`): the count
tracks live members for introspection and the engine's detach
bookkeeping (group replay itself stops when the member list empties).
"""

from __future__ import annotations

from typing import Dict, List

from repro.clocks.vector_clock import VectorClock
from repro.core.base import HANDLER_NAMES


class SharedHBClocks:
    """One HB clock bank shared by co-scheduled analyses.

    Serves two member families, which differ only in the acquire bump:

    * the WCP family shares its HB *substrate* (``hh``), which bumps at
      acquires like every predictive tier (``bump_at_acquire=True``);
    * the pure-HB tier (Unopt-HB, FT2, FTO-HB) shares its *relation*
      clock outright — identical sync semantics across all three, with
      FastTrack's release-only local-clock discipline
      (``bump_at_acquire=False``).
    """

    def __init__(self, width: int, bump_at_acquire: bool = True):
        self.width = width
        self.bump_at_acquire = bump_at_acquire
        hh: List[VectorClock] = []
        for t in range(width):
            h = VectorClock.zeros(width)
            h[t] = 1  # H_t(t) starts at 1 (paper §2.4)
            hh.append(h)
        self.hh = hh
        #: HB release clocks of volatile writes / reads, per volatile.
        self.vol_w: Dict[int, VectorClock] = {}
        self.vol_r: Dict[int, VectorClock] = {}
        #: HB clocks of class-initialization edges, per class.
        self.cls_clocks: Dict[int, VectorClock] = {}
        #: HB release clocks per lock (the ``_lock_hb`` of ``_WcpMixin``).
        self.lock_hb: Dict[int, VectorClock] = {}
        self._refs = 0
        self._dispatch = None

    # -- reference counting (engine bookkeeping) -------------------------
    # (``release`` is taken by the event handler below, so the refcount
    # decrement is ``drop``.)
    def retain(self) -> int:
        """One more member reads this bank; returns the new count."""
        self._refs += 1
        return self._refs

    def drop(self) -> int:
        """One member detached; returns the remaining count."""
        self._refs -= 1
        return self._refs

    @property
    def refs(self) -> int:
        return self._refs

    # -- the per-event HB transition --------------------------------------
    # Handler signatures match the dispatch-table contract of
    # repro.core.base: table[kind](tid, target, index, site).

    def read(self, t: int, x: int, i: int, site: int) -> None:
        """Data reads do not change HB state."""

    def write(self, t: int, x: int, i: int, site: int) -> None:
        """Data writes do not change HB state."""

    def acquire(self, t: int, m: int, i: int, site: int) -> None:
        hh_t = self.hh[t]
        hb = self.lock_hb.get(m)
        if hb is not None:
            hh_t.join(hb)
        if self.bump_at_acquire:
            hh_t[t] += 1  # increment-at-acquire (§5.1)

    def release(self, t: int, m: int, i: int, site: int) -> None:
        hh_t = self.hh[t]
        self.lock_hb[m] = hh_t.copy()
        hh_t[t] += 1

    def fork(self, t: int, u: int, i: int, site: int) -> None:
        self.hh[u].join(self.hh[t])
        self.hh[t][t] += 1

    def join(self, t: int, u: int, i: int, site: int) -> None:
        self.hh[t].join(self.hh[u])

    def volatile_write(self, t: int, v: int, i: int, site: int) -> None:
        hh_t = self.hh[t]
        hw = self.vol_w.get(v)
        if hw is not None:
            hh_t.join(hw)
        hr = self.vol_r.get(v)
        if hr is not None:
            hh_t.join(hr)
        if hw is None:
            self.vol_w[v] = hh_t.copy()
        else:
            hw.join(hh_t)
        hh_t[t] += 1

    def volatile_read(self, t: int, v: int, i: int, site: int) -> None:
        hh_t = self.hh[t]
        hw = self.vol_w.get(v)
        if hw is not None:
            hh_t.join(hw)
        hr = self.vol_r.get(v)
        if hr is None:
            self.vol_r[v] = hh_t.copy()
        else:
            hr.join(hh_t)
        hh_t[t] += 1

    def static_init(self, t: int, c: int, i: int, site: int) -> None:
        hh_t = self.hh[t]
        k = self.cls_clocks.get(c)
        if k is None:
            self.cls_clocks[c] = hh_t.copy()
        else:
            k.join(hh_t)
        hh_t[t] += 1

    def static_access(self, t: int, c: int, i: int, site: int) -> None:
        k = self.cls_clocks.get(c)
        if k is not None:
            self.hh[t].join(k)

    # -- state serialization (checkpoint contract) ------------------------
    def __getstate__(self):
        """Checkpoint serialization (:mod:`repro.checkpoint`): the bank
        pickles with its clocks and refcount intact — member analyses in
        the same pickle keep aliasing the bank's ``hh`` / ``vol_w`` /
        ``vol_r`` / ``cls_clocks`` / ``lock_hb`` objects, so one dump of
        the engine session reconstructs the sharing refcount-correctly.
        Only the cached bound-method dispatch tuple is dropped (bound
        methods don't pickle usefully); it is recompiled on first use."""
        state = self.__dict__.copy()
        state["_dispatch"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._dispatch = None

    # -- dispatch ---------------------------------------------------------
    def dispatch_table(self):
        """Per-event-kind table of bound handlers (same contract as
        :meth:`repro.core.base.Analysis.dispatch_table`)."""
        table = self._dispatch
        if table is None:
            table = tuple(getattr(self, name) for name in HANDLER_NAMES)
            self._dispatch = table
        return table
