"""Single-pass multi-analysis engine.

The paper's deployment story (§4.3, "always-on" predictive detection)
wants many analysis configurations applied to *one* observed execution.
Re-running each analysis over the trace costs ``O(analyses × events)``
iterations and requires the trace to be materialized up front.
:class:`MultiRunner` instead drives one iteration of the event stream and
feeds every registered analysis from it:

* **one pass** — the event source is iterated exactly once and is never
  rewound, so it can be a generator (e.g. a
  :class:`~repro.trace.format.TraceStream` parsing a multi-gigabyte
  capture lazily) and the engine runs in memory bounded by analysis
  metadata, not trace length;
* **fused replay over flat chunks** — each analysis exposes a
  per-event-kind table of bound handlers
  (:meth:`repro.core.base.Analysis.dispatch_table`); the engine decodes
  each event once into four flat, *preallocated* int arrays (kind, tid,
  target, site — no per-event record object, so chunk assembly allocates
  nothing and the cyclic GC stays quiet) and replays the chunk through
  each analysis with the dispatch table and array slots bound to locals;
* **shared HB clocks** — co-scheduled analyses with an HB clock bank
  that evolves independently of race metadata share one
  reference-counted :class:`~repro.core.hb_shared.SharedHBClocks`
  instance per family: the WCP family's HB substrate (``TRACKS_HB``)
  and the pure-HB tier's relation clocks (``HB_RELATION``:
  Unopt-HB/FT2/FTO-HB).  A group replays access runs chunked (data
  accesses never change bank state) and synchronization events fused —
  member handlers read the pre-event bank state, then the bank applies
  the event's transition exactly once — so HB joins are paid once per
  event instead of once per analysis, and reports stay bit-identical
  to solo runs (the differential fuzz sweep asserts this);
* **error isolation** — an analysis whose handler raises is detached and
  recorded as a :class:`AnalysisFailure`; the remaining analyses
  (including the surviving members of a shared-HB group) are unaffected
  and still produce reports;
* **shared sampling** — footprint peaks and progress callbacks are
  sampled once per cadence for all analyses, at the same event indices
  :meth:`Analysis.run` would use, so peaks are comparable across paths;
* **incremental sessions** — :meth:`MultiRunner.session` opens an
  :class:`EngineSession` whose :meth:`~EngineSession.feed` accepts the
  event stream in arbitrary installments (a live socket/FIFO feed drained
  in bounded windows — see :mod:`repro.trace.live`) and returns the races
  discovered by that installment the moment they exist;
  :meth:`~EngineSession.snapshot` is a cheap mid-stream progress view and
  :meth:`~EngineSession.finish` seals the pass.  The one-shot
  :meth:`MultiRunner.run` is a thin feed-everything-then-finish wrapper,
  so offline and online paths share every optimization (flat chunks,
  shared HB banks, the same-epoch filter) and produce identical reports
  (the differential fuzz sweep replays every fuzzed trace through a live
  socket session and asserts this).

Analyses are ordinary instances; two instances of the *same* analysis can
run side by side (each owns all of its mutable state — the dispatch-table
contract in :mod:`repro.core.base`).  Solo :meth:`Analysis.run` never
shares anything, so a single analysis behaves identically inside and
outside the engine.
"""

from __future__ import annotations

import gc
from itertools import islice
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.clocks.epoch import TID_BITS
from repro.core.base import Analysis, HANDLER_NAMES, RaceReport
from repro.core.hb_shared import SharedHBClocks
from repro.core.registry import create
from repro.trace.event import Event
from repro.trace.trace import Trace, TraceInfo

NUM_KINDS = len(HANDLER_NAMES)

#: Event kinds that end the acting thread's epoch in at least one
#: analysis (the union of every tier's ``_bump`` sites: releases, forks,
#: volatiles, class inits always; acquires for the predictive tiers).
#: Indexed by kind; used by the engine's shared same-epoch filter.
_EPOCH_ENDERS = (
    False,  # READ
    False,  # WRITE
    True,   # ACQUIRE (predictive tiers bump; conservative for HB)
    True,   # RELEASE
    True,   # FORK
    False,  # JOIN (joins knowledge, never the local clock)
    True,   # VOLATILE_READ
    True,   # VOLATILE_WRITE
    True,   # STATIC_INIT
    False,  # STATIC_ACCESS (joins knowledge only)
)


class AnalysisFailure:
    """One detached analysis: the error and the event that triggered it."""

    __slots__ = ("name", "event_index", "error")

    def __init__(self, name: str, event_index: int, error: BaseException):
        self.name = name
        self.event_index = event_index
        self.error = error

    def __repr__(self) -> str:
        return "AnalysisFailure({} at event {}: {!r})".format(
            self.name, self.event_index, self.error)


class EngineEntry:
    """Per-analysis slot in a :class:`MultiResult`."""

    __slots__ = ("analysis", "report", "failure", "peak", "kernel")

    def __init__(self, analysis: Analysis):
        self.analysis = analysis
        self.report: Optional[RaceReport] = None
        self.failure: Optional[AnalysisFailure] = None
        self.peak = 0
        #: batch kernel (repro.core.kernels) replacing chunked per-event
        #: replay for this analysis; None means the scalar path
        self.kernel = None

    @property
    def name(self) -> str:
        return self.analysis.name

    @property
    def ok(self) -> bool:
        return self.failure is None


class MultiResult:
    """The outcome of one :class:`MultiRunner` pass.

    ``entries`` is ordered like the registered analyses (two instances of
    the same analysis keep distinct entries).  ``reports`` is a by-name
    convenience for the common all-distinct case (first instance wins).
    """

    def __init__(self, entries: List[EngineEntry], events_processed: int):
        self.entries = entries
        self.events_processed = events_processed

    @property
    def reports(self) -> Dict[str, RaceReport]:
        out: Dict[str, RaceReport] = {}
        for entry in self.entries:
            if entry.report is not None and entry.name not in out:
                out[entry.name] = entry.report
        return out

    @property
    def failures(self) -> List[AnalysisFailure]:
        return [e.failure for e in self.entries if e.failure is not None]

    @property
    def ok(self) -> bool:
        return not self.failures

    def report(self, name: str) -> RaceReport:
        """The (first) report of the named analysis; raises KeyError if it
        failed or was never registered."""
        for entry in self.entries:
            if entry.name == name and entry.report is not None:
                return entry.report
        raise KeyError(name)

    def __repr__(self) -> str:
        return "MultiResult({} analyses over {} events, {} failed)".format(
            len(self.entries), self.events_processed, len(self.failures))


class SessionSnapshot:
    """A cheap, read-only progress view of a live :class:`EngineSession`.

    Snapshots are O(races) counter reads: they do **not** fork the shared
    HB clock banks or any analysis metadata (the banks keep evolving as
    events arrive; forking them into a resumable checkpoint would deep-copy
    every member's clock references, which is exactly the cost the sharing
    avoids — see DESIGN.md §5.2).  Use :meth:`EngineSession.finish` to seal
    the pass and obtain real :class:`~repro.core.base.RaceReport` objects,
    or :meth:`EngineSession.save_checkpoint` (:mod:`repro.checkpoint`)
    when the full resumable state — clocks, metadata, banks and all — is
    what you need.

    ``dynamic_counts``/``static_counts`` are keyed by analysis name (first
    instance wins when the same analysis is registered twice, mirroring
    :attr:`MultiResult.reports`).
    """

    __slots__ = ("events_processed", "dynamic_counts", "static_counts",
                 "failures", "events_acked")

    def __init__(self, events_processed: int,
                 dynamic_counts: Dict[str, int],
                 static_counts: Dict[str, int],
                 failures: List[AnalysisFailure],
                 events_acked: Optional[int] = None):
        self.events_processed = events_processed
        self.dynamic_counts = dynamic_counts
        self.static_counts = static_counts
        self.failures = failures
        #: the resume-safe offset (see :attr:`EngineSession.events_acked`);
        #: equals ``events_processed`` for in-process sessions
        self.events_acked = (events_processed if events_acked is None
                             else events_acked)

    def __repr__(self) -> str:
        return "SessionSnapshot({} events, {} dynamic races, {} failed)".format(
            self.events_processed, sum(self.dynamic_counts.values()),
            len(self.failures))


class EngineSession:
    """An incremental single-pass run: feed events in installments.

    Obtained from :meth:`MultiRunner.session`.  The session owns the
    pass-wide state the one-shot :meth:`MultiRunner.run` used to keep in
    locals — the flat decode buffers, the shared same-epoch filter's
    per-thread/per-variable tokens, the running event index, and the
    live/detached bookkeeping — so an event stream can be delivered in
    arbitrary installments (e.g. bounded windows drained from a live
    socket) with results identical to one uninterrupted pass: chunk
    boundaries never affect analysis state, and the filter's epoch
    tokens survive across :meth:`feed` calls.

    Lifecycle: any number of :meth:`feed` calls, then exactly one
    :meth:`finish`.  :meth:`feed` returns the races *newly* discovered by
    that installment (each dynamic race is returned exactly once across
    the session) so a serving loop can emit reports the moment they
    exist.  :meth:`snapshot` may be called at any time.  After
    :meth:`finish` (or :meth:`close`), :meth:`feed` raises
    :class:`RuntimeError` and the owning runner may open a new session.
    """

    def __init__(self, runner: "MultiRunner"):
        self._runner = runner
        self.entries = runner.entries
        grouped = set()
        for _, members in runner.hb_groups:
            grouped.update(members)
        # entries that failed in a previous session stay detached: their
        # analyses are in an undefined mid-failure state, and a group
        # member must not drop the bank refcount twice
        self._live = [e for e in self.entries
                      if e not in grouped and e.failure is None]
        self._groups = [(bank, [m for m in members if m.failure is None])
                        for bank, members in runner.hb_groups]
        # The shared same-epoch filter drops accesses that are provably
        # no-ops in *every* analysis — a repeat of the same (thread,
        # kind, variable) access with no intervening epoch-ending event
        # by that thread and no intervening write to the variable hits a
        # [Same Epoch] fast path in each tier (§4.1; unopt's §5.1
        # equivalent) — so one decode-time check replaces N dispatches.
        # Active only when every analysis declares the fast-path
        # semantics (SAME_EPOCH_SKIP), and disabled when footprint
        # sampling or case counting is on: a skipped access would then
        # miss a sample index / a same-epoch case bump.
        self._filter_on = (runner.sample_every == 0
                           and runner.window_events is None
                           and all(e.analysis.SAME_EPOCH_SKIP
                                   and e.analysis.case_counts is None
                                   for e in self.entries))
        # bounded-window mode: age out per-variable metadata at every
        # multiple of the window (see MultiRunner ``window_events``)
        self._window = runner.window_events
        self._var_last: Dict[int, int] = {}
        self._next_evict = (self._window if self._window is not None
                            else None)
        # batch kernels (repro.core.kernels): entries with a kernel skip
        # the per-event replay; chunks are then packaged into a shared
        # ChunkPlan, and the decode-time filter runs vectorized
        self._plan_live = any(e.kernel is not None for e in self._live)
        self._make_plan = None
        self._vec_filter = None
        if runner._kernels_on:
            from repro.core import kernels

            if self._plan_live:
                self._make_plan = kernels.ChunkPlan
            if self._filter_on:
                width = max(e.analysis.width for e in self.entries)
                self._vec_filter = kernels.make_filter(width, _EPOCH_ENDERS)
        # per-thread tokens (epoch << TID_BITS | tid), recomputed only at
        # epoch-ending events so the access fast path is one dict get
        self._toks: Dict[int, int] = {}
        self._last_r: Dict[int, int] = {}  # var -> token of its last reader
        self._last_w: Dict[int, int] = {}  # var -> token of its last writer
        # flat preallocated decode buffers: one int per slot, no
        # per-event record allocation (islice in the replay loops trims
        # to the live prefix).
        chunk_size = runner.chunk_events
        self._indices = [0] * chunk_size
        self._kinds = [0] * chunk_size
        self._tids = [0] * chunk_size
        self._targets = [0] * chunk_size
        self._sites = [0] * chunk_size
        self._events_seen = 0
        self._reported = 0  # last count handed to the progress callback
        self._races_seen = [len(e.analysis.races) for e in self.entries]
        self._max_pending = runner.max_pending_races
        self._finished = False

    @property
    def runner(self) -> "MultiRunner":
        """The owning :class:`MultiRunner` (checkpoint and serving code
        need its configuration)."""
        return self._runner

    @property
    def events_processed(self) -> int:
        """Source events consumed so far (filtered accesses included)."""
        return self._events_seen

    @property
    def events_acked(self) -> int:
        """Events whose analysis effects are fully applied — the safe
        resume offset for a reconnecting producer.

        Identical to :attr:`events_processed` by construction: a failing
        source replays its partially decoded chunk before the error
        propagates, so every counted event reached every live analysis
        and a producer that resends from this offset reproduces the
        uninterrupted run exactly (the server's reconnect protocol and
        its fuzz test rely on this).  Bytes of a *partially decoded*
        event are never counted, so the failed event is resent whole.
        """
        return self._events_seen

    @property
    def finished(self) -> bool:
        return self._finished

    # -- feeding -----------------------------------------------------------
    def feed(self, events: Union[Trace, Iterable[Event]],
             max_events: Optional[int] = None) -> List[tuple]:
        """Consume one installment of the stream; return its new races.

        ``events`` may be a :class:`Trace`, any iterable, or a live
        iterator shared across calls — the installment ends when the
        iterable is exhausted or, with ``max_events``, after that many
        events (pass the *same* iterator again to continue; an exhausted
        iterator makes ``feed`` a no-op, which is the caller's EOF
        signal via an unchanged :attr:`events_processed`).

        Returns the races discovered by this installment as
        ``(analysis_name, RaceRecord)`` pairs ordered by event index
        (ties keep registration order); across a session every dynamic
        race is returned exactly once.  An analysis whose handler raises
        is detached exactly as in :meth:`MultiRunner.run`; errors raised
        by the *source* iterator propagate with all session state intact,
        so a caller may still :meth:`snapshot` or :meth:`finish` after a
        malformed or timed-out live feed.
        """
        if self._finished:
            raise RuntimeError(
                "engine session is finished; open a new session to feed "
                "more events")
        if isinstance(events, Trace):
            events = events.events
        source = iter(events)
        if max_events is not None:
            source = islice(source, max_events)
        runner = self._runner
        live = self._live
        groups = self._groups
        progress = runner.progress
        chunk_size = runner.chunk_events
        vec_filter = self._vec_filter
        make_plan = self._make_plan
        # the vectorized filter replays whole decoded chunks, so the
        # per-event scalar filter only runs when it is unavailable
        filter_on = self._filter_on and vec_filter is None
        epoch_enders = _EPOCH_ENDERS
        toks = self._toks
        last_r = self._last_r
        last_w = self._last_w
        toks_get = toks.get
        last_r_get = last_r.get
        last_w_get = last_w.get
        indices = self._indices
        kinds = self._kinds
        tids = self._tids
        targets = self._targets
        sites = self._sites
        window = self._window
        var_last = self._var_last
        i = self._events_seen - 1
        exhausted = False
        # Batch-pass GC hygiene: with N analyses' metadata live at once,
        # every cyclic collection during the pass scans ~N times the
        # objects a solo run would, for data that is refcount-managed
        # anyway (the clocks and metadata maps are acyclic).  Suspend
        # cyclic GC for the installment and restore the caller's setting.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while not exhausted:
                n = 0
                limit = chunk_size
                if window is not None:
                    # clamp the chunk at the next eviction boundary, so
                    # windowed results are chunk-size-independent and
                    # identical across the serial and parallel paths
                    room = self._next_evict - (i + 1)
                    if room < limit:
                        limit = room
                source_error: Optional[BaseException] = None
                try:
                    if filter_on:
                        for e in source:
                            i += 1
                            k = e.kind
                            t = e.tid
                            x = e.target
                            if k <= 1:  # READ/WRITE: shared same-epoch filter
                                tok = toks_get(t, t)
                                if k == 0:
                                    if last_r_get(x) == tok:
                                        continue  # no-op in every analysis
                                    last_r[x] = tok
                                else:
                                    if last_w_get(x) == tok:
                                        continue  # no-op in every analysis
                                    last_w[x] = tok
                                    # a write ends every reader's
                                    # same-epoch run
                                    if x in last_r:
                                        del last_r[x]
                            elif epoch_enders[k]:
                                toks[t] = toks_get(t, t) + (1 << TID_BITS)
                            indices[n] = i
                            kinds[n] = k
                            tids[n] = t
                            targets[n] = x
                            sites[n] = e.site
                            n += 1
                            if n == limit:
                                break
                        else:
                            exhausted = True
                    elif window is not None:
                        for e in source:
                            i += 1
                            k = e.kind
                            indices[n] = i
                            kinds[n] = k
                            tids[n] = e.tid
                            targets[n] = e.target
                            sites[n] = e.site
                            if k <= 1:  # refresh the variable's age
                                var_last[e.target] = i
                            n += 1
                            if n == limit:
                                break
                        else:
                            exhausted = True
                    else:
                        for e in source:
                            i += 1
                            indices[n] = i
                            kinds[n] = e.kind
                            tids[n] = e.tid
                            targets[n] = e.target
                            sites[n] = e.site
                            n += 1
                            if n == limit:
                                break
                        else:
                            exhausted = True
                except BaseException as exc:
                    # a failing source (malformed live feed, read timeout)
                    # must not drop the events already decoded into the
                    # chunk: replay them below, then re-raise — so every
                    # event counted in events_processed reached the
                    # analyses and a caller may resume or finish()
                    source_error = exc
                if n == 0 and source_error is None:
                    break
                if n:
                    m = n
                    if vec_filter is not None:
                        m = vec_filter.apply(indices, kinds, tids, targets,
                                             sites, n)
                    if m:
                        plan = (make_plan(indices, kinds, tids, targets,
                                          sites, m)
                                if make_plan is not None else None)
                        for entry in list(live):
                            kernel = entry.kernel
                            try:
                                if kernel is not None and plan is not None:
                                    kernel.process_chunk(plan)
                                else:
                                    runner._replay(entry, indices, kinds,
                                                   tids, targets, sites, m)
                            except Exception as exc:  # detach this analysis
                                entry.failure = AnalysisFailure(
                                    entry.name, runner._failure_index(exc),
                                    exc)
                                live.remove(entry)
                        for bank, members in groups:
                            if members:
                                runner._replay_group(bank, members, indices,
                                                     kinds, tids, targets,
                                                     sites, m)
                    if progress is not None:
                        progress(i + 1)
                        self._reported = i + 1
                if window is not None and i + 1 == self._next_evict:
                    # evict even when the source just failed: the decoded
                    # prefix was replayed above, and a resumed feed must
                    # find the boundary already advanced
                    self._evict()
                if source_error is not None:
                    raise source_error
        finally:
            # write-back even when the source iterator raises (live feeds
            # surface TraceFormatError/TimeoutError here): the session
            # stays consistent and can still be snapshotted or finished
            self._events_seen = i + 1
            if gc_was_enabled:
                gc.enable()
        return self._deliver()

    def feed_decoded(self, indices, kinds, tids, targets, sites, n: int,
                     events_seen: int) -> List[tuple]:
        """Replay one already-decoded flat chunk; return its new races.

        This is the multiprocess worker entry point
        (:mod:`repro.core.parallel`): the parallel parent decodes — and
        same-epoch-filters — the event stream exactly once into the
        engine's flat int chunk representation and ships the five
        parallel arrays to each worker, whose shard session replays them
        here, bypassing the session's own decode loop.  ``indices``
        holds each record's global event index (records are not
        contiguous when the parent's filter dropped events);
        ``events_seen`` is the parent's cumulative *source* event count
        after this chunk (filtered accesses included), which keeps
        :attr:`events_processed` — and therefore the final reports —
        identical to a serial pass.  ``n`` may be 0 (used by the
        end-of-stream marker to propagate the final event count).

        Analysis failures detach exactly as in :meth:`feed`; the chunk
        arrays are never mutated.
        """
        if self._finished:
            raise RuntimeError(
                "engine session is finished; open a new session to feed "
                "more events")
        runner = self._runner
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if n:
                if self._window is not None:
                    # the parallel parent decoded; track variable ages here
                    var_last = self._var_last
                    for o in range(n):
                        if kinds[o] <= 1:
                            var_last[targets[o]] = indices[o]
                live = self._live
                make_plan = self._make_plan
                plan = (make_plan(indices, kinds, tids, targets, sites, n)
                        if make_plan is not None else None)
                for entry in list(live):
                    kernel = entry.kernel
                    try:
                        if kernel is not None and plan is not None:
                            kernel.process_chunk(plan)
                        else:
                            runner._replay(entry, indices, kinds, tids,
                                           targets, sites, n)
                    except Exception as exc:  # detach this analysis
                        entry.failure = AnalysisFailure(
                            entry.name, runner._failure_index(exc), exc)
                        live.remove(entry)
                for bank, members in self._groups:
                    if members:
                        runner._replay_group(bank, members, indices, kinds,
                                             tids, targets, sites, n)
        finally:
            self._events_seen = events_seen
            if gc_was_enabled:
                gc.enable()
        if self._window is not None:
            # the parent clamps chunks at window boundaries, so the
            # boundary is crossed exactly at a chunk edge
            while events_seen >= self._next_evict:
                self._evict()
        return self._deliver()

    def _evict(self) -> None:
        """Apply one window-boundary eviction (bounded-window mode):
        advance the boundary and hand every live analysis the stale
        variable set (last access before the new cutoff) via
        :meth:`~repro.core.base.Analysis.evict_window`."""
        window = self._window
        cutoff = self._next_evict - window
        self._next_evict += window
        if cutoff <= 0:
            return  # first boundary: everything is within the window
        var_last = self._var_last
        stale = [x for x, last in var_last.items() if last < cutoff]
        for x in stale:
            del var_last[x]
        stale_set = frozenset(stale)
        live = self._live
        for entry in list(live):
            try:
                entry.analysis.evict_window(cutoff, stale_set)
            except Exception as exc:  # detach this analysis
                entry.failure = AnalysisFailure(entry.name, -1, exc)
                live.remove(entry)
        for bank, members in self._groups:
            for entry in list(members):
                try:
                    entry.analysis.evict_window(cutoff, stale_set)
                except Exception as exc:  # detach this member
                    entry.failure = AnalysisFailure(entry.name, -1, exc)
                    members.remove(entry)
                    bank.drop()

    def _deliver(self) -> List[tuple]:
        """Hand out the pending races, then enforce the bounded-state
        cap: once delivered, old race records may be trimmed."""
        races = self.pending_races()
        if self._max_pending is not None:
            self.trim_delivered(self._max_pending)
        return races

    def drain(self, events: Union[Trace, Iterable[Event]],
              window: int = 4096) -> Iterator[tuple]:
        """Feed ``events`` to exhaustion in bounded windows, yielding
        each ``(analysis_name, RaceRecord)`` pair as it is discovered.

        This is the canonical serving loop — it owns the EOF
        convention (a window that advances :attr:`events_processed` by
        nothing means the iterator is exhausted), so callers do not
        re-implement it.  When the *source* raises mid-installment, the
        races that installment's partial chunk did discover are yielded
        first and then the error propagates (session still usable) — a
        live consumer never loses a race that was found before the feed
        died.  Drive :meth:`feed` directly only when per-window work is
        needed (progress sampling, adaptive window sizes).
        """
        source = iter(events.events if isinstance(events, Trace)
                      else events)
        while True:
            seen = self._events_seen
            try:
                races = self.feed(source, max_events=window)
            except BaseException:
                for pair in self.pending_races():
                    yield pair
                raise
            for pair in races:
                yield pair
            if self._events_seen == seen:
                return

    def pending_races(self) -> List[tuple]:
        """Races discovered since the last :meth:`feed` (or call of this
        method) that have not been handed out yet, as ``(analysis_name,
        RaceRecord)`` pairs ordered by event index.

        Normally empty — :meth:`feed` drains them on return — but after
        a feed that *raised*, the partial chunk it replayed may have
        discovered races the exception swallowed; :meth:`drain` yields
        them before propagating, and direct ``feed`` callers can do the
        same with this method.
        """
        out: List[tuple] = []
        seen = self._races_seen
        for idx, entry in enumerate(self.entries):
            races = entry.analysis.races
            if len(races) > seen[idx]:
                name = entry.name
                out.extend((name, race) for race in races[seen[idx]:])
                seen[idx] = len(races)
        if len(out) > 1:
            out.sort(key=lambda pair: pair[1].index)
        return out

    def trim_delivered(self, keep: int = 0) -> int:
        """Drop already-delivered race records beyond ``keep`` per
        analysis, keeping report counts exact.

        The bounded-state half of serving an infinite feed: every race a
        :meth:`feed` call returned is still retained by its analysis (so
        :meth:`finish` can build the full report), which grows without
        bound on a race-heavy tenant.  This trims each analysis' oldest
        *delivered* records — never ones a caller has not seen — via
        :meth:`~repro.core.base.Analysis.trim_races`, so
        ``dynamic_count``/``static_count`` in the final reports are
        unchanged and only the trimmed records' details are gone.
        Sessions opened with ``max_pending_races`` call this
        automatically after each delivery.  Returns the number of
        records dropped across all analyses.
        """
        dropped = 0
        seen = self._races_seen
        for idx, entry in enumerate(self.entries):
            excess = min(seen[idx], len(entry.analysis.races)) - keep
            if excess > 0:
                trimmed = entry.analysis.trim_races(excess)
                seen[idx] -= trimmed
                dropped += trimmed
        return dropped

    # -- checkpointing -----------------------------------------------------
    def _filter_state(self):
        """The shared same-epoch filter's cross-chunk state as three
        plain dicts (``toks``, ``last_r``, ``last_w``) — numpy-free, so
        a checkpoint written under one filter implementation restores
        into the other (the vectorized filter keeps the identical token
        scheme)."""
        if self._vec_filter is not None:
            return self._vec_filter.export_state()
        return dict(self._toks), dict(self._last_r), dict(self._last_w)

    def _seed_filter(self, toks, last_r, last_w) -> None:
        """Load filter state captured by :meth:`_filter_state` into
        whichever filter implementation this session runs."""
        if self._vec_filter is not None:
            self._vec_filter.seed_state(toks, last_r, last_w)
        else:
            self._toks.update(toks)
            self._last_r.update(last_r)
            self._last_w.update(last_w)

    def save_checkpoint(self, fp) -> None:
        """Serialize the session's full resumable state to the binary
        file object ``fp`` — every analysis' clocks/metadata, the shared
        HB banks (refcount-correct), the same-epoch filter tokens and
        the event offset — so :meth:`MultiRunner.restore_checkpoint` in
        another process can replay the remaining suffix and produce
        reports bit-identical to one uninterrupted pass.  Thin wrapper
        over :func:`repro.checkpoint.save_session`."""
        from repro.checkpoint import save_session

        save_session(self, fp)

    # -- observing ---------------------------------------------------------
    def snapshot(self) -> SessionSnapshot:
        """The session's progress so far (see :class:`SessionSnapshot`)."""
        dynamic: Dict[str, int] = {}
        static: Dict[str, int] = {}
        for entry in self.entries:
            if entry.failure is None and entry.name not in dynamic:
                analysis = entry.analysis
                races = analysis.races
                dynamic[entry.name] = (analysis._trimmed_dynamic
                                       + len(races))
                static[entry.name] = len({r.site for r in races}
                                         | analysis._trimmed_sites)
        return SessionSnapshot(
            self._events_seen, dynamic, static,
            [e.failure for e in self.entries if e.failure is not None],
            events_acked=self.events_acked)

    # -- sealing -----------------------------------------------------------
    def finish(self) -> MultiResult:
        """Seal the pass: final progress/footprint samples, reports built.

        Returns the same :class:`MultiResult` one uninterrupted
        :meth:`MultiRunner.run` over the concatenated installments would
        have produced.  The session is unusable afterwards; the owning
        runner may open a new one.
        """
        if self._finished:
            raise RuntimeError("engine session is already finished")
        self._finished = True
        self._runner._session_open = False
        events_processed = self._events_seen
        # a trailing residue dropped entirely by the same-epoch filter
        # produces no final chunk; progress must still reach the total
        progress = self._runner.progress
        if progress is not None and events_processed > self._reported:
            progress(events_processed)
            self._reported = events_processed
        for entry in self.entries:
            if entry.failure is None:
                if entry.kernel is not None:
                    # settle lazily-derived metadata (StKernel CS lists)
                    # before the final footprint sample
                    entry.kernel.flush()
                entry.report = entry.analysis.finish(
                    events_processed, entry.peak)
        return MultiResult(self.entries, events_processed)

    def close(self) -> None:
        """Abandon the session without building reports (the analyses
        keep their mid-stream state; a later session sees it)."""
        self._finished = True
        self._runner._session_open = False


class MultiRunner:
    """Drive N analyses over one iteration of an event stream.

    The engine works in *chunks*: it drains a bounded batch of events
    from the source into four flat preallocated int arrays (kind, tid,
    target, site — decoded exactly once per event) and then replays the
    batch through each analysis' precompiled dispatch table in turn.
    Chunked replay keeps each analysis' handler code and metadata hot in
    caches, costs one decode per event instead of one per (event,
    analysis) pair, and is the natural substrate for sharding batches
    across workers later.  The source itself is still iterated exactly
    once and never rewound, so memory stays bounded by the chunk size
    plus analysis metadata.

    Analyses with a shareable HB clock bank — the WCP family's HB
    substrate (``TRACKS_HB``) and the pure-HB tier's relation clocks
    (``HB_RELATION``) — are grouped per family and clock width at the
    start of :meth:`run` and, when a group has two or more *fresh*
    members, adopted into one shared
    :class:`~repro.core.hb_shared.SharedHBClocks` bank.  A group
    replays access runs chunked and synchronization events fused:
    member handlers first (each reading the common pre-event bank
    state), then the bank's single transition.  See
    :mod:`repro.core.hb_shared` for why the reports are identical to
    solo runs.

    Parameters
    ----------
    analyses:
        Analysis instances (not names); construct via
        :func:`repro.core.registry.create` with a shared
        :class:`Trace`/:class:`TraceInfo`.
    sample_every:
        > 0 samples every analysis' metadata footprint at that cadence
        (same event indices as :meth:`Analysis.run`, so peaks are
        comparable across paths), recording per-analysis peaks.
    progress:
        Optional callback invoked as ``progress(events_seen)`` after each
        chunk (shared across all analyses).
    chunk_events:
        Batch size; the engine's extra memory is four int slots per
        chunk position.
    share_hb:
        Set False to disable shared-HB grouping (every analysis keeps
        its private clocks, as in solo runs).
    use_kernels:
        None (the default) auto-selects the columnar batch kernels
        (:mod:`repro.core.kernels`) for every capable analysis when
        numpy is importable, ``REPRO_NO_NUMPY`` is unset, and footprint
        sampling is off; False forces the pure-Python replay paths.
        Reports are bit-identical either way (the fuzz sweep asserts
        this).
    max_pending_races:
        Bounded-state knob for unbounded live feeds (None = off, the
        offline default): each session trims already-delivered race
        records down to this many per analysis after every feed
        (:meth:`EngineSession.trim_delivered`), so a race-heavy tenant's
        memory stays bounded while ``dynamic_count``/``static_count`` in
        the final reports remain exact.
    window_events:
        Bounded-window mode (None = off, the offline default): at every
        multiple of N events the session ages out per-variable analysis
        metadata whose variable was last accessed more than N events ago
        (:meth:`~repro.core.base.Analysis.evict_window`), so
        per-variable state stays bounded by the variables active in the
        trailing window — the *metadata* half of serving an infinite
        feed, complementing ``max_pending_races``.  Races between
        accesses more than 2N events apart are no longer reported
        (metadata survives at least N and less than 2N events; DESIGN.md
        §11).  Chunks are clamped so no chunk crosses a window boundary,
        which makes windowed results independent of ``chunk_events`` and
        identical across the serial and parallel paths.  Windowed runs
        use the scalar replay paths (no batch kernels) and disable the
        shared same-epoch filter (a filtered repeat would not refresh
        its variable's last-access age).
    """

    def __init__(self, analyses: Sequence[Analysis], sample_every: int = 0,
                 progress: Optional[Callable[[int], None]] = None,
                 chunk_events: int = 8192, share_hb: bool = True,
                 use_kernels: Optional[bool] = None,
                 max_pending_races: Optional[int] = None,
                 window_events: Optional[int] = None):
        if not analyses:
            raise ValueError("MultiRunner needs at least one analysis")
        if window_events is not None:
            window_events = int(window_events)
            if window_events < 1:
                raise ValueError(
                    "window_events must be >= 1 (got {})".format(
                        window_events))
        self.entries = [EngineEntry(a) for a in analyses]
        self.sample_every = sample_every
        self.progress = progress
        self.chunk_events = max(chunk_events, 1)
        self.window_events = window_events
        self.max_pending_races = (None if max_pending_races is None
                                  else max(max_pending_races, 0))
        #: shared-HB groups: list of (bank, [entries]) — usually 0 or 1.
        #: Populated at the start of :meth:`run` (adoption permanently
        #: rebinds an analysis' HB state, so it must not happen for a
        #: runner that is constructed but never run).
        self.hb_groups: List[tuple] = []
        self._share_hb = share_hb
        self._groups_formed = False
        self._session_open = False
        self._use_kernels = use_kernels
        self._kernels_attached = False
        self._kernels_on = False

    # -- batch kernel attachment -------------------------------------------
    def _attach_kernels(self) -> None:
        """Hand each capable analysis its batch kernel (once, before the
        first session — like shared-HB grouping, a kernel permanently
        claims its entry: a kernel entry replays solo so its fast paths
        may bypass the per-event handlers).

        Sampling passes keep the scalar path: a kernel skips handler
        work per event, so per-event footprint peaks would be wrong.
        """
        if self._kernels_attached:
            return
        self._kernels_attached = True
        if (self._use_kernels is False or self.sample_every
                or self.window_events is not None):
            # window mode keeps the scalar paths: kernel fast paths
            # cache per-variable state that eviction would invalidate
            return
        from repro.core import kernels

        if not kernels.kernels_available():
            return
        for entry in self.entries:
            entry.kernel = entry.analysis.make_kernel()
        self._kernels_on = any(e.kernel is not None for e in self.entries)

    # -- shared-HB group formation ----------------------------------------
    def _form_hb_groups(self) -> None:
        """Group fresh shareable analyses by clock width and hand each
        group of >= 2 one shared, reference-counted clock bank.

        Two families share (separately): the WCP tier's HB *substrate*
        (``TRACKS_HB``; adopted via ``adopt_shared_hb``) and the pure-HB
        tier's *relation* clocks (``HB_RELATION``; adopted via
        ``adopt_shared_cc``, release-only bump discipline).
        """
        hh_groups: Dict[int, List[EngineEntry]] = {}
        cc_groups: Dict[int, List[EngineEntry]] = {}
        for entry in self.entries:
            if entry.kernel is not None:
                # kernel entries replay solo: their vector fast paths
                # bypass the handlers a fused group replay relies on
                continue
            a = entry.analysis
            if (getattr(a, "TRACKS_HB", False)
                    and getattr(a, "hh", None) is not None
                    and getattr(a, "_hb_owner", False)
                    and self._hb_is_fresh(a)):
                hh_groups.setdefault(a.width, []).append(entry)
            elif (getattr(a, "HB_RELATION", False)
                    and getattr(a, "hh", 0) is None
                    and getattr(a, "_cc_owner", False)
                    and self._cc_is_fresh(a)):
                cc_groups.setdefault(a.width, []).append(entry)
        for width, members in hh_groups.items():
            if len(members) < 2:
                continue
            bank = SharedHBClocks(width)
            for entry in members:
                entry.analysis.adopt_shared_hb(bank)
                bank.retain()
            self.hb_groups.append((bank, members))
        for width, members in cc_groups.items():
            if len(members) < 2:
                continue
            bank = SharedHBClocks(width, bump_at_acquire=False)
            for entry in members:
                entry.analysis.adopt_shared_cc(bank)
                bank.retain()
            self.hb_groups.append((bank, members))

    @staticmethod
    def _clocks_initial(clocks) -> bool:
        for t, h in enumerate(clocks):
            for u, v in enumerate(h):
                if v != (1 if u == t else 0):
                    return False
        return True

    @classmethod
    def _hb_is_fresh(cls, analysis: Analysis) -> bool:
        """True while the analysis' private HB state is still initial
        (sharing would corrupt a mid-run instance's view otherwise)."""
        if not cls._clocks_initial(analysis.hh):
            return False
        for attr in ("_hvol_w", "_hvol_r", "_hcls", "_lock_hb"):
            if getattr(analysis, attr, None):
                return False
        return True

    @classmethod
    def _cc_is_fresh(cls, analysis: Analysis) -> bool:
        """Same freshness check for a pure-HB tier's relation clocks."""
        if not cls._clocks_initial(analysis.cc):
            return False
        for attr in ("_vol_w", "_vol_r", "_cls", "_lock_clock"):
            if getattr(analysis, attr, None):
                return False
        return True

    # -- chunked per-analysis replay ---------------------------------------
    def _replay(self, entry: EngineEntry, indices, kinds, tids, targets,
                sites, n: int) -> None:
        """Replay one decoded chunk through one (non-grouped) analysis.

        ``indices`` holds each record's global event index (records are
        not contiguous when the shared same-epoch filter dropped events);
        the islice bounds the zip to the ``n`` live slots of the
        preallocated buffers.
        """
        table = entry.analysis.dispatch_table()
        sample_every = self.sample_every
        bounded = islice(indices, n)
        if sample_every:
            analysis = entry.analysis
            peak = entry.peak
            for j, k, t, x, s in zip(bounded, kinds, tids, targets, sites):
                table[k](t, x, j, s)
                if j % sample_every == 0:
                    fp = analysis.footprint_bytes()
                    if fp > peak:
                        peak = fp
            entry.peak = peak
        else:
            for j, k, t, x, s in zip(bounded, kinds, tids, targets, sites):
                table[k](t, x, j, s)

    # -- fused shared-HB group replay --------------------------------------
    def _replay_group(self, bank: SharedHBClocks, members: List[EngineEntry],
                      indices, kinds, tids, targets, sites, n: int) -> None:
        """Replay one decoded chunk through a shared-clock group.

        Data accesses (kinds 0/1) never change the shared bank, so
        maximal *access runs* replay through each member in turn with a
        tight per-member loop (chunked-replay speed).  Synchronization
        records are fused per event: every member's handler first (each
        reading the pre-event bank state), then the bank's single
        transition.  Failures are handled inline: a member whose handler
        (or footprint sampler) raises is detached on the spot and the
        survivors plus the bank continue; if the bank's own transition
        raises, the shared state is unusable and the whole group fails.
        """
        sample_every = self.sample_every
        bank_table = bank.dispatch_table()
        tables = [e.analysis.dispatch_table() for e in members]
        off = 0
        while off < n and members:
            k = kinds[off]
            if k <= 1:
                run_end = off + 1
                while run_end < n and kinds[run_end] <= 1:
                    run_end += 1
                mi = 0
                while mi < len(tables):
                    tbl = tables[mi]
                    try:
                        if sample_every:
                            entry = members[mi]
                            analysis = entry.analysis
                            for o in range(off, run_end):
                                j = indices[o]
                                tbl[kinds[o]](tids[o], targets[o], j,
                                              sites[o])
                                if j % sample_every == 0:
                                    fp = analysis.footprint_bytes()
                                    if fp > entry.peak:
                                        entry.peak = fp
                        else:
                            for o in range(off, run_end):
                                tbl[kinds[o]](tids[o], targets[o],
                                              indices[o], sites[o])
                    except Exception as exc:  # detach this member
                        self._detach(bank, members, tables, mi,
                                     indices[o], exc)
                        continue
                    mi += 1
                off = run_end
            else:
                j = indices[off]
                t = tids[off]
                x = targets[off]
                s = sites[off]
                mi = 0
                while mi < len(tables):
                    try:
                        tables[mi][k](t, x, j, s)
                    except Exception as exc:  # detach this member
                        self._detach(bank, members, tables, mi, j, exc)
                        continue
                    mi += 1
                if members:
                    try:
                        bank_table[k](t, x, j, s)
                    except Exception as exc:
                        # the shared transition failed: no member's view
                        # can be trusted any more — the group fails
                        while members:
                            self._detach(bank, members, tables, 0, j, exc)
                        return
                if sample_every and j % sample_every == 0:
                    mi = 0
                    while mi < len(tables):
                        entry = members[mi]
                        try:
                            fp = entry.analysis.footprint_bytes()
                        except Exception as exc:  # detach this member
                            self._detach(bank, members, tables, mi, j, exc)
                            continue
                        if fp > entry.peak:
                            entry.peak = fp
                        mi += 1
                off += 1

    @staticmethod
    def _detach(bank: SharedHBClocks, members: List[EngineEntry], tables,
                mi: int, event_index: int, exc: BaseException) -> None:
        """Record a group member's failure and drop it from the pass."""
        entry = members[mi]
        entry.failure = AnalysisFailure(entry.name, event_index, exc)
        del members[mi]
        del tables[mi]
        bank.drop()

    # -- failure localization ----------------------------------------------
    @staticmethod
    def _failure_index(exc: BaseException) -> int:
        """The event index a chunked replay failure happened at, recovered
        from the ``_replay`` frame — or a batch kernel's ordered-walk
        frame — in the traceback (the per-record loops are kept free of
        bookkeeping; the frame's ``j`` local is the index).  A failure in
        a kernel's vector phase has no per-event frame and reports -1."""
        codes = {MultiRunner._replay.__code__}
        try:
            from repro.core import kernels

            codes |= kernels.WALK_CODES
        except Exception:  # pragma: no cover - defensive
            pass
        tb = exc.__traceback__
        while tb is not None:
            if tb.tb_frame.f_code in codes:
                return tb.tb_frame.f_locals.get("j", -1)
            tb = tb.tb_next
        return -1

    # -- driving -----------------------------------------------------------
    def session(self) -> EngineSession:
        """Open an incremental session over these analyses.

        The session accepts the event stream in arbitrary installments
        (:meth:`EngineSession.feed`), reports new races per installment,
        and is sealed with :meth:`EngineSession.finish` — see
        :class:`EngineSession`.  Only one session may be open at a time
        (the analyses' mutable state is shared); :meth:`finish` (or
        :meth:`EngineSession.close`) releases the runner for the next
        one.  Shared-HB groups are formed on the first session, exactly
        as the one-shot :meth:`run` forms them.

        Example (drain a live source in bounded windows)::

            runner = MultiRunner([create(n, info) for n in names])
            session = runner.session()
            for name, race in session.drain(source, window=256):
                print(name, race.index)     # the moment it is found
            result = session.finish()       # identical to one run()
        """
        if self._session_open:
            raise RuntimeError(
                "another engine session over these analyses is still "
                "open; finish() or close() it first")
        if not self._groups_formed:
            self._attach_kernels()
            if self._share_hb:
                self._form_hb_groups()
        self._groups_formed = True
        self._session_open = True
        return EngineSession(self)

    @classmethod
    def restore_checkpoint(cls, fp) -> EngineSession:
        """Rebuild a runner from a checkpoint written by
        :meth:`EngineSession.save_checkpoint` and return its open
        session, positioned to :meth:`~EngineSession.feed` the event
        suffix from the checkpoint's ``events_processed`` offset
        onwards.  Thin wrapper over
        :func:`repro.checkpoint.restore_session`."""
        from repro.checkpoint import restore_session

        return restore_session(fp)

    def run(self, events: Union[Trace, Iterable[Event]]) -> MultiResult:
        """Feed one iteration of ``events`` to every analysis.

        ``events`` may be a :class:`Trace` or any iterable of events —
        including a one-shot generator; the engine never rewinds it.  An
        analysis whose handler raises is detached (its
        :class:`AnalysisFailure` records the event index); the others are
        unaffected.  Equivalent to one-installment use of
        :meth:`session`.
        """
        session = self.session()
        try:
            session.feed(events)
        except BaseException:
            # a failed *source* (not analysis) aborts the pass with no
            # reports, as it always did; release the runner for a retry
            session.close()
            raise
        return session.finish()


def run_analyses(trace: Union[Trace, TraceInfo], names: Sequence[str],
                 events: Optional[Iterable[Event]] = None,
                 sample_every: int = 0,
                 progress: Optional[Callable[[int], None]] = None) -> MultiResult:
    """Instantiate registry analyses and run them in one pass.

    ``trace`` supplies the dimensions (and, when it is a full
    :class:`Trace` and ``events`` is omitted, the event source).  Pass a
    :class:`TraceInfo` plus an ``events`` iterable for the streaming path.
    """
    if events is None:
        if not isinstance(trace, Trace):
            raise TypeError(
                "run_analyses needs an events iterable when given only "
                "trace dimensions (TraceInfo)")
        events = trace.events
    analyses = [create(name, trace) for name in names]
    runner = MultiRunner(analyses, sample_every=sample_every,
                         progress=progress)
    return runner.run(events)


def run_stream(source, names: Sequence[str], sample_every: int = 0,
               progress: Optional[Callable[[int], None]] = None,
               window_events: int = 0, workers: int = 1,
               evict_window: int = 0) -> MultiResult:
    """Analyze a trace file (or open handle) in one streaming pass.

    The trace — v1 text or v2 binary, autodetected from the leading
    bytes — is parsed lazily, so this is the bounded-memory path for
    large captures.  The file must declare its dimensions up front (the
    ``# repro trace v1`` header or the always-present v2 binary header,
    both written by :func:`repro.trace.format.dump_trace`);
    :class:`repro.trace.format.TraceFormatError` is raised otherwise.

    ``window_events`` > 0 drains the stream through an incremental
    session in bounded windows — exactly how a live ``repro serve``
    loop consumes a socket — instead of one uninterrupted feed.
    Reports are identical either way; the knob exists to measure the
    online path against the one-shot pass on the same capture.

    ``workers`` > 1 shards the analyses across that many worker
    processes (:class:`repro.core.parallel.ParallelRunner`): the parent
    still parses the file exactly once, and the merged reports are
    bit-identical to the in-process pass.  ``progress`` is not
    supported on the sharded path.

    ``evict_window`` > 0 turns on the engine's bounded-window mode
    (``MultiRunner(window_events=...)``): per-variable metadata older
    than that many events is aged out, trading long-range races for
    bounded state.  Distinct from ``window_events``, which only sets
    the drain granularity and never changes reports.
    """
    from repro.trace.format import stream_trace

    if workers > 1:
        from repro.core.parallel import run_parallel

        return run_parallel(source, names, workers=workers,
                            sample_every=sample_every,
                            window_events=window_events,
                            evict_window=evict_window)
    stream = stream_trace(source)
    info = stream.require_info()
    evict = evict_window if evict_window > 0 else None
    if window_events > 0:
        runner = MultiRunner([create(name, info) for name in names],
                             sample_every=sample_every, progress=progress,
                             window_events=evict)
        session = runner.session()
        for _ in session.drain(stream, window=window_events):
            pass
        return session.finish()
    analyses = [create(name, info) for name in names]
    runner = MultiRunner(analyses, sample_every=sample_every,
                         progress=progress, window_events=evict)
    return runner.run(stream)
