"""Single-pass multi-analysis engine.

The paper's deployment story (§4.3, "always-on" predictive detection)
wants many analysis configurations applied to *one* observed execution.
Re-running each analysis over the trace costs ``O(analyses × events)``
iterations and requires the trace to be materialized up front.
:class:`MultiRunner` instead drives one iteration of the event stream and
feeds every registered analysis from it:

* **one pass** — the event source is iterated exactly once and is never
  rewound, so it can be a generator (e.g. a
  :class:`~repro.trace.format.TraceStream` parsing a multi-gigabyte
  capture lazily) and the engine runs in memory bounded by analysis
  metadata, not trace length;
* **precompiled dispatch, chunked replay** — each analysis exposes a
  per-event-kind table of bound handlers
  (:meth:`repro.core.base.Analysis.dispatch_table`); the engine decodes
  each event once into a bounded chunk of records and replays the chunk
  through every table in turn (decode cost is paid once per event, not
  once per (event, analysis) pair, and each analysis' code and metadata
  stay cache-hot during its replay);
* **error isolation** — an analysis whose handler raises is detached and
  recorded as a :class:`AnalysisFailure`; the remaining analyses are
  unaffected and still produce reports;
* **shared sampling** — footprint peaks and progress callbacks are
  sampled once per cadence for all analyses, at the same event indices
  :meth:`Analysis.run` would use, so peaks are comparable across paths.

Analyses are ordinary instances; two instances of the *same* analysis can
run side by side (each owns all of its mutable state — the dispatch-table
contract in :mod:`repro.core.base`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.base import Analysis, HANDLER_NAMES, RaceReport
from repro.core.registry import create
from repro.trace.event import Event
from repro.trace.trace import Trace, TraceInfo

NUM_KINDS = len(HANDLER_NAMES)


class AnalysisFailure:
    """One detached analysis: the error and the event that triggered it."""

    __slots__ = ("name", "event_index", "error")

    def __init__(self, name: str, event_index: int, error: BaseException):
        self.name = name
        self.event_index = event_index
        self.error = error

    def __repr__(self) -> str:
        return "AnalysisFailure({} at event {}: {!r})".format(
            self.name, self.event_index, self.error)


class EngineEntry:
    """Per-analysis slot in a :class:`MultiResult`."""

    __slots__ = ("analysis", "report", "failure", "peak")

    def __init__(self, analysis: Analysis):
        self.analysis = analysis
        self.report: Optional[RaceReport] = None
        self.failure: Optional[AnalysisFailure] = None
        self.peak = 0

    @property
    def name(self) -> str:
        return self.analysis.name

    @property
    def ok(self) -> bool:
        return self.failure is None


class MultiResult:
    """The outcome of one :class:`MultiRunner` pass.

    ``entries`` is ordered like the registered analyses (two instances of
    the same analysis keep distinct entries).  ``reports`` is a by-name
    convenience for the common all-distinct case (first instance wins).
    """

    def __init__(self, entries: List[EngineEntry], events_processed: int):
        self.entries = entries
        self.events_processed = events_processed

    @property
    def reports(self) -> Dict[str, RaceReport]:
        out: Dict[str, RaceReport] = {}
        for entry in self.entries:
            if entry.report is not None and entry.name not in out:
                out[entry.name] = entry.report
        return out

    @property
    def failures(self) -> List[AnalysisFailure]:
        return [e.failure for e in self.entries if e.failure is not None]

    @property
    def ok(self) -> bool:
        return not self.failures

    def report(self, name: str) -> RaceReport:
        """The (first) report of the named analysis; raises KeyError if it
        failed or was never registered."""
        for entry in self.entries:
            if entry.name == name and entry.report is not None:
                return entry.report
        raise KeyError(name)

    def __repr__(self) -> str:
        return "MultiResult({} analyses over {} events, {} failed)".format(
            len(self.entries), self.events_processed, len(self.failures))


class MultiRunner:
    """Drive N analyses over one iteration of an event stream.

    The engine works in *chunks*: it drains a bounded batch of events from
    the source, decoding each event exactly once into ``(index, kind, tid,
    target, site)`` records, and then replays the batch through each
    analysis' precompiled dispatch table in turn.  Chunked replay keeps
    each analysis' handler code and metadata hot in caches (interleaving
    N analyses per event thrashes CPython's inline caches when analyses
    share code objects), costs one decode per event instead of one per
    (event, analysis) pair, and is the natural substrate for sharding
    batches across workers later.  The source itself is still iterated
    exactly once and never rewound, so memory stays bounded by the chunk
    size plus analysis metadata.

    Parameters
    ----------
    analyses:
        Analysis instances (not names); construct via
        :func:`repro.core.registry.create` with a shared
        :class:`Trace`/:class:`TraceInfo`.
    sample_every:
        > 0 samples every analysis' metadata footprint at that cadence
        (same event indices as :meth:`Analysis.run`, so peaks are
        comparable across paths), recording per-analysis peaks.
    progress:
        Optional callback invoked as ``progress(events_seen)`` after each
        chunk (shared across all analyses).
    chunk_events:
        Batch size; the engine's extra memory is one decoded record per
        chunk slot.
    """

    def __init__(self, analyses: Sequence[Analysis], sample_every: int = 0,
                 progress: Optional[Callable[[int], None]] = None,
                 chunk_events: int = 8192):
        if not analyses:
            raise ValueError("MultiRunner needs at least one analysis")
        self.entries = [EngineEntry(a) for a in analyses]
        self.sample_every = sample_every
        self.progress = progress
        self.chunk_events = max(chunk_events, 1)

    def _replay(self, entry: EngineEntry, chunk) -> None:
        """Replay one decoded chunk through one analysis."""
        table = entry.analysis.dispatch_table()
        sample_every = self.sample_every
        if sample_every:
            analysis = entry.analysis
            peak = entry.peak
            for j, k, t, x, s in chunk:
                table[k](t, x, j, s)
                if j % sample_every == 0:
                    fp = analysis.footprint_bytes()
                    if fp > peak:
                        peak = fp
            entry.peak = peak
        else:
            for j, k, t, x, s in chunk:
                table[k](t, x, j, s)

    @staticmethod
    def _failure_index(exc: BaseException) -> int:
        """The event index a replay failure happened at, recovered from
        the ``_replay`` frame in the traceback (the per-record loop is
        kept free of bookkeeping; the frame's ``j`` local is the index)."""
        tb = exc.__traceback__
        while tb is not None:
            if tb.tb_frame.f_code is MultiRunner._replay.__code__:
                return tb.tb_frame.f_locals.get("j", -1)
            tb = tb.tb_next
        return -1

    def run(self, events: Union[Trace, Iterable[Event]]) -> MultiResult:
        """Feed one iteration of ``events`` to every analysis.

        ``events`` may be a :class:`Trace` or any iterable of events —
        including a one-shot generator; the engine never rewinds it.  An
        analysis whose handler raises is detached (its
        :class:`AnalysisFailure` records the event index); the others are
        unaffected.
        """
        if isinstance(events, Trace):
            events = events.events
        live = list(self.entries)
        chunk_size = self.chunk_events
        progress = self.progress
        source = iter(events)
        i = -1
        exhausted = False
        while not exhausted:
            chunk = []
            append = chunk.append
            for e in source:
                i += 1
                append((i, e.kind, e.tid, e.target, e.site))
                if len(chunk) == chunk_size:
                    break
            else:
                exhausted = True
            if not chunk:
                break
            for entry in list(live):
                try:
                    self._replay(entry, chunk)
                except Exception as exc:  # isolate: detach this analysis
                    entry.failure = AnalysisFailure(
                        entry.name, self._failure_index(exc), exc)
                    live.remove(entry)
            if progress is not None:
                progress(i + 1)
        events_processed = i + 1
        for entry in live:
            entry.report = entry.analysis.finish(events_processed, entry.peak)
        return MultiResult(self.entries, events_processed)


def run_analyses(trace: Union[Trace, TraceInfo], names: Sequence[str],
                 events: Optional[Iterable[Event]] = None,
                 sample_every: int = 0,
                 progress: Optional[Callable[[int], None]] = None) -> MultiResult:
    """Instantiate registry analyses and run them in one pass.

    ``trace`` supplies the dimensions (and, when it is a full
    :class:`Trace` and ``events`` is omitted, the event source).  Pass a
    :class:`TraceInfo` plus an ``events`` iterable for the streaming path.
    """
    if events is None:
        if not isinstance(trace, Trace):
            raise TypeError(
                "run_analyses needs an events iterable when given only "
                "trace dimensions (TraceInfo)")
        events = trace.events
    analyses = [create(name, trace) for name in names]
    runner = MultiRunner(analyses, sample_every=sample_every,
                         progress=progress)
    return runner.run(events)


def run_stream(source, names: Sequence[str], sample_every: int = 0,
               progress: Optional[Callable[[int], None]] = None) -> MultiResult:
    """Analyze a trace file (or open handle) in one streaming pass.

    The trace — v1 text or v2 binary, autodetected from the leading
    bytes — is parsed lazily, so this is the bounded-memory path for
    large captures.  The file must declare its dimensions up front (the
    ``# repro trace v1`` header or the always-present v2 binary header,
    both written by :func:`repro.trace.format.dump_trace`);
    :class:`repro.trace.format.TraceFormatError` is raised otherwise.
    """
    from repro.trace.format import stream_trace

    stream = stream_trace(source)
    info = stream.require_info()
    return run_analyses(info, names, events=stream,
                        sample_every=sample_every, progress=progress)
