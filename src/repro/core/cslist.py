"""CS lists: SmartTrack's critical-section metadata (paper §4.2).

A CS list represents the logical release times of the critical sections
active at some access::

    ⟨⟨C1, m1⟩, ..., ⟨Cn, mn⟩⟩

innermost to outermost, where each ``Ci`` is a *reference* to a vector
clock holding the release time of the critical section on ``mi``.  The
release time is unknown while the critical section is open, so the clock is
allocated at the acquire with the owner's component set to ∞ (queries must
see "not yet ordered") and updated in place at the release — every CS list
sharing the reference observes the final time (Algorithm 3, lines 3–5 and
13–15).

Representation: each thread's active list ``H_t`` is a Python list used as
a stack with the *innermost* critical section last, so the paper's
tail-to-head (outermost-to-innermost) traversal is plain left-to-right
iteration.  Snapshots stored in ``L^w_x``/``L^r_x`` are tuples sharing the
entry objects (and therefore the clock references).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.clocks.vector_clock import INF, VectorClock

CS_ENTRY_BYTES = 32


class CSEntry:
    """One critical section: a shared release-clock reference and its lock."""

    __slots__ = ("clock", "lock")

    def __init__(self, clock: VectorClock, lock: int):
        self.clock = clock
        self.lock = lock

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CSEntry(lock={}, clock={})".format(self.lock, self.clock)


def open_entry(width: int, t: int, m: int) -> CSEntry:
    """Entry for a just-acquired critical section: release time unknown,
    owner component ∞ (Algorithm 3 lines 3–4)."""
    clock = VectorClock.zeros(width)
    clock[t] = INF
    return CSEntry(clock, m)


CSList = Tuple[CSEntry, ...]  # outermost first (tail-to-head order)

EMPTY: CSList = ()


def snapshot(stack: List[CSEntry]) -> CSList:
    """Freeze a thread's active stack into a shareable CS list."""
    return tuple(stack)
