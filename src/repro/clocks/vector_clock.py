"""Vector clocks (Mattern 1988) as used by the paper's analyses.

A vector clock ``C : Tid -> Val`` maps each thread to a non-negative integer
(paper §2.4).  The operations are pointwise comparison ``C1 ⊑ C2`` and
pointwise join ``C1 ⊔ C2``.

The implementation subclasses :class:`list` for speed: analyses perform a
join or comparison at nearly every event, and attribute indirection is the
dominant cost in pure Python.  All threads are known up front (the trace
declares ``num_threads``), so clocks are fixed-width.
"""

from __future__ import annotations

from typing import Iterable

#: Sentinel for "not yet released" critical-section release times
#: (SmartTrack initializes a critical section's release clock component to
#: infinity at the acquire; paper §4.2, Algorithm 3 line 4).
INF = 1 << 62


class VectorClock(list):
    """A fixed-width vector clock; component ``t`` is thread ``t``'s time.

    Instances are plain lists of ints, so the hot-path operations below can
    use direct indexing.  Width is the number of threads in the trace.
    """

    __slots__ = ()

    @classmethod
    def zeros(cls, width: int) -> "VectorClock":
        """A clock with every component 0."""
        return cls([0] * width)

    @classmethod
    def of(cls, values: Iterable[int]) -> "VectorClock":
        """A clock with the given component values (mainly for tests)."""
        return cls(values)

    def copy(self) -> "VectorClock":
        """An independent copy of this clock."""
        return VectorClock(self)

    def join(self, other: "VectorClock") -> None:
        """Pointwise join: ``self ← self ⊔ other`` (in place).

        Joining a clock with itself (by reference) is the identity; the
        shared-HB engine mode hands several analyses literally the same
        clock objects, so equal-reference joins are worth a pointer check.
        """
        if other is self:
            return
        i = 0
        for v in other:
            if v > self[i]:
                self[i] = v
            i += 1

    def joined(self, other: "VectorClock") -> "VectorClock":
        """Pointwise join returning a new clock: ``self ⊔ other``."""
        out = self.copy()
        out.join(other)
        return out

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise comparison ``self ⊑ other``."""
        if other is self:
            return True
        for a, b in zip(self, other):
            if a > b:
                return False
        return True

    def leq_except(self, other: "VectorClock", skip: int) -> bool:
        """``self ⊑ other`` ignoring component ``skip``.

        Race checks compare a last-access clock against the current thread's
        clock; the current thread's own component always passes because
        same-thread accesses are program-order ordered (conflicting accesses
        are cross-thread by definition, §2.2).  For WCP — which does not
        contain program order — skipping the own component is required for
        correctness, not just an optimization (see DESIGN.md §4).
        """
        if other is self:
            return True
        # enumerate + subscript measures faster here than zip + counter:
        # in the common all-ordered case the `and` arm short-circuits,
        # so a separate counter increment would dominate.
        for i, v in enumerate(self):
            if v > other[i] and i != skip:
                return False
        return True

    def assign(self, other: "VectorClock") -> None:
        """Overwrite this clock's components with ``other``'s (in place).

        Used to publish a release time through a shared reference
        (SmartTrack CS lists defer the release time update; Algorithm 3
        lines 13–14).
        """
        self[:] = other

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = ["inf" if v >= INF else str(v) for v in self]
        return "<" + ", ".join(parts) + ">"
