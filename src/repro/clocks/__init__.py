"""Logical clocks: vector clocks and epochs.

This subpackage provides the time representations used by every analysis in
the paper (§2.4, §4.1):

* :class:`~repro.clocks.vector_clock.VectorClock` — a map ``Tid -> Val``
  with pointwise join (``⊔``) and pointwise comparison (``⊑``).
* Epochs — scalars ``c@t`` packed into single ints
  (``c << TID_BITS | t``; see :mod:`repro.clocks.epoch` and DESIGN.md §1),
  with the ``e ⪯ C`` ordering check against a vector clock.
"""

from repro.clocks.epoch import (
    EPOCH_BOTTOM,
    MAX_TID,
    TID_BITS,
    TID_MASK,
    clock_of,
    epoch,
    epoch_leq,
    pack,
    tid_of,
)
from repro.clocks.vector_clock import INF, VectorClock

__all__ = [
    "EPOCH_BOTTOM",
    "INF",
    "MAX_TID",
    "TID_BITS",
    "TID_MASK",
    "VectorClock",
    "clock_of",
    "epoch",
    "epoch_leq",
    "pack",
    "tid_of",
]
