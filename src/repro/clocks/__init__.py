"""Logical clocks: vector clocks and epochs.

This subpackage provides the time representations used by every analysis in
the paper (§2.4, §4.1):

* :class:`~repro.clocks.vector_clock.VectorClock` — a map ``Tid -> Val``
  with pointwise join (``⊔``) and pointwise comparison (``⊑``).
* Epochs — scalars ``c@t`` represented as ``(c, t)`` tuples, with the
  ``e ⪯ C`` ordering check against a vector clock.
"""

from repro.clocks.epoch import (
    EPOCH_BOTTOM,
    clock_of,
    epoch,
    epoch_leq,
    tid_of,
)
from repro.clocks.vector_clock import INF, VectorClock

__all__ = [
    "EPOCH_BOTTOM",
    "INF",
    "VectorClock",
    "clock_of",
    "epoch",
    "epoch_leq",
    "tid_of",
]
