"""Epochs: the scalar last-access representation ``c@t`` (paper §4.1).

An epoch pairs an integer clock value ``c`` with the thread ``t`` that
performed the access.  FastTrack's insight is that a single epoch usually
suffices to represent the last write (and often the last read) to a
variable, replacing an O(T) vector clock with an O(1) scalar.

Epochs are *packed integers*: ``c@t`` is ``c << TID_BITS | t``.  A packed
epoch is one ``int`` — no tuple allocation per access, same-epoch checks
are a single ``==`` against the current thread's packed epoch, and the
components unpack with a shift and a mask.  ``TID_BITS`` fixes the thread
namespace at 2**16 ids; traces declare their thread count up front, and
:class:`~repro.core.base.VectorClockAnalysis` rejects dimensions that do
not fit (``MAX_TID``).  The uninitialized epoch ``⊥e`` stays
:data:`EPOCH_BOTTOM` (``None``), which compares as "ordered before
everything".
"""

from __future__ import annotations

from typing import Optional

from repro.clocks.vector_clock import VectorClock

#: Bits of a packed epoch reserved for the thread id.
TID_BITS = 16

#: Mask extracting the thread id from a packed epoch.
TID_MASK = (1 << TID_BITS) - 1

#: Largest representable thread id (traces must fit their tids in it).
MAX_TID = TID_MASK

Epoch = int

#: The uninitialized epoch ``⊥e``.
EPOCH_BOTTOM: Optional[Epoch] = None


def pack(clock: int, tid: int) -> Epoch:
    """Pack the epoch ``clock@tid`` into a single int."""
    return clock << TID_BITS | tid


#: Alias kept for the original constructor name.
epoch = pack


def clock_of(e: Epoch) -> int:
    """The clock component ``c`` of ``c@t``."""
    return e >> TID_BITS


def tid_of(e: Epoch) -> int:
    """The thread component ``t`` of ``c@t``."""
    return e & TID_MASK


def epoch_leq(e: Optional[Epoch], vc: VectorClock, self_tid: int) -> bool:
    """The ordering check ``e ⪯ C`` of paper §4.1.

    ``c@t ⪯ C`` evaluates ``c ≤ C(t)``.  ``⊥e`` is before everything.
    The accessing thread's own component auto-passes (``t == self_tid``):
    same-thread events are program-order ordered and, for WCP, the clock's
    own component intentionally does not carry the local time (DESIGN.md §4).
    """
    if e is None:
        return True
    t = e & TID_MASK
    return t == self_tid or (e >> TID_BITS) <= vc[t]


# -- packed last-access columns (batch kernels, DESIGN.md §8) ---------------
#
# The epoch tiers keep their per-variable last-access metadata in flat
# ``array('q')`` columns so the engine's batch kernels can gather/compare
# whole chunks at once.  A column slot holds either a packed epoch (>= 0)
# or one of these negative sentinels; anything a scalar can't represent
# (a read vector clock) lives in a side dict keyed by variable.

#: Column sentinel for the uninitialized epoch ``⊥e`` (dict-era ``None``).
PACKED_BOTTOM = -1

#: Column sentinel: the read metadata is a VectorClock held in the
#: analysis' ``_read_vc`` side dict.
META_VC = -2

#: Column sentinel: FastTrack2's [Write Shared] reset the read metadata
#: to bottom.  Distinct from :data:`PACKED_BOTTOM` only for footprint
#: accounting (a reset slot was a live dict entry in the scalar era).
META_RESET = -3


def packed_epoch_leq(e: Optional[int], vc: VectorClock, self_tid: int) -> bool:
    """:func:`epoch_leq` over a packed *column* value.

    Accepts the column sentinels: any negative value (and ``None``, for
    callers mixing packed and optional epochs) is ``⊥e`` — before
    everything.
    """
    if e is None or e < 0:
        return True
    t = e & TID_MASK
    return t == self_tid or (e >> TID_BITS) <= vc[t]
