"""Epochs: the scalar last-access representation ``c@t`` (paper §4.1).

An epoch pairs an integer clock value ``c`` with the thread ``t`` that
performed the access.  FastTrack's insight is that a single epoch usually
suffices to represent the last write (and often the last read) to a
variable, replacing an O(T) vector clock with an O(1) scalar.

Epochs are represented as ``(c, t)`` tuples.  The uninitialized epoch ``⊥e``
is :data:`EPOCH_BOTTOM` (``None``), which compares as "ordered before
everything".
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.clocks.vector_clock import VectorClock

Epoch = Tuple[int, int]

#: The uninitialized epoch ``⊥e``.
EPOCH_BOTTOM: Optional[Epoch] = None


def epoch(clock: int, tid: int) -> Epoch:
    """Build the epoch ``clock@tid``."""
    return (clock, tid)


def clock_of(e: Epoch) -> int:
    """The clock component ``c`` of ``c@t``."""
    return e[0]


def tid_of(e: Epoch) -> int:
    """The thread component ``t`` of ``c@t``."""
    return e[1]


def epoch_leq(e: Optional[Epoch], vc: VectorClock, self_tid: int) -> bool:
    """The ordering check ``e ⪯ C`` of paper §4.1.

    ``c@t ⪯ C`` evaluates ``c ≤ C(t)``.  ``⊥e`` is before everything.
    The accessing thread's own component auto-passes (``t == self_tid``):
    same-thread events are program-order ordered and, for WCP, the clock's
    own component intentionally does not carry the local time (DESIGN.md §4).
    """
    if e is None:
        return True
    c, t = e
    return t == self_tid or c <= vc[t]
