"""Executable specification of the paper's relations and of predictable races.

* :mod:`repro.oracle.closure` computes the HB, WCP, DC, and WDC relations of
  a (small) trace by explicit fixpoint, directly from their definitions
  (paper §2.3, §2.4, Definition 1, §3).
* :mod:`repro.oracle.predictable` exhaustively searches for a predicted
  trace witnessing a race (paper §2.2), giving ground truth for
  "predictable race" on tiny traces.

These exist to differentially test the optimized online analyses; they are
quadratic (or worse) in trace length by design.
"""

from repro.oracle.closure import RelationClosure, compute_closure, race_pairs, racy_vars
from repro.oracle.predictable import (
    check_predicted_trace,
    find_witness,
    has_predictable_race,
    predictable_race_pairs,
    search_witness,
)

__all__ = [
    "RelationClosure",
    "check_predicted_trace",
    "compute_closure",
    "find_witness",
    "has_predictable_race",
    "predictable_race_pairs",
    "race_pairs",
    "racy_vars",
    "search_witness",
]
