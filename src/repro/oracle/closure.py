"""Reference (oracle) computation of the HB, WCP, DC, and WDC relations.

This module computes, for every pair of events in a trace, whether they are
ordered by a given relation — by explicit fixpoint directly over the
relation definitions (paper §2.3, §2.4 Definition 1, §3).  It is the
executable specification the optimized online analyses are tested against.

Representation: boolean "predecessor" matrices (numpy), where
``before[i, j]`` means event ``j`` is strictly ordered before event ``i``
(note the row is the *later* event; rows are predecessor bitsets).  All
relation edges point forward in trace order, so one forward pass per
fixpoint round suffices.

Relation recap:

* **HB**: PO ∪ (release → later acquire, same lock) ∪ hard edges, closed
  transitively.
* **WDC**: PO ∪ hard edges ∪ rule (a) edges (release of a critical section
  → conflicting event in a later critical section on the same lock), closed
  transitively.
* **DC**: WDC plus rule (b): releases on the same lock become ordered when
  the earlier critical section's acquire is ordered before the later
  release.  Rule (b) is conditional, so DC needs an outer fixpoint.
* **WCP**: rule (a) edges with HB composition on both sides plus rule (b);
  WCP itself contains neither PO nor release–acquire edges (that is why an
  HB-ordered pair can still be a WCP-race, Figure 1).

"Hard" edges — thread fork/join, conflicting volatile accesses, and class
initialization — establish order in *every* analysis (paper §5.1), so they
participate in all four relations (for WCP: with the source event itself
included, unlike plain HB edges, which only carry WCP knowledge).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

try:  # optional: the [oracle] extra; a pure-Python fallback covers absence
    import os as _os
    if _os.environ.get("REPRO_NO_NUMPY"):  # same knob the kernels honor
        raise ImportError("REPRO_NO_NUMPY set")
    import numpy as np
except ImportError:  # also exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from repro.trace.event import (
    ACQUIRE,
    FORK,
    JOIN,
    READ,
    RELEASE,
    STATIC_ACCESS,
    STATIC_INIT,
    VOLATILE_READ,
    VOLATILE_WRITE,
    WRITE,
)
from repro.trace.trace import Trace

RELATIONS = ("hb", "sp", "wcp", "dc", "wdc")


class CriticalSection(NamedTuple):
    """A critical section on some lock: events by one thread between an
    acquire and its matching release (release index is None while open)."""

    tid: int
    lock: int
    acq: int
    rel: Optional[int]
    reads: Dict[int, List[int]]  # var -> access event indices (reads)
    writes: Dict[int, List[int]]  # var -> access event indices (writes)


def _critical_sections(trace: Trace) -> Dict[int, List[CriticalSection]]:
    """All critical sections per lock, in trace order, including nesting.

    An access inside nested critical sections belongs to every enclosing
    critical section (rule (a) applies per lock).
    """
    open_cs: Dict[Tuple[int, int], CriticalSection] = {}
    per_lock: Dict[int, List[CriticalSection]] = {}
    held: Dict[int, List[int]] = {}
    for i, e in enumerate(trace.events):
        t = e.tid
        if e.kind == ACQUIRE:
            cs = CriticalSection(t, e.target, i, None, {}, {})
            open_cs[(t, e.target)] = cs
            held.setdefault(t, []).append(e.target)
        elif e.kind == RELEASE:
            cs = open_cs.pop((t, e.target))
            held[t].remove(e.target)
            per_lock.setdefault(e.target, []).append(cs._replace(rel=i))
        elif e.kind in (READ, WRITE):
            for m in held.get(t, ()):  # record in every enclosing CS
                cs = open_cs[(t, m)]
                bucket = cs.writes if e.kind == WRITE else cs.reads
                bucket.setdefault(e.target, []).append(i)
    # Open critical sections at trace end: they can be the *second* critical
    # section of rule (a) (their accesses get ordered after earlier
    # releases) but never the first (there is no release event), matching
    # the online analyses, which join at accesses and publish at releases.
    for cs in open_cs.values():
        per_lock.setdefault(cs.lock, []).append(cs)
    for sections in per_lock.values():
        sections.sort(key=lambda cs: cs.acq)
    return per_lock


def _conflicting_access_targets(first: CriticalSection, second: CriticalSection) -> List[int]:
    """Event indices in ``second`` that conflict with some event in ``first``."""
    if first.tid == second.tid:
        return []
    out: Set[int] = set()
    for var, writes in first.writes.items():
        if writes:
            out.update(second.writes.get(var, ()))
            out.update(second.reads.get(var, ()))
    for var, reads in first.reads.items():
        if reads:
            out.update(second.writes.get(var, ()))
    return sorted(out)


def _rule_a_edges(trace: Trace) -> List[Tuple[int, int]]:
    """Rule (a) base edges: (release of first CS) -> conflicting event."""
    edges: List[Tuple[int, int]] = []
    for sections in _critical_sections(trace).values():
        for i, first in enumerate(sections):
            if first.rel is None:
                continue
            for second in sections[i + 1:]:
                for target in _conflicting_access_targets(first, second):
                    edges.append((first.rel, target))
    return edges


def _hard_edges(trace: Trace) -> List[Tuple[int, int]]:
    """Fork/join, conflicting-volatile, and class-init edges (§5.1)."""
    edges: List[Tuple[int, int]] = []
    first_of: Dict[int, int] = {}
    last_of: Dict[int, int] = {}
    for i, e in enumerate(trace.events):
        if e.tid not in first_of:
            first_of[e.tid] = i
        last_of[e.tid] = i
    vol_writes: Dict[int, List[int]] = {}
    vol_reads: Dict[int, List[int]] = {}
    inits: Dict[int, List[int]] = {}
    for i, e in enumerate(trace.events):
        if e.kind == FORK:
            child = e.target
            if child in first_of and first_of[child] > i:
                edges.append((i, first_of[child]))
        elif e.kind == JOIN:
            child = e.target
            if child in last_of and last_of[child] < i:
                edges.append((last_of[child], i))
        elif e.kind == VOLATILE_WRITE:
            v = e.target
            for j in vol_writes.get(v, ()):
                edges.append((j, i))
            for j in vol_reads.get(v, ()):
                edges.append((j, i))
            vol_writes.setdefault(v, []).append(i)
        elif e.kind == VOLATILE_READ:
            v = e.target
            for j in vol_writes.get(v, ()):
                edges.append((j, i))
            vol_reads.setdefault(v, []).append(i)
        elif e.kind == STATIC_INIT:
            inits.setdefault(e.target, []).append(i)
        elif e.kind == STATIC_ACCESS:
            for j in inits.get(e.target, ()):
                edges.append((j, i))
    return edges


def _po_edges(trace: Trace) -> List[Tuple[int, int]]:
    edges: List[Tuple[int, int]] = []
    last: Dict[int, int] = {}
    for i, e in enumerate(trace.events):
        if e.tid in last:
            edges.append((last[e.tid], i))
        last[e.tid] = i
    return edges


def _rel_acq_edges(trace: Trace) -> List[Tuple[int, int]]:
    """HB release→acquire edges (consecutive per lock; closure fills rest)."""
    edges: List[Tuple[int, int]] = []
    last_rel: Dict[int, int] = {}
    for i, e in enumerate(trace.events):
        if e.kind == RELEASE:
            last_rel[e.target] = i
        elif e.kind == ACQUIRE and e.target in last_rel:
            edges.append((last_rel[e.target], i))
    return edges


class _BitMatrix:
    """Pure-Python predecessor matrix: one arbitrary-width int bitset per
    row (bit ``j`` of ``rows[i]`` ⇔ ``before[i, j]``).  Supports exactly
    the reads the closure consumers perform: ``before[i, j]``."""

    __slots__ = ("rows",)

    def __init__(self, rows: List[int]):
        self.rows = rows

    def __getitem__(self, key: Tuple[int, int]) -> bool:
        i, j = key
        return bool((self.rows[i] >> j) & 1)


def _edge_maps(carry_edges, include_edges):
    carry: Dict[int, List[int]] = {}
    include: Dict[int, List[int]] = {}
    for j, i in carry_edges:
        carry.setdefault(i, []).append(j)
    for j, i in include_edges:
        include.setdefault(i, []).append(j)
    return carry, include


def _forward_closure(n: int, carry_edges: Sequence[Tuple[int, int]],
                     include_edges: Sequence[Tuple[int, int]]) -> "np.ndarray":
    """Single forward pass computing predecessor bitsets.

    ``carry_edges`` (j, i) propagate j's predecessor set to i *without*
    including j itself; ``include_edges`` also include j.  All edges must
    point forward in trace order.
    """
    carry, include = _edge_maps(carry_edges, include_edges)
    if np is None:
        rows = [0] * n
        for i in range(n):
            r = rows[i]
            for j in carry.get(i, ()):
                r |= rows[j]
            for j in include.get(i, ()):
                r |= rows[j] | (1 << j)
            rows[i] = r
        return _BitMatrix(rows)
    before = np.zeros((n, n), dtype=bool)
    for i in range(n):
        row = before[i]
        for j in carry.get(i, ()):
            np.logical_or(row, before[j], out=row)
        for j in include.get(i, ()):
            np.logical_or(row, before[j], out=row)
            row[j] = True
    return before


class RelationClosure:
    """The computed relation of one trace: ``closure.before[i, j]`` is True
    when event ``j`` is strictly ordered before event ``i``."""

    def __init__(self, trace: Trace, relation: str, before: np.ndarray):
        self.trace = trace
        self.relation = relation
        self.before = before

    def ordered(self, i: int, j: int) -> bool:
        """Is event ``min`` ordered before event ``max`` (either arg order)?"""
        if i == j:
            return False
        lo, hi = (i, j) if i < j else (j, i)
        return bool(self.before[hi, lo])


def compute_closure(trace: Trace, relation: str) -> RelationClosure:
    """Compute the given relation ("hb", "sp", "wcp", "dc", "wdc") of a trace."""
    if relation not in RELATIONS:
        raise ValueError("unknown relation {!r}".format(relation))
    n = len(trace)
    po = _po_edges(trace)
    hard = _hard_edges(trace)
    rel_acq = _rel_acq_edges(trace)
    rule_a = _rule_a_edges(trace)

    if relation == "hb":
        before = _forward_closure(n, [], po + hard + rel_acq)
        return RelationClosure(trace, relation, before)

    if relation == "wdc":
        before = _forward_closure(n, [], po + hard + rule_a)
        return RelationClosure(trace, relation, before)

    sections = _critical_sections(trace)

    # SP (sync-preserving; Mathur et al.): program order and hard edges,
    # plus *conditional* release→acquire edges per lock — rel1 orders
    # before a later acq2 of the same lock only once acq1 is already in
    # acq2's SP past (the acquiring thread observed the first critical
    # section, so no sync-preserving reordering can swap them).  A subset
    # of HB's unconditional rel→acq edges, so HB ⊆ SP on races.
    if relation == "sp":
        edges = list(po + hard)
        while True:
            before = _forward_closure(n, [], edges)
            added = _derive_sp_edges(sections, before, edges)
            if not added:
                return RelationClosure(trace, relation, before)

    if relation == "dc":
        edges = list(po + hard + rule_a)
        while True:
            before = _forward_closure(n, [], edges)
            added = _derive_rule_b(trace, sections, before, edges)
            if not added:
                return RelationClosure(trace, relation, before)

    # WCP: carry along HB edges (PO, rel-acq); rule (a)/(b) edges seed the
    # *HB* predecessor set of the release (left composition); hard edges
    # (fork/join/volatile/class-init) establish order in the relation
    # itself (§5.1), seeding the source's strong-program-order prefix —
    # PO plus hard edges, matching the online analyses' event clocks —
    # but *not* its full HB history (a lock-synchronized predecessor of a
    # volatile write is still reorderable, cf. Figure 1).
    hb = _forward_closure(n, [], po + hard + rel_acq)
    sp = _forward_closure(n, [], po + hard)
    base_edges = list(rule_a)
    carry = po + rel_acq
    while True:
        before = _wcp_forward(n, carry, base_edges, hard, hb, sp)
        added = _derive_rule_b(trace, sections, before, base_edges)
        if not added:
            return RelationClosure(trace, relation, before)


def _wcp_forward(n: int, carry: Sequence[Tuple[int, int]],
                 base_edges: Sequence[Tuple[int, int]],
                 hard_edges: Sequence[Tuple[int, int]],
                 hb: np.ndarray, sp: np.ndarray) -> np.ndarray:
    """Forward pass for WCP (see :func:`compute_closure` comments)."""
    carry_map: Dict[int, List[int]] = {}
    base_map: Dict[int, List[int]] = {}
    hard_map: Dict[int, List[int]] = {}
    for j, i in carry:
        carry_map.setdefault(i, []).append(j)
    for j, i in base_edges:
        base_map.setdefault(i, []).append(j)
    for j, i in hard_edges:
        hard_map.setdefault(i, []).append(j)
    if np is None:
        rows = [0] * n
        hb_rows = hb.rows
        sp_rows = sp.rows
        for i in range(n):
            r = rows[i]
            for j in carry_map.get(i, ()):
                r |= rows[j]
            for j in hard_map.get(i, ()):
                r |= sp_rows[j] | rows[j] | (1 << j)
            for j in base_map.get(i, ()):
                r |= hb_rows[j] | rows[j] | (1 << j)
            rows[i] = r
        return _BitMatrix(rows)
    before = np.zeros((n, n), dtype=bool)
    for i in range(n):
        row = before[i]
        for j in carry_map.get(i, ()):
            np.logical_or(row, before[j], out=row)
        for j in hard_map.get(i, ()):
            np.logical_or(row, sp[j], out=row)
            np.logical_or(row, before[j], out=row)
            row[j] = True
        for j in base_map.get(i, ()):
            np.logical_or(row, hb[j], out=row)
            np.logical_or(row, before[j], out=row)
            row[j] = True
    return before


def _derive_sp_edges(sections, before: np.ndarray,
                     edges: List[Tuple[int, int]]) -> bool:
    """Add SP edges rel1 -> acq2 (same lock) whose premise (acq1 ordered
    before acq2) holds under the current closure.  Returns True if any
    were new.  Same-thread pairs are skipped: program order already
    orders them, matching the online analyses' no-op self-joins."""
    existing = set(edges)
    added = False
    for cs_list in sections.values():
        for i, first in enumerate(cs_list):
            if first.rel is None:
                continue
            for second in cs_list[i + 1:]:
                if first.tid == second.tid:
                    continue
                if before[second.acq, first.acq]:
                    edge = (first.rel, second.acq)
                    if edge not in existing:
                        existing.add(edge)
                        edges.append(edge)
                        added = True
    return added


def _derive_rule_b(trace: Trace, sections, before: np.ndarray,
                   edges: List[Tuple[int, int]]) -> bool:
    """Add rule (b) edges rel1 -> rel2 whose premise (acq1 ordered before
    rel2) holds under the current closure.  Returns True if any were new."""
    existing = set(edges)
    added = False
    for cs_list in sections.values():
        for i, first in enumerate(cs_list):
            if first.rel is None:
                continue
            for second in cs_list[i + 1:]:
                if second.rel is None or first.tid == second.tid:
                    continue
                if before[second.rel, first.acq]:
                    edge = (first.rel, second.rel)
                    if edge not in existing:
                        existing.add(edge)
                        edges.append(edge)
                        added = True
    return added


def race_pairs(trace: Trace, closure: RelationClosure) -> List[Tuple[int, int]]:
    """All conflicting event pairs unordered by the closure's relation."""
    per_var: Dict[int, List[int]] = {}
    for i, e in enumerate(trace.events):
        if e.kind in (READ, WRITE):
            per_var.setdefault(e.target, []).append(i)
    races: List[Tuple[int, int]] = []
    events = trace.events
    for accesses in per_var.values():
        for a_pos, i in enumerate(accesses):
            ei = events[i]
            for j in accesses[a_pos + 1:]:
                ej = events[j]
                if ei.tid == ej.tid:
                    continue
                if ei.kind != WRITE and ej.kind != WRITE:
                    continue
                if not closure.before[j, i]:
                    races.append((i, j))
    return races


def racy_vars(trace: Trace, closure: RelationClosure) -> Set[int]:
    """The set of variables with at least one race under the relation."""
    return {trace.events[i].target for i, _ in race_pairs(trace, closure)}


def first_race(trace: Trace, closure: RelationClosure) -> Optional[Tuple[int, int]]:
    """The race pair whose *second* access is earliest in the trace.

    Online analyses detect a race at the second access of a racing pair;
    the earliest such second access is where any exact analysis must report
    its first dynamic race.
    """
    best: Optional[Tuple[int, int]] = None
    for i, j in race_pairs(trace, closure):
        if best is None or j < best[1] or (j == best[1] and i < best[0]):
            best = (i, j)
    return best
