"""Ground truth for predictable races: exhaustive predicted-trace search.

A trace ``tr`` has a *predictable race* if some predicted trace of ``tr``
contains conflicting events that are consecutive (paper §2.2).  A predicted
trace ``tr'``:

* contains only events of ``tr``,
* preserves ``tr``'s program order,
* gives every read the same last writer (or lack of one) as in ``tr``, and
* is well formed (obeys locking rules).

This module decides predictability *exactly* on small traces by exploring
all schedules over per-thread prefixes of the original trace, memoizing
visited states.  Per-thread prefixes (rather than arbitrary subsequences)
match the "correct reordering" formulations the paper builds on [Kini et
al. 2017; Roemer et al. 2018]: dropping an event a thread later depends on
cannot be justified by the observed execution.

Complexity is exponential; callers should keep traces under roughly 30
events (the paper's figures are all well within this).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.trace.event import (
    ACQUIRE,
    FORK,
    JOIN,
    READ,
    RELEASE,
    STATIC_ACCESS,
    STATIC_INIT,
    VOLATILE_READ,
    VOLATILE_WRITE,
    WRITE,
    Event,
    conflicts,
)
from repro.trace.trace import Trace

State = Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...]]


class _SearchSpace:
    """Precomputed per-thread event lists and read dependencies."""

    def __init__(self, trace: Trace):
        self.trace = trace
        self.events = trace.events
        self.by_thread: Dict[int, List[int]] = {}
        for i, e in enumerate(trace.events):
            self.by_thread.setdefault(e.tid, []).append(i)
        self.threads = sorted(self.by_thread)
        # Last writer (event index) of every read, or -1.
        self.last_writer: Dict[int, int] = {}
        last_w: Dict[Tuple[str, int], int] = {}
        for i, e in enumerate(trace.events):
            if e.kind == READ:
                self.last_writer[i] = last_w.get(("x", e.target), -1)
            elif e.kind == WRITE:
                last_w[("x", e.target)] = i
            elif e.kind == VOLATILE_READ:
                self.last_writer[i] = last_w.get(("v", e.target), -1)
            elif e.kind == VOLATILE_WRITE:
                last_w[("v", e.target)] = i
        # fork index of each thread (its events must wait for it), -1 if none
        self.fork_of: Dict[int, Tuple[int, int]] = {}
        for i, e in enumerate(trace.events):
            if e.kind == FORK:
                self.fork_of[e.target] = (e.tid, i)
        # class inits preceding each static access (conservative: all of them)
        self.inits_before: Dict[int, List[int]] = {}
        inits: Dict[int, List[int]] = {}
        for i, e in enumerate(trace.events):
            if e.kind == STATIC_INIT:
                inits.setdefault(e.target, []).append(i)
            elif e.kind == STATIC_ACCESS:
                self.inits_before[i] = list(inits.get(e.target, ()))


def _initial_state(space: _SearchSpace) -> State:
    return (tuple(0 for _ in space.threads), ())


def _is_scheduled(space: _SearchSpace, pointers: Sequence[int], event_index: int) -> bool:
    e = space.events[event_index]
    tpos = space.threads.index(e.tid)
    return event_index in space.by_thread[e.tid][: pointers[tpos]]


class _Scheduler:
    """Incremental schedule state: per-thread pointers, held locks, last
    writers of data and volatile variables, and the scheduled-event set."""

    def __init__(self, space: _SearchSpace):
        self.space = space
        self.pointers = [0] * len(space.threads)
        self.held: Dict[int, int] = {}
        self.lastw: Dict[Tuple[str, int], int] = {}
        self.scheduled: List[int] = []
        self.scheduled_set = set()

    def key(self) -> State:
        return (tuple(self.pointers), tuple(sorted(self.lastw.items())))

    def next_index(self, tpos: int) -> Optional[int]:
        tid = self.space.threads[tpos]
        events = self.space.by_thread[tid]
        p = self.pointers[tpos]
        return events[p] if p < len(events) else None

    def enabled(self, event_index: int) -> bool:
        """May this event be scheduled now, per predicted-trace rules?"""
        space = self.space
        e = space.events[event_index]
        fork = space.fork_of.get(e.tid)
        if fork is not None and fork[1] not in self.scheduled_set:
            return False
        k = e.kind
        if k == ACQUIRE:
            return e.target not in self.held
        if k == READ:
            return self.lastw.get(("x", e.target), -1) == space.last_writer[event_index]
        if k == VOLATILE_READ:
            return self.lastw.get(("v", e.target), -1) == space.last_writer[event_index]
        if k == JOIN:
            child_events = space.by_thread.get(e.target, [])
            return all(i in self.scheduled_set for i in child_events)
        if k == STATIC_ACCESS:
            return all(i in self.scheduled_set for i in space.inits_before[event_index])
        return True

    def push(self, tpos: int, event_index: int) -> Tuple:
        """Schedule the event; returns an undo token."""
        e = self.space.events[event_index]
        undo = (tpos, event_index, None)
        if e.kind == ACQUIRE:
            self.held[e.target] = e.tid
        elif e.kind == RELEASE:
            del self.held[e.target]
        elif e.kind == WRITE:
            undo = (tpos, event_index, ("x", e.target, self.lastw.get(("x", e.target))))
            self.lastw[("x", e.target)] = event_index
        elif e.kind == VOLATILE_WRITE:
            undo = (tpos, event_index, ("v", e.target, self.lastw.get(("v", e.target))))
            self.lastw[("v", e.target)] = event_index
        self.pointers[tpos] += 1
        self.scheduled.append(event_index)
        self.scheduled_set.add(event_index)
        return undo

    def pop(self, undo: Tuple) -> None:
        tpos, event_index, lw = undo
        e = self.space.events[event_index]
        if e.kind == ACQUIRE:
            del self.held[e.target]
        elif e.kind == RELEASE:
            self.held[e.target] = e.tid
        elif lw is not None:
            ns, target, previous = lw
            if previous is None:
                del self.lastw[(ns, target)]
            else:
                self.lastw[(ns, target)] = previous
        self.pointers[tpos] -= 1
        self.scheduled.pop()
        self.scheduled_set.remove(event_index)


def _race_order(space: "_SearchSpace", first: int,
                second: int) -> Optional[Tuple[int, int]]:
    """Order in which the racing pair can be placed adjacently.

    A read whose last writer is *not* the racing write must come before
    the write (so its last writer is unchanged); a read whose last writer
    *is* the racing write must come immediately after it (so it still
    reads that write).  Two writes can go either way; two reads never
    conflict.
    """
    events = space.events
    a, b = events[first], events[second]
    if a.kind == WRITE and b.kind == WRITE:
        return (first, second)
    if a.kind == READ and b.kind == WRITE:
        read, write = first, second
    elif a.kind == WRITE and b.kind == READ:
        read, write = second, first
    else:
        return None
    if space.last_writer.get(read, -1) == write:
        return (write, read)
    return (read, write)


def find_witness(trace: Trace, pair: Tuple[int, int],
                 max_states: int = 2_000_000) -> Optional[List[int]]:
    """Search for a predicted trace exposing a race between ``pair``.

    Returns the witness as a list of event indices of the original trace
    (the racing events adjacent at the end), or None if no witness exists
    within the state budget.
    """
    witness, _ = search_witness(trace, pair, max_states=max_states)
    return witness


def search_witness(trace: Trace, pair: Tuple[int, int],
                   max_states: int = 2_000_000) -> Tuple[Optional[List[int]], bool]:
    """Like :func:`find_witness`, also reporting completeness.

    Returns ``(witness, exhausted)``: ``exhausted`` is True when the whole
    reachable schedule space was explored, so a ``None`` witness is a proof
    that the pair is *not* a predictable race (used by vindication to
    refute false WDC-races such as Figure 3's).
    """
    first, second = pair
    if not conflicts(trace.events[first], trace.events[second]):
        return None, True
    space = _SearchSpace(trace)
    order = _race_order(space, first, second)
    if order is None:
        return None, True
    sched = _Scheduler(space)
    visited = set()
    budget = [max_states]

    tpos_of = {tid: k for k, tid in enumerate(space.threads)}
    target_first, target_second = order
    tp1 = tpos_of[trace.events[target_first].tid]
    tp2 = tpos_of[trace.events[target_second].tid]

    def at_goal() -> bool:
        if sched.next_index(tp1) != target_first:
            return False
        if sched.next_index(tp2) != target_second:
            return False
        # Scheduling them back-to-back must itself be legal.
        if not sched.enabled(target_first):
            return False
        undo = sched.push(tp1, target_first)
        ok = sched.enabled(target_second)
        sched.pop(undo)
        return ok

    # The racing events themselves are never scheduled during the search
    # (they must become the "next" events of their threads); the successful
    # prefix is collected into ``path`` while unwinding.
    path: List[int] = []

    def dfs_collect() -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        if at_goal():
            return True
        key = sched.key()
        if key in visited:
            return False
        visited.add(key)
        for tpos in range(len(space.threads)):
            idx = sched.next_index(tpos)
            if idx is None or idx in (target_first, target_second):
                continue
            if not sched.enabled(idx):
                continue
            undo = sched.push(tpos, idx)
            if dfs_collect():
                path.append(idx)
                sched.pop(undo)
                return True
            sched.pop(undo)
        return False

    if not dfs_collect():
        return None, budget[0] > 0
    path.reverse()
    return path + [target_first, target_second], True


def predictable_race_pairs(trace: Trace, pairs: Optional[Iterable[Tuple[int, int]]] = None,
                           max_states: int = 500_000) -> List[Tuple[int, int]]:
    """All conflicting pairs with a predicted-trace witness.

    ``pairs`` defaults to every conflicting pair of the trace.
    """
    if pairs is None:
        pairs = _conflicting_pairs(trace)
    out = []
    for pair in pairs:
        if find_witness(trace, pair, max_states=max_states) is not None:
            out.append(pair)
    return out


def has_predictable_race(trace: Trace, max_states: int = 500_000) -> bool:
    """Does any conflicting pair have a predicted-trace witness?"""
    for pair in _conflicting_pairs(trace):
        if find_witness(trace, pair, max_states=max_states) is not None:
            return True
    return False


def _conflicting_pairs(trace: Trace) -> List[Tuple[int, int]]:
    per_var: Dict[int, List[int]] = {}
    for i, e in enumerate(trace.events):
        if e.kind in (READ, WRITE):
            per_var.setdefault(e.target, []).append(i)
    pairs = []
    for accesses in per_var.values():
        for pos, i in enumerate(accesses):
            for j in accesses[pos + 1:]:
                if conflicts(trace.events[i], trace.events[j]):
                    pairs.append((i, j))
    return pairs


def check_predicted_trace(original: Trace, witness: Sequence[int],
                          require_race_pair: Optional[Tuple[int, int]] = None) -> bool:
    """Validate a candidate predicted trace (list of original event indices).

    Checks the §2.2 conditions: events come from the original trace (no
    duplicates), per-thread order is preserved, locking is well formed, and
    every read (data and volatile) has the same last writer as in the
    original.  If ``require_race_pair`` is given, additionally checks the
    two events are adjacent at the end.
    """
    if len(set(witness)) != len(witness):
        return False
    events = original.events
    space = _SearchSpace(original)
    positions: Dict[int, int] = {}
    for pos, idx in enumerate(witness):
        if not 0 <= idx < len(events):
            return False
        positions[idx] = pos
    # Program order preserved (subsequence per thread).
    last_pos: Dict[int, int] = {}
    last_idx: Dict[int, int] = {}
    for pos, idx in enumerate(witness):
        tid = events[idx].tid
        if tid in last_idx and idx < last_idx[tid]:
            return False
        last_idx[tid] = idx
        last_pos[tid] = pos
    # Locking + last-writer replay.
    held: Dict[int, int] = {}
    lastw: Dict[Tuple[str, int], int] = {}
    for idx in witness:
        e = events[idx]
        if e.kind == ACQUIRE:
            if e.target in held:
                return False
            held[e.target] = e.tid
        elif e.kind == RELEASE:
            if held.get(e.target) != e.tid:
                return False
            del held[e.target]
        elif e.kind == WRITE:
            lastw[("x", e.target)] = idx
        elif e.kind == VOLATILE_WRITE:
            lastw[("v", e.target)] = idx
        elif e.kind == READ:
            if lastw.get(("x", e.target), -1) != space.last_writer[idx]:
                return False
        elif e.kind == VOLATILE_READ:
            if lastw.get(("v", e.target), -1) != space.last_writer[idx]:
                return False
    if require_race_pair is not None:
        i, j = require_race_pair
        if i not in positions or j not in positions:
            return False
        if abs(positions[i] - positions[j]) != 1:
            return False
        if max(positions[i], positions[j]) != len(witness) - 1:
            return False
    return True
