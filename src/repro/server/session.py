"""One tenant's detection session inside a multi-tenant server.

A :class:`TenantSession` is the unit the server's registry holds: the
analysis state for one monitored program, living across any number of
producer connections.  The state machine is deliberately small::

            attach                    clean EOF (all events in)
    (new) ----------> ATTACHED ----------------------------> COMPLETE
              ^          |  feed error / clean EOF short of
              |          |  the declared total
              |          v
              +------ DETACHED --- resume grace expires ---> FAILED

A *detached* session is the whole point of the resume protocol: the
producer dropped (crash, network, redeploy) but the engine session — an
:class:`~repro.core.engine.EngineSession` or
:class:`~repro.core.parallel.ParallelSession` — keeps every analysis'
mid-stream state, and :attr:`events_acked` is the exact offset a
reconnecting producer must resend from.  Anonymous producers (no hello
frame) cannot be addressed again, so their clean EOF completes the
session and their error fails it immediately.

Thread model: the owning :class:`~repro.server.app.ServerApp` runs one
thread per connection.  ``lock`` guards the attach/detach state and the
metrics; the engine session itself is only ever driven by the single
thread that holds the attachment, so feeding needs no lock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterator, Optional

from repro.core.registry import create
from repro.trace.trace import TraceInfo

__all__ = [
    "ATTACHED",
    "COMPLETE",
    "DETACHED",
    "FAILED",
    "TenantSession",
]

#: A producer is connected and feeding.
ATTACHED = "attached"
#: No producer; the engine state is intact and awaiting a resume.
DETACHED = "detached"
#: All events analyzed; the final :class:`~repro.core.engine.MultiResult`
#: is sealed.
COMPLETE = "complete"
#: Sealed without reaching the declared total (feed error on an
#: anonymous producer, or the resume grace expired).
FAILED = "failed"

#: Parallel workers are forked, and the server forks from a thread pool:
#: a fork taken while *another* connection thread is mid-way through
#: creating shared memory or registering with the resource tracker hands
#: the child a held lock it can never acquire.  Serializing engine
#: construction closes that window (feeding never forks).
_ENGINE_BUILD_LOCK = threading.Lock()


class TenantSession:
    """Registry entry for one tenant: engine state + attachment state.

    ``config`` is the owning server's
    :class:`~repro.server.app.ServerConfig`; ``anonymous`` marks a
    legacy producer that never sent a hello frame (auto-named, not
    resumable).
    """

    def __init__(self, name: str, config, anonymous: bool = False):
        self.name = name
        self.config = config
        self.anonymous = anonymous
        self.lock = threading.RLock()
        self.state = DETACHED
        self.info: Optional[TraceInfo] = None
        self.runner = None
        self.session = None
        self.result = None
        self.error: Optional[BaseException] = None
        self.expected_total: Optional[int] = None
        self.reconnects = -1  # first attach brings it to 0
        self.races_total = 0
        #: claimed (under ``lock``) by whoever seals the session, so the
        #: summary prints exactly once and a late resume cannot attach
        #: to a session mid-seal
        self.seal_claimed = False
        self.recent_races = deque(maxlen=max(config.retain_races, 0))
        now = time.monotonic()
        self.created = now
        self.last_active = now
        self._active_seconds = 0.0
        self._attach_started: Optional[float] = None

    # -- attachment --------------------------------------------------------
    @property
    def events_acked(self) -> int:
        """Resume offset: events fully applied to every live analysis."""
        session = self.session
        return 0 if session is None else session.events_acked

    @property
    def sealed(self) -> bool:
        return self.state in (COMPLETE, FAILED)

    def try_attach(self, hello: Optional[dict]):
        """Claim the session for one producer connection.

        Returns ``(True, resume_offset)`` on success or ``(False,
        reason)`` with a refuse-frame reason token: ``busy`` (another
        producer is attached), ``finished`` (already sealed), or ``gap``
        (the producer cannot resend back to our ack offset, so resuming
        would silently skip events).
        """
        with self.lock:
            if self.state == ATTACHED:
                return False, "busy"
            if self.sealed or self.seal_claimed:
                return False, "finished"
            resume = self.events_acked
            if hello is not None:
                if hello["resume"] > resume:
                    return False, "gap"
                if hello["total"] is not None:
                    self.expected_total = hello["total"]
            self.state = ATTACHED
            # the producer came back: whatever killed the previous
            # connection is history, not this session's verdict
            self.error = None
            self.reconnects += 1
            self._attach_started = time.monotonic()
            self.last_active = self._attach_started
            return True, resume

    def ensure_engine(self, info: TraceInfo) -> Optional[str]:
        """Build the engine session from the first connection's header,
        or verify a reconnect's header against it.

        Returns an error string when the engine cannot be built
        (dimensions the packed epochs cannot represent) or when a
        reconnecting producer declares different dimensions — either
        way the feed must not be applied.
        """
        with self.lock:
            if self.info is not None:
                old, new = self.info, info
                if any(getattr(old, f) != getattr(new, f)
                       for f in ("num_threads", "num_locks", "num_vars",
                                 "num_volatiles", "num_classes")):
                    return ("reconnect header declares different trace "
                            "dimensions than the original feed")
                return None
            config = self.config
            try:
                with _ENGINE_BUILD_LOCK:
                    if config.workers > 1:
                        from repro.core.parallel import ParallelRunner
                        self.runner = ParallelRunner(
                            list(config.analyses), info,
                            workers=config.workers,
                            window_events=config.window_events)
                    else:
                        from repro.core.engine import MultiRunner
                        self.runner = MultiRunner(
                            [create(name, info) for name in config.analyses],
                            max_pending_races=config.max_pending_races,
                            window_events=config.window_events)
                    self.session = self.runner.session()
            except ValueError as exc:
                self.runner = None
                return "cannot analyze this feed: {}".format(exc)
            self.info = info
            return None

    # -- feeding -----------------------------------------------------------
    def pump(self, source) -> Iterator[tuple]:
        """Feed one connection's events, yielding ``(analysis_name,
        RaceRecord)`` pairs; source errors propagate with the session
        resumable.  Runs in the connection's thread — the attachment is
        this thread's exclusive claim, so no lock is held while feeding.
        """
        window = max(self.config.window, 1)
        if self.config.workers > 1:
            races = self.session.drain(self._ticking(source),
                                       window=window, seal=False)
        else:
            races = self.session.drain(self._ticking(source), window=window)
        for pair in races:
            self.races_total += 1
            race = pair[1]
            self.recent_races.append(
                {"analysis": pair[0], "event": race.index, "tid": race.tid,
                 "var": race.var, "site": race.site, "access": race.access,
                 "kinds": race.kinds})
            yield pair

    def _ticking(self, source):
        """Wrap the event source so liveness metrics advance even when
        no races are found (every 256 events, not per event)."""
        k = 0
        for event in source:
            k += 1
            if not (k & 0xFF):
                self.last_active = time.monotonic()
            yield event

    # -- detachment and sealing --------------------------------------------
    def detach(self, error: Optional[BaseException] = None,
               clean_eof: bool = False) -> str:
        """Release the attachment after a connection ends; returns the
        disposition: ``"complete"`` (all events in — seal it),
        ``"failed"`` (anonymous producer died — seal it), or
        ``"detached"`` (await a resume within the grace window).
        """
        with self.lock:
            now = time.monotonic()
            if self._attach_started is not None:
                self._active_seconds += now - self._attach_started
                self._attach_started = None
            self.last_active = now
            if error is not None:
                self.error = error
            acked = self.events_acked
            if self.expected_total is not None \
                    and acked >= self.expected_total:
                # every declared event was applied: how the connection
                # died afterwards (late FIN, timeout waiting for bytes
                # the producer never owed us) is irrelevant
                return "complete"
            if error is None and clean_eof:
                if self.anonymous:
                    return "complete"
            elif self.anonymous:
                # an anonymous producer cannot come back for its state
                return "failed"
            self.state = DETACHED
            return "detached"

    def finalize(self, failed: bool = False):
        """Seal the session: build the final
        :class:`~repro.core.engine.MultiResult` (``None`` when no
        header ever arrived) and fix the terminal state.  Idempotent.
        """
        with self.lock:
            if self.sealed:
                return self.result
            if self.session is not None:
                self.result = self.session.finish()
            # `failed` is the caller's disposition verdict; a transient
            # error from an earlier connection does not fail a session
            # that went on to complete
            self.state = FAILED if (failed or self.result is None) \
                else COMPLETE
            self.last_active = time.monotonic()
            return self.result

    def abandon(self) -> None:
        """Drop the session without reports (server shutdown teardown
        for sessions whose summary nobody will read)."""
        with self.lock:
            if not self.sealed and self.session is not None:
                self.session.close()
            self.state = FAILED

    # -- observation -------------------------------------------------------
    def metrics(self) -> dict:
        """A point-in-time metrics snapshot (the ``status`` endpoint's
        per-session row)."""
        with self.lock:
            now = time.monotonic()
            active = self._active_seconds
            if self._attach_started is not None:
                active += now - self._attach_started
            events = self.events_acked
            return {
                "tenant": self.name,
                "state": self.state,
                "anonymous": self.anonymous,
                "events": events,
                "total": self.expected_total,
                "races": self.races_total,
                "retained_races": len(self.recent_races),
                "events_per_second": (events / active) if active > 0 else 0.0,
                "lag_seconds": max(now - self.last_active, 0.0),
                "age_seconds": now - self.created,
                "reconnects": max(self.reconnects, 0),
                "error": None if self.error is None else str(self.error),
            }
