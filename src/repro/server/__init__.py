"""Always-on detection serving: many producers, one server process.

SmartTrack's economics (paper §1: predictive detection at overheads
close to plain HB) only pay off if detection can run *continuously in
deployment* — and a deployment has many monitored programs, not one.
This package turns the single-producer ``repro serve`` loop into a
multi-tenant server:

* :class:`~repro.server.app.ServerApp` — accept loop + registry of
  :class:`~repro.server.session.TenantSession`, one per tenant, each
  wrapping an incremental engine session that survives its producer's
  disconnects (reconnect-with-resume via the hello/welcome frames in
  :mod:`repro.trace.live`), with idle eviction and per-session metrics.
* :mod:`repro.server.mi` — an LTTng-MI-style machine interface
  (metadata + results phases as JSON documents) over a control socket
  derived from the trace endpoint; ``repro status`` is its client.
* :func:`~repro.server.app.run_single` — the legacy one-producer body,
  byte-compatible with the historical CLI.

:func:`serve_main` is the CLI's single entry point; ``repro.cli``
contains nothing but argument parsing.
"""

from repro.server.app import ServerApp, ServerConfig, run_single

__all__ = [
    "ServerApp",
    "ServerConfig",
    "run_single",
    "serve_main",
]


def serve_main(config: ServerConfig) -> int:
    """Run a detection server to completion and return the CLI exit
    code: the multi-tenant :class:`ServerApp` when ``config.multi``,
    else the byte-compatible single-producer path."""
    if config.multi:
        return ServerApp(config).run()
    return run_single(config)
