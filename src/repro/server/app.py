"""The multi-tenant detection server: accept loop, session registry,
and the single-producer compatibility path.

:class:`ServerApp` is what ``repro serve --multi`` runs: one
:class:`~repro.trace.live.TraceListener` accepting any number of
producers, a thread per connection, and a registry of
:class:`~repro.server.session.TenantSession` objects that outlive the
connections feeding them.  The accept loop polls on a short timeout so
it doubles as the housekeeping tick (resume-grace expiry, idle-session
eviction, shutdown checks) — no dedicated timer thread.

Output discipline: races stream to stdout the moment they are found
(tagged with their tenant), and each session's final summary block is
rendered into a buffer and written under one lock, so concurrent
tenants never interleave *within* a block — the block's body is
byte-identical to ``repro analyze`` of the same trace, which is what
the server-smoke CI job asserts.

:func:`run_single` is the legacy one-producer ``repro serve`` body,
byte-compatible with the pre-server CLI (same banner, same summary,
same 0/1/2/130 exit contract); the CLI dispatches here so
:mod:`repro.cli` itself stays a thin shell.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import socket
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.reporting import (emit_live_race, emit_summary_jsonl,
                             print_entries)
from repro.server.session import (ATTACHED, COMPLETE, DETACHED, FAILED,
                                  TenantSession)
from repro.trace.live import (SocketTraceSource, TraceListener,
                              format_refuse, format_welcome, parse_endpoint,
                              read_handshake)
from repro.trace.stream import TraceFormatError

__all__ = [
    "ServerApp",
    "ServerConfig",
    "run_single",
]


@dataclasses.dataclass
class ServerConfig:
    """Everything a detection server needs, CLI-independent.

    ``endpoint`` is a Unix socket path or ``HOST:PORT``.  ``timeout``
    bounds the producer handshake and every feed read (``None`` = wait
    forever, like classic ``serve``).  ``resume_grace`` is how long a
    detached named session waits for its producer to come back before
    it is sealed; ``idle_ttl`` how long a sealed session stays visible
    to ``status`` before eviction.  ``max_pending_races`` bounds
    retained race *records* per analysis (counts stay exact — the
    engine's bounded-state knob); ``retain_races`` bounds the races the
    MI ``races`` command can replay per session.
    """

    endpoint: str
    analyses: Sequence[str] = ("st-wdc",)
    workers: int = 1
    window: int = 256
    timeout: Optional[float] = None
    emit: str = "text"
    max_races: int = 10
    memory: bool = False
    multi: bool = False
    max_pending_races: Optional[int] = None
    resume_grace: float = 30.0
    idle_ttl: float = 300.0
    retain_races: int = 256
    accept_poll: float = 0.25
    control: bool = True
    #: bounded-window mode: age out per-variable analysis metadata older
    #: than this many events (None = keep everything forever); with
    #: ``max_pending_races`` this gives bounded state on infinite feeds
    window_events: Optional[int] = None


def control_endpoint_for(listener_address) -> Optional[str]:
    """The control endpoint derived from a bound trace endpoint: the
    ``<path>.ctl`` sidecar for Unix sockets, ``port+1`` for TCP (the
    server falls back to an ephemeral port if taken, and prints the
    real one in its banner).  ``None`` when no port can be derived — a
    listener on port 65535 has no ``port+1``; the control socket is
    ephemeral and only the banner knows its address."""
    if isinstance(listener_address, str):
        return listener_address + ".ctl"
    host, port = listener_address
    if not 0 < port + 1 <= 65535:
        return None
    return "{}:{}".format(host, port + 1)


class ServerApp:
    """A running multi-tenant server (``repro serve --multi``).

    Construct with a :class:`ServerConfig` and call :meth:`run`, which
    blocks until :meth:`stop` (the MI ``shutdown`` command) or
    KeyboardInterrupt, then seals every open session, prints their
    summaries, and returns the CLI exit code: 2 if any session failed,
    else 1 if any found races, else 0 (130 when interrupted).

    Example::

        app = ServerApp(ServerConfig("/tmp/repro.sock", multi=True))
        threading.Thread(target=app.run, daemon=True).start()
        send_trace(trace, "/tmp/repro.sock", tenant="web-1")
    """

    def __init__(self, config: ServerConfig, out=None, err=None):
        self.config = config
        self.out = out or sys.stdout
        self.err = err or sys.stderr
        self.sessions: Dict[str, TenantSession] = {}
        self._registry_lock = threading.Lock()
        self._print_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._live_conns: set = set()
        self._anon_counter = 0
        self._exit_code = 0
        self._started = time.monotonic()
        self._listener: Optional[TraceListener] = None
        self._ctl_sock: Optional[socket.socket] = None
        self._ctl_path: Optional[str] = None
        self.control_address: Optional[str] = None

    # -- logging -----------------------------------------------------------
    def _log(self, message: str) -> None:
        with self._print_lock:
            print(message, file=self.err)
            self.err.flush()

    # -- lifecycle ---------------------------------------------------------
    def stop(self) -> None:
        """Ask the accept loop to wind down (thread-safe; the MI
        ``shutdown`` command calls this)."""
        self._stop.set()

    def run(self) -> int:
        """Serve until stopped; returns the process exit code."""
        config = self.config
        listener = TraceListener(config.endpoint, backlog=16)
        self._listener = listener
        ctl_thread = None
        if config.control:
            ctl_thread = self._start_control(listener.address)
        self._log("serving on {} (analyses: {}; multi-tenant{})".format(
            listener.describe(), ", ".join(config.analyses),
            "; control: {}".format(self.control_address)
            if self.control_address else ""))
        interrupted = False
        try:
            while not self._stop.is_set():
                try:
                    conn = listener.accept_connection(
                        timeout=config.accept_poll)
                except TimeoutError:
                    self._sweep()
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_conn, args=(conn,), daemon=True)
                self._threads.append(thread)
                thread.start()
        except KeyboardInterrupt:
            interrupted = True
        finally:
            self._stop.set()
            listener.close()
        # force-close live feeds so their threads observe the shutdown,
        # then give each a moment to detach cleanly
        with self._state_lock:
            conns = list(self._live_conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        if ctl_thread is not None:
            ctl_thread.join(timeout=5.0)
        self._close_control()
        self._seal_all()
        if interrupted:
            self._log("interrupted; sealed {} session(s)".format(
                len(self.sessions)))
            return 130
        return self._exit_code

    def _seal_all(self) -> None:
        with self._registry_lock:
            sessions = list(self.sessions.values())
        for sess in sessions:
            if not sess.sealed:
                failed = (sess.error is not None
                          or (sess.expected_total is not None
                              and sess.events_acked < sess.expected_total))
                self._seal(sess, failed=failed)

    # -- housekeeping tick -------------------------------------------------
    def _sweep(self) -> None:
        """Accept-loop tick: expire resume grace, evict sealed idlers."""
        now = time.monotonic()
        config = self.config
        with self._registry_lock:
            items = list(self.sessions.items())
        for name, sess in items:
            with sess.lock:
                state = sess.state
                idle = now - sess.last_active
            if state == DETACHED and idle > config.resume_grace \
                    and sess.reconnects >= 0:
                failed = (sess.error is not None
                          or (sess.expected_total is not None
                              and sess.events_acked < sess.expected_total))
                self._log("tenant {}: resume grace expired after {} "
                          "events".format(name, sess.events_acked))
                self._seal(sess, failed=failed, only_if_detached=True)
            elif sess.sealed and idle > config.idle_ttl:
                with self._registry_lock:
                    if self.sessions.get(name) is sess:
                        del self.sessions[name]

    # -- per-connection thread ---------------------------------------------
    def _next_anon(self) -> str:
        with self._state_lock:
            self._anon_counter += 1
            # "/" cannot appear in a hello tenant id, so generated names
            # can never collide with a named session
            return "anon/{}".format(self._anon_counter)

    def _track(self, conn, on: bool) -> None:
        with self._state_lock:
            if on:
                self._live_conns.add(conn)
            else:
                self._live_conns.discard(conn)

    def _serve_conn(self, conn: socket.socket) -> None:
        source = None
        sess = None
        self._track(conn, True)
        try:
            try:
                hello, prefix = read_handshake(conn, self.config.timeout)
            except (TraceFormatError, OSError) as exc:
                self._log("rejected connection: {}".format(exc))
                return
            if hello is None:
                sess = TenantSession(self._next_anon(), self.config,
                                     anonymous=True)
                with self._registry_lock:
                    self.sessions[sess.name] = sess
                sess.try_attach(None)
            else:
                with self._registry_lock:
                    sess = self.sessions.get(hello["tenant"])
                    if sess is None:
                        sess = TenantSession(hello["tenant"], self.config)
                        self.sessions[sess.name] = sess
                ok, outcome = sess.try_attach(hello)
                if not ok:
                    self._log("tenant {}: refused ({})".format(
                        sess.name, outcome))
                    try:
                        conn.sendall(format_refuse(outcome))
                    except OSError:
                        pass
                    sess = None  # not ours to detach
                    return
                try:
                    conn.sendall(format_welcome(outcome))
                except OSError as exc:
                    self._finish_conn(sess, exc)
                    sess = None
                    return
                if sess.reconnects > 0:
                    self._log("tenant {}: resumed at event {}".format(
                        sess.name, outcome))
            feed_error: Optional[BaseException] = None
            try:
                # the constructor itself parses the wire header, so a
                # producer dying mid-header lands here too
                source = SocketTraceSource(conn,
                                           timeout=self.config.timeout,
                                           prefix=prefix)
                info = source.require_info()
                engine_error = sess.ensure_engine(info)
                if engine_error is not None:
                    if sess.session is None:
                        # never analyzable: seal now, nothing to resume
                        self._log("tenant {}: {}".format(
                            sess.name, engine_error))
                        sess.detach(error=TraceFormatError(engine_error))
                        self._seal(sess, failed=True)
                        sess = None
                        return
                    feed_error = TraceFormatError(engine_error)
                else:
                    for name, race in sess.pump(source):
                        self._emit_race(sess, name, race)
            except (TraceFormatError, OSError) as exc:
                feed_error = exc
            self._finish_conn(sess, feed_error)
            sess = None
        finally:
            self._track(conn, False)
            if sess is not None:
                self._finish_conn(sess, None)
            if source is not None:
                source.close()
            else:
                try:
                    conn.close()
                except OSError:
                    pass

    def _finish_conn(self, sess: TenantSession,
                     error: Optional[BaseException]) -> None:
        """Route one ended connection to its disposition."""
        disposition = sess.detach(error=error, clean_eof=error is None)
        if disposition == "complete":
            self._seal(sess, failed=False)
        elif disposition == "failed":
            self._log("tenant {}: feed failed after {} events: {}".format(
                sess.name, sess.events_acked, error))
            self._seal(sess, failed=True)
        else:
            self._log("tenant {}: detached at event {}{} (resume within "
                      "{:.0f}s)".format(
                          sess.name, sess.events_acked,
                          "" if error is None else " ({})".format(error),
                          self.config.resume_grace))

    # -- output ------------------------------------------------------------
    def _emit_race(self, sess: TenantSession, name: str, race) -> None:
        with self._print_lock:
            emit_live_race(name, race, self.config.emit == "jsonl",
                           tenant=sess.name, out=self.out)

    def _seal(self, sess: TenantSession, failed: bool,
              only_if_detached: bool = False) -> None:
        """Seal one session and print its summary block exactly once.

        ``only_if_detached`` is the sweep's guard: between its state
        snapshot and this call a producer may have resumed, and an
        attached session must never be sealed under a live feed.
        """
        with sess.lock:
            if sess.seal_claimed:
                return
            if only_if_detached and sess.state == ATTACHED:
                return
            sess.seal_claimed = True
        result = sess.finalize(failed=failed)
        config = self.config
        block = io.StringIO()
        if config.emit == "jsonl":
            payload = {"type": "session", "tenant": sess.name,
                       "state": sess.state,
                       "events": 0 if result is None
                       else result.events_processed}
            print(json.dumps(payload, sort_keys=True), file=block)
            races = (emit_summary_jsonl(result, tenant=sess.name, out=block)
                     if result is not None else 0)
        else:
            print("--- tenant {}: {} after {} events ---".format(
                sess.name, sess.state,
                0 if result is None else result.events_processed),
                file=block)
            races = (print_entries(result, max_races=config.max_races,
                                   memory=config.memory, out=block)
                     if result is not None else 0)
            print("--- end tenant {} ---".format(sess.name), file=block)
        with self._print_lock:
            self.out.write(block.getvalue())
            self.out.flush()
        with self._state_lock:
            if result is None or not result.ok or sess.state == FAILED:
                self._exit_code = 2
            elif races and self._exit_code == 0:
                self._exit_code = 1

    # -- observation -------------------------------------------------------
    def status(self) -> dict:
        """Point-in-time server + per-session status (the ``status``
        MI command's payload)."""
        with self._registry_lock:
            sessions = sorted(self.sessions.values(),
                              key=lambda s: s.created)
        rows = [sess.metrics() for sess in sessions]
        counts: Dict[str, int] = {}
        for row in rows:
            counts[row["state"]] = counts.get(row["state"], 0) + 1
        try:
            import resource
            rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except Exception:  # pragma: no cover - non-posix fallback
            rss_kb = 0
        endpoint = (self._listener.describe()
                    if self._listener is not None else self.config.endpoint)
        return {
            "endpoint": endpoint,
            "control": self.control_address,
            "analyses": list(self.config.analyses),
            "workers": self.config.workers,
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self._started,
            "rss_kb": rss_kb,
            "session_counts": counts,
            "sessions": rows,
        }

    # -- control socket ----------------------------------------------------
    def _start_control(self, listener_address) -> threading.Thread:
        kind, _ = parse_endpoint(self.config.endpoint)
        if kind == "unix":
            path = listener_address + ".ctl"
            try:
                os.unlink(path)
            except OSError:
                pass
            sock = socket.socket(socket.AF_UNIX)
            sock.bind(path)
            self._ctl_path = path
            self.control_address = path
        else:
            host, port = listener_address
            sock = socket.socket(socket.AF_INET)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if 0 < port + 1 <= 65535:
                try:
                    sock.bind((host, port + 1))
                except OSError:
                    sock.bind((host, 0))
            else:
                # a listener on 65535 has no port+1 — binding it would
                # raise OverflowError (which the OSError fallback never
                # caught, crashing the server); go straight to ephemeral
                sock.bind((host, 0))
            self.control_address = "{}:{}".format(*sock.getsockname()[:2])
        sock.listen(8)
        sock.settimeout(self.config.accept_poll)
        self._ctl_sock = sock
        thread = threading.Thread(target=self._control_loop, daemon=True)
        thread.start()
        return thread

    def _close_control(self) -> None:
        sock, self._ctl_sock = self._ctl_sock, None
        if sock is not None:
            sock.close()
        path, self._ctl_path = self._ctl_path, None
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _control_loop(self) -> None:
        from repro.server import mi
        while not self._stop.is_set():
            try:
                conn, _ = self._ctl_sock.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            try:
                conn.settimeout(5.0)
                data = b""
                while b"\n" not in data and len(data) < 65536:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    data += chunk
                try:
                    request = json.loads(
                        data.split(b"\n", 1)[0].decode("utf-8") or "null")
                except (ValueError, UnicodeDecodeError):
                    request = None
                doc = mi.handle_command(self, request)
                conn.sendall(json.dumps(doc, sort_keys=True)
                             .encode("utf-8") + b"\n")
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass


def run_single(config: ServerConfig) -> int:
    """The classic one-producer ``repro serve`` body, byte-compatible
    with the pre-:mod:`repro.server` CLI: same banner, same live race
    lines, same summary block, same 0/1/2/130 exit contract, and the
    same reconnect refusal (the listener closes at accept)."""
    from repro.core.engine import MultiRunner
    from repro.core.registry import create

    analyses = list(config.analyses)
    emit_json = config.emit == "jsonl"
    window = max(config.window, 1)
    listener = TraceListener(config.endpoint)
    print("serving on {} (analyses: {}; one producer, then exit)".format(
        listener.describe(), ", ".join(analyses)), file=sys.stderr)
    sys.stderr.flush()
    source = listener.accept(timeout=config.timeout)
    feed_error: Optional[BaseException] = None
    workers = max(config.workers, 1)
    with source:
        info = source.require_info()
        try:
            if workers > 1:
                from repro.core.parallel import ParallelRunner
                runner = ParallelRunner(analyses, info, workers=workers,
                                        window_events=config.window_events)
            else:
                runner = MultiRunner(
                    [create(name, info) for name in analyses],
                    max_pending_races=config.max_pending_races,
                    window_events=config.window_events)
        except ValueError as exc:
            # a remote producer controls these dimensions; an absurd
            # header (e.g. more threads than packed epochs support) is a
            # bad feed (exit 2), not a crash with an undocumented code
            print("error: cannot analyze this feed: {}".format(exc),
                  file=sys.stderr)
            return 2
        session = runner.session()
        interrupted = False
        try:
            for name, race in session.drain(source, window=window):
                emit_live_race(name, race, emit_json)
        except (TraceFormatError, OSError) as exc:
            # the feed died (malformed bytes, timeout, reset/dropped
            # connection), the session did not: emit what the surviving
            # analyses know, then exit 2
            feed_error = exc
        except KeyboardInterrupt:
            # Ctrl-C: stop consuming the feed but still emit the partial
            # summary; finish() reaps any worker processes and unlinks
            # their shared memory (exit 130, the conventional SIGINT code)
            interrupted = True
        result = session.finish()
    if emit_json:
        races_found = emit_summary_jsonl(result)
    else:
        races_found = print_entries(result, max_races=config.max_races,
                                    memory=config.memory)
    if interrupted:
        print("interrupted after {} events; partial summary above".format(
            result.events_processed), file=sys.stderr)
        return 130
    if feed_error is not None:
        print("error: live feed failed after {} events: {}".format(
            result.events_processed, feed_error), file=sys.stderr)
        return 2
    return 2 if not result.ok else races_found
