"""Machine interface for the detection server, LTTng-MI style.

The control socket speaks one-shot JSON: a client connects, sends a
single request line (``{"command": "status"}``), reads a single JSON
document back, and the connection closes.  Documents follow the
LTTng-analyses MI shape — a *metadata phase* describing the producer
and its table classes (column titles and types, so a generic client can
render results it has never seen), and a *results phase* carrying rows
against one of those classes:

* ``metadata`` — producer name/version plus :data:`TABLE_CLASSES`.
* ``status``   — a ``sessions`` table (one row per tenant: state,
  events, races, events/s, lag, reconnects) plus server-level gauges
  (uptime, RSS, PID, session counts).
* ``races``    — a ``races`` table replaying one tenant's recently
  retained races (bounded by the server's ``retain_races``).
* ``shutdown`` — asks the server to wind down; replies before it does.

The control endpoint derives from the trace endpoint —
``<path>.ctl`` for Unix sockets, ``port+1`` for TCP — so ``repro
status SOCKET`` needs only the address the producers already know.
"""

from __future__ import annotations

import json
import socket
from typing import Optional

from repro.trace.live import connect_endpoint, parse_endpoint

__all__ = [
    "MI_VERSION",
    "TABLE_CLASSES",
    "control_endpoint",
    "handle_command",
    "metadata_doc",
    "query",
    "races_doc",
    "status_doc",
]

#: The machine-interface schema version (bump on breaking changes).
MI_VERSION = "1.0"

#: Table classes announced in the metadata phase; every results-phase
#: document names the class its rows conform to.
TABLE_CLASSES = {
    "sessions": {
        "title": "Tenant detection sessions",
        "column-descriptions": [
            {"title": "tenant", "type": "string"},
            {"title": "state", "type": "string"},
            {"title": "events", "type": "int"},
            {"title": "total", "type": "int"},
            {"title": "races", "type": "int"},
            {"title": "events-per-second", "type": "number"},
            {"title": "lag-seconds", "type": "number"},
            {"title": "reconnects", "type": "int"},
        ],
    },
    "races": {
        "title": "Recently detected races",
        "column-descriptions": [
            {"title": "analysis", "type": "string"},
            {"title": "event", "type": "int"},
            {"title": "tid", "type": "int"},
            {"title": "var", "type": "int"},
            {"title": "site", "type": "int"},
            {"title": "access", "type": "string"},
            {"title": "kinds", "type": "string"},
        ],
    },
}


def metadata_doc() -> dict:
    """The metadata phase: who is producing and what its tables mean."""
    import repro
    return {
        "class": "metadata",
        "mi-version": MI_VERSION,
        "producer-name": "repro serve",
        "producer-version": getattr(repro, "__version__", "unknown"),
        "table-classes": TABLE_CLASSES,
    }


def status_doc(app) -> dict:
    """The results phase for ``status``: one ``sessions`` row per
    tenant plus server-level gauges."""
    status = app.status()
    rows = [[row["tenant"], row["state"], row["events"],
             -1 if row["total"] is None else row["total"], row["races"],
             round(row["events_per_second"], 1),
             round(row["lag_seconds"], 3), row["reconnects"]]
            for row in status.pop("sessions")]
    return {
        "class": "results",
        "mi-version": MI_VERSION,
        "results": {"class": "sessions", "data": rows},
        "server": status,
    }


def races_doc(app, tenant: str) -> dict:
    """The results phase for ``races``: one tenant's retained races."""
    with app._registry_lock:
        sess = app.sessions.get(tenant)
    if sess is None:
        return {"class": "error",
                "error": "unknown tenant {!r}".format(tenant)}
    # one consistent view: the total and the rows must come from the
    # same instant, or a feed racing this query can report a total that
    # contradicts its own rows
    with sess.lock:
        rows = [[r["analysis"], r["event"], r["tid"], r["var"], r["site"],
                 r["access"], r["kinds"]] for r in sess.recent_races]
        races_total = sess.races_total
    return {
        "class": "results",
        "mi-version": MI_VERSION,
        "results": {"class": "races", "data": rows},
        "tenant": tenant,
        "races-total": races_total,
    }


def handle_command(app, request) -> dict:
    """Dispatch one control request against a running
    :class:`~repro.server.app.ServerApp`; always returns a document
    (errors are documents too — the control socket never goes silent).
    """
    if not isinstance(request, dict) or "command" not in request:
        return {"class": "error",
                "error": "request must be a JSON object with a 'command'"}
    command = request["command"]
    if command == "metadata":
        return metadata_doc()
    if command == "status":
        return status_doc(app)
    if command == "races":
        tenant = request.get("tenant")
        if not isinstance(tenant, str):
            return {"class": "error",
                    "error": "races needs a 'tenant' string"}
        return races_doc(app, tenant)
    if command == "shutdown":
        app.stop()
        return {"class": "results", "mi-version": MI_VERSION,
                "results": {"class": "shutdown", "data": []}}
    return {"class": "error",
            "error": "unknown command {!r}".format(command)}


def control_endpoint(spec: str) -> str:
    """Map a trace endpoint spec to its control endpoint (the client
    half of the derivation the server applies at bind time).

    Raises :class:`ValueError` when no valid control port can be
    derived — a TCP server on port 65535 has no ``port+1``; its control
    socket is on an ephemeral port (printed in the server banner),
    which the caller must pass explicitly via ``--control``.
    """
    kind, addr = parse_endpoint(spec)
    if kind == "unix":
        return addr + ".ctl"
    host, port = addr
    if not 0 < port + 1 <= 65535:
        raise ValueError(
            "cannot derive a control endpoint from {}: port {} is out "
            "of range (the server bound an ephemeral control port — "
            "pass it explicitly via --control, it is printed in the "
            "server banner)".format(spec, port + 1))
    return "{}:{}".format(host, port + 1)


def query(spec: str, request: dict,
          timeout: Optional[float] = 5.0,
          control: Optional[str] = None) -> dict:
    """Send one control request to the server at trace endpoint
    ``spec`` and return the reply document (``control`` overrides the
    derived control endpoint).  Raises ``OSError`` when the server is
    unreachable and :class:`ValueError` on a garbled reply.

    Example::

        query("/tmp/repro.sock", {"command": "status"})["server"]["pid"]
    """
    endpoint = control if control is not None else control_endpoint(spec)
    try:
        sock = connect_endpoint(endpoint, connect_timeout=timeout)
    except OSError as exc:
        # the derived port+1 can point at nothing (the server fell back
        # to an ephemeral control port when port+1 was taken); say so
        # instead of surfacing a bare connection error
        hint = ("" if control is not None else
                " (derived from {}; if the server bound an ephemeral "
                "control port — it prints the real one at startup — "
                "pass it via --control)".format(spec))
        raise OSError("cannot connect to control endpoint {}: {}{}".format(
            endpoint, exc, hint)) from exc
    try:
        sock.settimeout(timeout)
        sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        data = b""
        while b"\n" not in data and len(data) < (1 << 22):
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
        if not data:
            raise ValueError("empty control reply")
        line, newline, _ = data.partition(b"\n")
        if not newline:
            # the server terminates every reply with a newline, so a
            # reply without one is incomplete: either it blew past the
            # client-side cap or the connection died mid-reply — either
            # way, json.loads on the fragment would raise an opaque
            # parse error pointing nowhere near the real problem
            if len(data) >= (1 << 22):
                raise ValueError(
                    "oversized control reply from {}: {} bytes with no "
                    "terminator (over the 4 MiB cap; ask for less, e.g. "
                    "a smaller retain_races)".format(endpoint, len(data)))
            raise ValueError(
                "truncated control reply from {}: connection closed "
                "after {} bytes with no terminator".format(
                    endpoint, len(data)))
        return json.loads(line.decode("utf-8"))
    finally:
        sock.close()
