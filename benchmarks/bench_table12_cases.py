"""Table 12 (appendix B): SmartTrack-WDC case frequencies."""

import pytest

from benchmarks.conftest import jsonable, write_result
from repro.harness.tables import table12


def test_write_table12(benchmark, meas, results_dir):
    text, data = benchmark.pedantic(table12, args=(meas,),
                                    rounds=1, iterations=1)
    # owned + exclusive cases dominate (paper Table 12)
    for prog, kinds in data.items():
        reads = kinds["read"]
        if reads["total"]:
            fast = reads["OwnExcl"] + reads["OwnShared"] + reads["Excl"]
            assert fast > 50.0, prog
    write_result(results_dir, "table12.txt", text, data=jsonable(data))
