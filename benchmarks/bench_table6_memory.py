"""Table 6: per-program memory factors for the 11-analysis matrix."""

import pytest

from benchmarks.conftest import jsonable, write_result
from repro.harness.tables import table6
from repro.workloads.dacapo import program_names


def test_write_table6(benchmark, meas, results_dir):
    text, data = benchmark.pedantic(table6, args=(meas,),
                                    rounds=1, iterations=1)
    for prog in program_names():
        # predictive metadata costs more than HB's (paper Table 6)
        assert data[prog][("dc", "unopt")] >= data[prog][("hb", "unopt")]
    write_result(results_dir, "table6.txt", text, data=jsonable(data))
