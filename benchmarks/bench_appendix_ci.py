"""Appendix Tables 8-11: multi-trial results with 95% confidence
intervals (3 trials at reduced scale to keep the suite fast)."""

import pytest

from benchmarks.conftest import bench_scale, jsonable, write_result
from repro.harness.measure import Measurements
from repro.harness.tables import table_ci


@pytest.fixture(scope="module")
def meas_trials():
    return Measurements(scale=bench_scale() * 0.4, trials=3)


def test_write_time_cis(benchmark, meas_trials, results_dir):
    text, data = benchmark.pedantic(
        table_ci, args=(meas_trials, "time"), rounds=1, iterations=1)
    assert data["avrora"]["fto-hb"][0] > 0
    write_result(results_dir, "table8_time_ci.txt", text,
                 data=jsonable(data))


def test_write_memory_cis(benchmark, meas_trials, results_dir):
    text, data = benchmark.pedantic(
        table_ci, args=(meas_trials, "memory"), rounds=1, iterations=1)
    # memory factors are deterministic given the trace: tight CIs
    for prog, cells in data.items():
        for name, (m, half) in cells.items():
            assert half <= 0.01 * m + 1e-9
    write_result(results_dir, "table9_memory_ci.txt", text,
                 data=jsonable(data))
