"""Table 3: FastTrack baselines vs unoptimized DC/WDC (with/without the
vindication constraint graph)."""

import pytest

from benchmarks.conftest import jsonable, write_result
from repro.core.registry import create
from repro.harness.tables import TABLE3_ANALYSES, table3
from repro.workloads.dacapo import program_names


@pytest.mark.parametrize("program", program_names())
@pytest.mark.parametrize("analysis", TABLE3_ANALYSES)
def test_analysis(benchmark, meas, program, analysis):
    trace = meas.trace_for(program)
    report = benchmark.pedantic(
        lambda: create(analysis, trace).run(), rounds=1, iterations=1)
    assert report.events_processed == len(trace)


def test_write_table3(benchmark, meas, results_dir):
    text, data = benchmark.pedantic(table3, args=(meas,),
                                    rounds=1, iterations=1)
    # shape check: the graph-building variants cost more memory
    for prog in program_names():
        assert data["memory"][prog]["unopt-dc-g"] >= \
            data["memory"][prog]["unopt-dc"]
    write_result(results_dir, "table3.txt", text, data=jsonable(data))
