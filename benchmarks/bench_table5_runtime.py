"""Table 5: per-program run-time factors for the 11-analysis matrix."""

import pytest

from benchmarks.conftest import jsonable, write_result
from repro.core.registry import MAIN_MATRIX, create
from repro.harness.tables import table5
from repro.workloads.dacapo import program_names


@pytest.mark.parametrize("program", program_names())
@pytest.mark.parametrize("analysis", MAIN_MATRIX)
def test_analysis(benchmark, meas, program, analysis):
    trace = meas.trace_for(program)
    report = benchmark.pedantic(
        lambda: create(analysis, trace).run(), rounds=1, iterations=1)
    assert report.events_processed == len(trace)


def test_write_table5(benchmark, meas, results_dir):
    text, data = benchmark.pedantic(table5, args=(meas,),
                                    rounds=1, iterations=1)
    # h2 and xalan benefit most from the CCS optimizations (paper §5.3):
    for prog in ("h2", "xalan"):
        assert data[prog][("dc", "st")] < data[prog][("dc", "fto")] / 2
    write_result(results_dir, "table5.txt", text, data=jsonable(data))
