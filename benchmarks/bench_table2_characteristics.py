"""Table 2: run-time characteristics of the evaluated programs.

Regenerates the threads / events / NSEAs / locks-held-at-NSEAs table and
benchmarks the characteristics pass itself.
"""

import pytest

from benchmarks.conftest import jsonable, write_result
from repro.harness.tables import table2
from repro.workloads.dacapo import program_names
from repro.workloads.stats import characterize


@pytest.mark.parametrize("program", program_names())
def test_characterize(benchmark, meas, program):
    trace = meas.trace_for(program)
    ch = benchmark.pedantic(characterize, args=(trace, program),
                            rounds=1, iterations=1)
    assert ch.events == len(trace)
    assert 0 < ch.nseas <= ch.events


def test_write_table2(benchmark, meas, results_dir):
    text, data = benchmark.pedantic(table2, args=(meas,),
                                    rounds=1, iterations=1)
    assert len(data["rows"]) == 10
    write_result(results_dir, "table2.txt", text, data=jsonable(data))
