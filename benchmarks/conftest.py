"""Shared fixtures for the benchmark suite.

Every paper table/figure has a bench module; measured cells are shared
through a session-scoped :class:`~repro.harness.measure.Measurements`, and
each module writes its regenerated table into ``bench_results/``.  Modules
that pass structured ``data`` to :func:`write_result` also get a
machine-readable ``bench_results/<name>.json`` sibling (timestamped), so
the perf trajectory is trackable across PRs and CI runs.

Workload scale defaults to 0.5 of the calibrated event budgets; set
``REPRO_BENCH_SCALE`` (e.g. ``=1.0``) for full-size runs.

Perf assertions go through :func:`gate`; setting ``REPRO_BENCH_NO_GATE=1``
turns them into warnings (CI runs the suite for trend capture on shared
runners whose timings are not gate-worthy).

``bench_*.py`` modules don't match pytest's default ``test_*`` pattern;
the ``pytest_collect_file`` hook below collects them — but only when the
invocation explicitly targets the benchmarks (``python -m pytest
benchmarks -q`` or a single ``bench_*.py`` path), so the plain tier-1
test run never drags the benchmark suite in.
"""

import json
import os
import time
import warnings

import pytest

from repro.harness.measure import Measurements


def _benchmarks_requested(config) -> bool:
    """True only when a positional arg targets the benchmarks dir or a
    bench_*.py file — option values like ``-k bench_foo`` don't count."""
    for arg in config.invocation_params.args:
        arg = str(arg)
        if arg.startswith("-"):
            continue
        path = arg.split("::")[0]
        if "benchmarks" in path.replace(os.sep, "/").split("/"):
            return True
        base = os.path.basename(path)
        if base.startswith("bench_") and base.endswith(".py"):
            return True
    return False


def pytest_collect_file(file_path, parent):
    if (file_path.suffix == ".py" and file_path.name.startswith("bench_")
            and _benchmarks_requested(parent.config)):
        # an explicitly named bench_*.py is collected by pytest itself;
        # collecting it here too would run every test twice
        if any(os.path.basename(str(arg).split("::")[0]) == file_path.name
               for arg in parent.config.invocation_params.args):
            return None
        return pytest.Module.from_parent(parent, path=file_path)
    return None


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def meas() -> Measurements:
    return Measurements(scale=bench_scale())


@pytest.fixture(scope="session")
def results_dir() -> str:
    path = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    path = os.path.abspath(path)
    os.makedirs(path, exist_ok=True)
    return path


def write_result(results_dir: str, name: str, text: str,
                 data: dict = None) -> None:
    """Write one human-readable result file, plus a JSON sibling.

    ``data`` (a JSON-serializable dict — workload dimensions, events/s,
    ratios, ...) lands in ``<stem>.json`` next to the ``.txt``, wrapped
    with the bench name and a UTC timestamp.
    """
    with open(os.path.join(results_dir, name), "w") as fp:
        fp.write(text + "\n")
    if data is not None:
        stem = os.path.splitext(name)[0]
        payload = {
            "bench": stem,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "scale": bench_scale(),
        }
        payload.update(data)
        with open(os.path.join(results_dir, stem + ".json"), "w") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
            fp.write("\n")


def jsonable(obj):
    """Recursively coerce a table-builder data dict to JSON-serializable
    form (tuple keys become "/"-joined strings, tuples become lists)."""
    if isinstance(obj, dict):
        return {
            ("/".join(map(str, k)) if isinstance(k, tuple) else str(k)):
                jsonable(v)
            for k, v in obj.items()
        }
    if isinstance(obj, (set, frozenset)):
        items = [jsonable(v) for v in obj]
        try:
            return sorted(items)
        except TypeError:
            return items
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, (int, float, str, bool)) or obj is None:
        return obj
    return repr(obj)


def gate(condition: bool, text: str) -> None:
    """Assert a perf target — or warn when ``REPRO_BENCH_NO_GATE`` is set
    (CI trend-capture runs on shared runners skip hard perf gating)."""
    if os.environ.get("REPRO_BENCH_NO_GATE"):
        if not condition:
            warnings.warn("perf gate skipped (REPRO_BENCH_NO_GATE): " + text)
        return
    assert condition, text
