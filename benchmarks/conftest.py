"""Shared fixtures for the benchmark suite.

Every paper table/figure has a bench module; measured cells are shared
through a session-scoped :class:`~repro.harness.measure.Measurements`, and
each module writes its regenerated table into ``bench_results/``.

Workload scale defaults to 0.5 of the calibrated event budgets; set
``REPRO_BENCH_SCALE`` (e.g. ``=1.0``) for full-size runs.
"""

import os

import pytest

from repro.harness.measure import Measurements


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def meas() -> Measurements:
    return Measurements(scale=bench_scale())


@pytest.fixture(scope="session")
def results_dir() -> str:
    path = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    path = os.path.abspath(path)
    os.makedirs(path, exist_ok=True)
    return path


def write_result(results_dir: str, name: str, text: str) -> None:
    with open(os.path.join(results_dir, name), "w") as fp:
        fp.write(text + "\n")
