"""Table 4: geometric-mean run time and memory of the full analysis
matrix, plus the paper's headline speedup claims (§5.5)."""

import pytest

from benchmarks.conftest import jsonable, write_result
from repro.harness.tables import headline_summary, table4


def test_write_table4_and_headline(benchmark, meas, results_dir):
    text, data = benchmark.pedantic(table4, args=(meas,),
                                    rounds=1, iterations=1)
    summary, vals = headline_summary(data)
    # Shape assertions (paper §5.5): modeled factors must order correctly.
    time = data["time"]
    for rel in ("wcp", "dc", "wdc"):
        assert time[(rel, "unopt")] > time[(rel, "fto")] > time[(rel, "st")]
        assert vals[rel]["fto_speedup"] > 1.3
        assert vals[rel]["st_speedup"] > 2.0
    assert time[("hb", "fto")] < time[("wdc", "st")] < time[("dc", "unopt")]
    mem = data["memory"]
    for rel in ("wcp", "dc", "wdc"):
        assert mem[(rel, "unopt")] > mem[(rel, "st")]
    write_result(results_dir, "table4.txt", text + "\n" + summary,
                 data=jsonable({"table": data, "headline": vals}))
