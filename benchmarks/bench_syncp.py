"""Sync-preserving analysis throughput vs the SmartTrack flagship.

``sp`` is the post-paper sync-preserving race predictor (DESIGN.md §11).
It is deliberately a scalar, slow-path-only analysis — correctness and
bit-identity with its ``unopt-sp`` reference come first — so this bench
is *trend capture, not gating*: it records single-core events/s for
``sp``, ``unopt-sp``, and ``st-wdc`` on the same million-event workload
(scaled by ``REPRO_BENCH_SCALE``) into ``engine_syncp.json``, making the
cost of the acquisition-history fixpoint visible across commits.

The only assertions are correctness ones: the two SP tiers must report
identical races, and every HB race must be an SP race.
"""

import time

from benchmarks.conftest import bench_scale, write_result
from repro.core.registry import create
from repro.workloads import generate_trace, WorkloadSpec

ANALYSES = ["sp", "unopt-sp", "st-wdc"]


def _workload():
    return generate_trace(WorkloadSpec(
        name="syncp-bench", threads=8,
        events=max(int(1_000_000 * bench_scale()), 5000),
        predictive_races=3, hb_races=3, seed=11))


def _solo_rate(name, trace, repeats=2):
    best = float("inf")
    report = None
    for _ in range(repeats):
        analysis = create(name, trace)
        start = time.perf_counter()
        report = analysis.run()
        best = min(best, time.perf_counter() - start)
    return len(trace) / best, report


def test_syncp_throughput_vs_smarttrack(results_dir):
    trace = _workload()
    rates, reports = {}, {}
    for name in ANALYSES:
        rates[name], reports[name] = _solo_rate(name, trace)
    # correctness, not perf: the optimized tier is bit-identical to the
    # reference, and SP races contain the HB races
    assert [(r.index, r.var) for r in reports["sp"].races] == \
        [(r.index, r.var) for r in reports["unopt-sp"].races]
    hb_report = create("unopt-hb", trace).run()
    assert hb_report.racy_vars <= reports["sp"].racy_vars

    lines = ["syncp single-core throughput ({} events, {} threads)".format(
        len(trace), trace.num_threads)]
    for name in ANALYSES:
        lines.append("  {:<10} {:>12,.0f} events/s".format(name, rates[name]))
    lines.append("  sp / st-wdc ratio: {:.2f}x".format(
        rates["sp"] / rates["st-wdc"]))
    text = "\n".join(lines)
    print("\n" + text)
    write_result(results_dir, "engine_syncp.txt", text, data={
        "events": len(trace),
        "threads": trace.num_threads,
        "events_per_sec": {name: round(rates[name], 1) for name in ANALYSES},
        "sp_vs_st_wdc": round(rates["sp"] / rates["st-wdc"], 4),
        "racy_vars": {name: sorted(reports[name].racy_vars)
                      for name in ANALYSES},
    })
