"""Table 7: races reported (static and dynamic) per program/analysis."""

import pytest

from benchmarks.conftest import jsonable, write_result
from repro.harness.tables import table7
from repro.workloads.dacapo import PAPER_STATIC_RACES, program_names


def test_write_table7(benchmark, meas, results_dir):
    text, data = benchmark.pedantic(table7, args=(meas,),
                                    rounds=1, iterations=1)
    # batik and lusearch report no races under any analysis (paper)
    for prog in ("batik", "lusearch"):
        assert all(v == (0, 0) for v in data[prog].values())
    # predictive analyses find strictly more static races than HB exactly
    # where the paper plants them (xalan, sunflow, jython, tomcat)
    for prog in ("xalan", "sunflow", "jython", "tomcat"):
        hb = data[prog][("hb", "fto")][0]
        dc = data[prog][("dc", "fto")][0]
        expect = PAPER_STATIC_RACES[prog]
        assert dc - hb > 0 and expect["predictive"] > 0
    write_result(results_dir, "table7.txt", text, data=jsonable(data))
