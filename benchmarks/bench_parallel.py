"""Multiprocess sharding vs the serial single-pass engine.

The single-pass engine runs the whole 11-analysis matrix in one Python
process — one core, GIL-bound.  :class:`repro.core.parallel
.ParallelRunner` shards the analyses across worker processes while the
parent decodes the recorded capture exactly once; this bench records
the scaling curve (serial, then 1/2/4 workers) on the ~1M-event binary
workload and gates the 4-worker point at >= 1.5x over serial.

Both sides run the identical streaming path (``measure_stream`` over
the same v2 binary file, ``sample_every=0``), so the ratio isolates the
sharding: parent decode + shared-memory broadcast + parallel replay vs
one-process decode + replay.  1-worker parallel is included because it
prices the transport overhead itself (expect < 1x).

The >= 1.5x gate presumes hardware parallelism: on a host with fewer
than 4 usable cores the wall-clock target is physically unreachable
(the workers time-slice one core and the IPC is pure overhead), so the
gate is demoted to a warning exactly as under ``REPRO_BENCH_NO_GATE``,
and the JSON artifact records ``cpus`` so a trend reader can tell a
regression from a small machine.

Workloads scale with ``REPRO_BENCH_SCALE`` (default 0.5; see conftest).
"""

import os
import tempfile
import time

from benchmarks.conftest import bench_scale, gate, write_result
from repro.core.registry import MAIN_MATRIX
from repro.harness.measure import measure_stream
from repro.trace.format import dump_trace, stream_trace
from repro.workloads import WorkloadSpec, generate_trace

ANALYSES = list(MAIN_MATRIX)
WORKER_COUNTS = (1, 2, 4)
GATE_WORKERS = 4
GATE_RATIO = 1.5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _workload_path() -> str:
    """A recorded ~1M-event binary capture (scaled) shared by all runs."""
    spec = WorkloadSpec(
        name="parallel-bench", threads=8,
        events=max(int(1_000_000 * bench_scale()), 20_000),
        predictive_races=4, hb_races=4, seed=13)
    trace = generate_trace(spec)
    path = os.path.join(tempfile.mkdtemp(), "parallel-bench.bin")
    with open(path, "wb") as fp:
        dump_trace(trace, fp, binary=True)
    return path


def test_parallel_scaling_curve(results_dir):
    """Serial single pass vs 1/2/4-worker sharded passes, same capture."""
    path = _workload_path()
    with stream_trace(path) as probe:
        events = probe.require_info().num_events

    t0 = time.perf_counter()
    serial = measure_stream(path, ANALYSES, sample_every=0)
    serial_s = time.perf_counter() - t0
    assert len(serial.reports) == len(set(ANALYSES))

    curve = {}
    for workers in WORKER_COUNTS:
        t0 = time.perf_counter()
        result = measure_stream(path, ANALYSES, sample_every=0,
                                workers=workers)
        curve[workers] = time.perf_counter() - t0
        assert result.events == serial.events == events
        for name, report in result.reports.items():
            assert report.dynamic_count == \
                serial.reports[name].dynamic_count, name

    cpus = _usable_cpus()
    ratio4 = serial_s / curve[GATE_WORKERS]
    lines = ["parallel sharded pass vs serial single pass (streamed binary)",
             "workload: {} events, {} analyses, {} usable cpu(s)".format(
                 events, len(ANALYSES), cpus),
             "serial: {:.3f}s ({:.0f} ev/s)".format(
                 serial_s, events / serial_s)]
    for workers in WORKER_COUNTS:
        lines.append("workers={}: {:.3f}s   speedup {:.2f}x".format(
            workers, curve[workers], serial_s / curve[workers]))
    if cpus < GATE_WORKERS:
        lines.append("note: host has {} usable cpu(s); the {:.1f}x@{}w "
                     "gate needs hardware parallelism and is demoted to "
                     "a warning here".format(cpus, GATE_RATIO,
                                             GATE_WORKERS))
    text = "\n".join(lines)
    print(text)
    write_result(results_dir, "engine_parallel.txt", text, data={
        "workload": {"events": events, "analyses": len(ANALYSES)},
        "cpus": cpus,
        "serial_s": round(serial_s, 4),
        "workers_s": {str(w): round(s, 4) for w, s in curve.items()},
        "events_per_s": round(events / curve[GATE_WORKERS], 1),
        "ratio": round(ratio4, 3),
        "gate": {"workers": GATE_WORKERS, "min_ratio": GATE_RATIO,
                 "enforced": cpus >= GATE_WORKERS},
    })
    if cpus >= GATE_WORKERS:
        gate(ratio4 >= GATE_RATIO, text)
    elif ratio4 < GATE_RATIO:
        # a cpu-limited host cannot express the scaling target; record
        # the curve and warn, exactly like REPRO_BENCH_NO_GATE would
        import warnings
        warnings.warn("perf gate waived ({} usable cpu(s) < {} workers): "
                      .format(cpus, GATE_WORKERS) + text)


def test_parallel_reports_match_serial():
    """Sharding must not buy speed with wrong answers: identical race
    sets on a fresh (small) workload, serial vs 4 workers."""
    from repro.core.engine import run_stream

    spec = WorkloadSpec(name="parallel-check", threads=6, events=20_000,
                        predictive_races=2, hb_races=2, seed=21)
    trace = generate_trace(spec)
    path = os.path.join(tempfile.mkdtemp(), "check.bin")
    with open(path, "wb") as fp:
        dump_trace(trace, fp, binary=True)
    serial = run_stream(path, ANALYSES)
    sharded = run_stream(path, ANALYSES, workers=4)
    assert serial.ok and sharded.ok
    for name in ANALYSES:
        assert [(r.index, r.var, r.kinds) for r in sharded.report(name).races] \
            == [(r.index, r.var, r.kinds) for r in serial.report(name).races], \
            name
