"""Ablations of this reproduction's design choices (DESIGN.md §7).

* rule (b) queue realization: the published per-pair queues versus the
  semantically identical per-producer log with consumer cursors.
* SmartTrack's epoch acquire queues versus FTO's vector-clock queues
  (paper §4.2 "Optimizing Acq"), measured via the queue footprints.
"""

import pytest

from benchmarks.conftest import jsonable, write_result
from repro.core.fto import FTODC
from repro.core.smarttrack import SmartTrackDC
from repro.core.unopt import UnoptDC


@pytest.mark.parametrize("style", ["log", "pairwise"])
@pytest.mark.parametrize("program", ["h2", "xalan", "tomcat"])
def test_rule_b_queue_styles(benchmark, meas, program, style):
    trace = meas.trace_for(program)
    report = benchmark.pedantic(
        lambda: UnoptDC(trace, rule_b_style=style).run(),
        rounds=1, iterations=1)
    assert report.events_processed == len(trace)


def test_epoch_queues_use_less_memory(benchmark, meas, results_dir):
    trace = meas.trace_for("h2")

    def measure():
        st = SmartTrackDC(trace)
        st.run()
        fto = FTODC(trace)
        fto.run()
        return st._queues.footprint_bytes(), fto._queues.footprint_bytes()

    st_bytes, fto_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert st_bytes < fto_bytes
    write_result(results_dir, "ablation_rule_b.txt",
                 "SmartTrack epoch queues: {} bytes\n"
                 "FTO vector-clock queues: {} bytes".format(
                     st_bytes, fto_bytes),
                 data=jsonable({"st_bytes": st_bytes,
                                "fto_bytes": fto_bytes}))
