"""Checkpointed incremental re-analysis: the ``analyze --cache`` path.

Three timed runs over the same ~1M-event recorded trace, end to end
through :func:`repro.checkpoint.analyze_cached` (segment hashing, cache
lookup, engine replay, summary rendering — everything the CLI pays):

* **cold**: empty cache; the full trace replays and a checkpoint lands
  at the last segment boundary.
* **warm**: nothing changed; the run must come back from the result
  cache with **zero** events replayed — this is where the ``>= 10x``
  gate lives (the remaining cost is hashing the file and reading one
  JSON document).
* **suffix**: the trace grows by a few percent; the run restores the
  checkpoint and replays only the appended suffix (plus at most one
  partial segment), so its cost must be proportional to the suffix,
  not the trace — gated against the cold time scaled by the replayed
  fraction.

Workloads scale with ``REPRO_BENCH_SCALE`` (default 0.5; see conftest).
"""

import io
import os
import re
import tempfile
import time

from benchmarks.conftest import bench_scale, gate, write_result
from repro.checkpoint import analyze_cached
from repro.trace.format import dump_trace
from repro.trace.trace import Trace
from repro.workloads import WorkloadSpec, generate_trace

ANALYSES = ["st-wdc"]


def _spec():
    return WorkloadSpec(name="checkpoint-bench", threads=8,
                        events=max(int(1_000_000 * bench_scale()), 20_000),
                        locks=16, shared_vars=512, local_vars=128,
                        p_cs=0.002, read_fraction=0.75, burst=8.0,
                        predictive_races=2, hb_races=2, seed=13)


def _run(cache, path):
    out, err = io.StringIO(), io.StringIO()
    t0 = time.perf_counter()
    code = analyze_cached(cache, path, ANALYSES, out=out, err=err)
    dt = time.perf_counter() - t0
    accounting = err.getvalue().strip()
    match = re.search(r"cache: (?:warm hit - )?replayed (\d+) of (\d+) "
                      r"events", accounting)
    assert match, accounting
    return dt, code, out.getvalue(), accounting, int(match.group(1))


def test_checkpoint_cache_speedups(results_dir):
    trace = generate_trace(_spec())
    base = tempfile.mkdtemp()
    path = os.path.join(base, "checkpoint-bench.bintrace")
    with open(path, "wb") as fp:
        dump_trace(trace, fp, binary=True)
    cache = os.path.join(base, "cache")
    total = len(trace)

    cold_s, cold_code, cold_out, cold_acct, cold_replayed = _run(cache, path)
    assert "(cold)" in cold_acct and cold_replayed == total

    warm_s, warm_code, warm_out, warm_acct, warm_replayed = _run(cache, path)
    assert warm_replayed == 0, warm_acct
    assert warm_out == cold_out and warm_code == cold_code

    # grow the trace by ~6% of pure data accesses (always well-formed to
    # append) and rewrite the file; only the suffix should replay
    suffix = [e for e in trace.events if e.kind <= 1]
    suffix = suffix[:max(total // 16, 4096)]
    extended = Trace(list(trace.events) + suffix,
                     num_threads=trace.num_threads,
                     num_locks=trace.num_locks, num_vars=trace.num_vars,
                     num_volatiles=trace.num_volatiles,
                     num_classes=trace.num_classes, validate=False)
    with open(path, "wb") as fp:
        dump_trace(extended, fp, binary=True)

    suffix_s, _, _, suffix_acct, suffix_replayed = _run(cache, path)
    assert "resumed from checkpoint" in suffix_acct, suffix_acct
    fraction = suffix_replayed / len(extended)
    assert fraction < 0.2, suffix_acct  # suffix + at most one segment

    warm_ratio = cold_s / warm_s
    suffix_budget = cold_s * max(4 * fraction, 0.35)
    text = ("checkpointed incremental re-analysis (analyze --cache)\n"
            "workload: {} events, {} analyses, binary format\n"
            "cold: {:.3f}s   warm: {:.3f}s ({:.1f}x, 0 events replayed)\n"
            "suffix: {:.3f}s ({} of {} events replayed, {:.1%} — budget "
            "{:.3f}s)"
            .format(total, len(ANALYSES), cold_s, warm_s, warm_ratio,
                    suffix_s, suffix_replayed, len(extended), fraction,
                    suffix_budget))
    print(text)
    write_result(results_dir, "engine_checkpoint.txt", text, data={
        "workload": {"events": total, "extended_events": len(extended),
                     "analyses": ANALYSES},
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "suffix_s": round(suffix_s, 4),
        "suffix_replayed_events": suffix_replayed,
        "suffix_fraction": round(fraction, 4),
        "warm_ratio": round(warm_ratio, 2),
        "events_per_s_cold": round(total / cold_s, 1),
    })
    gate(warm_ratio >= 10.0, text)
    gate(suffix_s <= suffix_budget, text)
