"""Figure gallery benches: the paper's example executions (Figures 1-4)
run through the full analysis matrix, plus vindication of Figure 1/2
races and refutation of Figure 3's false WDC race."""

import pytest

import repro
from benchmarks.conftest import jsonable, write_result
from repro.workloads.figures import ALL_FIGURES

MATRIX = ["fto-hb", "unopt-wcp", "st-wcp", "unopt-dc", "fto-dc", "st-dc",
          "unopt-wdc", "st-wdc"]


@pytest.mark.parametrize("figure", sorted(ALL_FIGURES))
def test_figure_matrix(benchmark, figure, results_dir):
    trace = ALL_FIGURES[figure]()

    def run_all():
        return {name: repro.detect_races(trace, name).racy_vars
                for name in MATRIX}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["{}:".format(figure)]
    for name, racy in results.items():
        lines.append("  {:<10} {}".format(
            name, sorted(trace.name_of("var", v) for v in racy)))
    write_result(results_dir, "figure_{}.txt".format(figure),
                 "\n".join(lines), data=jsonable(results))


def test_vindication(benchmark, results_dir):
    from repro.workloads import figure1, figure2, figure3

    def vindicate_all():
        return {
            "figure1": repro.vindicate_first_race(figure1(), "st-wdc").verdict,
            "figure2": repro.vindicate_first_race(figure2(), "st-dc").verdict,
            "figure3": repro.vindicate_first_race(figure3(), "st-wdc").verdict,
        }

    verdicts = benchmark.pedantic(vindicate_all, rounds=1, iterations=1)
    assert verdicts == {"figure1": "vindicated", "figure2": "vindicated",
                        "figure3": "refuted"}
    write_result(results_dir, "figure_vindication.txt", repr(verdicts),
                 data=jsonable(verdicts))
