"""Single-pass engine vs sequential per-analysis runs.

The always-on deployment analyzes one recorded execution with many
configurations.  The old harness path re-iterates (and, offline,
re-parses) the trace once per configuration — ``O(analyses × events)``;
the :class:`~repro.core.engine.MultiRunner` pays one iteration *and*
shares cross-analysis work (one HB clock bank for the WCP family, one
same-epoch redundancy check for all tiers).  Three scenarios:

* **offline / streaming** (the headline): each sequential run streams the
  recorded trace file from disk, as every ``repro analyze`` invocation
  does; the engine parses the file once and feeds all analyses.  This is
  where the ``>= 2.5x`` single-pass win lives (the sequential baseline
  pays the lazy parse N times).
* **in-memory**: with the trace already materialized, handler work
  dominates — and the engine must now *beat* sequential re-iteration
  (``>= 1.15x``), because the shared HB bank computes the WCP family's
  HB joins once per event instead of once per analysis, and the shared
  same-epoch filter dispatches each provably-redundant access zero times
  instead of N times.
* **binary ingest**: raw streaming decode of the same 1M-event capture
  in the v1 text format vs the v2 binary format
  (:mod:`repro.trace.binfmt`) — varint decoding beats line
  splitting/int-parsing by >= 2x, which is the dominant cost of the
  whole offline streaming path.

Workloads scale with ``REPRO_BENCH_SCALE`` (default 0.5; see conftest),
so the CI smoke job can run a reduced cut of the same benchmarks.
"""

import os
import tempfile
import time

import pytest

from benchmarks.conftest import bench_scale, gate, write_result
from repro.clocks.epoch import TID_BITS
from repro.core.engine import _EPOCH_ENDERS, MultiRunner, run_stream
from repro.core.kernels import kernels_available
from repro.core.registry import MAIN_MATRIX, create
from repro.trace.binfmt import BinaryTraceWriter
from repro.trace.format import dump_trace, stream_trace
from repro.workloads import generate_trace, WorkloadSpec

#: All Table 3-6 configurations of the paper's main matrix.
ANALYSES = list(MAIN_MATRIX)


def _spec():
    return WorkloadSpec(name="engine-bench", threads=6,
                        events=max(int(60000 * bench_scale()), 2000),
                        predictive_races=2, hb_races=2, seed=7)


def _best_pair(fn_a, fn_b, repeats=3, warmup=0):
    """Best-of-N for two timed functions, trials interleaved so thermal
    and allocator drift hits both sides equally.  ``warmup`` untimed
    rounds let CPython's adaptive interpreter specialize the hot loops
    before the first counted trial."""
    for _ in range(warmup):
        fn_a()
        fn_b()
    best_a = best_b = float("inf")
    for _ in range(repeats):
        best_a = min(best_a, fn_a())
        best_b = min(best_b, fn_b())
    return best_a, best_b


def _workload():
    trace = generate_trace(_spec())
    path = os.path.join(tempfile.mkdtemp(), "engine-bench.trace")
    with open(path, "w") as fp:
        dump_trace(trace, fp)
    return trace, path


def test_streaming_single_pass_speedup(results_dir):
    """One parse feeding all analyses vs one parse per analysis."""
    trace, path = _workload()

    def sequential():
        t0 = time.perf_counter()
        for name in ANALYSES:
            result = run_stream(path, [name])
            assert result.ok
        return time.perf_counter() - t0

    def single_pass():
        t0 = time.perf_counter()
        result = run_stream(path, ANALYSES)
        assert result.ok
        return time.perf_counter() - t0

    seq, multi = _best_pair(sequential, single_pass)
    speedup = seq / multi
    text = ("engine streaming single-pass vs sequential per-analysis\n"
            "workload: {} events, {} analyses\n"
            "sequential: {:.3f}s   single-pass: {:.3f}s   speedup: {:.2f}x"
            .format(len(trace), len(ANALYSES), seq, multi, speedup))
    print(text)
    write_result(results_dir, "engine_streaming.txt", text, data={
        "workload": {"events": len(trace), "analyses": len(ANALYSES)},
        "sequential_s": round(seq, 4),
        "single_pass_s": round(multi, 4),
        "events_per_s": round(len(trace) / multi, 1),
        "ratio": round(speedup, 3),
    })
    gate(speedup >= 2.5, text)


def test_in_memory_single_pass_advantage(results_dir):
    """With the trace materialized, the engine's cross-analysis sharing
    (one HB bank for the WCP family, one same-epoch filter for all) must
    beat sequential re-iteration outright."""
    trace, _ = _workload()

    def sequential():
        t0 = time.perf_counter()
        for name in ANALYSES:
            create(name, trace).run()
        return time.perf_counter() - t0

    def single_pass():
        t0 = time.perf_counter()
        result = MultiRunner(
            [create(name, trace) for name in ANALYSES]).run(trace)
        assert result.ok
        return time.perf_counter() - t0

    seq, multi = _best_pair(sequential, single_pass, repeats=7, warmup=1)
    ratio = seq / multi
    text = ("engine in-memory single-pass vs sequential re-iteration\n"
            "workload: {} events, {} analyses\n"
            "sequential: {:.3f}s   single-pass: {:.3f}s   ratio: {:.2f}x"
            .format(len(trace), len(ANALYSES), seq, multi, ratio))
    print(text)
    write_result(results_dir, "engine_inmemory.txt", text, data={
        "workload": {"events": len(trace), "analyses": len(ANALYSES)},
        "sequential_s": round(seq, 4),
        "single_pass_s": round(multi, 4),
        "events_per_s": round(len(trace) / multi, 1),
        "ratio": round(ratio, 3),
    })
    gate(ratio >= 1.15, text)


def test_binary_ingest_speedup(results_dir):
    """v2 binary vs v1 text: raw streaming ingest of ~1M events.

    Times a bare drain of ``stream_trace`` (no analyses attached) so the
    comparison isolates parse/decode cost — exactly what dominates the
    streaming path's overhead.
    """
    n = (max(int(2_000_000 * bench_scale()), 80_000) // 8) * 8
    base = tempfile.mkdtemp()
    text_path = os.path.join(base, "ingest.trace")
    with open(text_path, "w") as fp:
        fp.write("# repro trace v1: threads=2 locks=1 vars=4 "
                 "events={}\n".format(n))
        chunk = (
            "T0 acq m0 @1\nT0 wr x0 @2\nT0 rel m0 @3\n"
            "T1 acq m0 @4\nT1 wr x0 @5\nT1 rel m0 @6\n"
            "T0 rd x1 @7\nT1 rd x2 @8\n"
        )
        for _ in range(n // 8):
            fp.write(chunk)
    binary_path = os.path.join(base, "ingest.bintrace")
    source = stream_trace(text_path)
    with source, BinaryTraceWriter(binary_path, source.require_info()) as w:
        for event in source:
            w.write(event)
    assert w.events_written == n

    def ingest(path):
        def run():
            t0 = time.perf_counter()
            stream = stream_trace(path)
            for _ in stream:
                pass
            dt = time.perf_counter() - t0
            assert stream.events_read == n
            return dt
        return run

    text_s, binary_s = _best_pair(ingest(text_path), ingest(binary_path),
                                  repeats=2)
    speedup = text_s / binary_s
    text = ("trace ingest: v2 binary vs v1 text (raw streaming decode)\n"
            "workload: {} events; text {} bytes, binary {} bytes "
            "({:.1f}x smaller)\n"
            "text: {:.3f}s ({:.2f}M ev/s)   binary: {:.3f}s "
            "({:.2f}M ev/s)   speedup: {:.2f}x"
            .format(n, os.path.getsize(text_path),
                    os.path.getsize(binary_path),
                    os.path.getsize(text_path) / os.path.getsize(binary_path),
                    text_s, n / text_s / 1e6,
                    binary_s, n / binary_s / 1e6, speedup))
    print(text)
    write_result(results_dir, "engine_binary_ingest.txt", text, data={
        "workload": {"events": n},
        "text_s": round(text_s, 4),
        "binary_s": round(binary_s, 4),
        "text_bytes": os.path.getsize(text_path),
        "binary_bytes": os.path.getsize(binary_path),
        "events_per_s": round(n / binary_s, 1),
        "ratio": round(speedup, 3),
    })
    gate(speedup >= 2.0, text)


#: The epoch tiers with batch kernels (DESIGN.md §8) — the replay hot
#: path the columnar kernels accelerate.
KERNEL_ANALYSES = ["ft2", "fto-hb", "st-wcp", "st-dc", "st-wdc"]


def _kernel_spec():
    """A RoadRunner-shaped workload for the replay hot path: long bursty
    access runs, mostly lock-free (low ``p_cs``), so the per-event
    interpreter dispatch the kernels eliminate dominates the scalar
    baseline — the regime Table 2's DaCapo programs live in."""
    return WorkloadSpec(name="kernel-bench", threads=8,
                        events=max(int(1_000_000 * bench_scale()), 20_000),
                        locks=16, shared_vars=512, local_vars=128,
                        p_cs=0.002, read_fraction=0.75, burst=8.0,
                        p_volatile=0.002, predictive_races=2, hb_races=2,
                        seed=11)


def _predecode(trace, chunk_size):
    """Decode + shared same-epoch filter, once, into flat chunk columns —
    the exact loop the parallel parent runs — so the timed region below
    is pure replay (``feed_decoded``), not parsing."""
    toks, last_r, last_w = {}, {}, {}
    chunks = []
    idx_b, kind_b, tid_b, tgt_b, site_b = [], [], [], [], []
    i = -1
    for e in trace.events:
        i += 1
        k = e.kind
        t = e.tid
        x = e.target
        if k <= 1:
            tok = toks.get(t, t)
            if k == 0:
                if last_r.get(x) == tok:
                    continue
                last_r[x] = tok
            else:
                if last_w.get(x) == tok:
                    continue
                last_w[x] = tok
                if x in last_r:
                    del last_r[x]
        elif _EPOCH_ENDERS[k]:
            toks[t] = toks.get(t, t) + (1 << TID_BITS)
        idx_b.append(i)
        kind_b.append(k)
        tid_b.append(t)
        tgt_b.append(x)
        site_b.append(e.site)
        if len(idx_b) == chunk_size:
            chunks.append((idx_b, kind_b, tid_b, tgt_b, site_b,
                           chunk_size, i + 1))
            idx_b, kind_b, tid_b, tgt_b, site_b = [], [], [], [], []
    if idx_b:
        chunks.append((idx_b, kind_b, tid_b, tgt_b, site_b,
                       len(idx_b), i + 1))
    return chunks, i + 1


def test_kernel_batch_speedup(results_dir):
    """Columnar batch kernels vs per-event replay on the epoch tiers.

    Both sides replay the same predecoded flat chunks through
    ``feed_decoded`` — the only difference is ``use_kernels`` — and the
    reports (race tuples and peak footprint) must match bit for bit.
    """
    if not kernels_available():
        pytest.skip("numpy unavailable or REPRO_NO_NUMPY set")
    chunk_size = 32768
    trace = generate_trace(_kernel_spec())
    chunks, total = _predecode(trace, chunk_size)

    def replay(use_kernels):
        def run():
            analyses = [create(n, trace) for n in KERNEL_ANALYSES]
            runner = MultiRunner(analyses, chunk_events=chunk_size,
                                 use_kernels=use_kernels)
            sess = runner.session()
            t0 = time.perf_counter()
            for c in chunks:
                sess.feed_decoded(list(c[0]), list(c[1]), list(c[2]),
                                  list(c[3]), list(c[4]), c[5], c[6])
            res = sess.finish()
            dt = time.perf_counter() - t0
            assert res.ok
            run.signature = tuple(
                (en.name,
                 tuple((r.index, r.site, r.var, r.tid, r.access, r.kinds)
                       for r in en.report.races),
                 en.report.peak_footprint_bytes)
                for en in res.entries)
            return dt
        return run

    scalar, kernel = replay(False), replay(True)
    off, on = _best_pair(scalar, kernel, repeats=5, warmup=1)
    assert scalar.signature == kernel.signature
    ratio = off / on
    text = ("engine batch kernels vs per-event replay (epoch tiers)\n"
            "workload: {} events ({} after same-epoch filter), "
            "{} analyses, chunk {}\n"
            "scalar: {:.3f}s ({:.2f}M ev/s)   kernels: {:.3f}s "
            "({:.2f}M ev/s)   speedup: {:.2f}x"
            .format(total, sum(c[5] for c in chunks), len(KERNEL_ANALYSES),
                    chunk_size, off, total / off / 1e6,
                    on, total / on / 1e6, ratio))
    print(text)
    write_result(results_dir, "engine_kernels.txt", text, data={
        "workload": {"events": total,
                     "kept_events": sum(c[5] for c in chunks),
                     "analyses": len(KERNEL_ANALYSES),
                     "chunk_events": chunk_size},
        "scalar_s": round(off, 4),
        "kernels_s": round(on, 4),
        "events_per_s": round(total / on, 1),
        "ratio": round(ratio, 3),
    })
    gate(ratio >= 3.0, text)


def test_single_pass_reports_match_sequential():
    """The speedup is not bought with wrong answers: identical reports —
    including through the shared-HB bank and the same-epoch filter."""
    trace, path = _workload()
    streamed = run_stream(path, ANALYSES)
    assert streamed.ok
    for name in ANALYSES:
        solo = create(name, trace).run()
        multi = streamed.report(name)
        assert [(r.index, r.var, r.kinds) for r in multi.races] == \
            [(r.index, r.var, r.kinds) for r in solo.races], name
