"""Public API tests and hypothesis property tests over random traces."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.registry import ANALYSIS_NAMES, create, relation_of, tier_of
from repro.oracle import compute_closure
from repro.oracle.closure import racy_vars
from repro.workloads import figure1
from tests.conftest import ALL_ANALYSES, random_trace


class TestPublicApi:
    def test_detect_races_default(self):
        report = repro.detect_races(figure1())
        assert report.analysis_name == "st-wdc"
        assert report.dynamic_count == 1

    def test_all_registry_names_instantiate(self):
        trace = figure1()
        for name in ANALYSIS_NAMES:
            analysis = create(name, trace)
            report = analysis.run()
            assert report.events_processed == len(trace)

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError, match="unknown analysis"):
            repro.detect_races(figure1(), "magic")

    def test_relation_and_tier_metadata(self):
        assert relation_of("st-dc") == "dc"
        assert relation_of("unopt-wdc-g") == "wdc"
        assert tier_of("ft2") == "epoch"
        assert tier_of("fto-wcp") == "fto"
        assert tier_of("unopt-hb") == "unopt"
        assert tier_of("st-wdc") == "st"

    def test_main_matrix_is_eleven_analyses(self):
        assert len(repro.MAIN_MATRIX) == 11

    def test_vindicate_first_race_api(self):
        result = repro.vindicate_first_race(figure1())
        assert result.vindicated

    def test_report_repr_and_records(self):
        report = repro.detect_races(figure1(), "st-dc")
        assert "st-dc" in repr(report)
        record = report.first_race
        assert record.access == "write"
        assert "RaceRecord" in repr(record)
        assert report.races_on(record.var) == [record]

    def test_footprint_sampling(self):
        report = repro.detect_races(figure1(), "unopt-dc",
                                    sample_footprint_every=1)
        assert report.peak_footprint_bytes > 0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000),
       st.sampled_from(ALL_ANALYSES))
def test_analyses_never_crash_and_match_oracle_on_race_existence(seed, name):
    trace = random_trace(random.Random(seed), n_events=40)
    report = create(name, trace).run()
    relation = relation_of(name)
    oracle = racy_vars(trace, compute_closure(trace, relation))
    assert report.racy_vars == oracle


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_race_reports_are_ordered_and_within_bounds(seed):
    trace = random_trace(random.Random(seed), n_events=40)
    report = repro.detect_races(trace, "st-dc")
    indices = [r.index for r in report.races]
    assert indices == sorted(indices)
    for r in report.races:
        assert 0 <= r.index < len(trace)
        event = trace.events[r.index]
        assert event.target == r.var
        assert event.tid == r.tid


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_footprints_nonnegative_and_monotone_with_sampling(seed):
    trace = random_trace(random.Random(seed), n_events=60)
    for name in ("unopt-dc", "st-wdc"):
        analysis = create(name, trace)
        report = analysis.run(sample_every=8)
        assert report.peak_footprint_bytes >= 0
