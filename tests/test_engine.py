"""Tests for the single-pass multi-analysis engine (repro.core.engine)."""

import io

import pytest

import repro
from repro.core.base import Analysis
from repro.core.engine import MultiRunner, run_analyses, run_stream
from repro.core.registry import MAIN_MATRIX, create
from repro.harness.tables import TABLE3_ANALYSES
from repro.trace.trace import TraceInfo
from repro.workloads import figure1, generate_trace, WorkloadSpec
from tests.conftest import ALL_ANALYSES, random_trace


class OneShotEvents:
    """An event source that counts iterations and refuses to rewind."""

    def __init__(self, events):
        self.events = list(events)
        self.iterations = 0

    def __iter__(self):
        if self.iterations:
            raise RuntimeError("event source rewound")
        self.iterations += 1
        return iter(self.events)


class ExplodingAnalysis(Analysis):
    """Raises inside a handler at a chosen event index."""

    name = "exploding"
    relation = "none"
    tier = "test"

    def __init__(self, trace, explode_at=0):
        super().__init__(trace)
        self.explode_at = explode_at

    def _handle(self, t, x, i, site):
        if i >= self.explode_at:
            raise ZeroDivisionError("boom at {}".format(i))

    read = write = acquire = release = _handle
    fork = join = volatile_read = volatile_write = _handle
    static_init = static_access = _handle


def _race_key(report):
    return [(r.index, r.var, r.tid, r.access, r.kinds) for r in report.races]


class TestSinglePass:
    def test_exactly_one_iteration_for_table3_configs(self, rng):
        trace = random_trace(rng, n_events=120)
        analyses = [create(name, trace) for name in TABLE3_ANALYSES]
        source = OneShotEvents(trace.events)
        result = MultiRunner(analyses).run(source)
        assert source.iterations == 1
        assert result.events_processed == len(trace)
        for entry in result.entries:
            assert entry.ok
            assert entry.report.events_processed == len(trace)

    def test_exactly_one_iteration_for_main_matrix(self, rng):
        trace = random_trace(rng, n_events=80)
        analyses = [create(name, trace) for name in MAIN_MATRIX]
        source = OneShotEvents(trace.events)
        MultiRunner(analyses).run(source)
        assert source.iterations == 1

    def test_accepts_plain_generator(self):
        trace = figure1()
        gen = (e for e in trace.events)
        result = run_analyses(trace, ["st-wdc"], events=gen)
        assert result.report("st-wdc").dynamic_count == 1

    def test_matches_solo_runs_on_figure1(self):
        trace = figure1()
        result = repro.detect_races_multi(trace)
        for name in MAIN_MATRIX:
            solo = repro.detect_races(trace, name)
            assert _race_key(result.report(name)) == _race_key(solo), name

    def test_empty_analysis_list_rejected(self):
        with pytest.raises(ValueError):
            MultiRunner([])

    def test_traceinfo_requires_explicit_events(self):
        info = TraceInfo(num_threads=2)
        with pytest.raises(TypeError):
            run_analyses(info, ["st-wdc"])


class TestErrorIsolation:
    def test_failure_is_recorded_and_others_finish(self, rng):
        trace = random_trace(rng, n_events=60)
        exploding = ExplodingAnalysis(trace, explode_at=17)
        healthy = create("st-wdc", trace)
        result = MultiRunner([exploding, healthy]).run(trace)
        assert not result.ok
        (failure,) = result.failures
        assert failure.name == "exploding"
        assert failure.event_index == 17
        assert isinstance(failure.error, ZeroDivisionError)
        # the healthy analysis is untouched and matches a solo run
        solo = repro.detect_races(trace, "st-wdc")
        assert _race_key(result.report("st-wdc")) == _race_key(solo)
        assert result.report("st-wdc").events_processed == len(trace)

    def test_failed_analysis_has_no_report(self):
        trace = figure1()
        exploding = ExplodingAnalysis(trace, explode_at=0)
        result = MultiRunner([exploding]).run(trace)
        assert result.entries[0].report is None
        with pytest.raises(KeyError):
            result.report("exploding")
        # the stream is still drained fully (events_processed is total)
        assert result.events_processed == len(trace)

    def test_all_analyses_can_fail_mid_stream(self, rng):
        trace = random_trace(rng, n_events=40)
        a = ExplodingAnalysis(trace, explode_at=5)
        b = ExplodingAnalysis(trace, explode_at=9)
        result = MultiRunner([a, b]).run(trace)
        assert [f.event_index for f in result.failures] == [5, 9]


class TestInstanceIsolation:
    """Two instances of the same analysis, one stream, zero interference
    (the dispatch-table contract: all mutable state is per-instance)."""

    @pytest.mark.parametrize("name", ALL_ANALYSES)
    def test_same_analysis_side_by_side(self, name, rng):
        trace = random_trace(rng, n_events=70)
        first = create(name, trace)
        second = create(name, trace)
        result = MultiRunner([first, second],
                             sample_every=64).run(trace)
        assert result.ok
        r1, r2 = result.entries[0].report, result.entries[1].report
        assert _race_key(r1) == _race_key(r2)
        assert r1.peak_footprint_bytes == r2.peak_footprint_bytes
        solo = create(name, trace).run(sample_every=64)
        assert _race_key(r1) == _race_key(solo)
        assert r1.peak_footprint_bytes == solo.peak_footprint_bytes

    def test_footprint_sampling_cadence_matches_solo(self, rng):
        trace = random_trace(rng, n_events=90)
        for name in ("st-dc", "unopt-wcp", "ft2"):
            multi = MultiRunner([create(name, trace)],
                                sample_every=32).run(trace)
            solo = create(name, trace).run(sample_every=32)
            assert multi.report(name).peak_footprint_bytes == \
                solo.peak_footprint_bytes, name


class TestProgress:
    def test_progress_callback_shared(self):
        spec = WorkloadSpec(name="p", threads=3, events=2000, seed=5)
        trace = generate_trace(spec)
        seen = []
        runner = MultiRunner([create("st-wdc", trace),
                              create("fto-hb", trace)],
                             progress=seen.append, chunk_events=512)
        result = runner.run(trace)
        # called once per chunk with the running event count, regardless
        # of how many analyses are registered; the shared same-epoch
        # filter means one chunk covers >= chunk_events source events,
        # so boundaries are monotone and there are at most ceil(n/512)
        # of them, with the final call reporting the full count
        n = result.events_processed
        assert seen[-1] == n
        assert seen == sorted(set(seen))
        assert len(seen) <= (n + 511) // 512 + 1
        assert all(b - a >= 512 for a, b in zip(seen[:-1], seen[1:-1]))

    def test_progress_reaches_total_when_tail_is_filtered(self):
        # regression: a stream whose trailing events are all dropped by
        # the shared same-epoch filter yields no final chunk, but the
        # callback must still report the full event count
        from repro.trace.event import Event, READ
        from repro.trace.trace import Trace

        events = [Event(0, READ, x, 1) for x in (0, 1, 2, 3)]
        events += [Event(0, READ, 0, 1)] * 10
        trace = Trace(events)
        seen = []
        result = MultiRunner([create("fto-hb", trace)], chunk_events=4,
                             progress=seen.append).run(trace)
        assert result.events_processed == len(trace)
        assert seen[-1] == len(trace)


class TestStreaming:
    def test_run_stream_requires_header(self):
        from repro.trace.format import TraceFormatError
        with pytest.raises(TraceFormatError, match="header"):
            run_stream(io.StringIO("T0 rd x0\n"), ["st-wdc"])

    def test_one_million_events_bounded_memory(self, tmp_path):
        """The acceptance scenario: a 1M-event text trace is analyzed
        through a one-shot stream — the Trace is never materialized (the
        stream raises on any rewind attempt)."""
        n = 1_000_000
        path = tmp_path / "million.trace"
        with open(path, "w") as fp:
            fp.write("# repro trace v1: threads=2 locks=1 vars=4\n")
            chunk = (
                "T0 acq m0 @1\nT0 wr x0 @2\nT0 rel m0 @3\n"
                "T1 acq m0 @4\nT1 wr x0 @5\nT1 rel m0 @6\n"
                "T0 rd x1 @7\nT1 rd x2 @8\n"
            )
            for _ in range(n // 8):
                fp.write(chunk)
        from repro.trace.format import stream_trace
        stream = stream_trace(str(path))
        info = stream.require_info()
        assert info.num_threads == 2
        result = run_analyses(info, ["ft2"], events=stream)
        assert result.events_processed == n
        assert stream.events_read == n
        assert result.report("ft2").dynamic_count == 0
        # one-shot: the engine cannot have rewound, and nobody else can
        with pytest.raises(RuntimeError, match="one-shot"):
            iter(stream)

    def test_graph_variant_streams(self, tmp_path):
        # constraint-graph analyses size off a hint, so they work even
        # when the event count is unknown up front
        trace = figure1()
        path = tmp_path / "g.trace"
        with open(path, "w") as fp:
            repro.dump_trace(trace, fp)
        result = run_stream(str(path), ["unopt-wdc-g"])
        assert result.ok
        assert result.report("unopt-wdc-g").dynamic_count == \
            repro.detect_races(trace, "unopt-wdc").dynamic_count

    def test_stream_matches_materialized(self, tmp_path):
        spec = WorkloadSpec(name="s", threads=4, events=3000,
                            predictive_races=1, hb_races=1, seed=77)
        trace = generate_trace(spec)
        path = tmp_path / "s.trace"
        with open(path, "w") as fp:
            repro.dump_trace(trace, fp)
        streamed = run_stream(str(path), ["st-wdc", "fto-hb"])
        for name in ("st-wdc", "fto-hb"):
            solo = repro.detect_races(trace, name)
            assert _race_key(streamed.report(name)) == _race_key(solo)


class ExplodingWcp(Analysis):
    """A TRACKS_HB analysis that raises partway through, to exercise
    error isolation inside a fused shared-HB group."""

    name = "exploding-wcp"
    relation = "wcp"
    tier = "test"

    def __new__(cls, trace, explode_at=0):
        from repro.core.unopt import UnoptWCP

        class _Boom(UnoptWCP):
            name = "exploding-wcp"

            def read(self, t, x, i, site):
                if i >= self.explode_at:
                    raise ZeroDivisionError("boom at {}".format(i))
                return super().read(t, x, i, site)

        inst = _Boom(trace)
        inst.explode_at = explode_at
        return inst


class TestSharedHB:
    def _wcp_trace(self, rng, n=200):
        return random_trace(rng, n_events=n, threads=4, locks=3, nvars=4)

    def test_bank_activates_for_two_or_more_wcp_analyses(self, rng):
        trace = self._wcp_trace(rng)
        analyses = [create(n, trace) for n in
                    ("unopt-wcp", "fto-wcp", "st-wcp", "fto-dc")]
        # kernel entries replay solo; disable them so st-wcp joins the bank
        runner = MultiRunner(analyses, use_kernels=False)
        # adoption is deferred to run() so a never-run runner leaves
        # its analyses untouched
        assert runner.hb_groups == []
        assert all(a._hb_owner for a in analyses[:3])
        runner.run(trace)
        assert len(runner.hb_groups) == 1
        bank, members = runner.hb_groups[0]
        assert len(members) == 3
        assert bank.refs == 3
        # every member reads literally the same clock bank
        for entry in members:
            assert entry.analysis.hh is bank.hh
            assert entry.analysis._hvol_w is bank.vol_w
            assert entry.analysis._lock_hb is bank.lock_hb
            assert entry.analysis._hb_owner is False
        # the non-WCP analysis keeps private state
        assert analyses[3].hh is None

    def test_no_bank_for_a_single_wcp_analysis(self, rng):
        trace = self._wcp_trace(rng)
        runner = MultiRunner([create("st-wcp", trace),
                              create("fto-dc", trace)])
        runner.run(trace)
        assert runner.hb_groups == []
        assert runner.entries[0].analysis._hb_owner is True

    def test_share_hb_false_disables_grouping(self, rng):
        trace = self._wcp_trace(rng)
        analyses = [create(n, trace) for n in ("unopt-wcp", "st-wcp")]
        runner = MultiRunner(analyses, share_hb=False)
        result = runner.run(trace)
        assert runner.hb_groups == []
        for name in ("unopt-wcp", "st-wcp"):
            solo = repro.detect_races(trace, name)
            assert _race_key(result.report(name)) == _race_key(solo), name

    def test_used_analysis_is_not_adopted(self, rng):
        trace = self._wcp_trace(rng)
        used = create("st-wcp", trace)
        used.run()  # no longer fresh: its HB clocks have advanced
        fresh = create("fto-wcp", trace)
        runner = MultiRunner([used, fresh])
        runner.run(trace)
        assert runner.hb_groups == []

    def test_shared_reports_match_solo_including_hard_edges(self, rng):
        # forks/joins/volatiles/class-inits all mutate HB state; the
        # bank must replicate each transition exactly once
        from tests.test_fuzz_differential import fuzzed_trace
        import random as _random

        for trial in (1, 3, 6, 9):
            trace = fuzzed_trace(_random.Random(99), trial)
            wcp_names = ("unopt-wcp", "fto-wcp", "st-wcp")
            result = MultiRunner(
                [create(n, trace) for n in wcp_names]).run(trace)
            assert result.ok
            for name in wcp_names:
                solo = repro.detect_races(trace, name)
                assert _race_key(result.report(name)) == _race_key(solo), \
                    (trial, name)

    def test_group_member_failure_is_isolated(self, rng):
        trace = self._wcp_trace(rng)
        boom = ExplodingWcp(trace, explode_at=40)
        survivors = [create("st-wcp", trace), create("fto-wcp", trace)]
        # kernel entries replay solo; disable them so the group forms
        runner = MultiRunner([boom] + survivors, use_kernels=False)
        result = runner.run(trace)
        assert len(runner.hb_groups) == 1
        bank, members = runner.hb_groups[0]
        (failure,) = result.failures
        assert failure.name == "exploding-wcp"
        assert isinstance(failure.error, ZeroDivisionError)
        assert bank.refs == 2
        # the surviving members still match their solo runs exactly
        for name in ("st-wcp", "fto-wcp"):
            solo = repro.detect_races(trace, name)
            assert _race_key(result.report(name)) == _race_key(solo), name
            assert result.report(name).events_processed == len(trace)

    def test_all_group_members_can_fail(self, rng):
        trace = self._wcp_trace(rng)
        a = ExplodingWcp(trace, explode_at=10)
        b = ExplodingWcp(trace, explode_at=30)
        result = MultiRunner([a, b, create("fto-hb", trace)]).run(trace)
        assert len(result.failures) == 2
        solo = repro.detect_races(trace, "fto-hb")
        assert _race_key(result.report("fto-hb")) == _race_key(solo)
        assert result.events_processed == len(trace)

    def test_footprint_sampling_matches_solo_in_shared_mode(self, rng):
        trace = self._wcp_trace(rng, n=400)
        analyses = [create(n, trace) for n in ("unopt-wcp", "st-wcp")]
        runner = MultiRunner(analyses, sample_every=32)
        result = runner.run(trace)
        assert len(runner.hb_groups) == 1
        for name in ("unopt-wcp", "st-wcp"):
            solo = create(name, trace).run(sample_every=32)
            assert result.report(name).peak_footprint_bytes == \
                solo.peak_footprint_bytes, name


class TestSameEpochFilter:
    def test_filter_disabled_under_sampling_and_case_counts(self, rng):
        trace = random_trace(rng, n_events=150)
        # sampling on: filter must not skip records (peaks sampled at
        # the same indices as solo runs)
        r1 = MultiRunner([create("fto-hb", trace)], sample_every=16)
        r1.run(trace)
        # case counting on: same-epoch case counters must keep counting
        counting = create("fto-hb", trace, collect_cases=True)
        result = MultiRunner([counting]).run(trace)
        solo = create("fto-hb", trace, collect_cases=True).run()
        assert result.report("fto-hb").case_counts == solo.case_counts

    def test_repeated_accesses_report_identically(self):
        from repro.trace.builder import TraceBuilder

        b = TraceBuilder()
        for _ in range(10):
            b.read("T1", "x")
        b.write("T2", "x")  # race with T1's reads
        for _ in range(10):
            b.write("T2", "x")  # same-epoch repeats
        trace = b.build()
        result = repro.detect_races_multi(trace)
        for name in MAIN_MATRIX:
            solo = repro.detect_races(trace, name)
            assert _race_key(result.report(name)) == _race_key(solo), name

    def test_filter_gated_on_same_epoch_capability(self, rng):
        # a custom analysis without the [Same Epoch] fast-path semantics
        # must see every event, even co-scheduled with built-in tiers
        trace = random_trace(rng, n_events=120)

        class CountingAnalysis(Analysis):
            name = "counting"

            def __init__(self, tr):
                super().__init__(tr)
                self.calls = 0

            def _handle(self, t, x, i, site):
                self.calls += 1

            read = write = acquire = release = _handle
            fork = join = volatile_read = volatile_write = _handle
            static_init = static_access = _handle

        counting = CountingAnalysis(trace)
        result = MultiRunner([counting, create("st-wdc", trace)]).run(trace)
        assert result.ok
        assert counting.calls == len(trace)
        # built-in tiers declare the capability, so a matrix-only run
        # does filter (strictly fewer dispatches than events)
        probe = CountingAnalysis(trace)
        probe.SAME_EPOCH_SKIP = True
        MultiRunner([probe]).run(trace)
        assert probe.calls < len(trace)

    def test_adopted_member_refuses_solo_run(self, rng):
        # regression: after an engine pass adopted an analysis into the
        # shared bank, running it solo must fail loudly, not silently
        # report with frozen HB clocks
        trace = random_trace(rng, n_events=200, threads=4, locks=3)
        a1, a2 = create("st-wcp", trace), create("fto-wcp", trace)
        # kernel entries replay solo; disable them so adoption happens
        MultiRunner([a1, a2], use_kernels=False).run(trace)
        with pytest.raises(RuntimeError, match="shared bank"):
            a1.run()

    def test_never_run_runner_leaves_analyses_usable(self, rng):
        trace = random_trace(rng, n_events=200, threads=4, locks=3)
        a1, a2 = create("st-wcp", trace), create("fto-wcp", trace)
        MultiRunner([a1, a2])  # constructed, never run
        solo = create("st-wcp", trace).run()
        assert _race_key(a1.run()) == _race_key(solo)

    def test_sampling_failure_detaches_only_the_faulty_member(self, rng):
        # regression: a footprint_bytes failure fires *after* the bank's
        # HB transition; it must be blamed on the member whose sampler
        # raised, not the last-dispatched member, and must not re-apply
        # the bank transition for that event
        trace = random_trace(rng, n_events=300, threads=4, locks=3)
        faulty = create("st-wcp", trace)

        def bad_footprint(_orig=faulty.footprint_bytes):
            raise OSError("sampler down")

        faulty.footprint_bytes = bad_footprint
        survivors = [create("unopt-wcp", trace), create("fto-wcp", trace)]
        result = MultiRunner([survivors[0], faulty, survivors[1]],
                             sample_every=16).run(trace)
        (failure,) = result.failures
        assert failure.name == "st-wcp"
        assert isinstance(failure.error, OSError)
        for name in ("unopt-wcp", "fto-wcp"):
            solo = create(name, trace).run(sample_every=16)
            assert _race_key(result.report(name)) == _race_key(solo), name
            assert result.report(name).peak_footprint_bytes == \
                solo.peak_footprint_bytes, name


class TestEpochEnderTable:
    def test_epoch_enders_cover_every_tier_bump_site(self):
        """The same-epoch filter's soundness rests on _EPOCH_ENDERS
        marking every event kind at which any SAME_EPOCH_SKIP tier
        advances a thread's local clock.  Drive each kind through a
        fresh instance of every registry analysis and require: observed
        bump => marked as an epoch ender."""
        from repro.core.engine import _EPOCH_ENDERS
        from repro.core.registry import ANALYSIS_NAMES
        from repro.trace.event import (
            ACQUIRE, FORK, JOIN, READ, RELEASE, STATIC_ACCESS,
            STATIC_INIT, VOLATILE_READ, VOLATILE_WRITE, WRITE,
        )
        from repro.trace.trace import TraceInfo

        info = TraceInfo(num_threads=2, num_locks=1, num_vars=1,
                         num_volatiles=1, num_classes=1)
        # per kind: (well-formedness prefix events, probe event), each
        # as (kind, tid, target)
        probes = {
            READ: ([], (READ, 0, 0)),
            WRITE: ([], (WRITE, 0, 0)),
            ACQUIRE: ([], (ACQUIRE, 0, 0)),
            RELEASE: ([(ACQUIRE, 0, 0)], (RELEASE, 0, 0)),
            FORK: ([], (FORK, 0, 1)),
            JOIN: ([(FORK, 0, 1)], (JOIN, 0, 1)),
            VOLATILE_READ: ([], (VOLATILE_READ, 0, 0)),
            VOLATILE_WRITE: ([], (VOLATILE_WRITE, 0, 0)),
            STATIC_INIT: ([], (STATIC_INIT, 0, 0)),
            STATIC_ACCESS: ([(STATIC_INIT, 1, 0)], (STATIC_ACCESS, 0, 0)),
        }
        for name in ANALYSIS_NAMES:
            for kind, (prefix, probe) in probes.items():
                analysis = create(name, info)
                if not analysis.SAME_EPOCH_SKIP:
                    continue
                table = analysis.dispatch_table()
                i = 0
                for k, t, x in prefix:
                    table[k](t, x, i, 0)
                    i += 1
                k, t, x = probe
                before = analysis._time(t)
                table[k](t, x, i, 0)
                bumped = analysis._time(t) > before
                assert not bumped or _EPOCH_ENDERS[kind], (
                    "{} bumps the local clock at kind {} but the "
                    "engine's same-epoch filter does not treat it as an "
                    "epoch ender".format(name, kind))


class TestSession:
    """The incremental session API (MultiRunner.session): feeding the
    stream in installments is bit-identical to the one-shot pass, new
    races surface per installment, and the lifecycle is enforced."""

    def _drain(self, session, events, window, rng=None):
        feed = iter(events)
        streamed = []
        while True:
            seen = session.events_processed
            streamed += session.feed(feed, max_events=window)
            if session.events_processed == seen:
                break
        return streamed

    def test_windowed_feeds_equal_one_shot(self, rng):
        trace = random_trace(rng, n_events=150)
        one_shot = MultiRunner(
            [create(n, trace) for n in ALL_ANALYSES]).run(trace)
        for window in (1, 7, 64, 10_000):
            session = MultiRunner(
                [create(n, trace) for n in ALL_ANALYSES]).session()
            self._drain(session, trace.events, window)
            result = session.finish()
            assert result.events_processed == len(trace)
            for name in ALL_ANALYSES:
                assert _race_key(result.report(name)) == \
                    _race_key(one_shot.report(name)), (window, name)

    def test_feed_returns_each_race_exactly_once_in_order(self, rng):
        trace = random_trace(rng, n_events=120)
        session = MultiRunner([create("st-wdc", trace)]).session()
        streamed = self._drain(session, trace.events, 13)
        result = session.finish()
        assert [(name, race.index) for name, race in streamed] == \
            [("st-wdc", race.index)
             for race in result.report("st-wdc").races]

    def test_snapshot_is_cheap_progress_view(self):
        trace = repro.loads_trace(repro.dumps_trace(figure1()))
        session = MultiRunner([create("st-wdc", trace),
                               create("fto-hb", trace)]).session()
        snap = session.snapshot()
        assert snap.events_processed == 0
        assert snap.dynamic_counts == {"st-wdc": 0, "fto-hb": 0}
        session.feed(trace.events)
        snap = session.snapshot()
        assert snap.events_processed == len(trace)
        assert snap.dynamic_counts["st-wdc"] == 1
        assert snap.static_counts["st-wdc"] == 1
        assert snap.dynamic_counts["fto-hb"] == 0
        assert snap.failures == []
        result = session.finish()
        assert result.report("st-wdc").dynamic_count == 1

    def test_lifecycle_enforced(self):
        trace = figure1()
        runner = MultiRunner([create("st-wdc", trace)])
        session = runner.session()
        with pytest.raises(RuntimeError, match="still"):
            runner.session()  # only one open session per runner
        session.feed(trace.events)
        session.finish()
        with pytest.raises(RuntimeError, match="finished"):
            session.feed(trace.events)
        with pytest.raises(RuntimeError, match="finished"):
            session.finish()
        runner2 = MultiRunner([create("st-wdc", trace)])
        abandoned = runner2.session()
        abandoned.close()  # close() releases without reports
        runner2.session()

    def test_failure_detached_across_feeds(self, rng):
        trace = random_trace(rng, n_events=60)
        exploding = ExplodingAnalysis(trace, explode_at=10)
        healthy = create("st-wdc", trace)
        session = MultiRunner([exploding, healthy]).session()
        session.feed(trace.events[:30])
        snap = session.snapshot()
        assert [f.name for f in snap.failures] == ["exploding"]
        session.feed(trace.events[30:])
        result = session.finish()
        assert [f.event_index for f in result.failures] == [10]
        solo = repro.detect_races(trace, "st-wdc")
        assert _race_key(result.report("st-wdc")) == _race_key(solo)
        assert result.report("st-wdc").events_processed == len(trace)

    def test_progress_spans_feeds(self):
        spec = WorkloadSpec(name="p", threads=3, events=2000, seed=5)
        trace = generate_trace(spec)
        seen = []
        runner = MultiRunner([create("st-wdc", trace)],
                             progress=seen.append, chunk_events=512)
        session = runner.session()
        self._drain(session, trace.events, 300)
        result = session.finish()
        assert seen[-1] == result.events_processed == len(trace)
        assert seen == sorted(set(seen))

    def test_shared_hb_group_active_across_installments(self, rng):
        trace = random_trace(rng, n_events=90)
        wcp_names = ("unopt-wcp", "fto-wcp", "st-wcp")
        runner = MultiRunner([create(n, trace) for n in wcp_names])
        session = runner.session()
        assert runner.hb_groups  # the family adopted a shared bank
        self._drain(session, trace.events, 11)
        result = session.finish()
        for name in wcp_names:
            solo = create(name, trace).run()
            assert _race_key(result.report(name)) == _race_key(solo), name

    def test_drain_is_windowed_feed_to_eof(self, rng):
        trace = random_trace(rng, n_events=140)
        session = MultiRunner([create("st-wdc", trace)]).session()
        streamed = list(session.drain(iter(trace.events), window=9))
        result = session.finish()
        assert session.events_processed == len(trace)
        assert [(name, race.index) for name, race in streamed] == \
            [("st-wdc", race.index)
             for race in result.report("st-wdc").races]

    def test_source_error_leaves_session_usable(self, rng):
        trace = random_trace(rng, n_events=50)

        def broken():
            for event in trace.events[:20]:
                yield event
            raise ValueError("wire fell out")

        session = MultiRunner([create("st-wdc", trace)]).session()
        with pytest.raises(ValueError, match="wire fell out"):
            session.feed(broken())
        assert session.events_processed == 20
        session.feed(trace.events[20:])  # resume after the feed error
        result = session.finish()
        solo = repro.detect_races(trace, "st-wdc")
        assert _race_key(result.report("st-wdc")) == _race_key(solo)


class TestServingState:
    """Serving-oriented session state: the resume ack offset and the
    bounded-state cap the multi-tenant server relies on."""

    def test_events_acked_mirrors_processed(self, rng):
        trace = random_trace(rng, n_events=90)
        session = MultiRunner([create("st-wdc", trace)]).session()
        assert session.events_acked == 0
        session.feed(iter(trace.events), max_events=40)
        assert session.events_acked == session.events_processed == 40
        session.feed(iter(trace.events[40:]))
        assert session.events_acked == len(trace)

    def test_acked_survives_source_error(self, rng):
        # the resume contract: every event decoded before the feed died
        # is acked, so a producer resending from the ack offset neither
        # skips nor double-applies anything
        trace = random_trace(rng, n_events=60)

        def dies_after(n):
            for event in trace.events[:n]:
                yield event
            raise OSError("producer died")

        session = MultiRunner([create("st-wdc", trace)]).session()
        with pytest.raises(OSError):
            session.feed(dies_after(25))
        assert session.events_acked == session.events_processed == 25
        session.feed(iter(trace.events[session.events_acked:]))
        result = session.finish()
        solo = repro.detect_races(trace, "st-wdc")
        assert _race_key(result.report("st-wdc")) == _race_key(solo)

    def test_snapshot_carries_the_ack_offset(self, rng):
        trace = random_trace(rng, n_events=70)
        session = MultiRunner([create("st-wdc", trace)]).session()
        session.feed(iter(trace.events), max_events=30)
        snap = session.snapshot()
        assert snap.events_acked == 30
        assert snap.events_acked == snap.events_processed

    def test_max_pending_races_bounds_records_not_counts(self, rng):
        trace = random_trace(rng, n_events=400)
        unbounded = MultiRunner([create("st-wdc", trace)]).run(trace)
        reference = unbounded.report("st-wdc")
        if reference.dynamic_count <= 5:
            pytest.skip("workload found too few races to exercise the cap")

        runner = MultiRunner([create("st-wdc", trace)],
                             max_pending_races=5)
        session = runner.session()
        streamed = list(session.drain(trace, window=32))
        result = session.finish()
        report = result.report("st-wdc")
        # every race was still streamed out exactly once...
        assert len(streamed) == reference.dynamic_count
        # ...and the aggregate counts stay exact...
        assert report.dynamic_count == reference.dynamic_count
        assert report.static_count == reference.static_count
        # ...but the retained records are capped
        assert len(report.races) <= 5
