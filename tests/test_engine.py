"""Tests for the single-pass multi-analysis engine (repro.core.engine)."""

import io

import pytest

import repro
from repro.core.base import Analysis
from repro.core.engine import MultiRunner, run_analyses, run_stream
from repro.core.registry import MAIN_MATRIX, create
from repro.harness.tables import TABLE3_ANALYSES
from repro.trace.trace import TraceInfo
from repro.workloads import figure1, generate_trace, WorkloadSpec
from tests.conftest import ALL_ANALYSES, random_trace


class OneShotEvents:
    """An event source that counts iterations and refuses to rewind."""

    def __init__(self, events):
        self.events = list(events)
        self.iterations = 0

    def __iter__(self):
        if self.iterations:
            raise RuntimeError("event source rewound")
        self.iterations += 1
        return iter(self.events)


class ExplodingAnalysis(Analysis):
    """Raises inside a handler at a chosen event index."""

    name = "exploding"
    relation = "none"
    tier = "test"

    def __init__(self, trace, explode_at=0):
        super().__init__(trace)
        self.explode_at = explode_at

    def _handle(self, t, x, i, site):
        if i >= self.explode_at:
            raise ZeroDivisionError("boom at {}".format(i))

    read = write = acquire = release = _handle
    fork = join = volatile_read = volatile_write = _handle
    static_init = static_access = _handle


def _race_key(report):
    return [(r.index, r.var, r.tid, r.access, r.kinds) for r in report.races]


class TestSinglePass:
    def test_exactly_one_iteration_for_table3_configs(self, rng):
        trace = random_trace(rng, n_events=120)
        analyses = [create(name, trace) for name in TABLE3_ANALYSES]
        source = OneShotEvents(trace.events)
        result = MultiRunner(analyses).run(source)
        assert source.iterations == 1
        assert result.events_processed == len(trace)
        for entry in result.entries:
            assert entry.ok
            assert entry.report.events_processed == len(trace)

    def test_exactly_one_iteration_for_main_matrix(self, rng):
        trace = random_trace(rng, n_events=80)
        analyses = [create(name, trace) for name in MAIN_MATRIX]
        source = OneShotEvents(trace.events)
        MultiRunner(analyses).run(source)
        assert source.iterations == 1

    def test_accepts_plain_generator(self):
        trace = figure1()
        gen = (e for e in trace.events)
        result = run_analyses(trace, ["st-wdc"], events=gen)
        assert result.report("st-wdc").dynamic_count == 1

    def test_matches_solo_runs_on_figure1(self):
        trace = figure1()
        result = repro.detect_races_multi(trace)
        for name in MAIN_MATRIX:
            solo = repro.detect_races(trace, name)
            assert _race_key(result.report(name)) == _race_key(solo), name

    def test_empty_analysis_list_rejected(self):
        with pytest.raises(ValueError):
            MultiRunner([])

    def test_traceinfo_requires_explicit_events(self):
        info = TraceInfo(num_threads=2)
        with pytest.raises(TypeError):
            run_analyses(info, ["st-wdc"])


class TestErrorIsolation:
    def test_failure_is_recorded_and_others_finish(self, rng):
        trace = random_trace(rng, n_events=60)
        exploding = ExplodingAnalysis(trace, explode_at=17)
        healthy = create("st-wdc", trace)
        result = MultiRunner([exploding, healthy]).run(trace)
        assert not result.ok
        (failure,) = result.failures
        assert failure.name == "exploding"
        assert failure.event_index == 17
        assert isinstance(failure.error, ZeroDivisionError)
        # the healthy analysis is untouched and matches a solo run
        solo = repro.detect_races(trace, "st-wdc")
        assert _race_key(result.report("st-wdc")) == _race_key(solo)
        assert result.report("st-wdc").events_processed == len(trace)

    def test_failed_analysis_has_no_report(self):
        trace = figure1()
        exploding = ExplodingAnalysis(trace, explode_at=0)
        result = MultiRunner([exploding]).run(trace)
        assert result.entries[0].report is None
        with pytest.raises(KeyError):
            result.report("exploding")
        # the stream is still drained fully (events_processed is total)
        assert result.events_processed == len(trace)

    def test_all_analyses_can_fail_mid_stream(self, rng):
        trace = random_trace(rng, n_events=40)
        a = ExplodingAnalysis(trace, explode_at=5)
        b = ExplodingAnalysis(trace, explode_at=9)
        result = MultiRunner([a, b]).run(trace)
        assert [f.event_index for f in result.failures] == [5, 9]


class TestInstanceIsolation:
    """Two instances of the same analysis, one stream, zero interference
    (the dispatch-table contract: all mutable state is per-instance)."""

    @pytest.mark.parametrize("name", ALL_ANALYSES)
    def test_same_analysis_side_by_side(self, name, rng):
        trace = random_trace(rng, n_events=70)
        first = create(name, trace)
        second = create(name, trace)
        result = MultiRunner([first, second],
                             sample_every=64).run(trace)
        assert result.ok
        r1, r2 = result.entries[0].report, result.entries[1].report
        assert _race_key(r1) == _race_key(r2)
        assert r1.peak_footprint_bytes == r2.peak_footprint_bytes
        solo = create(name, trace).run(sample_every=64)
        assert _race_key(r1) == _race_key(solo)
        assert r1.peak_footprint_bytes == solo.peak_footprint_bytes

    def test_footprint_sampling_cadence_matches_solo(self, rng):
        trace = random_trace(rng, n_events=90)
        for name in ("st-dc", "unopt-wcp", "ft2"):
            multi = MultiRunner([create(name, trace)],
                                sample_every=32).run(trace)
            solo = create(name, trace).run(sample_every=32)
            assert multi.report(name).peak_footprint_bytes == \
                solo.peak_footprint_bytes, name


class TestProgress:
    def test_progress_callback_shared(self):
        spec = WorkloadSpec(name="p", threads=3, events=2000, seed=5)
        trace = generate_trace(spec)
        seen = []
        runner = MultiRunner([create("st-wdc", trace),
                              create("fto-hb", trace)],
                             progress=seen.append, chunk_events=512)
        result = runner.run(trace)
        # called once per chunk with the running event count, regardless
        # of how many analyses are registered
        n = result.events_processed
        assert seen == [min(512 * (c + 1), n)
                        for c in range((n + 511) // 512)]


class TestStreaming:
    def test_run_stream_requires_header(self):
        from repro.trace.format import TraceFormatError
        with pytest.raises(TraceFormatError, match="header"):
            run_stream(io.StringIO("T0 rd x0\n"), ["st-wdc"])

    def test_one_million_events_bounded_memory(self, tmp_path):
        """The acceptance scenario: a 1M-event text trace is analyzed
        through a one-shot stream — the Trace is never materialized (the
        stream raises on any rewind attempt)."""
        n = 1_000_000
        path = tmp_path / "million.trace"
        with open(path, "w") as fp:
            fp.write("# repro trace v1: threads=2 locks=1 vars=4\n")
            chunk = (
                "T0 acq m0 @1\nT0 wr x0 @2\nT0 rel m0 @3\n"
                "T1 acq m0 @4\nT1 wr x0 @5\nT1 rel m0 @6\n"
                "T0 rd x1 @7\nT1 rd x2 @8\n"
            )
            for _ in range(n // 8):
                fp.write(chunk)
        from repro.trace.format import stream_trace
        stream = stream_trace(str(path))
        info = stream.require_info()
        assert info.num_threads == 2
        result = run_analyses(info, ["ft2"], events=stream)
        assert result.events_processed == n
        assert stream.events_read == n
        assert result.report("ft2").dynamic_count == 0
        # one-shot: the engine cannot have rewound, and nobody else can
        with pytest.raises(RuntimeError, match="one-shot"):
            iter(stream)

    def test_graph_variant_streams(self, tmp_path):
        # constraint-graph analyses size off a hint, so they work even
        # when the event count is unknown up front
        trace = figure1()
        path = tmp_path / "g.trace"
        with open(path, "w") as fp:
            repro.dump_trace(trace, fp)
        result = run_stream(str(path), ["unopt-wdc-g"])
        assert result.ok
        assert result.report("unopt-wdc-g").dynamic_count == \
            repro.detect_races(trace, "unopt-wdc").dynamic_count

    def test_stream_matches_materialized(self, tmp_path):
        spec = WorkloadSpec(name="s", threads=4, events=3000,
                            predictive_races=1, hb_races=1, seed=77)
        trace = generate_trace(spec)
        path = tmp_path / "s.trace"
        with open(path, "w") as fp:
            repro.dump_trace(trace, fp)
        streamed = run_stream(str(path), ["st-wdc", "fto-hb"])
        for name in ("st-wdc", "fto-hb"):
            solo = repro.detect_races(trace, name)
            assert _race_key(streamed.report(name)) == _race_key(solo)
