"""Tests for the oracle closure and the predictable-race search."""

import pytest

from repro.oracle import (
    check_predicted_trace,
    compute_closure,
    find_witness,
    has_predictable_race,
    predictable_race_pairs,
    search_witness,
)
from repro.oracle.closure import first_race, race_pairs
from repro.trace import TraceBuilder


def build(fn):
    b = TraceBuilder()
    fn(b)
    return b.build()


class TestHBClosure:
    def test_program_order(self):
        trace = build(lambda b: b.read("T1", "x").write("T1", "x"))
        cl = compute_closure(trace, "hb")
        assert cl.ordered(0, 1)

    def test_release_acquire_edge(self):
        def body(b):
            b.write("T1", "x").acquire("T1", "m").release("T1", "m")
            b.acquire("T2", "m").release("T2", "m").write("T2", "x")
        cl = compute_closure(build(body), "hb")
        assert cl.ordered(0, 5)

    def test_unrelated_locks_do_not_order(self):
        def body(b):
            b.write("T1", "x").acquire("T1", "m").release("T1", "m")
            b.acquire("T2", "n").release("T2", "n").write("T2", "x")
        cl = compute_closure(build(body), "hb")
        assert not cl.ordered(0, 5)

    def test_fork_orders_parent_before_child(self):
        def body(b):
            b.write("T1", "x").fork("T1", "T2").write("T2", "x")
        cl = compute_closure(build(body), "hb")
        assert cl.ordered(0, 2)

    def test_join_orders_child_before_joiner(self):
        def body(b):
            b.write("T2", "x").join("T1", "T2").write("T1", "x")
        cl = compute_closure(build(body), "hb")
        assert cl.ordered(0, 2)

    def test_volatile_write_read_orders(self):
        def body(b):
            b.write("T1", "x").volatile_write("T1", "v")
            b.volatile_read("T2", "v").write("T2", "x")
        cl = compute_closure(build(body), "hb")
        assert cl.ordered(0, 3)

    def test_class_init_orders(self):
        def body(b):
            b.write("T1", "x").static_init("T1", "K")
            b.static_access("T2", "K").write("T2", "x")
        cl = compute_closure(build(body), "hb")
        assert cl.ordered(0, 3)


class TestPredictiveClosures:
    def test_rule_a_orders_release_to_conflicting_access(self):
        def body(b):
            b.acquire("T1", "m").write("T1", "x").release("T1", "m")
            b.acquire("T2", "m").read("T2", "x").release("T2", "m")
        trace = build(body)
        for rel in ("wcp", "dc", "wdc"):
            cl = compute_closure(trace, rel)
            assert cl.ordered(2, 4), rel  # rel(m)T1 before rd(x)T2
            assert not race_pairs(trace, cl)

    def test_non_conflicting_critical_sections_do_not_order(self):
        def body(b):
            b.read("T1", "x")
            b.acquire("T1", "m").write("T1", "y").release("T1", "m")
            b.acquire("T2", "m").read("T2", "z").release("T2", "m")
            b.write("T2", "x")
        trace = build(body)
        for rel in ("wcp", "dc", "wdc"):
            cl = compute_closure(trace, rel)
            assert not cl.ordered(0, 7), rel

    def test_wcp_composes_with_hb_but_dc_does_not(self):
        # Figure 2's skeleton: the ordering chain needs HB composition.
        from repro.workloads import figure2
        trace = figure2()
        wcp = compute_closure(trace, "wcp")
        dc = compute_closure(trace, "dc")
        assert wcp.ordered(0, 11)  # rd(x)T1 WCP-before wr(x)T3
        assert not dc.ordered(0, 11)

    def test_rule_b_fixpoint(self):
        from repro.workloads import figure3
        trace = figure3()
        dc = compute_closure(trace, "dc")
        wdc = compute_closure(trace, "wdc")
        rd_x = next(i for i, e in enumerate(trace.events)
                    if e.kind == 0 and trace.name_of("var", e.target) == "x")
        wr_x = next(i for i, e in enumerate(trace.events)
                    if e.kind == 1 and trace.name_of("var", e.target) == "x")
        assert dc.ordered(rd_x, wr_x)
        assert not wdc.ordered(rd_x, wr_x)

    def test_open_critical_section_is_second_position_only(self):
        def body(b):
            b.acquire("T1", "m").write("T1", "x").release("T1", "m")
            b.acquire("T2", "m").read("T2", "x")  # never released
        trace = build(body)
        cl = compute_closure(trace, "wdc")
        assert cl.ordered(2, 4)  # rel(m)T1 before the read in the open CS

    def test_relation_nesting_on_race_sets(self, rng):
        from tests.conftest import random_trace
        for _ in range(30):
            trace = random_trace(rng, n_events=40)
            racy = {}
            for rel in ("hb", "wcp", "dc", "wdc"):
                cl = compute_closure(trace, rel)
                racy[rel] = {trace.events[j].target
                             for _, j in race_pairs(trace, cl)}
            assert racy["hb"] <= racy["wcp"] <= racy["dc"] <= racy["wdc"]

    def test_first_race_picks_earliest_second_access(self):
        def body(b):
            b.write("T1", "x").write("T1", "y")
            b.read("T2", "y").read("T2", "x")
        trace = build(body)
        cl = compute_closure(trace, "hb")
        assert first_race(trace, cl) == (1, 2)

    def test_unknown_relation_rejected(self):
        trace = build(lambda b: b.read("T1", "x"))
        with pytest.raises(ValueError, match="unknown relation"):
            compute_closure(trace, "cp")


class TestPredictableSearch:
    def test_simple_unsynchronized_race(self):
        def body(b):
            b.write("T1", "x").read("T2", "x")
        trace = build(body)
        witness = find_witness(trace, (0, 1))
        assert witness is not None
        assert check_predicted_trace(trace, witness, require_race_pair=(0, 1))

    def test_lock_protected_accesses_not_predictable(self):
        def body(b):
            b.acquire("T1", "m").write("T1", "x").release("T1", "m")
            b.acquire("T2", "m").write("T2", "x").release("T2", "m")
        trace = build(body)
        witness, exhausted = search_witness(trace, (1, 4))
        assert witness is None and exhausted

    def test_read_keeps_last_writer(self):
        # T2's read saw T1's first write; a predicted trace may not place
        # the second write in between.
        def body(b):
            b.write("T1", "x", site="w1")
            b.volatile_write("T1", "g")
            b.volatile_read("T2", "g")
            b.read("T2", "x")
            b.write("T1", "x", site="w2")
        trace = build(body)
        # (3, 4): rd(x)T2 vs the second wr(x)T1 - adjacent is possible by
        # scheduling the read first.
        witness = find_witness(trace, (3, 4))
        assert witness is not None
        assert check_predicted_trace(trace, witness, require_race_pair=(3, 4))

    def test_fork_gates_child_events(self):
        def body(b):
            b.write("T1", "x").fork("T1", "T2").read("T2", "x")
        trace = build(body)
        witness, exhausted = search_witness(trace, (0, 2))
        assert witness is None and exhausted

    def test_join_requires_child_completion(self):
        def body(b):
            b.write("T2", "x").join("T1", "T2").read("T1", "x")
        trace = build(body)
        witness, exhausted = search_witness(trace, (0, 2))
        assert witness is None and exhausted

    def test_figure1_witness_matches_paper(self):
        from repro.workloads import figure1
        trace = figure1()
        pairs = predictable_race_pairs(trace)
        assert (0, 7) in pairs

    def test_two_reads_never_race(self):
        def body(b):
            b.read("T1", "x").read("T2", "x")
        trace = build(body)
        assert find_witness(trace, (0, 1)) is None

    def test_checker_rejects_po_violation(self):
        def body(b):
            b.read("T1", "x").write("T1", "y")
        trace = build(body)
        assert not check_predicted_trace(trace, [1, 0])

    def test_checker_rejects_bad_locking(self):
        def body(b):
            b.acquire("T1", "m")
            b.acquire("T2", "n")
        trace = build(body)
        assert check_predicted_trace(trace, [0, 1])
        assert not check_predicted_trace(trace, [0, 0])

    def test_checker_rejects_changed_last_writer(self):
        def body(b):
            b.write("T1", "x")
            b.write("T2", "x")
            b.volatile_write("T2", "g")
            b.volatile_read("T1", "g")
            b.read("T1", "x")  # read T2's write in the original
        trace = build(body)
        # Omitting T2's write changes the read's last writer.
        assert not check_predicted_trace(trace, [0, 2, 3, 4])
