"""Shared test fixtures and helpers.

The fuzz volume of the differential sweep (``tests/test_fuzz_differential``)
is dialed by ``--fuzz-count N`` (default 200) or the ``FUZZ_COUNT``
environment variable, so CI can trade coverage for wall clock.
"""

from __future__ import annotations

import os
import random
from typing import Dict, List

import pytest

DEFAULT_FUZZ_COUNT = 200


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-count", type=int, default=None,
        help="random traces per fuzz sweep (default {}, or FUZZ_COUNT "
             "env)".format(DEFAULT_FUZZ_COUNT))


@pytest.fixture(scope="session")
def fuzz_count(request) -> int:
    opt = request.config.getoption("--fuzz-count", default=None)
    if opt is not None:
        return opt
    return int(os.environ.get("FUZZ_COUNT", DEFAULT_FUZZ_COUNT))

from repro.trace.event import (
    ACQUIRE,
    READ,
    RELEASE,
    VOLATILE_READ,
    VOLATILE_WRITE,
    WRITE,
    Event,
)
from repro.core.registry import ANALYSIS_NAMES, BY_RELATION
from repro.trace.trace import Trace

# Every registered streaming analysis (graph-building "-g" variants are
# offline-only and exercised separately).  Derived from the registry so a
# newly registered analysis automatically joins every fuzz sweep.
ALL_ANALYSES = [n for n in ANALYSIS_NAMES if not n.endswith("-g")]

REL_ANALYSES = {rel: list(names) for rel, names in BY_RELATION.items()}


def random_trace(rng: random.Random, n_events: int = 50, threads: int = 4,
                 locks: int = 3, nvars: int = 4, nvol: int = 2,
                 volatiles: bool = True, tame: bool = False) -> Trace:
    """A random well-formed trace for differential tests.

    ``tame`` restricts shared accesses to lock-protected ones (plus
    per-thread private variables), which makes race-free traces likely.
    """
    events: List[Event] = []
    held: Dict[int, List[int]] = {t: [] for t in range(threads)}
    for _ in range(n_events):
        t = rng.randrange(threads)
        if tame:
            if held[t]:
                choices = ["rd", "wr", "rd", "wr", "local"]
            else:
                choices = ["local", "local"]
        else:
            choices = ["rd", "wr", "rd", "wr"]
        if volatiles:
            choices += ["vrd", "vwr"]
        free = [m for m in range(locks)
                if all(m not in h for h in held.values())]
        if free and len(held[t]) < 3:
            choices += ["acq", "acq"]
        if held[t]:
            choices += ["rel", "rel"]
        op = rng.choice(choices)
        if op == "acq":
            m = rng.choice(free)
            held[t].append(m)
            events.append(Event(t, ACQUIRE, m, 100 + m))
        elif op == "rel":
            m = held[t].pop()
            events.append(Event(t, RELEASE, m, 200 + m))
        elif op == "vrd":
            events.append(Event(t, VOLATILE_READ, rng.randrange(nvol), 300))
        elif op == "vwr":
            events.append(Event(t, VOLATILE_WRITE, rng.randrange(nvol), 310))
        elif op == "local":
            # a per-thread private variable: never races
            x = nvars + t
            kind = READ if rng.random() < 0.6 else WRITE
            events.append(Event(t, kind, x, 400 + t))
        else:
            # shared variables are consistently protected in tame mode
            if tame:
                x = held[t][-1] % nvars
            else:
                x = rng.randrange(nvars)
            kind = READ if op == "rd" else WRITE
            events.append(Event(t, kind, x, (10 if op == "rd" else 20) + x))
    for t in range(threads):
        while held[t]:
            events.append(Event(t, RELEASE, held[t].pop(), 250))
    return Trace(events)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
