"""The litmus gallery: every crafted execution behaves as constructed,
under the oracle and under every analysis."""

import pytest

import repro
from repro.oracle import compute_closure, racy_vars
from repro.workloads.litmus import EXPECTED, LITMUS
from tests.conftest import REL_ANALYSES


def names(trace, vars_):
    return {trace.name_of("var", v) for v in vars_}


@pytest.mark.parametrize("litmus", sorted(LITMUS))
@pytest.mark.parametrize("relation", ["hb", "wcp", "dc", "wdc"])
def test_oracle_matches_expected(litmus, relation):
    trace = LITMUS[litmus]()
    closure = compute_closure(trace, relation)
    assert names(trace, racy_vars(trace, closure)) == \
        EXPECTED[litmus][relation], (litmus, relation)


@pytest.mark.parametrize("litmus", sorted(LITMUS))
@pytest.mark.parametrize("relation", ["hb", "wcp", "dc", "wdc"])
def test_analyses_match_expected(litmus, relation):
    trace = LITMUS[litmus]()
    for name in REL_ANALYSES[relation]:
        report = repro.detect_races(trace, name)
        assert names(trace, report.racy_vars) == \
            EXPECTED[litmus][relation], (litmus, relation, name)


def test_expected_sets_nest_across_relations():
    for litmus, expected in EXPECTED.items():
        assert expected["hb"] <= expected["wcp"] <= expected["dc"] \
            <= expected["wdc"], litmus


def test_dc_not_wdc_nested_is_not_predictable():
    from repro.oracle import has_predictable_race
    trace = LITMUS["dc_not_wdc_nested"]()
    assert not has_predictable_race(trace)


def test_predictive_litmus_races_are_predictable():
    from repro.oracle import has_predictable_race
    for litmus in ("hb_only_sync", "wait_releases_lock",
                   "independent_locks"):
        assert has_predictable_race(LITMUS[litmus]()), litmus
