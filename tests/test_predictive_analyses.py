"""Unit tests for the predictive tiers: Algorithm 1 (Unopt), Algorithm 2
(FTO), and Algorithm 3 (SmartTrack), plus WCP-specific behaviour."""

import pytest

import repro
from repro.clocks.vector_clock import INF, VectorClock
from repro.core.fto import FTODC, FTOWCP, FTOWDC
from repro.core.smarttrack import SmartTrackDC, SmartTrackWCP, SmartTrackWDC
from repro.core.unopt import UnoptDC, UnoptWCP, UnoptWDC
from repro.trace import TraceBuilder

PREDICTIVE_CLASSES = [UnoptWCP, UnoptDC, UnoptWDC,
                      FTOWCP, FTODC, FTOWDC,
                      SmartTrackWCP, SmartTrackDC, SmartTrackWDC]
DC_FAMILY = [UnoptDC, UnoptWDC, FTODC, FTOWDC, SmartTrackDC, SmartTrackWDC]
RULE_B_CLASSES = [UnoptWCP, UnoptDC, FTOWCP, FTODC, SmartTrackWCP, SmartTrackDC]


def build(fn):
    b = TraceBuilder()
    fn(b)
    return b.build()


def run(cls, trace, **kw):
    analysis = cls(trace, **kw)
    return analysis, analysis.run()


@pytest.mark.parametrize("cls", PREDICTIVE_CLASSES)
class TestRuleA:
    def test_conflicting_critical_sections_order(self, cls):
        def body(b):
            b.acquire("T1", "m").write("T1", "x").release("T1", "m")
            b.acquire("T2", "m").read("T2", "x").release("T2", "m")
        _, report = run(cls, build(body))
        assert report.dynamic_count == 0

    def test_protected_then_later_access_ordered_transitively(self, cls):
        def body(b):
            b.acquire("T1", "m").write("T1", "x").write("T1", "z")
            b.release("T1", "m")
            b.acquire("T2", "m").read("T2", "x").release("T2", "m")
            b.read("T2", "z")
        _, report = run(cls, build(body))
        assert report.dynamic_count == 0

    def test_hb_ordered_but_unprotected_is_predictive_race(self, cls):
        from repro.workloads import figure1
        _, report = run(cls, figure1())
        assert report.dynamic_count == 1

    def test_nested_critical_sections(self, cls):
        def body(b):
            b.acquire("T1", "m").acquire("T1", "n").write("T1", "x")
            b.release("T1", "n").release("T1", "m")
            b.acquire("T2", "n").read("T2", "x").release("T2", "n")
        _, report = run(cls, build(body))
        assert report.dynamic_count == 0


@pytest.mark.parametrize("cls", RULE_B_CLASSES)
class TestRuleB:
    def test_figure3_is_ordered_by_rule_b(self, cls):
        if cls.relation == "wcp":
            pytest.skip("figure 3's x is already WCP-ordered via HB")
        from repro.workloads import figure3
        _, report = run(cls, figure3())
        assert report.dynamic_count == 0

    def test_rule_b_styles_agree(self, cls, rng):
        from tests.conftest import random_trace
        for _ in range(10):
            trace = random_trace(rng, n_events=50)
            _, log_report = run(cls, trace, rule_b_style="log")
            _, pair_report = run(cls, trace, rule_b_style="pairwise")
            assert ([(r.index, r.var) for r in log_report.races]
                    == [(r.index, r.var) for r in pair_report.races])


@pytest.mark.parametrize("cls", [UnoptWDC, FTOWDC, SmartTrackWDC])
class TestWDC:
    def test_wdc_omits_rule_b(self, cls):
        from repro.workloads import figure3
        _, report = run(cls, figure3())
        assert report.dynamic_count == 1  # the (false) WDC race

    def test_no_queues_allocated(self, cls):
        trace = build(lambda b: b.acquire("T1", "m").release("T1", "m"))
        analysis, _ = run(cls, trace)
        assert analysis._queues is None


class TestWcpSpecifics:
    def test_wcp_clock_never_exceeds_hb_clock(self, rng):
        from tests.conftest import random_trace
        for _ in range(20):
            trace = random_trace(rng, n_events=60)
            analysis, _ = run(UnoptWCP, trace)
            for t in range(trace.num_threads):
                cc, hh = analysis.cc[t], analysis.hh[t]
                for u in range(trace.num_threads):
                    if u != t:
                        assert cc[u] <= hh[u]

    def test_wcp_left_composes_with_hb(self):
        # rel(m)T1 WCP-orders into T2's critical section via the
        # conflicting accesses; events HB-before the release come along.
        def body(b):
            b.write("T1", "z")
            b.acquire("T1", "m").write("T1", "x").release("T1", "m")
            b.acquire("T2", "m").read("T2", "x").release("T2", "m")
            b.read("T2", "z")
        _, report = run(UnoptWCP, build(body))
        assert report.dynamic_count == 0

    def test_wcp_does_not_order_plain_lock_sync(self):
        from repro.workloads import figure1
        _, report = run(UnoptWCP, figure1())
        assert report.dynamic_count == 1

    def test_wcp_right_composes_with_hb(self):
        from repro.workloads import figure2
        for cls in (UnoptWCP, FTOWCP, SmartTrackWCP):
            _, report = run(cls, figure2())
            assert report.dynamic_count == 0, cls.name


class TestSmartTrackInternals:
    def test_release_time_deferred_until_release(self):
        def body(b):
            b.acquire("T1", "m").write("T1", "x")
        trace = build(body)
        analysis = SmartTrackDC(trace)
        analysis.run()
        # the critical section never released: its clock is still open (∞)
        lw = analysis._lw[0]
        assert lw[0].clock[0] == INF

    def test_release_publishes_through_shared_reference(self):
        def body(b):
            b.acquire("T1", "m").write("T1", "x").release("T1", "m")
        analysis, _ = run(SmartTrackDC, build(body))
        lw = analysis._lw[0]
        assert lw[0].clock[0] < INF  # updated in place at the release

    def test_cs_lists_mirror_last_access(self):
        def body(b):
            b.acquire("T1", "m").acquire("T1", "n").write("T1", "x")
            b.release("T1", "n").release("T1", "m")
        analysis, _ = run(SmartTrackDC, build(body))
        lw = analysis._lw[0]
        assert [e.lock for e in lw] == [0, 1]  # outermost first

    def test_no_per_lock_variable_metadata(self):
        # SmartTrack replaces L^{r,w}_{m,x} and R_m/W_m entirely (§4.2).
        analysis = SmartTrackDC(build(lambda b: b.read("T1", "x")))
        assert not hasattr(analysis, "_rm")

    def test_epoch_rule_b_queues(self):
        def body(b):
            b.acquire("T1", "m").release("T1", "m")
            b.acquire("T2", "m").release("T2", "m")
        analysis, _ = run(SmartTrackDC, build(body))
        assert analysis._queues.epoch_acquires

    def test_unopt_dc_uses_vc_queues(self):
        analysis = UnoptDC(build(lambda b: b.read("T1", "x")))
        assert not analysis._queues.epoch_acquires

    def test_read_shared_owned_still_absorbs_write_cs(self):
        # The scenario behind the documented [Read Shared]-residual
        # deviation (DESIGN.md §4): u writes x and y inside a critical
        # section on m and hands x (but not the release of m) to t via a
        # volatile; t's second read of x runs inside m and the later read
        # of y must be rule (a)-ordered, not racy.
        def body(b):
            b.acquire("Tu", "m").write("Tu", "y").write("Tu", "x")
            b.volatile_write("Tu", "g")
            b.release("Tu", "m")
            b.volatile_read("Tt", "g")
            b.read("Tt", "x")       # [Read Share]: residual stored
            b.acquire("Tt", "m")
            b.read("Tt", "x")       # [Read Shared Owned]: must absorb E^w
            b.release("Tt", "m")
            b.read("Tt", "y")       # ordered only via rel(m)Tu -> rd(x)Tt
        for cls in (SmartTrackDC, SmartTrackWDC, FTODC, UnoptDC):
            _, report = run(cls, build(body))
            assert report.dynamic_count == 0, cls.__name__

    def test_multicheck_residual_goes_to_extra_metadata(self):
        from repro.workloads import figure4c
        analysis, report = run(SmartTrackDC, figure4c())
        assert report.dynamic_count == 0

    def test_case_counters_cover_all_nsea_cases(self):
        from repro.workloads import figure4a
        _, report = run(SmartTrackWDC, figure4a(), collect_cases=True)
        assert sum(report.case_counts.values()) > 0


class TestTierAgreement:
    @pytest.mark.parametrize("relation,classes", [
        ("wcp", [UnoptWCP, FTOWCP, SmartTrackWCP]),
        ("dc", [UnoptDC, FTODC, SmartTrackDC]),
        ("wdc", [UnoptWDC, FTOWDC, SmartTrackWDC]),
    ])
    def test_final_clocks_identical_on_race_free_traces(self, relation,
                                                        classes, rng):
        from tests.conftest import random_trace
        checked = 0
        for _ in range(40):
            trace = random_trace(rng, n_events=40, tame=True)
            analyses = [cls(trace) for cls in classes]
            reports = [a.run() for a in analyses]
            if any(r.dynamic_count for r in reports):
                continue  # metadata may diverge after races (§5.6)
            checked += 1
            for t in range(trace.num_threads):
                # own components are never consulted by checks and differ
                # benignly between tiers (see leq_except); compare the
                # cross-thread components, which define the relation.
                base = [v for u, v in enumerate(analyses[0].cc[t]) if u != t]
                for other in analyses[1:]:
                    cross = [v for u, v in enumerate(other.cc[t]) if u != t]
                    assert cross == base, (relation, t)
        assert checked >= 5
