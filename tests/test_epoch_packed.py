"""Property tests for the packed-epoch representation.

Epochs ``c@t`` are packed ints ``c << TID_BITS | t``
(:mod:`repro.clocks.epoch`).  These tests pin the representation:
round-trips across the boundary tids/clocks, agreement of ``epoch_leq``
with the original tuple formulation on randomized inputs, and the
engine-facing width bound.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import EPOCH_BOTTOM, VectorClock, epoch_leq
from repro.clocks.epoch import (
    MAX_TID,
    TID_BITS,
    TID_MASK,
    clock_of,
    epoch,
    pack,
    tid_of,
)
from repro.clocks.vector_clock import INF


def tuple_epoch_leq(e, vc, self_tid):
    """The pre-packing reference implementation (tuple epochs)."""
    if e is None:
        return True
    c, t = e
    return t == self_tid or c <= vc[t]


class TestPackRoundTrip:
    @pytest.mark.parametrize("clock", [0, 1, 2, 1000, INF - 1, INF, INF + 7])
    @pytest.mark.parametrize("tid", [0, 1, 7, MAX_TID - 1, MAX_TID])
    def test_boundary_round_trips(self, clock, tid):
        e = pack(clock, tid)
        assert clock_of(e) == clock
        assert tid_of(e) == tid

    def test_epoch_alias_is_pack(self):
        assert epoch(5, 2) == pack(5, 2) == 5 << TID_BITS | 2

    def test_bottom_unchanged(self):
        assert EPOCH_BOTTOM is None

    def test_packed_epochs_are_ordered_by_clock_within_thread(self):
        # same tid: larger clock packs to a larger int (used nowhere for
        # correctness, but a useful sanity property of the layout)
        assert pack(3, 1) < pack(4, 1)

    def test_distinct_components_never_collide(self):
        seen = set()
        for clock in (0, 1, 2, INF):
            for tid in (0, 1, MAX_TID):
                e = pack(clock, tid)
                assert e not in seen
                seen.add(e)

    def test_mask_and_bits_consistent(self):
        assert TID_MASK == (1 << TID_BITS) - 1
        assert MAX_TID == TID_MASK


@settings(max_examples=300, deadline=None)
@given(
    st.integers(min_value=0, max_value=INF + 10),
    st.integers(min_value=0, max_value=MAX_TID),
)
def test_round_trip_random(clock, tid):
    e = pack(clock, tid)
    assert (clock_of(e), tid_of(e)) == (clock, tid)


@settings(max_examples=300, deadline=None)
@given(
    st.one_of(
        st.none(),
        st.tuples(st.integers(min_value=0, max_value=60),
                  st.integers(min_value=0, max_value=3)),
    ),
    st.lists(st.integers(min_value=0, max_value=60), min_size=4, max_size=4),
    st.integers(min_value=0, max_value=3),
)
def test_epoch_leq_agrees_with_tuple_reference(e_tuple, values, self_tid):
    vc = VectorClock.of(values)
    packed = None if e_tuple is None else pack(*e_tuple)
    assert epoch_leq(packed, vc, self_tid) == \
        tuple_epoch_leq(e_tuple, vc, self_tid)


def test_epoch_leq_near_inf():
    vc = VectorClock.of([0, INF])
    assert epoch_leq(pack(INF, 1), vc, 0)
    assert not epoch_leq(pack(INF + 1, 1), vc, 0)


def test_randomized_dense_agreement():
    """Exhaustive-ish sweep over small clocks — every (epoch, clock,
    tid) combination agrees with the tuple reference."""
    rng = random.Random(0xEC0C)
    for _ in range(2000):
        width = rng.randrange(1, 6)
        vc = VectorClock.of([rng.randrange(0, 8) for _ in range(width)])
        t = rng.randrange(width)
        c = rng.randrange(0, 8)
        self_tid = rng.randrange(width)
        assert epoch_leq(pack(c, t), vc, self_tid) == \
            tuple_epoch_leq((c, t), vc, self_tid)


class TestWidthBound:
    def test_too_many_threads_rejected(self):
        from repro.core.hb_vc import UnoptHB
        from repro.trace.trace import TraceInfo

        info = TraceInfo(num_threads=MAX_TID + 2, num_locks=1, num_vars=1,
                         num_volatiles=0, num_classes=0)
        with pytest.raises(ValueError, match="packed epochs"):
            UnoptHB(info)

    def test_max_width_tid_round_trips_through_analysis_epoch(self):
        from repro.core.hb_vc import UnoptHB
        from repro.trace.trace import TraceInfo

        width = 64  # representative; full 65536 would allocate 64k clocks
        info = TraceInfo(num_threads=width, num_locks=1, num_vars=1,
                         num_volatiles=0, num_classes=0)
        analysis = UnoptHB(info)
        e = analysis._epoch(width - 1)
        assert tid_of(e) == width - 1
        assert clock_of(e) == 1
