"""Tests for events, traces, well-formedness, the builder, and the format."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (
    ACQUIRE,
    READ,
    RELEASE,
    Trace,
    TraceBuilder,
    WRITE,
    WellFormednessError,
    dumps_trace,
    loads_trace,
)
from repro.trace.event import Event, conflicts
from repro.trace.format import TraceFormatError


class TestEvents:
    def test_repr(self):
        e = Event(1, READ, 3, 7)
        assert "T1" in repr(e) and "rd" in repr(e)

    def test_equality_and_hash(self):
        assert Event(0, READ, 1, 2) == Event(0, READ, 1, 2)
        assert Event(0, READ, 1, 2) != Event(0, WRITE, 1, 2)
        assert hash(Event(0, READ, 1, 2)) == hash(Event(0, READ, 1, 2))

    def test_conflicts_requires_write_and_cross_thread(self):
        rd0 = Event(0, READ, 5)
        rd1 = Event(1, READ, 5)
        wr1 = Event(1, WRITE, 5)
        wr1_other_var = Event(1, WRITE, 6)
        assert conflicts(rd0, wr1)
        assert conflicts(wr1, rd0)
        assert not conflicts(rd0, rd1)  # two reads never conflict
        assert not conflicts(rd0, wr1_other_var)  # different variables
        assert not conflicts(Event(0, WRITE, 5), Event(0, WRITE, 5))  # same thread


class TestWellFormedness:
    def test_reentrant_acquire_rejected(self):
        events = [Event(0, ACQUIRE, 0), Event(0, ACQUIRE, 0)]
        with pytest.raises(WellFormednessError, match="re-entrant"):
            Trace(events)

    def test_acquire_of_held_lock_rejected(self):
        events = [Event(0, ACQUIRE, 0), Event(1, ACQUIRE, 0)]
        with pytest.raises(WellFormednessError, match="already held"):
            Trace(events)

    def test_release_without_hold_rejected(self):
        with pytest.raises(WellFormednessError, match="does not hold"):
            Trace([Event(0, RELEASE, 0)])

    def test_fork_of_existing_thread_rejected(self):
        from repro.trace.event import FORK
        events = [Event(1, READ, 0), Event(0, FORK, 1)]
        with pytest.raises(WellFormednessError, match="already exists"):
            Trace(events)

    def test_action_after_join_rejected(self):
        from repro.trace.event import JOIN
        events = [Event(0, JOIN, 1), Event(1, READ, 0)]
        with pytest.raises(WellFormednessError, match="after being joined"):
            Trace(events)

    def test_valid_nesting_accepted(self):
        events = [Event(0, ACQUIRE, 0), Event(0, ACQUIRE, 1),
                  Event(0, WRITE, 0), Event(0, RELEASE, 1),
                  Event(0, RELEASE, 0)]
        trace = Trace(events)
        assert len(trace) == 5

    def test_non_lifo_release_accepted(self):
        events = [Event(0, ACQUIRE, 0), Event(0, ACQUIRE, 1),
                  Event(0, RELEASE, 0), Event(0, RELEASE, 1)]
        assert len(Trace(events)) == 4

    def test_open_critical_section_at_end_accepted(self):
        assert len(Trace([Event(0, ACQUIRE, 0), Event(0, WRITE, 0)])) == 2


class TestTraceConveniences:
    def test_dimensions_derived(self):
        trace = Trace([Event(2, WRITE, 7), Event(0, ACQUIRE, 3),
                       Event(0, RELEASE, 3)])
        assert trace.num_threads == 3
        assert trace.num_vars == 8
        assert trace.num_locks == 4

    def test_thread_events(self):
        trace = Trace([Event(0, READ, 0), Event(1, READ, 0),
                       Event(0, WRITE, 0)])
        assert trace.thread_events(0) == [0, 2]

    def test_counts_by_kind(self):
        trace = Trace([Event(0, READ, 0), Event(0, READ, 1),
                       Event(0, WRITE, 0)])
        assert trace.counts_by_kind() == {"rd": 2, "wr": 1}

    def test_program_state_baseline_positive(self):
        trace = Trace([Event(0, READ, 0)])
        assert trace.program_state_bytes() > 0
        assert trace.storage_bytes() == 96


class TestBuilder:
    def test_interns_names(self):
        b = TraceBuilder()
        b.read("T1", "x").write("T2", "x")
        trace = b.build()
        assert trace.num_threads == 2
        assert trace.num_vars == 1
        assert trace.name_of("var", 0) == "x"

    def test_sync_shorthand(self):
        b = TraceBuilder()
        b.sync("T1", "o")
        trace = b.build()
        kinds = [e.kind for e in trace.events]
        assert kinds == [ACQUIRE, READ, WRITE, RELEASE]
        assert trace.name_of("var", 0) == "oVar"

    def test_wait_is_release_acquire(self):
        b = TraceBuilder()
        b.acquire("T1", "m").wait("T1", "m").release("T1", "m")
        kinds = [e.kind for e in b.build().events]
        assert kinds == [ACQUIRE, RELEASE, ACQUIRE, RELEASE]

    def test_distinct_sites_per_location(self):
        b = TraceBuilder()
        b.read("T1", "x")
        b.read("T1", "x")
        b.read("T2", "x")
        events = b.build().events
        assert events[0].site == events[1].site
        assert events[0].site != events[2].site

    def test_explicit_site_shared(self):
        b = TraceBuilder()
        b.read("T1", "x", site="loop")
        b.read("T2", "x", site="loop")
        events = b.build().events
        assert events[0].site == events[1].site

    def test_fork_join_volatiles_statics(self):
        b = TraceBuilder()
        b.fork("T0", "T1")
        b.volatile_write("T1", "v")
        b.volatile_read("T0", "v")
        b.static_init("T0", "K")
        b.static_access("T1", "K")
        b.join("T0", "T1")
        trace = b.build()
        assert len(trace) == 6
        assert trace.num_volatiles == 1
        assert trace.num_classes == 1


class TestFormat:
    def test_round_trip(self):
        b = TraceBuilder()
        b.read("T1", "x").acquire("T1", "m").write("T1", "y")
        b.release("T1", "m").fork("T1", "T2").write("T2", "x")
        trace = b.build()
        text = dumps_trace(trace)
        back = loads_trace(text)
        assert len(back) == len(trace)
        for a, b_ in zip(trace.events, back.events):
            assert (a.tid, a.kind, a.target, a.site) == \
                (b_.tid, b_.kind, b_.target, b_.site)

    def test_comments_and_blank_lines_ignored(self):
        trace = loads_trace("# header\n\nT0 rd x0 @5\n")
        assert len(trace) == 1
        assert trace.events[0].site == 5

    def test_bad_operation_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown operation"):
            loads_trace("T0 frobnicate x0\n")

    def test_bad_id_rejected(self):
        with pytest.raises(TraceFormatError, match="bad id"):
            loads_trace("T0 rd xyz\n")

    def test_bad_field_count_rejected(self):
        with pytest.raises(TraceFormatError, match="expected"):
            loads_trace("T0 rd\n")

    def test_file_round_trip(self, tmp_path):
        from repro.trace import dump_trace, load_trace
        b = TraceBuilder()
        b.write("T0", "x").read("T1", "x")
        trace = b.build()
        path = tmp_path / "trace.txt"
        with open(path, "w") as fp:
            dump_trace(trace, fp)
        back = load_trace(str(path))
        assert len(back) == 2


class TestStreaming:
    """The streaming reader: lazy parse, header protocol, one-shot."""

    def _round_trip(self, trace):
        from repro.trace.format import stream_trace
        text = dumps_trace(trace)
        stream = stream_trace(io.StringIO(text))
        events = list(stream)
        info = stream.info
        assert info is not None
        rebuilt = Trace(events, num_threads=info.num_threads,
                        num_locks=info.num_locks, num_vars=info.num_vars,
                        num_volatiles=info.num_volatiles,
                        num_classes=info.num_classes)
        assert dumps_trace(rebuilt) == text  # byte-identical
        return stream

    def test_round_trip_byte_identical_every_litmus(self):
        from repro.workloads.litmus import LITMUS
        for name, build in LITMUS.items():
            self._round_trip(build())

    def test_round_trip_byte_identical_figures(self):
        from repro.workloads import figure1, figure2, figure3
        for build in (figure1, figure2, figure3):
            self._round_trip(build())

    def test_round_trip_byte_identical_generator_workloads(self):
        from repro.workloads import generate_trace, WorkloadSpec
        for seed in (1, 2, 3):
            spec = WorkloadSpec(name="rt", threads=3 + seed, events=2000,
                                predictive_races=1, hb_races=1, seed=seed)
            stream = self._round_trip(generate_trace(spec))
            assert stream.events_read > 0

    def test_header_parsed_into_info(self):
        from repro.trace.format import stream_trace
        stream = stream_trace(io.StringIO(
            "# repro trace v1: threads=5 locks=2 vars=9\nT0 rd x0\n"))
        assert stream.info.num_threads == 5
        assert stream.info.num_locks == 2
        assert stream.info.num_vars == 9
        assert len(list(stream)) == 1

    def test_headerless_text_streams_without_info(self):
        from repro.trace.format import TraceFormatError, stream_trace
        stream = stream_trace(io.StringIO("T0 rd x0\nT1 wr x0\n"))
        assert stream.info is None
        with pytest.raises(TraceFormatError, match="header"):
            stream.require_info()
        assert len(list(stream)) == 2

    def test_stream_is_one_shot(self):
        from repro.trace.format import stream_trace
        stream = stream_trace(io.StringIO("T0 rd x0\n"))
        list(stream)
        with pytest.raises(RuntimeError, match="one-shot"):
            iter(stream)

    def test_malformed_line_raises_with_line_number(self):
        from repro.trace.format import TraceFormatError, stream_trace
        stream = stream_trace(io.StringIO(
            "# repro trace v1: threads=1 locks=1 vars=1\n"
            "T0 rd x0\n"
            "T0 frobnicate x0\n"))
        with pytest.raises(TraceFormatError, match="line 3") as exc:
            list(stream)
        assert exc.value.lineno == 3

    def test_malformed_first_line_without_header(self):
        from repro.trace.format import TraceFormatError, stream_trace
        stream = stream_trace(io.StringIO("T0 rd\n"))
        with pytest.raises(TraceFormatError, match="line 1") as exc:
            list(stream)
        assert exc.value.lineno == 1

    def test_bad_site_reports_line(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            loads_trace("# comment\nT0 rd x0 @zap\n")

    def test_require_info_failure_closes_owned_file(self, tmp_path):
        from repro.trace.format import TraceFormatError, stream_trace
        path = tmp_path / "raw.trace"
        path.write_text("T0 rd x0\n")
        stream = stream_trace(str(path))
        with pytest.raises(TraceFormatError):
            stream.require_info()
        assert stream._fp.closed

    def test_stream_from_path_closes_file(self, tmp_path):
        from repro.trace.format import stream_trace
        path = tmp_path / "t.trace"
        path.write_text("# repro trace v1: threads=1 locks=0 vars=1\n"
                        "T0 rd x0 @1\n")
        stream = stream_trace(str(path))
        assert [e.target for e in stream] == [0]
        assert stream._fp.closed

    def test_load_trace_honors_declared_dimensions(self):
        trace = loads_trace(
            "# repro trace v1: threads=6 locks=3 vars=10\nT0 rd x0\n")
        assert trace.num_threads == 6
        assert trace.num_locks == 3
        assert trace.num_vars == 10

    def test_malformed_header_field_raises(self):
        # regression: a header-prefixed line with bad fields used to
        # parse to default dimensions, silently dropping the declared
        # ones and surfacing much later as a misleading failure
        from repro.trace.format import TraceFormatError, stream_trace
        with pytest.raises(TraceFormatError, match="line 1") as exc:
            stream_trace(io.StringIO(
                "# repro trace v1: threads=x4 locks=1 vars=1\nT0 rd x0\n"))
        assert exc.value.lineno == 1
        assert "threads=x4" in str(exc.value)

    def test_header_field_without_value_raises(self):
        from repro.trace.format import TraceFormatError, stream_trace
        with pytest.raises(TraceFormatError, match="header field"):
            stream_trace(io.StringIO("# repro trace v1: bogus\n"))

    def test_unknown_header_keys_ignored(self):
        # forward compatibility: well-formed key=count fields from a
        # future writer must not break this reader
        from repro.trace.format import stream_trace
        stream = stream_trace(io.StringIO(
            "# repro trace v1: threads=3 locks=1 vars=2 shiny=9\n"))
        assert stream.info.num_threads == 3

    def test_header_round_trips_all_dimensions(self):
        from repro.trace.format import stream_trace
        trace = Trace([Event(0, READ, 0)], num_threads=4, num_locks=2,
                      num_vars=3, num_volatiles=5, num_classes=6)
        stream = stream_trace(io.StringIO(dumps_trace(trace)))
        info = stream.info
        assert (info.num_threads, info.num_locks, info.num_vars,
                info.num_volatiles, info.num_classes, info.num_events) == \
            (4, 2, 3, 5, 6, 1)

    def test_load_trace_grows_past_understated_header(self):
        trace = loads_trace(
            "# repro trace v1: threads=1 locks=0 vars=1\nT4 rd x7\n")
        assert trace.num_threads == 5
        assert trace.num_vars == 8


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_format_round_trip_random(seed):
    import random as _random
    from tests.conftest import random_trace

    trace = random_trace(_random.Random(seed), n_events=30)
    back = loads_trace(dumps_trace(trace))
    assert [(e.tid, e.kind, e.target) for e in back.events] == \
        [(e.tid, e.kind, e.target) for e in trace.events]
