"""Seeded reconnect/resume fuzzing against the multi-tenant server.

The resume protocol's correctness claim: no matter where a producer's
connection dies — at any *byte* offset, including mid-event and
mid-header, with a clean FIN or a hard RST — a producer that reconnects
with the hello handshake and resends from the server's acked offset
yields a race set bit-identical to an uninterrupted run.  This test
fuzzes exactly that, seeded for reproducibility, over both wire
formats.
"""

import io
import random
import socket
import struct
import time

import pytest

from repro.trace.binfmt import BinaryTraceWriter
from repro.trace.format import format_event, header_line
from repro.trace.live import (
    _read_reply_line,
    connect_endpoint,
    format_hello,
    parse_welcome,
)
from repro.trace.stream import TraceFormatError
from repro.workloads.dacapo import dacapo_trace

from tests.test_server import _Server, _wait_for, solo_summary


#: Big max-races so summary blocks list *every* race — the comparison
#: below is then a bit-identical check of the full reassembled race set.
ALL_RACES = 1 << 30
CUTS_PER_RUN = 6


def wire_bytes(trace, events, binary):
    """Header + the given events, exactly as a producer would send them."""
    if binary:
        buf = io.BytesIO()
        writer = BinaryTraceWriter(buf, trace)
        for event in events:
            writer.write(event)
        writer.flush()
        return buf.getvalue()
    out = [header_line(trace) + "\n"]
    out.extend(format_event(event) + "\n" for event in events)
    return "".join(out).encode("ascii")


def _close(sock, rst):
    if rst:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
    sock.close()


@pytest.mark.parametrize("binary", [True, False],
                         ids=["binary-v2", "text-v1"])
def test_resume_fuzz_race_set_bit_identical(tmp_path, binary):
    rng = random.Random(0xC0FFEE + binary)
    trace = dacapo_trace("avrora", scale=0.05, cache=False)
    total = len(trace)
    expected = solo_summary(trace, max_races=ALL_RACES)

    with _Server(tmp_path, max_races=ALL_RACES, window=64,
                 resume_grace=120.0) as srv:
        sess = None
        for attempt in range(CUTS_PER_RUN + 1):
            sock = connect_endpoint(srv.addr, connect_timeout=10)
            sock.sendall(format_hello("fuzz", total=total))
            resume = parse_welcome(_read_reply_line(sock, 10.0))
            if sess is None:
                sess = srv.app.sessions["fuzz"]
            assert resume == sess.events_acked
            data = wire_bytes(trace, trace.events[resume:], binary)
            if attempt < CUTS_PER_RUN:
                # die at a random byte offset — possibly before the
                # header finished, possibly mid-event
                cut = rng.randrange(1, len(data) + 1)
                sock.sendall(data[:cut])
                # let some of the prefix reach the engine before dying
                time.sleep(rng.choice((0.0, 0.02)))
                _close(sock, rst=rng.random() < 0.5)
                _wait_for(lambda: sess.state == "detached",
                          what="detach after cut {}".format(attempt))
                # acked never exceeds what was actually sent, and what
                # was acked is never re-applied (no double counting)
                assert sess.events_acked <= resume + len(
                    trace.events[resume:])
            else:
                sock.sendall(data)
                sock.close()

        state, events, body = srv.wait_block("fuzz")
        assert state == "complete"
        assert events == total
        assert body == expected
        assert sess.reconnects == CUTS_PER_RUN
        srv.stop()
    assert srv.code == 1
