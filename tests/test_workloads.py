"""Tests for the workload generator, DaCapo specs, and characteristics."""

import pytest

import repro
from repro.trace.event import ACQUIRE, READ, RELEASE, WRITE
from repro.workloads import DACAPO_SPECS, WorkloadSpec, dacapo_trace, generate_trace
from repro.workloads.dacapo import PAPER_STATIC_RACES, program_names
from repro.workloads.stats import characterize


def small_spec(**kw):
    defaults = dict(name="test", threads=4, events=2500, seed=42)
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestGenerator:
    def test_traces_are_well_formed(self):
        for seed in range(5):
            trace = generate_trace(small_spec(seed=seed))
            trace.validate()  # raises on violation

    def test_deterministic_per_seed(self):
        a = generate_trace(small_spec(seed=7))
        b = generate_trace(small_spec(seed=7))
        assert [(e.tid, e.kind, e.target) for e in a.events] == \
            [(e.tid, e.kind, e.target) for e in b.events]

    def test_different_seeds_differ(self):
        a = generate_trace(small_spec(seed=1))
        b = generate_trace(small_spec(seed=2))
        assert [(e.tid, e.kind, e.target) for e in a.events] != \
            [(e.tid, e.kind, e.target) for e in b.events]

    def test_event_budget_roughly_met(self):
        trace = generate_trace(small_spec(events=4000))
        assert 2500 <= len(trace) <= 8000

    def test_main_thread_forks_and_joins_workers(self):
        from repro.trace.event import FORK, JOIN
        spec = small_spec(threads=3)
        trace = generate_trace(spec)
        forks = [e for e in trace.events if e.kind == FORK]
        joins = [e for e in trace.events if e.kind == JOIN]
        assert len(forks) == 3 and len(joins) == 3

    def test_planted_hb_race_found_by_all(self):
        spec = small_spec(hb_races=2, dynamic_multiplier=3)
        trace = generate_trace(spec)
        for name in ("fto-hb", "st-dc", "unopt-wcp"):
            report = repro.detect_races(trace, name)
            assert report.static_count == 4, name  # 2 patterns x 2 sites

    def test_planted_predictive_race_found_only_by_predictive(self):
        spec = small_spec(predictive_races=3)
        trace = generate_trace(spec)
        assert repro.detect_races(trace, "fto-hb").dynamic_count == 0
        for name in ("fto-wcp", "fto-dc", "st-wdc", "unopt-dc"):
            assert repro.detect_races(trace, name).static_count == 3, name

    def test_single_site_races(self):
        spec = small_spec(hb_single_races=5)
        trace = generate_trace(spec)
        report = repro.detect_races(trace, "fto-hb")
        assert report.static_count == 5
        assert report.dynamic_count == 5

    def test_dynamic_multiplier_scales_dynamic_races(self):
        lo = generate_trace(small_spec(hb_races=1, dynamic_multiplier=2))
        hi = generate_trace(small_spec(hb_races=1, dynamic_multiplier=10))
        lo_d = repro.detect_races(lo, "unopt-hb").dynamic_count
        hi_d = repro.detect_races(hi, "unopt-hb").dynamic_count
        assert hi_d > lo_d

    def test_no_planted_races_means_no_races(self):
        trace = generate_trace(small_spec(seed=11))
        for name in ("fto-hb", "st-wdc"):
            assert repro.detect_races(trace, name).dynamic_count == 0

    def test_scaled_spec(self):
        spec = small_spec(events=10000)
        assert spec.scaled(0.5).events == 5000
        assert spec.scaled(0.00001).events == 500  # floor


class TestDaCapoSpecs:
    def test_all_ten_programs(self):
        assert len(DACAPO_SPECS) == 10
        assert program_names() == list(PAPER_STATIC_RACES)

    def test_thread_counts_match_paper(self):
        from repro.workloads.dacapo import PAPER_TABLE2
        for name, spec in DACAPO_SPECS.items():
            if name == "jython":
                # jython has 2 threads in the paper; we need 2 *workers*
                # so the planted race patterns have a thread pair.
                assert spec.threads == 2
                continue
            assert spec.threads + 1 == PAPER_TABLE2[name]["threads"], name

    @pytest.mark.parametrize("name", ["batik", "lusearch"])
    def test_race_free_programs(self, name):
        trace = dacapo_trace(name, scale=0.25, cache=False)
        assert repro.detect_races(trace, "st-wdc").dynamic_count == 0

    def test_xalan_is_predictive_heavy(self):
        trace = dacapo_trace("xalan", scale=0.5, cache=False)
        hb = repro.detect_races(trace, "fto-hb").static_count
        dc = repro.detect_races(trace, "fto-dc").static_count
        assert hb < dc

    def test_trace_cache(self):
        a = dacapo_trace("pmd", scale=0.25)
        b = dacapo_trace("pmd", scale=0.25)
        assert a is b


class TestCharacterize:
    def test_counts_basic_trace(self):
        from repro.trace import TraceBuilder
        b = TraceBuilder()
        b.acquire("T1", "m")
        b.read("T1", "x")
        b.read("T1", "x")  # same epoch
        b.release("T1", "m")
        b.read("T2", "x")
        ch = characterize(b.build())
        assert ch.events == 5
        assert ch.nseas == 2  # first T1 read + T2 read
        assert ch.held_ge[1] == 1  # only T1's read is under a lock

    def test_depth_counting(self):
        from repro.trace import TraceBuilder
        b = TraceBuilder()
        b.acquire("T1", "m").acquire("T1", "n").acquire("T1", "p")
        b.write("T1", "x")
        b.release("T1", "p").release("T1", "n").release("T1", "m")
        ch = characterize(b.build())
        assert ch.held_ge == {1: 1, 2: 1, 3: 1}

    def test_nesting_shape_follows_spec(self):
        deep = generate_trace(small_spec(
            p_cs=0.5, nesting=(0.0, 0.0, 1.0), seed=3))
        ch = characterize(deep)
        assert ch.pct_ge(3) > 20.0
        shallow = generate_trace(small_spec(
            p_cs=0.5, nesting=(1.0, 0.0, 0.0), seed=3))
        ch2 = characterize(shallow)
        assert ch2.pct_ge(3) < 1.0

    def test_nsea_matches_fto_case_counts(self):
        trace = generate_trace(small_spec(seed=5))
        ch = characterize(trace)
        report = repro.detect_races(trace, "fto-wdc", collect_cases=True)
        fto_nseas = sum(report.case_counts.values())
        # the lightweight tracker mirrors FTO's same-epoch semantics
        assert abs(fto_nseas - ch.nseas) <= 0.02 * ch.nseas + 5
