"""Tests for the harness: stats, measurement, the cost model, and tables."""

import pytest

from repro.harness.measure import Measurements, measure_once, uninstrumented_time
from repro.harness.model import APP_NS, modeled_nanos, modeled_slowdown
from repro.harness.stats import confidence_interval, fmt_factor, geomean, mean
from repro.workloads import dacapo_trace, generate_trace, WorkloadSpec


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([]) == 0.0

    def test_confidence_interval(self):
        m, half = confidence_interval([10.0, 12.0, 11.0])
        assert m == pytest.approx(11.0)
        assert half > 0

    def test_confidence_interval_single_sample(self):
        assert confidence_interval([5.0]) == (5.0, 0.0)

    def test_fmt_factor(self):
        assert fmt_factor(4.23) == "4.2x"
        assert fmt_factor(26.4) == "26x"
        assert fmt_factor(110) == "110x"
        assert fmt_factor(0) == "-"


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(WorkloadSpec(
        name="tiny", threads=3, events=1200, hb_races=1, seed=1))


class TestMeasure:
    def test_uninstrumented_time_positive(self, tiny_trace):
        assert uninstrumented_time(tiny_trace) > 0

    def test_measure_once(self, tiny_trace):
        result = measure_once(tiny_trace, "fto-hb", "tiny")
        assert result.slowdown > 1.0
        assert result.memory_factor > 1.0
        assert result.report.dynamic_count >= 1

    def test_measurements_memoize(self, monkeypatch):
        meas = Measurements(scale=0.05)
        a = meas.cell("pmd", "fto-hb")
        b = meas.cell("pmd", "fto-hb")
        assert a is b

    def test_trials(self):
        meas = Measurements(scale=0.05, trials=2)
        assert len(meas.runs("pmd", "fto-hb")) == 2


class TestCostModel:
    def test_all_programs_calibrated(self):
        from repro.workloads.dacapo import program_names
        assert set(APP_NS) == set(program_names())

    def test_ordering_within_relations(self, tiny_trace):
        # The model must preserve the paper's tier ordering.
        for rel in ("wcp", "dc", "wdc"):
            unopt = modeled_slowdown(tiny_trace, "unopt-" + rel)
            fto = modeled_slowdown(tiny_trace, "fto-" + rel)
            st = modeled_slowdown(tiny_trace, "st-" + rel)
            assert unopt > fto > st, rel

    def test_hb_cheaper_than_predictive(self, tiny_trace):
        assert modeled_slowdown(tiny_trace, "fto-hb") < \
            modeled_slowdown(tiny_trace, "fto-dc")

    def test_graph_costs_more(self, tiny_trace):
        assert modeled_slowdown(tiny_trace, "unopt-dc-g") > \
            modeled_slowdown(tiny_trace, "unopt-dc")

    def test_wdc_cheapest_predictive(self, tiny_trace):
        assert modeled_nanos(tiny_trace, "st-wdc") < \
            modeled_nanos(tiny_trace, "st-dc")

    def test_geomeans_within_factor_two_of_paper(self):
        # Table 4 comparison: every modeled geomean within 2x of the paper.
        from repro.core.registry import BY_RELATION
        from repro.harness.tables import PAPER_TABLE4
        from repro.workloads.dacapo import program_names
        tiers = ["unopt", "fto", "st"]
        for (rel, tier), paper in PAPER_TABLE4["time"].items():
            name = dict(zip(tiers, BY_RELATION[rel]))[tier]
            values = [modeled_slowdown(dacapo_trace(p, scale=0.25), name, p)
                      for p in program_names()]
            g = geomean(values)
            assert paper / 2 < g < paper * 2, (rel, tier, g, paper)


class TestTables:
    @pytest.fixture(scope="class")
    def meas(self):
        return Measurements(scale=0.05)

    def test_table2(self, meas):
        from repro.harness.tables import table2
        text, data = table2(meas)
        assert "avrora" in text
        assert len(data["rows"]) == 10

    def test_table4_structure(self, meas):
        from repro.harness.tables import headline_summary, table4
        text, data = table4(meas)
        assert ("hb", "unopt") in data["time"]
        assert ("hb", "st") not in data["time"]
        summary, vals = headline_summary(data)
        assert "WDC" in summary
        assert vals["dc"]["fto_speedup"] > 0

    def test_table7_counts(self, meas):
        from repro.harness.tables import table7
        text, data = table7(meas)
        assert "xalan" in text
        st, dy = data["xalan"][("dc", "fto")]
        assert dy >= st >= 1

    def test_table12_percentages(self, meas):
        from repro.harness.tables import table12
        text, data = table12(meas)
        reads = data["h2"]["read"]
        pct = [v for k, v in reads.items() if k != "total"]
        assert sum(pct) == pytest.approx(100.0, abs=0.5)

    def test_ci_table(self):
        from repro.harness.tables import table_ci
        meas = Measurements(scale=0.03, trials=2)
        text, data = table_ci(meas, "time")
        assert "±" in text

    def test_runner_cli(self, tmp_path, capsys):
        from repro.harness.runner import main
        code = main(["--table", "2", "--scale", "0.05",
                     "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "table2.txt").exists()
        assert "Table 2" in capsys.readouterr().out
