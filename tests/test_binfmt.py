"""Tests for the v2 binary trace format and format autodetection.

Covers the binfmt writer/reader round trip, the `stream_trace` /
`load_trace` autodetection rules (empty file, header-less text,
truncated magic, truncated binary header), and the lifecycle contract
shared between the text and binary readers (one-shot iteration,
context-manager support, close-on-init-failure).
"""

import builtins
import io

import pytest

from repro.trace import (
    BinaryTraceStream,
    BinaryTraceWriter,
    Trace,
    TraceFormatError,
    TraceStream,
    dump_trace,
    dumps_trace,
    dumps_trace_binary,
    load_trace,
    stream_trace,
)
from repro.trace.binfmt import MAGIC
from repro.workloads import WorkloadSpec, figure1, figure2, figure3, generate_trace
from repro.workloads.litmus import LITMUS


def _same_events(a, b):
    return [(e.tid, e.kind, e.target, e.site) for e in a] == \
        [(e.tid, e.kind, e.target, e.site) for e in b]


class TestRoundTrip:
    def _binary_round_trip(self, trace):
        back = load_trace(io.BytesIO(dumps_trace_binary(trace)))
        assert _same_events(trace.events, back.events)
        assert (back.num_threads, back.num_locks, back.num_vars,
                back.num_volatiles, back.num_classes) == \
            (trace.num_threads, trace.num_locks, trace.num_vars,
             trace.num_volatiles, trace.num_classes)
        # the text rendering is the canonical lossless witness
        assert dumps_trace(back) == dumps_trace(trace)

    def test_every_litmus_workload(self):
        for name, build in LITMUS.items():
            self._binary_round_trip(build())

    def test_figures(self):
        for build in (figure1, figure2, figure3):
            self._binary_round_trip(build())

    def test_generator_workloads(self):
        for seed in (1, 2, 3):
            spec = WorkloadSpec(name="rt", threads=3 + seed, events=2000,
                                predictive_races=1, hb_races=1, seed=seed)
            self._binary_round_trip(generate_trace(spec))

    def test_text_to_binary_to_text_byte_identical(self, tmp_path):
        trace = generate_trace(WorkloadSpec(
            name="rt", threads=4, events=3000, predictive_races=1, seed=11))
        text_path = tmp_path / "t.trace"
        with open(text_path, "w") as fp:
            dump_trace(trace, fp)
        binary_path = tmp_path / "t.bin"
        source = stream_trace(str(text_path))
        with source, BinaryTraceWriter(str(binary_path),
                                       source.require_info()) as writer:
            for event in source:
                writer.write(event)
        assert writer.events_written == len(trace)
        # binary is denser, decodes to the identical trace
        assert binary_path.stat().st_size < text_path.stat().st_size / 2
        assert dumps_trace(load_trace(str(binary_path))) == \
            text_path.read_text()

    def test_events_hint_in_header(self):
        trace = figure1()
        stream = stream_trace(io.BytesIO(dumps_trace_binary(trace)))
        assert stream.require_info().num_events == len(trace)

    def test_wide_ids_encode(self):
        # multi-byte varints on every field: big tid, target, and site
        from repro.trace.event import READ, WRITE, Event
        events = [Event(0, WRITE, 1 << 20, 1 << 30),
                  Event(4097, READ, 1 << 20, 1 << 30),
                  Event(4097, WRITE, 0, 0)]
        trace = Trace(events, validate=False)
        back = load_trace(io.BytesIO(dumps_trace_binary(trace)),
                          validate=False)
        assert _same_events(events, back.events)


class TestAutodetect:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_bytes(b"")
        stream = stream_trace(str(path))
        assert stream.info is None
        assert list(stream) == []
        assert len(load_trace(str(path))) == 0

    def test_headerless_text(self, tmp_path):
        path = tmp_path / "raw.trace"
        path.write_text("T0 rd x0\nT1 wr x0\n")
        stream = stream_trace(str(path))
        assert isinstance(stream, TraceStream)
        assert stream.info is None
        assert len(list(stream)) == 2

    def test_truncated_magic_is_text(self, tmp_path):
        # a prefix of the magic is just a text comment line
        path = tmp_path / "trunc.trace"
        path.write_bytes(MAGIC[:-3])
        stream = stream_trace(str(path))
        assert isinstance(stream, TraceStream)
        assert stream.info is None
        assert list(stream) == []

    def test_magic_with_truncated_header(self, tmp_path):
        path = tmp_path / "cut.trace"
        path.write_bytes(MAGIC + b"\x82")  # dims cut mid-varint
        with pytest.raises(TraceFormatError, match="truncated"):
            stream_trace(str(path))

    def test_magic_with_no_header(self, tmp_path):
        path = tmp_path / "cut.trace"
        path.write_bytes(MAGIC)
        with pytest.raises(TraceFormatError, match="truncated"):
            stream_trace(str(path))

    def test_binary_handle(self):
        blob = dumps_trace_binary(figure1())
        stream = stream_trace(io.BytesIO(blob))
        assert isinstance(stream, BinaryTraceStream)
        assert len(list(stream)) == len(figure1())

    def test_text_content_in_binary_handle(self):
        # e.g. piping a text trace through stdin.buffer: the sniffed
        # prefix is re-attached and the text reader takes over
        text = dumps_trace(figure1())
        stream = stream_trace(io.BytesIO(text.encode()))
        assert isinstance(stream, TraceStream)
        assert stream.info is not None
        assert len(list(stream)) == len(figure1())

    def test_text_handle(self):
        stream = stream_trace(io.StringIO(dumps_trace(figure1())))
        assert isinstance(stream, TraceStream)
        assert len(list(stream)) == len(figure1())

    def test_short_binaryish_file_is_text(self, tmp_path):
        path = tmp_path / "tiny.trace"
        path.write_bytes(b"# hi\n")
        stream = stream_trace(str(path))
        assert isinstance(stream, TraceStream)
        assert list(stream) == []

    def test_binary_file_from_path(self, tmp_path):
        path = tmp_path / "b.trace"
        path.write_bytes(dumps_trace_binary(figure2()))
        assert _same_events(load_trace(str(path)).events, figure2().events)


class TestLifecycle:
    def _binary_path(self, tmp_path):
        path = tmp_path / "b.trace"
        path.write_bytes(dumps_trace_binary(figure1()))
        return str(path)

    def test_one_shot(self, tmp_path):
        stream = stream_trace(self._binary_path(tmp_path))
        list(stream)
        with pytest.raises(RuntimeError, match="one-shot"):
            iter(stream)

    def test_exhaustion_closes_owned_file(self, tmp_path):
        stream = stream_trace(self._binary_path(tmp_path))
        assert len(list(stream)) == stream.events_read == len(figure1())
        assert stream._fp.closed

    def test_context_manager_closes_abandoned_stream(self, tmp_path):
        with stream_trace(self._binary_path(tmp_path)) as stream:
            next(iter(stream))  # abandon mid-iteration
        assert stream._fp.closed

    def test_context_manager_on_text_stream(self, tmp_path):
        path = tmp_path / "t.trace"
        with open(path, "w") as fp:
            dump_trace(figure1(), fp)
        with stream_trace(str(path)) as stream:
            next(iter(stream))
        assert stream._fp.closed

    def test_require_info_always_succeeds_on_binary(self, tmp_path):
        with stream_trace(self._binary_path(tmp_path)) as stream:
            assert stream.require_info().num_threads == \
                figure1().num_threads

    def test_unowned_handle_not_closed(self):
        fp = io.BytesIO(dumps_trace_binary(figure1()))
        stream = stream_trace(fp)
        list(stream)
        stream.close()
        assert not fp.closed

    def _opened_files(self, monkeypatch):
        opened = []
        real_open = builtins.open

        def recording_open(*args, **kwargs):
            fp = real_open(*args, **kwargs)
            opened.append(fp)
            return fp

        monkeypatch.setattr(builtins, "open", recording_open)
        return opened

    def test_init_failure_closes_owned_file_binary(self, tmp_path,
                                                   monkeypatch):
        path = tmp_path / "cut.trace"
        path.write_bytes(MAGIC + b"\x80")
        opened = self._opened_files(monkeypatch)
        with pytest.raises(TraceFormatError):
            stream_trace(str(path))
        assert opened and all(fp.closed for fp in opened)

    def test_init_failure_closes_owned_file_text(self, tmp_path,
                                                 monkeypatch):
        # undecodable bytes surface while peeking at the header line;
        # the handle must not leak (and the error is a TraceFormatError,
        # so the CLI exits 2 instead of crashing)
        path = tmp_path / "junk.trace"
        path.write_bytes(b"\xff\xfe\x00garbage")
        opened = self._opened_files(monkeypatch)
        with pytest.raises(TraceFormatError, match="not valid text"):
            stream_trace(str(path))
        assert opened and all(fp.closed for fp in opened)

    def test_init_failure_closes_owned_file_bad_text_header(
            self, tmp_path, monkeypatch):
        path = tmp_path / "badhdr.trace"
        path.write_text("# repro trace v1: threads=x4\nT0 rd x0\n")
        opened = self._opened_files(monkeypatch)
        with pytest.raises(TraceFormatError, match="header field"):
            stream_trace(str(path))
        assert opened and all(fp.closed for fp in opened)


class TestErrors:
    def test_truncated_mid_event(self):
        blob = dumps_trace_binary(figure1())
        stream = stream_trace(io.BytesIO(blob[:-1]))
        with pytest.raises(TraceFormatError, match="truncated mid-event"):
            list(stream)

    def test_bad_event_kind(self):
        blob = dumps_trace_binary(Trace([], num_threads=1, num_locks=0,
                                        num_vars=0))
        # kind 15 is unused: head byte 0x0F, then target 0 and site 0
        stream = stream_trace(io.BytesIO(blob + b"\x0f\x00\x00"))
        with pytest.raises(TraceFormatError, match="bad event kind"):
            list(stream)

    def test_oversized_varint_in_header(self):
        # endless continuation bits must be rejected, not accumulated
        # into an unbounded int (a live producer could stream 0x80s)
        with pytest.raises(TraceFormatError, match="oversized varint"):
            stream_trace(io.BytesIO(MAGIC + b"\x80" * 80))

    def test_oversized_varint_in_event(self):
        blob = dumps_trace_binary(Trace([], num_threads=1, num_locks=0,
                                        num_vars=0))
        stream = stream_trace(io.BytesIO(blob + b"\x80" * 40))
        with pytest.raises(TraceFormatError, match="oversized varint"):
            list(stream)

    def test_undecodable_bytes_mid_file(self):
        # enough valid lines that the bad bytes land beyond the text
        # wrapper's first decoded chunk: the error surfaces mid-iteration
        # and still maps to a TraceFormatError with a line number
        n = 2000
        text = ("# repro trace v1: threads=1 locks=1 vars=1\n"
                + "T0 rd x0\n" * n)
        stream = stream_trace(io.BytesIO(text.encode() + b"\xff\xfe"))
        with pytest.raises(TraceFormatError, match="not valid text") as exc:
            list(stream)
        assert exc.value.lineno > 1


class TestDeclaredCount:
    """The header's event count is authoritative for stopping.

    A reader that insists on seeing EOF after the last declared event
    blocks live sources whose producer keeps the connection open — or
    whose socket is also held open by an unrelated forked process — so
    reaching the declared count must end iteration without another
    read.
    """

    def test_trailing_bytes_after_declared_count_ignored(self):
        trace = figure1()
        stream = stream_trace(
            io.BytesIO(dumps_trace_binary(trace) + b"\x01"))
        assert len(list(stream)) == len(trace.events)

    def test_reader_stops_without_eof_on_live_pipe(self):
        import os
        import threading

        trace = figure1()
        r, w = os.pipe()
        os.write(w, dumps_trace_binary(trace))
        got = []

        def run():
            # unbuffered: short reads, like the live socket/FIFO sources
            # (a BufferedReader would block for a full chunk regardless)
            with open(r, "rb", buffering=0) as fp:
                got.extend(stream_trace(fp))

        reader = threading.Thread(target=run, daemon=True)
        reader.start()
        reader.join(10)  # the write end is still open: EOF never comes
        try:
            assert not reader.is_alive(), \
                "reader blocked waiting for EOF past the declared count"
            assert len(got) == len(trace.events)
        finally:
            os.close(w)

    def test_zero_declared_count_reads_to_eof(self):
        # events=0 means unknown (a streaming writer's hint); those
        # headers keep reading until the input ends
        from repro.trace import TraceInfo

        trace = figure1()
        hint = TraceInfo(trace.num_threads, trace.num_locks,
                         trace.num_vars, trace.num_volatiles,
                         trace.num_classes, 0)
        buf = io.BytesIO()
        with BinaryTraceWriter(buf, hint) as writer:
            for event in trace.events:
                writer.write(event)
        assert len(list(stream_trace(
            io.BytesIO(buf.getvalue())))) == len(trace.events)


class TestEngineAndHarness:
    def test_run_stream_on_binary(self, tmp_path):
        from repro.core.engine import run_stream
        path = tmp_path / "b.trace"
        path.write_bytes(dumps_trace_binary(figure1()))
        result = run_stream(str(path), ["st-wdc", "fto-hb"])
        assert result.ok
        assert result.report("st-wdc").dynamic_count == 1
        assert result.report("fto-hb").dynamic_count == 0

    def test_measure_stream_on_binary(self, tmp_path):
        from repro.harness.measure import measure_stream
        path = tmp_path / "b.trace"
        path.write_bytes(dumps_trace_binary(figure1()))
        result = measure_stream(str(path), ["st-wdc"])
        assert result.events == len(figure1())
        assert result.reports["st-wdc"].dynamic_count == 1

    def test_measure_stream_windowed_session_path(self, tmp_path):
        # window_events drives the same capture through an incremental
        # engine session (the live-serving path); reports are identical
        from repro.harness.measure import measure_stream
        path = tmp_path / "b.trace"
        path.write_bytes(dumps_trace_binary(figure1()))
        one_shot = measure_stream(str(path), ["st-wdc", "fto-hb"])
        windowed = measure_stream(str(path), ["st-wdc", "fto-hb"],
                                  window_events=5)
        assert windowed.events == one_shot.events == len(figure1())
        for name in ("st-wdc", "fto-hb"):
            assert [r.index for r in windowed.reports[name].races] == \
                [r.index for r in one_shot.reports[name].races]
            assert windowed.reports[name].peak_footprint_bytes == \
                one_shot.reports[name].peak_footprint_bytes
