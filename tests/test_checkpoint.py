"""Tests for :mod:`repro.checkpoint` and :mod:`repro.trace.segments`:
session serialization round trips (in-process and across processes),
segment hashing and staleness rules, the on-disk result cache behind
``analyze --cache``, and ``repro watch``.
"""

import io
import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.checkpoint import (
    MAGIC,
    STATE_VERSION,
    CheckpointError,
    analyze_cached,
    peek_checkpoint,
    restore_session,
    save_session,
    watch_directory,
)
from repro.cli import main as cli_main
from repro.core.engine import MultiRunner
from repro.core.registry import create
from repro.reporting import print_entries
from repro.trace.format import dump_trace, format_event
from repro.trace.segments import (
    TraceSegments,
    match_events,
    segment_trace,
)
from repro.trace.stream import TraceFormatError
from repro.trace.trace import Trace
from repro.workloads.dacapo import dacapo_trace

NAMES = ["st-wdc", "fto-hb", "ft2", "st-wcp", "fto-dc", "unopt-hb"]


@pytest.fixture(scope="module")
def avrora():
    """A small racy trace (~1.3k events)."""
    return dacapo_trace("avrora", scale=0.05, cache=False)


def _race_key(report):
    return [(r.index, r.var, r.tid, r.access, r.kinds) for r in report.races]


def _keys(result):
    return {e.name: _race_key(e.report) for e in result.entries}


# -- session serialization ------------------------------------------------

@pytest.mark.parametrize("use_kernels", [None, False])
def test_round_trip_mid_stream(avrora, use_kernels):
    """Checkpoint at mid-stream, restore, replay the suffix: reports
    bit-identical to one uninterrupted pass — with kernels (when
    available) and without (shared-HB groups active)."""
    baseline = MultiRunner([create(n, avrora) for n in NAMES],
                           use_kernels=use_kernels).run(avrora)
    cut = len(avrora) // 3
    session = MultiRunner([create(n, avrora) for n in NAMES],
                          use_kernels=use_kernels).session()
    it = iter(avrora.events)
    session.feed(it, max_events=cut)
    buf = io.BytesIO()
    session.save_checkpoint(buf)
    buf.seek(0)
    restored = MultiRunner.restore_checkpoint(buf)
    assert restored.events_processed == cut
    restored.feed(it)
    result = restored.finish()
    assert result.ok
    assert result.events_processed == len(avrora)
    assert _keys(result) == _keys(baseline)
    for b, r in zip(baseline.entries, result.entries):
        assert b.report.dynamic_count == r.report.dynamic_count
        assert b.report.static_count == r.report.static_count


def test_restore_rebuilds_shared_banks_refcount_correct(avrora):
    """Grouped analyses restore aliasing ONE bank object, with the
    refcount equal to the surviving membership."""
    session = MultiRunner([create(n, avrora) for n in NAMES],
                          use_kernels=False).session()
    it = iter(avrora.events)
    session.feed(it, max_events=200)
    groups_before = [(len(m), bank.refs)
                     for bank, m in session.runner.hb_groups]
    assert groups_before, "expected at least one shared-HB group"
    buf = io.BytesIO()
    session.save_checkpoint(buf)
    buf.seek(0)
    restored = MultiRunner.restore_checkpoint(buf)
    groups_after = [(len(m), bank.refs)
                    for bank, m in restored.runner.hb_groups]
    assert groups_after == groups_before
    for bank, members in restored.runner.hb_groups:
        assert bank.refs == len(members)
        for entry in members:
            # the member's HB state must *be* the bank's (identity, not
            # equality — that is what one-transition-per-event relies on)
            a = entry.analysis
            shared = a.hh if a.hh is not None else a.cc
            assert shared is bank.hh


def test_save_non_destructive(avrora):
    """Saving does not perturb the live session: it continues to the
    same reports as an uncheckpointed run."""
    baseline = MultiRunner([create(n, avrora) for n in NAMES]).run(avrora)
    session = MultiRunner([create(n, avrora) for n in NAMES]).session()
    it = iter(avrora.events)
    session.feed(it, max_events=500)
    session.save_checkpoint(io.BytesIO())
    session.feed(it)
    assert _keys(session.finish()) == _keys(baseline)


def test_checkpoint_preserves_failures(avrora):
    """A detached analysis stays detached across the round trip, its
    failure record intact."""
    runner = MultiRunner([create(n, avrora) for n in NAMES[:3]],
                         use_kernels=False)
    session = runner.session()
    boom = RuntimeError("injected")

    def explode(*args):
        raise boom

    table = runner.entries[1].analysis.dispatch_table()
    runner.entries[1].analysis._dispatch = tuple(
        explode for _ in table)
    it = iter(avrora.events)
    session.feed(it, max_events=100)
    assert not session.entries[1].ok
    buf = io.BytesIO()
    session.save_checkpoint(buf)
    buf.seek(0)
    restored = MultiRunner.restore_checkpoint(buf)
    entry = restored.entries[1]
    assert entry.failure is not None
    assert entry.failure.name == runner.entries[1].name
    assert "injected" in repr(entry.failure.error)
    restored.feed(it)
    result = restored.finish()
    assert len(result.failures) == 1


def test_restore_in_fresh_process(tmp_path, avrora):
    """The acceptance-criterion path: checkpoint here, restore in a new
    interpreter, replay the suffix there, compare reports bit-for-bit."""
    cut = 600
    trace_path = str(tmp_path / "t.bin")
    with open(trace_path, "wb") as fp:
        dump_trace(avrora, fp, binary=True)
    baseline = MultiRunner([create(n, avrora) for n in NAMES]).run(avrora)
    session = MultiRunner([create(n, avrora) for n in NAMES]).session()
    it = iter(avrora.events)
    session.feed(it, max_events=cut)
    ckpt_path = str(tmp_path / "t.ckpt")
    save_session(session, ckpt_path)
    script = textwrap.dedent("""
        import json, sys
        from itertools import islice
        from repro.checkpoint import restore_session
        from repro.trace.format import stream_trace

        session = restore_session(sys.argv[1])
        offset = session.events_processed
        stream = stream_trace(sys.argv[2])
        source = iter(stream)
        for _ in islice(source, offset):
            pass
        session.feed(source)
        result = session.finish()
        out = {e.name: [(r.index, r.var, r.tid, r.access, r.kinds)
                        for r in e.report.races]
               for e in result.entries}
        json.dump({"events": result.events_processed, "races": out},
                  sys.stdout)
    """)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in (env.get("PYTHONPATH"),) if p]
        + [os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")])
    proc = subprocess.run(
        [sys.executable, "-c", script, ckpt_path, trace_path],
        capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["events"] == len(avrora)
    expected = {name: [list(k) for k in _race_key(baseline.report(name))]
                for name in NAMES}
    assert doc["races"] == expected


def test_checkpoint_file_format_and_errors(tmp_path, avrora):
    session = MultiRunner([create(n, avrora) for n in NAMES[:2]]).session()
    session.feed(iter(avrora.events), max_events=50)
    path = str(tmp_path / "ok.ckpt")
    meta = save_session(session, path)
    assert meta["events"] == 50
    with open(path, "rb") as fp:
        assert fp.readline() == MAGIC
    peeked = peek_checkpoint(path)
    assert peeked["version"] == STATE_VERSION
    assert peeked["events"] == 50
    assert peeked["analyses"] == [NAMES[0], NAMES[1]]

    bad = tmp_path / "bad.ckpt"
    bad.write_bytes(b"not a checkpoint\n")
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        peek_checkpoint(str(bad))

    garbled = tmp_path / "garbled.ckpt"
    garbled.write_bytes(MAGIC + b"{nope\n")
    with pytest.raises(CheckpointError, match="corrupt checkpoint metadata"):
        restore_session(str(garbled))

    versioned = tmp_path / "versioned.ckpt"
    versioned.write_bytes(
        MAGIC + json.dumps({"version": 999}).encode() + b"\n")
    with pytest.raises(CheckpointError, match="unsupported checkpoint"):
        restore_session(str(versioned))

    truncated = tmp_path / "trunc.ckpt"
    with open(path, "rb") as fp:
        truncated.write_bytes(fp.read()[:len(MAGIC) + 60])
    with pytest.raises(CheckpointError):
        restore_session(str(truncated))

    result = session.finish()
    with pytest.raises(CheckpointError, match="finished"):
        save_session(session, str(tmp_path / "late.ckpt"))
    assert result.events_processed == 50


# -- segment hashing and staleness ----------------------------------------

def _dump(trace, path, binary):
    with open(path, "wb" if binary else "w") as fp:
        dump_trace(trace, fp, binary=binary)


@pytest.mark.parametrize("binary", [False, True])
def test_segments_staleness_rules(tmp_path, avrora, binary):
    """Append, mid-file rewrite, and truncation each invalidate exactly
    the right segments."""
    seg = 100
    path = str(tmp_path / ("t.bin" if binary else "t.trace"))
    _dump(avrora, path, binary)
    base = segment_trace(path, seg)
    assert base.total_events == len(avrora)
    full = len(base.digests)
    assert full == len(avrora) // seg

    # identical file: everything matches, including the partial tail
    assert match_events(base, segment_trace(path, seg)) == len(avrora)

    # append: every old full segment still matches
    extended = Trace(list(avrora.events) + list(avrora.events[:250]),
                     num_threads=avrora.num_threads,
                     num_locks=avrora.num_locks, num_vars=avrora.num_vars,
                     num_volatiles=avrora.num_volatiles,
                     num_classes=avrora.num_classes, validate=False)
    path2 = str(tmp_path / "t2")
    _dump(extended, path2, binary)
    grown = segment_trace(path2, seg)
    assert grown.total_events == len(avrora) + 250
    assert match_events(base, grown) == full * seg
    # and symmetric from the old side
    assert match_events(grown, base) == full * seg

    # truncation: only the surviving full prefix matches
    shorter = Trace(list(avrora.events[:5 * seg + 17]),
                    num_threads=avrora.num_threads,
                    num_locks=avrora.num_locks, num_vars=avrora.num_vars,
                    num_volatiles=avrora.num_volatiles,
                    num_classes=avrora.num_classes, validate=False)
    path3 = str(tmp_path / "t3")
    _dump(shorter, path3, binary)
    assert match_events(base, segment_trace(path3, seg)) == 5 * seg

    # mid-file rewrite: flip bytes inside segment 4 — segments 1..3
    # still match, 4 and everything after do not
    with open(path, "rb") as fp:
        data = bytearray(fp.read())
    off = base.header_end + base.boundaries[3] - 2
    data[off] ^= 0x01
    edited = segment_trace(bytes(data), seg)
    assert match_events(base, edited) == 3 * seg

    # dimension change: nothing is resumable
    wider = Trace(list(avrora.events), num_threads=avrora.num_threads + 1,
                  num_locks=avrora.num_locks, num_vars=avrora.num_vars,
                  num_volatiles=avrora.num_volatiles,
                  num_classes=avrora.num_classes, validate=False)
    path4 = str(tmp_path / "t4")
    _dump(wider, path4, binary)
    assert match_events(base, segment_trace(path4, seg)) == 0


def test_segments_formats_never_cross_match(tmp_path, avrora):
    text = str(tmp_path / "t.trace")
    binary = str(tmp_path / "t.bin")
    _dump(avrora, text, False)
    _dump(avrora, binary, True)
    a = segment_trace(text, 100)
    b = segment_trace(binary, 100)
    assert a.fmt == "text-v1" and b.fmt == "binary-v2"
    assert match_events(a, b) == 0


def test_segments_doc_round_trip(tmp_path, avrora):
    path = str(tmp_path / "t.trace")
    _dump(avrora, path, False)
    segs = segment_trace(path, 128)
    clone = TraceSegments.from_doc(
        json.loads(json.dumps(segs.to_doc())))
    assert match_events(segs, clone) == len(avrora)
    assert clone.boundaries == segs.boundaries
    assert clone.header_end == segs.header_end


def test_segments_headerless_text_refused(tmp_path):
    path = tmp_path / "bare.trace"
    path.write_text("T0 wr x0 @1\nT1 wr x0 @2\n")
    with pytest.raises(TraceFormatError, match="header"):
        segment_trace(str(path))


def test_segments_pure_python_matches_numpy(tmp_path, avrora, monkeypatch):
    path = str(tmp_path / "t.bin")
    _dump(avrora, path, True)
    fast = segment_trace(path, 100)
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    slow = segment_trace(path, 100)
    assert slow.digests == fast.digests
    assert slow.boundaries == fast.boundaries
    assert slow.total_events == fast.total_events


# -- the result cache -----------------------------------------------------

def _reference_summary(trace, names, max_races=10):
    result = MultiRunner([create(n, trace) for n in names]).run(trace)
    buf = io.StringIO()
    code = print_entries(result, max_races=max_races, out=buf)
    return buf.getvalue(), code


@pytest.mark.parametrize("binary", [False, True])
def test_cache_cold_then_warm_byte_identical(tmp_path, avrora, binary):
    path = str(tmp_path / ("t.bin" if binary else "t.trace"))
    _dump(avrora, path, binary)
    cache = str(tmp_path / "cache")
    names = ["st-wdc", "fto-hb"]
    reference, ref_code = _reference_summary(avrora, names)

    out1, err1 = io.StringIO(), io.StringIO()
    code1 = analyze_cached(cache, path, names, out=out1, err=err1,
                           segment_events=200)
    assert code1 == ref_code == 1
    assert out1.getvalue() == reference
    assert "cold" in err1.getvalue()

    out2, err2 = io.StringIO(), io.StringIO()
    code2 = analyze_cached(cache, path, names, out=out2, err=err2,
                           segment_events=200)
    assert code2 == code1
    assert out2.getvalue() == out1.getvalue()
    assert "warm hit - replayed 0 of {} events".format(len(avrora)) \
        in err2.getvalue()


def test_cache_extend_replays_only_suffix(tmp_path, avrora):
    """Append to a cached trace: the re-run resumes from the newest
    checkpoint inside the unchanged prefix and its stdout is
    byte-identical to a cold run over the extended trace."""
    seg = 200
    path = str(tmp_path / "t.trace")
    _dump(avrora, path, False)
    cache = str(tmp_path / "cache")
    names = ["st-wdc", "fto-hb"]
    analyze_cached(cache, path, names, out=io.StringIO(),
                   err=io.StringIO(), segment_events=seg)

    with open(path, "a") as fp:
        for event in avrora.events[:300]:
            fp.write(format_event(event) + "\n")
    total = len(avrora) + 300
    boundary = (len(avrora) // seg) * seg

    out, err = io.StringIO(), io.StringIO()
    analyze_cached(cache, path, names, out=out, err=err,
                   segment_events=seg)
    accounting = err.getvalue()
    assert "resumed from checkpoint at {}".format(boundary) in accounting
    assert "replayed {} of {} events".format(total - boundary, total) \
        in accounting

    extended = Trace(list(avrora.events) + list(avrora.events[:300]),
                     num_threads=avrora.num_threads,
                     num_locks=avrora.num_locks, num_vars=avrora.num_vars,
                     num_volatiles=avrora.num_volatiles,
                     num_classes=avrora.num_classes, validate=False)
    reference, _ = _reference_summary(extended, names)
    assert out.getvalue() == reference

    # and the extended result is itself now warm
    out3, err3 = io.StringIO(), io.StringIO()
    analyze_cached(cache, path, names, out=out3, err=err3,
                   segment_events=seg)
    assert "warm hit" in err3.getvalue()
    assert out3.getvalue() == reference


def test_cache_rewrite_falls_back_before_edit(tmp_path, avrora):
    """A mid-file edit invalidates checkpoints at or past the edited
    segment; the re-run resumes from one before it (or cold)."""
    seg = 200
    path = str(tmp_path / "t.trace")
    _dump(avrora, path, False)
    cache = str(tmp_path / "cache")
    names = ["st-wdc"]
    analyze_cached(cache, path, names, out=io.StringIO(),
                   err=io.StringIO(), segment_events=seg)
    # rewrite one event inside the *last* full segment
    with open(path) as fp:
        lines = fp.readlines()
    boundary = (len(avrora) // seg) * seg
    lines[boundary - 5] = lines[boundary - 5].replace("@", "@9")
    with open(path, "w") as fp:
        fp.writelines(lines)
    out, err = io.StringIO(), io.StringIO()
    code = analyze_cached(cache, path, names, out=out, err=err,
                          segment_events=seg)
    accounting = err.getvalue()
    # whatever checkpoint it used must predate the edited segment
    assert "warm hit" not in accounting
    if "resumed" in accounting:
        resumed_at = int(accounting.rsplit("at ", 1)[1].split(")")[0])
        assert resumed_at <= boundary - seg
    assert code in (0, 1)


def test_cache_distinguishes_analysis_sets_and_max_races(tmp_path, avrora):
    path = str(tmp_path / "t.trace")
    _dump(avrora, path, False)
    cache = str(tmp_path / "cache")
    analyze_cached(cache, path, ["st-wdc"], out=io.StringIO(),
                   err=io.StringIO())
    err = io.StringIO()
    analyze_cached(cache, path, ["fto-hb"], out=io.StringIO(), err=err)
    assert "warm hit" not in err.getvalue()
    err = io.StringIO()
    analyze_cached(cache, path, ["st-wdc"], max_races=3,
                   out=io.StringIO(), err=err)
    assert "warm hit" not in err.getvalue()
    err = io.StringIO()
    analyze_cached(cache, path, ["st-wdc"], out=io.StringIO(), err=err)
    assert "warm hit" in err.getvalue()


def test_cli_cache_flag(tmp_path, avrora, capsys):
    path = str(tmp_path / "t.trace")
    _dump(avrora, path, False)
    cache = str(tmp_path / "cache")
    assert cli_main(["analyze", path, "--cache", cache, "-a", "st-wdc"]) == 1
    cold = capsys.readouterr()
    assert "cold" in cold.err
    assert cli_main(["analyze", path, "--cache", cache, "-a", "st-wdc"]) == 1
    warm = capsys.readouterr()
    assert warm.out == cold.out
    assert "warm hit" in warm.err


def test_cli_cache_rejects_incompatible_flags(tmp_path, avrora, capsys):
    path = str(tmp_path / "t.trace")
    _dump(avrora, path, False)
    cache = str(tmp_path / "cache")
    for extra in (["--vindicate"], ["--memory"], ["--workers", "2"]):
        assert cli_main(["analyze", path, "--cache", cache] + extra) == 2
        assert "--cache" in capsys.readouterr().err


# -- watch mode -----------------------------------------------------------

def test_watch_once_analyzes_and_caches(tmp_path, avrora):
    watched = tmp_path / "traces"
    watched.mkdir()
    _dump(avrora, str(watched / "t.trace"), False)
    cache = str(tmp_path / "cache")
    out, err = io.StringIO(), io.StringIO()
    code = watch_directory(str(watched), cache, ["st-wdc"], once=True,
                           out=out, err=err)
    assert code == 1  # races found
    assert "watch: analyzing" in err.getvalue()
    assert "cold" in err.getvalue()

    out2, err2 = io.StringIO(), io.StringIO()
    code = watch_directory(str(watched), cache, ["st-wdc"], once=True,
                           out=out2, err=err2)
    assert code == 1
    assert "warm hit" in err2.getvalue()
    assert out2.getvalue() == out.getvalue()


def test_watch_skips_unchanged_between_scans(tmp_path, avrora):
    watched = tmp_path / "traces"
    watched.mkdir()
    _dump(avrora, str(watched / "t.trace"), False)
    cache = str(tmp_path / "cache")
    err = io.StringIO()
    watch_directory(str(watched), cache, ["st-wdc"], max_scans=3,
                    interval=0.01, out=io.StringIO(), err=err)
    # three scans, one analysis: the signature check suppressed re-runs
    assert err.getvalue().count("watch: analyzing") == 1


def test_watch_reports_junk_and_keeps_going(tmp_path, avrora):
    watched = tmp_path / "traces"
    watched.mkdir()
    (watched / "junk.txt").write_text("not a trace\n")
    _dump(avrora, str(watched / "t.trace"), False)
    err = io.StringIO()
    code = watch_directory(str(watched), str(tmp_path / "cache"),
                           ["st-wdc"], once=True, out=io.StringIO(),
                           err=err)
    assert code == 2  # junk beats races in the 0/1/2 precedence
    assert "not an analyzable trace" in err.getvalue()
    assert "watch: analyzing" in err.getvalue()


def test_watch_non_directory(tmp_path):
    err = io.StringIO()
    assert watch_directory(str(tmp_path / "absent"),
                           str(tmp_path / "cache"), ["st-wdc"],
                           once=True, out=io.StringIO(), err=err) == 2
    assert "not one" in err.getvalue()
