"""Tests for the command-line interface (python -m repro)."""

import json
import os
import re
import threading

import pytest

from repro.cli import main
from repro.trace import dump_trace, load_trace
from repro.trace.live import send_trace
from repro.workloads import figure1


@pytest.fixture
def fig1_path(tmp_path):
    path = tmp_path / "fig1.trace"
    with open(path, "w") as fp:
        dump_trace(figure1(), fp)
    return str(path)


class TestAnalyze:
    def test_default_analysis_finds_predictive_race(self, fig1_path, capsys):
        code = main(["analyze", fig1_path])
        out = capsys.readouterr().out
        assert code == 1  # races found -> nonzero exit
        assert "st-wdc" in out
        assert "1 static / 1 dynamic" in out

    def test_hb_misses_it(self, fig1_path, capsys):
        code = main(["analyze", fig1_path, "-a", "fto-hb"])
        assert code == 0
        assert "0 static / 0 dynamic" in capsys.readouterr().out

    def test_multiple_analyses(self, fig1_path, capsys):
        main(["analyze", fig1_path, "-a", "fto-hb", "-a", "st-dc"])
        out = capsys.readouterr().out
        assert "fto-hb" in out and "st-dc" in out

    def test_vindicate_flag(self, fig1_path, capsys):
        main(["analyze", fig1_path, "--vindicate"])
        assert "vindicated" in capsys.readouterr().out

    def test_memory_flag(self, fig1_path, capsys):
        main(["analyze", fig1_path, "--memory"])
        assert "peak metadata" in capsys.readouterr().out

    def test_unknown_analysis_rejected(self, fig1_path):
        with pytest.raises(SystemExit):
            main(["analyze", fig1_path, "-a", "nope"])


class TestGenerateAndCharacterize:
    def test_generate_then_characterize(self, tmp_path, capsys):
        out_path = str(tmp_path / "pmd.trace")
        code = main(["generate", "--program", "pmd", "--scale", "0.1",
                     "-o", out_path])
        assert code == 0
        assert os.path.exists(out_path)
        code = main(["characterize", out_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "NSEAs" in out

    def test_generated_trace_analyzable(self, tmp_path, capsys):
        out_path = str(tmp_path / "xalan.trace")
        main(["generate", "--program", "xalan", "--scale", "0.1",
              "-o", out_path])
        code = main(["analyze", out_path, "-a", "st-dc"])
        assert code == 1  # xalan has planted races


class TestStreamFlag:
    def test_stream_output_matches_in_memory(self, fig1_path, capsys):
        code = main(["analyze", fig1_path, "-a", "st-wdc", "-a", "fto-hb"])
        in_memory = capsys.readouterr().out
        stream_code = main(["analyze", fig1_path, "--stream",
                            "-a", "st-wdc", "-a", "fto-hb"])
        streamed = capsys.readouterr().out
        assert streamed == in_memory
        assert stream_code == code == 1

    def test_stream_memory_flag(self, fig1_path, capsys):
        code = main(["analyze", fig1_path, "--stream", "--memory"])
        out = capsys.readouterr().out
        assert code == 1
        assert "peak metadata" in out

    def test_stream_rejects_vindicate(self, fig1_path, capsys):
        code = main(["analyze", fig1_path, "--stream", "--vindicate"])
        assert code == 2
        assert "--stream" in capsys.readouterr().err

    def test_stream_requires_header(self, tmp_path, capsys):
        path = tmp_path / "raw.trace"
        path.write_text("T0 rd x0\nT1 wr x0\n")
        code = main(["analyze", str(path), "--stream"])
        assert code == 2
        assert "header" in capsys.readouterr().err

    def test_unreadable_file_exit_code(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "missing.trace")])
        assert code == 2
        assert "missing.trace" in capsys.readouterr().err

    def test_unwritable_output_exit_code(self, tmp_path, capsys):
        target = str(tmp_path / "no" / "such" / "dir" / "x.trace")
        code = main(["generate", "--program", "pmd", "--scale", "0.05",
                     "-o", target])
        assert code == 2
        assert "no/such/dir" in capsys.readouterr().err

    def test_stream_reports_failed_analysis(self, tmp_path, capsys):
        # a header that understates the thread count makes every clock
        # analysis blow up; the engine detaches them and the CLI must
        # report the failure instead of crashing
        path = tmp_path / "lying.trace"
        path.write_text("# repro trace v1: threads=1 locks=1 vars=1\n"
                        "T4 rd x0\n")
        code = main(["analyze", str(path), "--stream"])
        out = capsys.readouterr().out
        assert code == 2
        assert "FAILED at event 0" in out

    def test_corrupt_file_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.trace"
        path.write_text("# repro trace v1: threads=1 locks=1 vars=1\n"
                        "T0 rd x0\nT0 frobnicate x0\n")
        for argv in (["analyze", str(path)],
                     ["analyze", str(path), "--stream"],
                     ["compare", str(path)]):
            code = main(argv)
            err = capsys.readouterr().err
            assert code == 2, argv
            assert "line 3" in err, argv


class TestExitCodeContract:
    def test_failure_beats_races(self, monkeypatch, capsys):
        # regression: `exit_code |= _print_report(...)` used to combine
        # races (1) with a failed analysis (2) into an undocumented 3;
        # 2 must take precedence
        from types import SimpleNamespace
        import repro.cli as cli
        from repro.core.engine import AnalysisFailure, EngineEntry, MultiResult

        racy = EngineEntry(SimpleNamespace(name="st-wdc"))
        racy.report = SimpleNamespace(static_count=1, dynamic_count=1,
                                      races=[])
        failed = EngineEntry(SimpleNamespace(name="fto-hb"))
        failed.failure = AnalysisFailure("fto-hb", 3, ValueError("boom"))
        result = MultiResult([racy, failed], events_processed=10)
        monkeypatch.setattr(cli, "run_stream", lambda *a, **k: result)
        code = cli.main(["analyze", "dummy.trace", "--stream",
                         "-a", "st-wdc", "-a", "fto-hb"])
        assert code == 2  # not 3
        out = capsys.readouterr().out
        assert "FAILED" in out and "st-wdc" in out

    def test_failure_order_does_not_matter(self, monkeypatch, capsys):
        # failure first, races second: the old code overwrote the 2 with
        # `|= 1` arithmetic; the result must still be 2
        from types import SimpleNamespace
        import repro.cli as cli
        from repro.core.engine import AnalysisFailure, EngineEntry, MultiResult

        failed = EngineEntry(SimpleNamespace(name="fto-hb"))
        failed.failure = AnalysisFailure("fto-hb", 0, ValueError("boom"))
        racy = EngineEntry(SimpleNamespace(name="st-wdc"))
        racy.report = SimpleNamespace(static_count=2, dynamic_count=2,
                                      races=[])
        result = MultiResult([failed, racy], events_processed=10)
        monkeypatch.setattr(cli, "run_stream", lambda *a, **k: result)
        code = cli.main(["analyze", "dummy.trace", "--stream"])
        assert code == 2
        capsys.readouterr()

    def test_stream_races_only_still_one(self, fig1_path):
        assert main(["analyze", fig1_path, "--stream", "-a", "st-wdc"]) == 1


class TestConvert:
    def _text_path(self, tmp_path, trace, name="in.trace"):
        path = tmp_path / name
        with open(path, "w") as fp:
            dump_trace(trace, fp)
        return str(path)

    def test_round_trip_byte_identical(self, tmp_path, capsys):
        from repro.workloads.litmus import LITMUS
        for i, (name, build) in enumerate(sorted(LITMUS.items())):
            src = self._text_path(tmp_path, build(), "in{}.trace".format(i))
            binary = str(tmp_path / "mid{}.bin".format(i))
            back = str(tmp_path / "out{}.trace".format(i))
            assert main(["convert", src, binary]) == 0
            assert main(["convert", binary, back]) == 0
            with open(src, "rb") as a, open(back, "rb") as b:
                assert a.read() == b.read(), name
        capsys.readouterr()

    def test_round_trip_generator_workload(self, tmp_path, capsys):
        from repro.workloads.generator import generate_trace
        from repro.workloads.spec import WorkloadSpec
        trace = generate_trace(WorkloadSpec(
            name="cv", threads=5, events=4000, predictive_races=1, seed=7))
        src = self._text_path(tmp_path, trace)
        binary = str(tmp_path / "mid.bin")
        back = str(tmp_path / "out.trace")
        main(["convert", src, binary])
        main(["convert", binary, back])
        out = capsys.readouterr().out
        assert "text -> binary" in out and "binary -> text" in out
        with open(src, "rb") as a, open(back, "rb") as b:
            assert a.read() == b.read()

    def test_default_direction_autodetects(self, fig1_path, tmp_path,
                                           capsys):
        binary = str(tmp_path / "f.bin")
        assert main(["convert", fig1_path, binary]) == 0
        assert "text -> binary" in capsys.readouterr().out
        text = str(tmp_path / "f.trace")
        assert main(["convert", binary, text]) == 0
        assert "binary -> text" in capsys.readouterr().out

    def test_explicit_to_same_format_rejected(self, fig1_path, tmp_path,
                                              capsys):
        # a same-format "conversion" is almost always a mixed-up --to;
        # refuse with a clear message instead of silently rewriting
        copy = str(tmp_path / "copy.trace")
        assert main(["convert", fig1_path, copy, "--to", "text"]) == 2
        err = capsys.readouterr().err
        assert "already in the text format" in err
        assert not os.path.exists(copy)

    def test_headerless_text_converts(self, tmp_path, capsys):
        src = tmp_path / "raw.trace"
        src.write_text("T0 wr x0 @1\nT1 rd x0 @2\n")
        binary = str(tmp_path / "raw.bin")
        assert main(["convert", str(src), binary]) == 0
        capsys.readouterr()
        code = main(["analyze", binary, "-a", "st-wdc"])
        assert code == 1  # the unprotected write/read pair races
        capsys.readouterr()

    def test_refuses_to_overwrite_input(self, fig1_path, tmp_path, capsys):
        # writing over the input would truncate it mid-stream and
        # destroy the recording
        original = open(fig1_path, "rb").read()
        code = main(["convert", fig1_path, fig1_path, "--to", "binary"])
        assert code == 2
        assert "over its input" in capsys.readouterr().err
        assert open(fig1_path, "rb").read() == original
        link = tmp_path / "alias.trace"
        os.symlink(fig1_path, link)
        code = main(["convert", fig1_path, str(link)])
        assert code == 2
        capsys.readouterr()
        assert open(fig1_path, "rb").read() == original

    def test_missing_input_exit_code(self, tmp_path, capsys):
        code = main(["convert", str(tmp_path / "nope.trace"),
                     str(tmp_path / "out.bin")])
        assert code == 2
        assert "nope.trace" in capsys.readouterr().err

    def test_corrupt_input_exit_code(self, tmp_path, capsys):
        from repro.trace.binfmt import MAGIC
        bad = tmp_path / "cut.bin"
        bad.write_bytes(MAGIC + b"\x80")
        code = main(["convert", str(bad), str(tmp_path / "out.trace")])
        assert code == 2
        assert "truncated" in capsys.readouterr().err


class TestBinaryTransparency:
    @pytest.fixture
    def fig1_binary_path(self, fig1_path, tmp_path, capsys):
        binary = str(tmp_path / "fig1.bin")
        main(["convert", fig1_path, binary])
        capsys.readouterr()
        return binary

    def test_analyze_binary_matches_text(self, fig1_path, fig1_binary_path,
                                         capsys):
        code_text = main(["analyze", fig1_path, "-a", "st-wdc"])
        out_text = capsys.readouterr().out
        code_bin = main(["analyze", fig1_binary_path, "-a", "st-wdc"])
        out_bin = capsys.readouterr().out
        assert code_bin == code_text == 1
        assert out_bin == out_text

    def test_stream_analyze_binary(self, fig1_binary_path, capsys):
        code = main(["analyze", fig1_binary_path, "--stream",
                     "-a", "st-wdc", "-a", "fto-hb"])
        assert code == 1
        out = capsys.readouterr().out
        assert "st-wdc" in out and "fto-hb" in out

    def test_compare_binary(self, fig1_binary_path, capsys):
        code = main(["compare", fig1_binary_path, "--stream",
                     "-a", "fto-hb", "-a", "st-dc"])
        assert code == 1
        assert "hierarchy" in capsys.readouterr().out

    def test_generate_binary_then_analyze(self, tmp_path, capsys):
        out_path = str(tmp_path / "pmd.bin")
        code = main(["generate", "--program", "pmd", "--scale", "0.1",
                     "-o", out_path, "--binary"])
        assert code == 0
        assert "[binary]" in capsys.readouterr().out
        code = main(["characterize", out_path])
        assert code == 0
        assert "NSEAs" in capsys.readouterr().out


class TestCompare:
    def test_compare_trace_file(self, fig1_path, capsys):
        code = main(["compare", fig1_path])
        out = capsys.readouterr().out
        assert code == 1  # figure 1 has a predictive race
        for name in ("unopt-hb", "st-wdc"):
            assert name in out
        assert "hierarchy hb <= wcp <= dc <= wdc: OK" in out

    def test_compare_stream(self, fig1_path, capsys):
        code = main(["compare", fig1_path, "--stream",
                     "-a", "fto-hb", "-a", "st-dc"])
        out = capsys.readouterr().out
        assert code == 1
        assert "fto-hb" in out and "st-dc" in out

    def test_compare_stable_across_runs_with_fixed_seed(self, capsys):
        argv = ["compare", "--program", "pmd", "--scale", "0.05",
                "--seed", "1234", "-a", "fto-hb", "-a", "st-wdc"]
        code_a = main(argv)
        out_a = capsys.readouterr().out
        code_b = main(argv)
        out_b = capsys.readouterr().out
        assert out_a == out_b
        assert code_a == code_b
        assert "seed 1234" in out_a

    def test_compare_different_seeds_differ(self, capsys):
        outs = []
        for seed in ("11", "22"):
            main(["compare", "--program", "pmd", "--scale", "0.05",
                  "--seed", seed, "-a", "st-wdc"])
            outs.append(capsys.readouterr().out)
        assert outs[0] != outs[1]

    def test_compare_requires_source(self, capsys):
        code = main(["compare"])
        assert code == 2
        assert "--program" in capsys.readouterr().err

    def test_compare_rejects_program_plus_trace(self, fig1_path, capsys):
        code = main(["compare", fig1_path, "--program", "pmd"])
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err
        code = main(["compare", "--program", "pmd", "--stream"])
        assert code == 2

    def test_compare_race_free_exit_zero(self, tmp_path, capsys):
        from repro.workloads.litmus import rule_a_chain
        path = tmp_path / "quiet.trace"
        with open(path, "w") as fp:
            dump_trace(rule_a_chain(), fp)
        code = main(["compare", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "hierarchy" in out


class TestTables:
    def test_tables_subcommand(self, tmp_path, capsys):
        code = main(["tables", "--table", "2", "--scale", "0.05",
                     "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "table2.txt").exists()


class TestServe:
    """The online subcommand: repro serve + repro generate --to-socket."""

    def _serve_in_thread(self, argv):
        codes = []

        def run():
            codes.append(main(argv))

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread, codes

    def test_round_trip_summary_byte_identical_to_analyze(self, tmp_path,
                                                          capsys):
        # record a workload once, then compare the offline CLI verdict
        # with the online one on the very same events
        trace_path = str(tmp_path / "w.trace")
        assert main(["generate", "--program", "xalan", "--scale", "0.05",
                     "--binary", "-o", trace_path]) == 0
        capsys.readouterr()
        expected_code = main(["analyze", trace_path,
                              "-a", "st-wdc", "-a", "fto-hb"])
        expected = capsys.readouterr().out
        assert expected_code == 1  # xalan has planted races

        trace = load_trace(trace_path)
        addr = str(tmp_path / "s.sock")
        sender = threading.Thread(target=send_trace, args=(trace, addr),
                                  daemon=True)
        sender.start()
        code = main(["serve", addr, "-a", "st-wdc", "-a", "fto-hb",
                     "--timeout", "30"])
        sender.join()
        out = capsys.readouterr().out
        assert code == expected_code
        # the live race stream comes first; the closing summary block is
        # byte-identical to the offline analyze output
        assert out.endswith(expected)
        assert out.startswith("race st-wdc")

    def test_round_trip_jsonl_matches_detect_races(self, tmp_path, capsys):
        import repro

        trace_path = str(tmp_path / "w.trace")
        main(["generate", "--program", "xalan", "--scale", "0.05",
              "--binary", "-o", trace_path])
        capsys.readouterr()
        trace = load_trace(trace_path)
        addr = str(tmp_path / "j.sock")
        sender = threading.Thread(target=send_trace, args=(trace, addr),
                                  daemon=True)
        sender.start()
        code = main(["serve", addr, "-a", "st-wdc", "--emit", "jsonl",
                     "--timeout", "30"])
        sender.join()
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines()]
        solo = repro.detect_races(trace, "st-wdc")
        races = [l for l in lines if l["type"] == "race"]
        assert [(l["event"], l["var"], l["tid"], l["access"], l["kinds"])
                for l in races] == \
            [(r.index, r.var, r.tid, r.access, r.kinds)
             for r in solo.races]
        (summary,) = [l for l in lines if l["type"] == "summary"]
        assert summary["dynamic"] == solo.dynamic_count
        assert summary["static"] == solo.static_count
        assert summary["events"] == len(trace)
        assert code == 1

    def test_generate_to_socket_cli_round_trip(self, tmp_path, capsys):
        addr = str(tmp_path / "g.sock")
        server, codes = self._serve_in_thread(
            ["serve", addr, "-a", "st-wdc", "--emit", "jsonl",
             "--timeout", "30"])
        code = main(["generate", "--program", "xalan", "--scale", "0.05",
                     "--binary", "--to-socket", addr])
        server.join(60)
        assert code == 0
        assert codes == [1]  # the served analysis found the planted races
        out = capsys.readouterr().out
        assert "streamed" in out
        summaries = [json.loads(line) for line in out.splitlines()
                     if line.startswith("{")
                     and '"type": "summary"' in line]
        assert summaries and summaries[0]["dynamic"] > 0

    def test_serve_tcp_endpoint(self, tmp_path, capsys):
        # port 0 cannot be scripted from the CLI (the producer needs the
        # real port), so pick a free one first
        import socket as socket_module

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        addr = "127.0.0.1:{}".format(port)
        trace = figure1()
        sender = threading.Thread(target=send_trace, args=(trace, addr),
                                  daemon=True)
        sender.start()
        code = main(["serve", addr, "-a", "st-wdc", "--timeout", "30"])
        sender.join()
        assert code == 1
        assert "1 static / 1 dynamic" in capsys.readouterr().out

    def test_serve_accept_timeout_exits_2(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "never.sock"),
                     "--timeout", "0.1"])
        assert code == 2
        capsys.readouterr()

    def test_serve_truncated_feed_exits_2(self, tmp_path, capsys):
        from repro.trace import dumps_trace_binary
        from repro.trace.live import connect_endpoint

        addr = str(tmp_path / "tr.sock")
        blob = dumps_trace_binary(figure1())

        def run():
            sock = connect_endpoint(addr, connect_timeout=10)
            try:
                sock.sendall(blob[:-1])  # dies mid-event
            finally:
                sock.close()

        sender = threading.Thread(target=run, daemon=True)
        sender.start()
        code = main(["serve", addr, "--timeout", "30"])
        sender.join()
        captured = capsys.readouterr()
        assert code == 2
        assert "live feed failed" in captured.err
        # the partial summary still comes out (the session survived)
        assert "st-wdc" in captured.out

    def test_serve_failed_installment_still_emits_its_races(self, tmp_path,
                                                            capsys):
        # regression: races discovered by the partial chunk of the
        # installment that failed were lost in jsonl mode (the feed
        # raised before returning them; the summary only has counts)
        import io

        from repro.trace.binfmt import BinaryTraceWriter
        from repro.trace.live import connect_endpoint
        from repro.trace.trace import TraceInfo

        addr = str(tmp_path / "lost.sock")
        # all of figure1 (including its race), then a truncated final
        # event, in one installment — the header declares one event
        # more than is sent, so the reader (which stops at the declared
        # count) genuinely hits the truncation after every real event
        trace = figure1()
        lying = TraceInfo(trace.num_threads, trace.num_locks,
                          trace.num_vars, trace.num_volatiles,
                          trace.num_classes, len(trace.events) + 1)
        buf = io.BytesIO()
        with BinaryTraceWriter(buf, lying) as writer:
            for event in trace.events:
                writer.write(event)
        blob = buf.getvalue() + b"\x01"

        def run():
            sock = connect_endpoint(addr, connect_timeout=10)
            try:
                sock.sendall(blob)
            finally:
                sock.close()

        sender = threading.Thread(target=run, daemon=True)
        sender.start()
        code = main(["serve", addr, "-a", "st-wdc", "--emit", "jsonl",
                     "--timeout", "30"])
        sender.join()
        captured = capsys.readouterr()
        assert code == 2
        assert "live feed failed" in captured.err
        lines = [json.loads(line) for line in captured.out.splitlines()]
        races = [l for l in lines if l["type"] == "race"]
        (summary,) = [l for l in lines if l["type"] == "summary"]
        assert summary["dynamic"] == len(races) == 1  # nothing lost

    def test_serve_connection_reset_prints_partial_summary(self, capsys):
        # an RST mid-stream is an OSError, not a TraceFormatError; it
        # must still take the partial-summary path instead of escaping
        # to main()'s generic handler with an empty stdout
        import socket as socket_module
        import struct
        import time

        from repro.trace import dumps_trace_binary
        from repro.trace.live import connect_endpoint

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        addr = "127.0.0.1:{}".format(port)
        blob = dumps_trace_binary(figure1())

        def run():
            sock = connect_endpoint(addr, connect_timeout=10)
            sock.sendall(blob[:-6])
            time.sleep(0.5)  # let the server drain the header + events
            sock.setsockopt(socket_module.SOL_SOCKET,
                            socket_module.SO_LINGER,
                            struct.pack("ii", 1, 0))
            sock.close()  # RST instead of FIN

        sender = threading.Thread(target=run, daemon=True)
        sender.start()
        code = main(["serve", addr, "-a", "st-wdc", "--timeout", "30"])
        sender.join()
        captured = capsys.readouterr()
        assert code == 2
        assert "live feed failed" in captured.err
        assert "st-wdc" in captured.out  # the partial summary came out

    def test_serve_hostile_header_dimensions_exit_2(self, tmp_path, capsys):
        # a remote producer declaring more threads than packed epochs
        # support must be a clean exit 2, not an uncaught ValueError
        # (exit 1 would read as "races found" to a supervisor)
        from repro.trace.binfmt import MAGIC
        from repro.trace.live import connect_endpoint

        addr = str(tmp_path / "hostile.sock")
        header = bytearray(MAGIC)
        for dim in (70_000, 1, 1, 0, 0, 0):  # threads way past 65536
            while dim > 0x7F:
                header.append((dim & 0x7F) | 0x80)
                dim >>= 7
            header.append(dim)

        def run():
            sock = connect_endpoint(addr, connect_timeout=10)
            try:
                sock.sendall(bytes(header))
            finally:
                sock.close()

        sender = threading.Thread(target=run, daemon=True)
        sender.start()
        code = main(["serve", addr, "--timeout", "30"])
        sender.join()
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot analyze this feed" in captured.err

    def test_generate_to_socket_dropped_server_exits_2(self, tmp_path,
                                                       capsys):
        # regression: a BrokenPipeError from the server dying mid-send
        # was swallowed by main()'s stdout-pipe handler and turned into
        # a silent exit 0 — the producer must report the failure
        import socket as socket_module

        addr = str(tmp_path / "drop.sock")
        server = socket_module.socket(socket_module.AF_UNIX)
        server.bind(addr)
        server.listen(1)

        def accept_and_drop():
            conn, _ = server.accept()
            conn.close()  # hang up without reading anything
            server.close()

        dropper = threading.Thread(target=accept_and_drop, daemon=True)
        dropper.start()
        code = main(["generate", "--program", "xalan", "--scale", "1",
                     "--binary", "--to-socket", addr])
        dropper.join()
        captured = capsys.readouterr()
        assert code == 2
        assert "streaming to" in captured.err
        assert "streamed" not in captured.out  # no false success line

    def test_generate_needs_exactly_one_destination(self, tmp_path, capsys):
        assert main(["generate", "--program", "xalan"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["generate", "--program", "xalan",
                     "-o", str(tmp_path / "x.trace"),
                     "--to-socket", "x.sock"]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestWorkers:
    """The --workers flag: multiprocess sharding behind the same CLI."""

    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("workers") / "w.trace")
        assert main(["generate", "--program", "xalan", "--scale", "0.05",
                     "-o", path]) == 0
        return path

    def test_analyze_output_identical_to_serial(self, trace_path, capsys):
        serial_code = main(["analyze", trace_path,
                            "-a", "st-wdc", "-a", "fto-hb"])
        serial_out = capsys.readouterr().out
        workers_code = main(["analyze", trace_path, "--workers", "2",
                             "-a", "st-wdc", "-a", "fto-hb"])
        workers_out = capsys.readouterr().out
        assert workers_code == serial_code == 1
        assert workers_out == serial_out

    def test_analyze_stream_workers(self, trace_path, capsys):
        code = main(["analyze", trace_path, "--stream", "--workers", "3",
                     "-a", "st-wdc", "-a", "fto-hb", "-a", "unopt-dc"])
        out = capsys.readouterr().out
        assert code == 1
        assert out.count("dynamic race(s)") == 3

    def test_compare_workers_hierarchy_intact(self, trace_path, capsys):
        serial_code = main(["compare", trace_path])
        serial_out = capsys.readouterr().out
        code = main(["compare", trace_path, "--workers", "4"])
        out = capsys.readouterr().out
        assert code == serial_code
        assert out == serial_out
        assert "hierarchy hb <= wcp <= dc <= wdc: OK" in out

    def test_serve_workers_round_trip(self, trace_path, tmp_path, capsys):
        expected_code = main(["analyze", trace_path,
                              "-a", "st-wdc", "-a", "fto-hb"])
        expected = capsys.readouterr().out
        trace = load_trace(trace_path)
        addr = str(tmp_path / "pw.sock")
        sender = threading.Thread(target=send_trace, args=(trace, addr),
                                  daemon=True)
        sender.start()
        code = main(["serve", addr, "--workers", "2",
                     "-a", "st-wdc", "-a", "fto-hb", "--timeout", "30"])
        sender.join()
        out = capsys.readouterr().out
        assert code == expected_code == 1
        # the final summary block stays byte-identical to offline analyze
        assert out.endswith(expected)

    def test_workers_one_is_in_process(self, trace_path, capsys):
        # --workers 1 must not regress the plain path (exact same output)
        serial_code = main(["analyze", trace_path, "-a", "st-wdc"])
        serial_out = capsys.readouterr().out
        code = main(["analyze", trace_path, "--workers", "1",
                     "-a", "st-wdc"])
        out = capsys.readouterr().out
        assert code == serial_code
        assert out == serial_out


class TestHelpEpilog:
    """--help documents the exit-code contract and format autodetection."""

    @pytest.mark.parametrize("argv", [
        ["--help"],
        ["analyze", "--help"],
        ["serve", "--help"],
        ["convert", "--help"],
    ])
    def test_contract_in_help(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "exit status: 0 = no races found" in out
        assert "autodetected" in out

    def test_workers_flag_documented(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "--help"])
        assert "--workers" in capsys.readouterr().out


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        # installed: "repro 1.0.0"; checkout: "repro 1.0.0+uninstalled"
        assert re.match(r"^repro \d+\.\d+\.\d+(\+uninstalled)?\n$", out)


class TestStatusCommand:
    def test_unreachable_server_exits_2(self, tmp_path, capsys):
        code = main(["status", str(tmp_path / "nobody.sock"),
                     "--timeout", "0.5"])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot query server" in err

    def test_status_against_live_server(self, tmp_path, capsys):
        from tests.test_server import _Server
        trace = figure1()
        with _Server(tmp_path) as srv:
            send_trace(trace, srv.addr, tenant="cli")
            srv.wait_block("cli")

            code = main(["status", srv.addr])
            out = capsys.readouterr().out
            assert code == 0
            assert out.startswith("server {}".format(srv.addr))
            assert "tenant" in out and "state" in out
            assert re.search(r"cli\s+complete\s+{0}\s+{0}".format(
                len(trace)), out)

            code = main(["status", srv.addr, "--json"])
            doc = json.loads(capsys.readouterr().out)
            assert code == 0
            assert doc["class"] == "results"
            assert doc["server"]["endpoint"] == srv.addr

            code = main(["status", srv.addr, "--command", "metadata"])
            doc = json.loads(capsys.readouterr().out)
            assert code == 0
            assert doc["class"] == "metadata"
            assert doc["producer-name"] == "repro serve"

            code = main(["status", srv.addr, "--command", "shutdown"])
            assert code == 0
            srv._thread.join(timeout=20)
            assert not srv._thread.is_alive()
        assert srv.code == 1  # figure1 has a race


class TestServeDelegation:
    """serve is a thin shell: flags must map onto ServerConfig."""

    def test_serve_flags_reach_server_config(self, monkeypatch, tmp_path):
        import repro.server
        seen = {}

        def fake_serve_main(config):
            seen["config"] = config
            return 0

        monkeypatch.setattr(repro.server, "serve_main", fake_serve_main)
        addr = str(tmp_path / "cfg.sock")
        code = main(["serve", addr, "--multi", "-a", "st-wdc", "-a",
                     "fto-hb", "--workers", "3", "--window", "128",
                     "--timeout", "7", "--emit", "jsonl",
                     "--max-races", "5", "--max-pending-races", "1000",
                     "--resume-grace", "12", "--idle-ttl", "34"])
        assert code == 0
        config = seen["config"]
        assert config.endpoint == addr
        assert config.multi is True
        assert config.analyses == ["st-wdc", "fto-hb"]
        assert config.workers == 3
        assert config.window == 128
        assert config.timeout == 7.0
        assert config.emit == "jsonl"
        assert config.max_races == 5
        assert config.max_pending_races == 1000
        assert config.resume_grace == 12.0
        assert config.idle_ttl == 34.0

    def test_single_mode_is_the_default(self, monkeypatch, tmp_path):
        import repro.server
        seen = {}

        def fake_serve_main(config):
            seen["config"] = config
            return 0

        monkeypatch.setattr(repro.server, "serve_main", fake_serve_main)
        main(["serve", str(tmp_path / "one.sock")])
        assert seen["config"].multi is False
