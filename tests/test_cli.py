"""Tests for the command-line interface (python -m repro)."""

import os

import pytest

from repro.cli import main
from repro.trace import dump_trace
from repro.workloads import figure1


@pytest.fixture
def fig1_path(tmp_path):
    path = tmp_path / "fig1.trace"
    with open(path, "w") as fp:
        dump_trace(figure1(), fp)
    return str(path)


class TestAnalyze:
    def test_default_analysis_finds_predictive_race(self, fig1_path, capsys):
        code = main(["analyze", fig1_path])
        out = capsys.readouterr().out
        assert code == 1  # races found -> nonzero exit
        assert "st-wdc" in out
        assert "1 static / 1 dynamic" in out

    def test_hb_misses_it(self, fig1_path, capsys):
        code = main(["analyze", fig1_path, "-a", "fto-hb"])
        assert code == 0
        assert "0 static / 0 dynamic" in capsys.readouterr().out

    def test_multiple_analyses(self, fig1_path, capsys):
        main(["analyze", fig1_path, "-a", "fto-hb", "-a", "st-dc"])
        out = capsys.readouterr().out
        assert "fto-hb" in out and "st-dc" in out

    def test_vindicate_flag(self, fig1_path, capsys):
        main(["analyze", fig1_path, "--vindicate"])
        assert "vindicated" in capsys.readouterr().out

    def test_memory_flag(self, fig1_path, capsys):
        main(["analyze", fig1_path, "--memory"])
        assert "peak metadata" in capsys.readouterr().out

    def test_unknown_analysis_rejected(self, fig1_path):
        with pytest.raises(SystemExit):
            main(["analyze", fig1_path, "-a", "nope"])


class TestGenerateAndCharacterize:
    def test_generate_then_characterize(self, tmp_path, capsys):
        out_path = str(tmp_path / "pmd.trace")
        code = main(["generate", "--program", "pmd", "--scale", "0.1",
                     "-o", out_path])
        assert code == 0
        assert os.path.exists(out_path)
        code = main(["characterize", out_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "NSEAs" in out

    def test_generated_trace_analyzable(self, tmp_path, capsys):
        out_path = str(tmp_path / "xalan.trace")
        main(["generate", "--program", "xalan", "--scale", "0.1",
              "-o", out_path])
        code = main(["analyze", out_path, "-a", "st-dc"])
        assert code == 1  # xalan has planted races


class TestStreamFlag:
    def test_stream_output_matches_in_memory(self, fig1_path, capsys):
        code = main(["analyze", fig1_path, "-a", "st-wdc", "-a", "fto-hb"])
        in_memory = capsys.readouterr().out
        stream_code = main(["analyze", fig1_path, "--stream",
                            "-a", "st-wdc", "-a", "fto-hb"])
        streamed = capsys.readouterr().out
        assert streamed == in_memory
        assert stream_code == code == 1

    def test_stream_memory_flag(self, fig1_path, capsys):
        code = main(["analyze", fig1_path, "--stream", "--memory"])
        out = capsys.readouterr().out
        assert code == 1
        assert "peak metadata" in out

    def test_stream_rejects_vindicate(self, fig1_path, capsys):
        code = main(["analyze", fig1_path, "--stream", "--vindicate"])
        assert code == 2
        assert "--stream" in capsys.readouterr().err

    def test_stream_requires_header(self, tmp_path, capsys):
        path = tmp_path / "raw.trace"
        path.write_text("T0 rd x0\nT1 wr x0\n")
        code = main(["analyze", str(path), "--stream"])
        assert code == 2
        assert "header" in capsys.readouterr().err

    def test_unreadable_file_exit_code(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "missing.trace")])
        assert code == 2
        assert "missing.trace" in capsys.readouterr().err

    def test_unwritable_output_exit_code(self, tmp_path, capsys):
        target = str(tmp_path / "no" / "such" / "dir" / "x.trace")
        code = main(["generate", "--program", "pmd", "--scale", "0.05",
                     "-o", target])
        assert code == 2
        assert "no/such/dir" in capsys.readouterr().err

    def test_stream_reports_failed_analysis(self, tmp_path, capsys):
        # a header that understates the thread count makes every clock
        # analysis blow up; the engine detaches them and the CLI must
        # report the failure instead of crashing
        path = tmp_path / "lying.trace"
        path.write_text("# repro trace v1: threads=1 locks=1 vars=1\n"
                        "T4 rd x0\n")
        code = main(["analyze", str(path), "--stream"])
        out = capsys.readouterr().out
        assert code == 2
        assert "FAILED at event 0" in out

    def test_corrupt_file_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.trace"
        path.write_text("# repro trace v1: threads=1 locks=1 vars=1\n"
                        "T0 rd x0\nT0 frobnicate x0\n")
        for argv in (["analyze", str(path)],
                     ["analyze", str(path), "--stream"],
                     ["compare", str(path)]):
            code = main(argv)
            err = capsys.readouterr().err
            assert code == 2, argv
            assert "line 3" in err, argv


class TestCompare:
    def test_compare_trace_file(self, fig1_path, capsys):
        code = main(["compare", fig1_path])
        out = capsys.readouterr().out
        assert code == 1  # figure 1 has a predictive race
        for name in ("unopt-hb", "st-wdc"):
            assert name in out
        assert "hierarchy hb <= wcp <= dc <= wdc: OK" in out

    def test_compare_stream(self, fig1_path, capsys):
        code = main(["compare", fig1_path, "--stream",
                     "-a", "fto-hb", "-a", "st-dc"])
        out = capsys.readouterr().out
        assert code == 1
        assert "fto-hb" in out and "st-dc" in out

    def test_compare_stable_across_runs_with_fixed_seed(self, capsys):
        argv = ["compare", "--program", "pmd", "--scale", "0.05",
                "--seed", "1234", "-a", "fto-hb", "-a", "st-wdc"]
        code_a = main(argv)
        out_a = capsys.readouterr().out
        code_b = main(argv)
        out_b = capsys.readouterr().out
        assert out_a == out_b
        assert code_a == code_b
        assert "seed 1234" in out_a

    def test_compare_different_seeds_differ(self, capsys):
        outs = []
        for seed in ("11", "22"):
            main(["compare", "--program", "pmd", "--scale", "0.05",
                  "--seed", seed, "-a", "st-wdc"])
            outs.append(capsys.readouterr().out)
        assert outs[0] != outs[1]

    def test_compare_requires_source(self, capsys):
        code = main(["compare"])
        assert code == 2
        assert "--program" in capsys.readouterr().err

    def test_compare_rejects_program_plus_trace(self, fig1_path, capsys):
        code = main(["compare", fig1_path, "--program", "pmd"])
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err
        code = main(["compare", "--program", "pmd", "--stream"])
        assert code == 2

    def test_compare_race_free_exit_zero(self, tmp_path, capsys):
        from repro.workloads.litmus import rule_a_chain
        path = tmp_path / "quiet.trace"
        with open(path, "w") as fp:
            dump_trace(rule_a_chain(), fp)
        code = main(["compare", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "hierarchy" in out


class TestTables:
    def test_tables_subcommand(self, tmp_path, capsys):
        code = main(["tables", "--table", "2", "--scale", "0.05",
                     "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "table2.txt").exists()
