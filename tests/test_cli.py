"""Tests for the command-line interface (python -m repro)."""

import os

import pytest

from repro.cli import main
from repro.trace import dump_trace
from repro.workloads import figure1


@pytest.fixture
def fig1_path(tmp_path):
    path = tmp_path / "fig1.trace"
    with open(path, "w") as fp:
        dump_trace(figure1(), fp)
    return str(path)


class TestAnalyze:
    def test_default_analysis_finds_predictive_race(self, fig1_path, capsys):
        code = main(["analyze", fig1_path])
        out = capsys.readouterr().out
        assert code == 1  # races found -> nonzero exit
        assert "st-wdc" in out
        assert "1 static / 1 dynamic" in out

    def test_hb_misses_it(self, fig1_path, capsys):
        code = main(["analyze", fig1_path, "-a", "fto-hb"])
        assert code == 0
        assert "0 static / 0 dynamic" in capsys.readouterr().out

    def test_multiple_analyses(self, fig1_path, capsys):
        main(["analyze", fig1_path, "-a", "fto-hb", "-a", "st-dc"])
        out = capsys.readouterr().out
        assert "fto-hb" in out and "st-dc" in out

    def test_vindicate_flag(self, fig1_path, capsys):
        main(["analyze", fig1_path, "--vindicate"])
        assert "vindicated" in capsys.readouterr().out

    def test_memory_flag(self, fig1_path, capsys):
        main(["analyze", fig1_path, "--memory"])
        assert "peak metadata" in capsys.readouterr().out

    def test_unknown_analysis_rejected(self, fig1_path):
        with pytest.raises(SystemExit):
            main(["analyze", fig1_path, "-a", "nope"])


class TestGenerateAndCharacterize:
    def test_generate_then_characterize(self, tmp_path, capsys):
        out_path = str(tmp_path / "pmd.trace")
        code = main(["generate", "--program", "pmd", "--scale", "0.1",
                     "-o", out_path])
        assert code == 0
        assert os.path.exists(out_path)
        code = main(["characterize", out_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "NSEAs" in out

    def test_generated_trace_analyzable(self, tmp_path, capsys):
        out_path = str(tmp_path / "xalan.trace")
        main(["generate", "--program", "xalan", "--scale", "0.1",
              "-o", out_path])
        code = main(["analyze", out_path, "-a", "st-dc"])
        assert code == 1  # xalan has planted races


class TestTables:
    def test_tables_subcommand(self, tmp_path, capsys):
        code = main(["tables", "--table", "2", "--scale", "0.05",
                     "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "table2.txt").exists()
