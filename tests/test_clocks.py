"""Unit and property tests for vector clocks and epochs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import INF, VectorClock, epoch, epoch_leq
from repro.clocks.epoch import clock_of, tid_of


def vc(*values):
    return VectorClock.of(values)


class TestVectorClockBasics:
    def test_zeros(self):
        c = VectorClock.zeros(4)
        assert list(c) == [0, 0, 0, 0]

    def test_copy_is_independent(self):
        a = vc(1, 2, 3)
        b = a.copy()
        b[0] = 99
        assert a[0] == 1

    def test_join_pointwise_max(self):
        a = vc(1, 5, 3)
        a.join(vc(2, 4, 3))
        assert list(a) == [2, 5, 3]

    def test_joined_does_not_mutate(self):
        a = vc(1, 2)
        out = a.joined(vc(3, 0))
        assert list(a) == [1, 2]
        assert list(out) == [3, 2]

    def test_leq(self):
        assert vc(1, 2).leq(vc(1, 2))
        assert vc(0, 2).leq(vc(1, 2))
        assert not vc(2, 0).leq(vc(1, 2))

    def test_leq_except_skips_component(self):
        assert vc(9, 1).leq_except(vc(0, 2), skip=0)
        assert not vc(9, 3).leq_except(vc(0, 2), skip=0)

    def test_assign_updates_in_place_through_alias(self):
        a = vc(0, 0)
        alias = a
        a.assign(vc(7, 8))
        assert list(alias) == [7, 8]

    def test_str_shows_inf(self):
        c = vc(1, INF)
        assert "inf" in str(c)


class TestEpochs:
    def test_accessors(self):
        e = epoch(5, 2)
        assert clock_of(e) == 5
        assert tid_of(e) == 2

    def test_bottom_before_everything(self):
        assert epoch_leq(None, vc(0, 0), 0)

    def test_cross_thread_comparison(self):
        c = vc(0, 7)
        assert epoch_leq(epoch(7, 1), c, 0)
        assert not epoch_leq(epoch(8, 1), c, 0)

    def test_own_thread_auto_passes(self):
        # Same-thread events are PO-ordered; the own component never
        # carries the comparison (required for WCP, see DESIGN.md §4).
        c = vc(0, 0)
        assert epoch_leq(epoch(99, 0), c, 0)

    def test_inf_never_ordered(self):
        c = vc(5, 5)
        assert not epoch_leq(epoch(INF, 1), c, 0)


small_vcs = st.lists(st.integers(min_value=0, max_value=50),
                     min_size=3, max_size=3).map(VectorClock.of)


@settings(max_examples=200, deadline=None)
@given(small_vcs, small_vcs)
def test_join_commutative(a, b):
    assert list(a.joined(b)) == list(b.joined(a))


@settings(max_examples=200, deadline=None)
@given(small_vcs, small_vcs, small_vcs)
def test_join_associative(a, b, c):
    assert list(a.joined(b).joined(c)) == list(a.joined(b.joined(c)))


@settings(max_examples=200, deadline=None)
@given(small_vcs)
def test_join_idempotent(a):
    assert list(a.joined(a)) == list(a)


@settings(max_examples=200, deadline=None)
@given(small_vcs, small_vcs)
def test_join_is_lub(a, b):
    j = a.joined(b)
    assert a.leq(j) and b.leq(j)


@settings(max_examples=200, deadline=None)
@given(small_vcs, small_vcs)
def test_leq_antisymmetry(a, b):
    if a.leq(b) and b.leq(a):
        assert list(a) == list(b)


@settings(max_examples=200, deadline=None)
@given(small_vcs, small_vcs, small_vcs)
def test_leq_transitivity(a, b, c):
    if a.leq(b) and b.leq(c):
        assert a.leq(c)
