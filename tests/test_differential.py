"""Differential tests: every analysis against the oracle closure.

The oracle is the executable specification (DESIGN.md §6); up to each
variable's first race, every analysis must agree with it exactly — on
which variables race and on the event where the first race of each
variable is detected.
"""

import random

import pytest

import repro
from repro.oracle import compute_closure
from repro.oracle.closure import race_pairs
from tests.conftest import REL_ANALYSES, random_trace


def first_per_var(pairs, trace):
    out = {}
    for _, j in pairs:
        v = trace.events[j].target
        if v not in out or j < out[v]:
            out[v] = j
    return out


@pytest.mark.parametrize("relation", ["hb", "sp", "wcp", "dc", "wdc"])
def test_analyses_match_oracle(relation, rng):
    for trial in range(60):
        trace = random_trace(rng, n_events=50)
        closure = compute_closure(trace, relation)
        oracle_first = first_per_var(race_pairs(trace, closure), trace)
        for name in REL_ANALYSES[relation]:
            report = repro.detect_races(trace, name)
            mine = {}
            for r in report.races:
                mine.setdefault(r.var, r.index)
            assert set(mine) == set(oracle_first), (trial, name)
            for v, j in mine.items():
                assert j == oracle_first[v], (trial, name, v)


def test_relation_nesting_of_reported_races(rng):
    # Weaker relations report races on a superset of variables.
    for _ in range(30):
        trace = random_trace(rng, n_events=50)
        racy = {}
        for relation in ("hb", "wcp", "dc", "wdc"):
            # use FTO tier as representative
            name = REL_ANALYSES[relation][1]
            racy[relation] = repro.detect_races(trace, name).racy_vars
        assert racy["hb"] <= racy["wcp"] <= racy["dc"] <= racy["wdc"]


def test_graph_variants_report_same_races(rng):
    for _ in range(25):
        trace = random_trace(rng, n_events=50)
        for base, with_g in (("unopt-dc", "unopt-dc-g"),
                             ("unopt-wdc", "unopt-wdc-g")):
            a = repro.detect_races(trace, base)
            b = repro.detect_races(trace, with_g)
            assert [(r.index, r.var) for r in a.races] == \
                [(r.index, r.var) for r in b.races]


def test_graph_records_rule_a_edges(rng):
    from repro.core.unopt import UnoptDC
    for _ in range(10):
        trace = random_trace(rng, n_events=60)
        analysis = UnoptDC(trace, build_graph=True)
        analysis.run()
        for src, dst, label in analysis.graph.edges:
            assert src < dst
            assert label in ("rule-a", "rule-b")


def test_deterministic_given_same_trace(rng):
    trace = random_trace(rng, n_events=80)
    for name in ("st-dc", "unopt-wcp", "fto-wdc"):
        a = repro.detect_races(trace, name)
        b = repro.detect_races(trace, name)
        assert [(r.index, r.var) for r in a.races] == \
            [(r.index, r.var) for r in b.races]


def test_forked_threads_handled(rng):
    # fork/join via the workload generator path
    from repro.workloads import generate_trace, WorkloadSpec
    spec = WorkloadSpec(name="t", threads=4, events=1500, hb_races=2,
                        predictive_races=2, seed=9)
    trace = generate_trace(spec)
    for relation in ("hb", "dc"):
        closure = compute_closure(trace, relation)
        oracle_vars = {trace.events[j].target
                       for _, j in race_pairs(trace, closure)}
        for name in REL_ANALYSES[relation]:
            assert repro.detect_races(trace, name).racy_vars == oracle_vars
