"""Tests for vindication (VindicateRace) and the constraint graph."""

import random

import pytest

import repro
from repro.core.unopt import UnoptWDC
from repro.oracle import check_predicted_trace, has_predictable_race
from repro.vindication import ConstraintGraph, vindicate
from repro.workloads import figure1, figure2, figure3
from tests.conftest import random_trace


class TestFigures:
    def test_figure1_vindicated_with_paper_witness_shape(self):
        result = repro.vindicate_first_race(figure1(), "st-wdc")
        assert result.vindicated
        assert check_predicted_trace(figure1(), result.witness,
                                     require_race_pair=result.pair)

    def test_figure2_dc_race_vindicated(self):
        result = repro.vindicate_first_race(figure2(), "st-dc")
        assert result.vindicated
        # the racing pair is rd(x) by T1 (event 0) and wr(x) by T3 (11)
        assert result.pair == (0, 11)

    def test_figure3_false_wdc_race_refuted(self):
        result = repro.vindicate_first_race(figure3(), "st-wdc")
        assert result.verdict == "refuted"

    def test_no_race_verdict(self):
        result = repro.vindicate_first_race(figure3(), "st-dc")
        assert result.verdict == "no-race"

    def test_vindication_with_analysis_graph(self):
        analysis = UnoptWDC(figure1(), build_graph=True)
        report = analysis.run()
        result = vindicate(figure1(), report.first_race,
                           graph=analysis.graph)
        assert result.vindicated


class TestAgainstExhaustiveOracle:
    def test_vindication_matches_predictability(self, rng):
        # Every vindicated race must be a true predictable race, and every
        # refuted one must have no witness (on small traces the exhaustive
        # fallback decides exactly).
        checked_vindicated = checked_refuted = 0
        for _ in range(40):
            trace = random_trace(rng, n_events=30, threads=3,
                                 volatiles=False)
            report = repro.detect_races(trace, "st-wdc")
            if not report.races:
                continue
            result = vindicate(trace, report.first_race)
            if result.vindicated:
                checked_vindicated += 1
                assert check_predicted_trace(trace, result.witness,
                                             require_race_pair=result.pair)
            elif result.verdict == "refuted":
                checked_refuted += 1
                assert not _pair_predictable(trace, report.first_race)
        assert checked_vindicated >= 5

    @staticmethod
    def test_witnesses_are_valid_predicted_traces(rng):
        from repro.oracle import find_witness
        from repro.oracle.closure import race_pairs, compute_closure
        for _ in range(15):
            trace = random_trace(rng, n_events=25, threads=3,
                                 volatiles=False)
            closure = compute_closure(trace, "wdc")
            for pair in race_pairs(trace, closure)[:3]:
                witness = find_witness(trace, pair)
                if witness is not None:
                    assert check_predicted_trace(trace, witness,
                                                 require_race_pair=pair)


def _pair_predictable(trace, race):
    from repro.vindication.vindicate import candidate_pairs
    from repro.oracle import find_witness
    for pair in candidate_pairs(trace, race):
        if find_witness(trace, pair) is not None:
            return True
    return False


class TestConstraintGraph:
    def test_edge_dedup(self):
        g = ConstraintGraph()
        g.add_edge(1, 2, "rule-a")
        g.add_edge(1, 2, "rule-a")
        assert g.num_edges == 1

    def test_labels(self):
        g = ConstraintGraph()
        g.add_edge(1, 2, "rule-a")
        g.add_edge(2, 3, "rule-b")
        assert g.edges_labeled("rule-a") == [(1, 2)]
        assert g.edges_labeled("rule-b") == [(2, 3)]

    def test_footprint_counts_nodes_and_edges(self):
        g = ConstraintGraph()
        assert g.footprint_bytes() == 0
        g.note_event(0)
        g.add_edge(0, 1, "rule-a")
        assert g.footprint_bytes() > 0

    def test_graph_analysis_costs_more_memory(self):
        from repro.core.unopt import UnoptDC
        trace = random_trace(random.Random(3), n_events=200)
        plain = UnoptDC(trace)
        plain.run()
        graphed = UnoptDC(trace, build_graph=True)
        graphed.run()
        assert graphed.footprint_bytes() > plain.footprint_bytes()
