"""Property-based differential fuzz: single-pass engine vs solo runs.

A seeded sweep of random well-formed traces across thread/lock/variable
counts (and event-kind mixes including fork/join and class-init edges)
asserts, for every analysis configuration in the matrix:

(a) the old single-analysis path (``Analysis.run`` over a materialized
    trace) and the new single-pass :class:`MultiRunner` report *identical*
    races,
(b) the paper's race-subset hierarchy holds: every HB-race is a WCP-race
    is a DC-race is a WDC-race (racy-variable sets nest accordingly),
    every HB-race is a sync-preserving (SP) race, and the two SP tiers
    report bit-identical races, and
(c) *online == offline*: replaying the same trace through a live socket
    session (``repro.trace.live`` + ``MultiRunner.session()``) in
    randomized feed-window sizes — alternating the binary and text wire
    formats — produces reports identical to the offline paths, and the
    incrementally streamed race records reassemble exactly into the
    final reports.

Volume is dialed with ``--fuzz-count`` / ``FUZZ_COUNT`` (see conftest).
"""

import json
import os
import random
import subprocess
import sys
import textwrap
import threading

import pytest

import repro
from repro.checkpoint import restore_session, save_session
from repro.core.engine import MultiRunner
from repro.core.registry import create
from repro.trace.event import Event, FORK, JOIN, STATIC_ACCESS, STATIC_INIT
from repro.trace.live import TraceListener, send_trace
from repro.trace.trace import Trace
from tests.conftest import ALL_ANALYSES, random_trace

#: per-tier HB ⊆ WCP ⊆ DC ⊆ WDC chains (fto-hb stands in as the HB
#: member of the SmartTrack tier, which has no HB configuration).
HIERARCHY_CHAINS = [
    ("unopt-hb", "unopt-wcp", "unopt-dc", "unopt-wdc"),
    ("fto-hb", "fto-wcp", "fto-dc", "fto-wdc"),
    ("fto-hb", "st-wcp", "st-dc", "st-wdc"),
]

#: HB ⊆ SP pairs (sync-preserving races are a superset of HB races;
#: SP vs WCP/DC/WDC is deliberately *not* an inclusion in either
#: direction, so those only get the no-crash + solo-identity checks).
SP_CONTAINS_HB = [
    ("unopt-hb", "unopt-sp"),
    ("ft2", "sp"),
    ("fto-hb", "sp"),
]


def fuzzed_trace(rng: random.Random, trial: int) -> Trace:
    """A random well-formed trace with trial-varied shape parameters,
    wrapped in a fork/join tree and sprinkled with class-init edges."""
    threads = 2 + trial % 5
    locks = 1 + trial % 4
    nvars = 2 + (trial // 2) % 5
    nvol = trial % 3  # sometimes no volatiles at all
    n_events = 30 + (trial * 7) % 60
    body = random_trace(
        rng, n_events=n_events, threads=threads, locks=locks, nvars=nvars,
        nvol=max(nvol, 1), volatiles=nvol > 0, tame=(trial % 5 == 0)).events
    events = []
    if trial % 2:
        # main thread (0) forks the workers up front and joins them after
        for u in range(1, threads):
            events.append(Event(0, FORK, u, 500 + u))
    events.extend(body)
    if trial % 3 == 0:
        # class-initialization edges among the body (any thread, 2 classes)
        for j in range(0, len(events), 17):
            t = events[j].tid
            kind = STATIC_INIT if j % 34 == 0 else STATIC_ACCESS
            events.append(Event(t, kind, (j // 17) % 2, 600))
    if trial % 2:
        for u in range(1, threads):
            events.append(Event(0, JOIN, u, 550 + u))
    return Trace(events)


def _race_key(report):
    return [(r.index, r.var, r.tid, r.access, r.kinds) for r in report.races]


def test_fuzz_multirunner_vs_solo_and_hierarchy(fuzz_count):
    rng = random.Random(0xFA57)
    for trial in range(fuzz_count):
        trace = fuzzed_trace(rng, trial)
        analyses = [create(name, trace) for name in ALL_ANALYSES]
        result = MultiRunner(analyses).run(trace)
        assert result.ok, (trial, result.failures)
        # (a) every analysis agrees with its solo run, race for race
        for name in ALL_ANALYSES:
            solo = create(name, trace).run()
            multi = result.report(name)
            assert _race_key(multi) == _race_key(solo), (trial, name)
            assert multi.events_processed == solo.events_processed == \
                len(trace), (trial, name)
        # (b) the race-subset hierarchy, in every optimization tier
        for chain in HIERARCHY_CHAINS:
            racy = [result.report(name).racy_vars for name in chain]
            for weaker, stronger in zip(racy, racy[1:]):
                assert weaker <= stronger, (trial, chain)
        # (b') every HB race is a sync-preserving race, and the two SP
        # tiers are bit-identical (same records, same order)
        for hb_name, sp_name in SP_CONTAINS_HB:
            assert result.report(hb_name).racy_vars <= \
                result.report(sp_name).racy_vars, (trial, hb_name, sp_name)
        assert _race_key(result.report("sp")) == \
            _race_key(result.report("unopt-sp")), trial


def test_every_registered_analysis_is_fuzzed():
    """Meta-test for the registry audit: any newly registered analysis
    must land in the fuzz matrix (``conftest.ALL_ANALYSES`` is derived
    from the registry; the graph-building ``-g`` variants are covered
    through their base configuration by the dedicated graph tests)."""
    from repro.core.registry import ANALYSIS_NAMES, BY_RELATION

    covered = set(ALL_ANALYSES)
    for name in ANALYSIS_NAMES:
        base = name[:-2] if name.endswith("-g") else name
        assert base in covered, name
    # every relation family is fuzzed too
    for relation, members in BY_RELATION.items():
        assert set(members) <= covered, relation


def test_fuzz_online_socket_session_equals_offline(fuzz_count, tmp_path):
    """Every fuzzed trace, replayed through a live socket session in
    randomized feed-window sizes, is report-identical to the offline
    paths: the one-shot engine pass, and (one rotating configuration per
    trial) the plain ``detect_races`` solo run.  The races streamed out
    of ``feed()`` installment by installment must also reassemble into
    exactly the final reports — each dynamic race reported once, in
    order."""
    rng = random.Random(0x0511E)
    for trial in range(fuzz_count):
        trace = fuzzed_trace(rng, trial)
        offline = MultiRunner(
            [create(name, trace) for name in ALL_ANALYSES]).run(trace)
        addr = str(tmp_path / "t{}.sock".format(trial))
        listener = TraceListener(addr)
        sender = threading.Thread(
            target=send_trace, args=(trace, addr),
            kwargs={"binary": trial % 2 == 0}, daemon=True)
        sender.start()
        source = listener.accept(timeout=30)
        with source:
            info = source.require_info()
            session = MultiRunner(
                [create(name, info) for name in ALL_ANALYSES]).session()
            feed = iter(source)
            streamed = []
            while True:
                seen = session.events_processed
                streamed += session.feed(feed,
                                         max_events=rng.randrange(1, 33))
                if session.events_processed == seen:
                    break
            online = session.finish()
        sender.join()
        assert online.ok, (trial, online.failures)
        assert online.events_processed == len(trace)
        for name in ALL_ANALYSES:
            assert _race_key(online.report(name)) == \
                _race_key(offline.report(name)), (trial, name)
            incremental = [(r.index, r.var, r.tid, r.access, r.kinds)
                           for n, r in streamed if n == name]
            assert incremental == _race_key(online.report(name)), \
                (trial, name)
        anchor = ALL_ANALYSES[trial % len(ALL_ANALYSES)]
        solo = repro.detect_races(trace, anchor)
        assert _race_key(online.report(anchor)) == _race_key(solo), \
            (trial, anchor)


def test_fuzz_parallel_equals_serial(fuzz_count, monkeypatch):
    """Every fuzzed trace, sharded across a randomized worker count
    (1–4, so shard assignments sweep from everything-in-one-process to
    maximal family-aware spread) and a randomized analysis subset,
    produces reports identical to the serial single-pass engine:
    identical race records and identical per-analysis summary counts.
    Chunk sizes are randomized down to a few events so multi-chunk
    broadcast and ring wraparound are exercised, and every 7th trial
    forces the pickled-queue transport fallback."""
    from repro.core.parallel import ParallelRunner

    rng = random.Random(0x9A7A11E1)
    for trial in range(fuzz_count):
        trace = fuzzed_trace(rng, trial)
        names = list(ALL_ANALYSES)
        if trial % 3:
            names = rng.sample(names, rng.randrange(1, len(names) + 1))
        serial = MultiRunner(
            [create(name, trace) for name in names]).run(trace)
        assert serial.ok, (trial, serial.failures)
        monkeypatch.setenv(
            "REPRO_PARALLEL_TRANSPORT",
            "pickle" if trial % 7 == 3 else "shm")
        workers = rng.randrange(1, 5)
        parallel = ParallelRunner(
            names, trace, workers=workers,
            chunk_events=rng.choice((5, 64, 8192))).run(trace)
        assert parallel.ok, (trial, parallel.failures)
        assert parallel.events_processed == serial.events_processed == \
            len(trace), trial
        for name in set(names):
            ser = serial.report(name)
            par = parallel.report(name)
            assert _race_key(par) == _race_key(ser), (trial, workers, name)
            assert (par.dynamic_count, par.static_count,
                    par.events_processed) == \
                (ser.dynamic_count, ser.static_count,
                 ser.events_processed), (trial, workers, name)


_REPLAY_SUFFIX = textwrap.dedent("""
    import json, sys
    from itertools import islice
    from repro.checkpoint import restore_session
    from repro.trace.format import stream_trace

    session = restore_session(sys.argv[1])
    source = iter(stream_trace(sys.argv[2]))
    for _ in islice(source, session.events_processed):
        pass
    session.feed(source)
    result = session.finish()
    json.dump({e.name: [(r.index, r.var, r.tid, r.access, r.kinds)
                        for r in e.report.races]
               for e in result.entries}, sys.stdout)
""")


def test_fuzz_checkpoint_restore_equals_uninterrupted(fuzz_count, tmp_path):
    """Every fuzzed trace, cut at a random offset, checkpointed to disk
    and restored — in this process every trial, and in a *fresh* process
    on a rotating subset — replays its suffix to reports bit-identical
    to one uninterrupted run.  Wire formats alternate per trial, batch
    kernels toggle on/off, and the full analysis matrix keeps the
    shared-HB groups active across the round trip."""
    from repro.trace.format import dump_trace, stream_trace

    rng = random.Random(0xC4EC4)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    for trial in range(fuzz_count):
        trace = fuzzed_trace(rng, trial)
        binary = trial % 2 == 0
        use_kernels = None if trial % 3 else False
        baseline = MultiRunner(
            [create(name, trace) for name in ALL_ANALYSES],
            use_kernels=use_kernels).run(trace)
        expected = {name: _race_key(baseline.report(name))
                    for name in ALL_ANALYSES}

        path = str(tmp_path / "t{}{}".format(
            trial, ".bin" if binary else ".trace"))
        with open(path, "wb" if binary else "w") as fp:
            dump_trace(trace, fp, binary=binary)
        cut = rng.randrange(0, len(trace) + 1)

        stream = stream_trace(path)
        info = stream.require_info()
        session = MultiRunner(
            [create(name, info) for name in ALL_ANALYSES],
            use_kernels=use_kernels).session()
        source = iter(stream)
        session.feed(source, max_events=cut)
        assert session.events_processed == cut, trial
        ckpt = str(tmp_path / "t{}.ckpt".format(trial))
        save_session(session, ckpt)

        restored = restore_session(ckpt)
        assert restored.events_processed == cut, trial
        restored.feed(source)
        result = restored.finish()
        assert result.ok, (trial, result.failures)
        assert result.events_processed == len(trace), (trial, cut)
        for name in ALL_ANALYSES:
            assert _race_key(result.report(name)) == expected[name], \
                (trial, cut, name)

        if trial % 5 == 0:
            proc = subprocess.run(
                [sys.executable, "-c", _REPLAY_SUFFIX, ckpt, path],
                capture_output=True, text=True, env=env, timeout=120)
            assert proc.returncode == 0, (trial, proc.stderr)
            doc = json.loads(proc.stdout)
            assert doc == {name: [list(k) for k in keys]
                           for name, keys in expected.items()}, (trial, cut)


def test_fuzz_single_iteration_property(fuzz_count):
    """The engine iterates the event source exactly once, whatever the
    trace shape (a one-shot source would raise otherwise)."""
    from tests.test_engine import OneShotEvents

    rng = random.Random(0xBEEF)
    trials = max(fuzz_count // 10, 5)
    for trial in range(trials):
        trace = fuzzed_trace(rng, trial)
        source = OneShotEvents(trace.events)
        analyses = [create(name, trace) for name in ALL_ANALYSES]
        result = MultiRunner(analyses).run(source)
        assert source.iterations == 1
        assert result.events_processed == len(trace)
