"""Sync-preserving race prediction: litmus gallery + bounded-window mode.

The SP litmus traces are hand-built so that each pins one piece of the
algorithm's semantics:

* SP is *weaker* than HB/WCP (more races): a release→acquire edge only
  materializes when the acquiring thread already knows the releasing
  critical section at acquire time — a lock handoff alone orders
  nothing, so SP reports races the whole HB⊆WCP⊆DC⊆WDC hierarchy
  misses.
* The conditional edge *does* fire exactly at the knowledge threshold,
  and released knowledge cascades: absorbing one critical section can
  unlock an earlier one, so the acquire-time fixpoint must iterate.

Bounded-window mode (``MultiRunner(window_events=N)`` /
``--window-events N``) ages out per-variable metadata older than the
last N events.  The regressions here prove the documented contract: a
race within the window is reported, a race straddling an expired window
is dropped deterministically, state stays bounded on a million-event
feed, and the windowed engine is bit-identical across serial, parallel,
and checkpoint-restored passes.
"""

import io
import random

import pytest

import repro
from repro.checkpoint import restore_session, save_session
from repro.cli import main
from repro.core.engine import MultiRunner
from repro.core.registry import create
from repro.oracle import compute_closure, racy_vars
from repro.trace.event import (
    ACQUIRE,
    READ,
    RELEASE,
    VOLATILE_READ,
    VOLATILE_WRITE,
    WRITE,
    Event,
)
from repro.trace.format import dump_trace
from repro.trace.trace import Trace
from tests.conftest import ALL_ANALYSES, random_trace


def _racy(trace, name):
    return repro.detect_races(trace, name).racy_vars


def _race_key(report):
    return [(r.index, r.var, r.tid, r.access, r.kinds) for r in report.races]


# -- the litmus traces ------------------------------------------------------

def lock_handoff_alone():
    """Two critical sections on one lock, plus unprotected writes around
    them.  HB (and WCP/DC/WDC, which compose with the release→acquire
    edge) order everything; SP orders *nothing* — T1 acquires without
    any knowledge of T0's critical section, so both the y and x
    accesses race."""
    return Trace([
        Event(0, WRITE, 0, 1),        # w(x)
        Event(0, ACQUIRE, 0, 2),
        Event(0, WRITE, 1, 3),        # w(y) in CS
        Event(0, RELEASE, 0, 4),
        Event(1, ACQUIRE, 0, 5),
        Event(1, WRITE, 1, 6),        # w(y) in CS
        Event(1, RELEASE, 0, 7),
        Event(1, WRITE, 0, 8),        # w(x)
    ], num_threads=2)


def conditional_edge_fires():
    """T1 reads a volatile published *inside* T0's critical section, so
    at its acquire it knows the section's start — the SP edge fires and
    adopts the release clock, covering the w(x) that the volatile edge
    alone does not."""
    return Trace([
        Event(0, ACQUIRE, 0, 1),
        Event(0, VOLATILE_WRITE, 0, 2),
        Event(0, WRITE, 0, 3),        # w(x) after the volatile publish
        Event(0, RELEASE, 0, 4),
        Event(1, VOLATILE_READ, 0, 5),
        Event(1, ACQUIRE, 0, 6),
        Event(1, READ, 0, 7),         # r(x): ordered only via the SP edge
    ], num_threads=2)


def below_threshold_races():
    """Same shape, but the volatile is published *before* T0's critical
    section: T1's knowledge stays below the acquire-time threshold, no
    SP edge materializes, and the read races (HB still orders it via
    the plain lock edge — SP is strictly weaker here)."""
    return Trace([
        Event(0, VOLATILE_WRITE, 0, 1),
        Event(0, ACQUIRE, 0, 2),
        Event(0, WRITE, 0, 3),
        Event(0, RELEASE, 0, 4),
        Event(1, VOLATILE_READ, 0, 5),
        Event(1, ACQUIRE, 0, 6),
        Event(1, READ, 0, 7),
    ], num_threads=2)


def cascading_fixpoint():
    """T2 directly knows only T1's critical section; T1's release clock
    carries knowledge of T0's — absorbing T1's section must re-trigger
    the scan so T0's is absorbed too, covering w(x).  A single
    non-iterated pass would leave r(x) racing."""
    return Trace([
        Event(0, ACQUIRE, 0, 1),
        Event(0, VOLATILE_WRITE, 0, 2),
        Event(0, WRITE, 0, 3),        # w(x)
        Event(0, RELEASE, 0, 4),
        Event(1, ACQUIRE, 0, 5),
        Event(1, VOLATILE_WRITE, 1, 6),
        Event(1, VOLATILE_READ, 0, 7),   # T1 learns T0's section
        Event(1, RELEASE, 0, 8),
        Event(2, VOLATILE_READ, 1, 9),   # T2 learns T1's section
        Event(2, ACQUIRE, 0, 10),
        Event(2, RELEASE, 0, 11),
        Event(2, READ, 0, 12),        # r(x): needs the cascaded edge
    ], num_threads=3)


LITMUS = {
    "lock_handoff_alone": (lock_handoff_alone, {0, 1}),
    "conditional_edge_fires": (conditional_edge_fires, set()),
    "below_threshold_races": (below_threshold_races, {0}),
    "cascading_fixpoint": (cascading_fixpoint, set()),
}


class TestSyncPLitmus:
    @pytest.mark.parametrize("litmus", sorted(LITMUS))
    def test_both_sp_tiers_match_expected(self, litmus):
        build, expected = LITMUS[litmus]
        trace = build()
        for name in ("unopt-sp", "sp"):
            assert _racy(trace, name) == expected, (litmus, name)

    @pytest.mark.parametrize("litmus", sorted(LITMUS))
    def test_oracle_sp_agrees(self, litmus):
        build, expected = LITMUS[litmus]
        trace = build()
        closure = compute_closure(trace, "sp")
        assert racy_vars(trace, closure) == expected, litmus

    @pytest.mark.parametrize("litmus", sorted(LITMUS))
    def test_sp_tiers_bit_identical(self, litmus):
        build, _ = LITMUS[litmus]
        trace = build()
        a = repro.detect_races(trace, "unopt-sp")
        b = repro.detect_races(trace, "sp")
        assert _race_key(a) == _race_key(b), litmus

    def test_sp_reports_races_the_whole_hierarchy_misses(self):
        trace = lock_handoff_alone()
        assert _racy(trace, "sp") == {0, 1}
        for name in ("unopt-hb", "ft2", "fto-hb", "unopt-wcp", "st-wcp",
                     "unopt-dc", "st-dc", "unopt-wdc", "st-wdc"):
            assert _racy(trace, name) == set(), name

    def test_sp_strictly_weaker_than_hb_here(self):
        # HB orders via the bare lock edge; SP deliberately does not
        trace = below_threshold_races()
        assert _racy(trace, "unopt-hb") == set()
        assert _racy(trace, "sp") == {0}


# -- bounded-window mode ----------------------------------------------------

def straddle_trace(gap, nthreads=2):
    """T0 writes x, T1 runs ``gap`` private reads, then T1 writes x —
    a racing pair separated by ``gap`` events."""
    events = [Event(0, WRITE, 0, 1)]
    events += [Event(1, READ, 1, 2)] * gap
    events.append(Event(1, WRITE, 0, 3))
    return Trace(events, num_threads=nthreads)


class TestWindowMode:
    def test_race_inside_window_survives(self):
        trace = straddle_trace(8)
        for name in ALL_ANALYSES:
            result = MultiRunner([create(name, trace)],
                                 window_events=16).run(trace)
            assert result.report(name).racy_vars == {0}, name

    def test_straddling_race_dropped_deterministically(self):
        # gap > 2 windows: x's write ages out before the racing access;
        # twice, because "deterministically" is the contract
        trace = straddle_trace(64)
        for name in ALL_ANALYSES:
            for _ in range(2):
                result = MultiRunner([create(name, trace)],
                                     window_events=16).run(trace)
                assert result.report(name).racy_vars == set(), name
            # and without a window the race is of course there
            full = MultiRunner([create(name, trace)]).run(trace)
            assert full.report(name).racy_vars == {0}, name

    def test_window_events_validated(self):
        from repro.core.parallel import ParallelRunner
        trace = straddle_trace(4)
        for bad in (0, -3):
            with pytest.raises(ValueError, match="window_events"):
                MultiRunner([create("sp", trace)], window_events=bad)
            with pytest.raises(ValueError, match="window_events"):
                ParallelRunner(["sp"], trace, window_events=bad)

    def test_cli_rejects_nonpositive_window(self, tmp_path, capsys):
        path = str(tmp_path / "t.trace")
        with open(path, "w") as fp:
            dump_trace(straddle_trace(4), fp)
        assert main(["analyze", path, "--window-events", "0"]) == 2
        assert "window-events" in capsys.readouterr().err

    def test_cli_rejects_window_with_cache(self, tmp_path, capsys):
        path = str(tmp_path / "t.trace")
        with open(path, "w") as fp:
            dump_trace(straddle_trace(4), fp)
        code = main(["analyze", path, "--cache", str(tmp_path / "c"),
                     "--window-events", "8"])
        assert code == 2
        assert "--window-events" in capsys.readouterr().err

    def test_cli_window_drops_straddling_race(self, tmp_path, capsys):
        path = str(tmp_path / "t.trace")
        with open(path, "w") as fp:
            dump_trace(straddle_trace(64), fp)
        assert main(["analyze", path, "-a", "sp"]) == 1
        assert main(["analyze", path, "-a", "sp",
                     "--window-events", "16"]) == 0
        assert main(["analyze", path, "-a", "sp", "--stream",
                     "--window-events", "16"]) == 0
        assert main(["analyze", path, "-a", "sp", "--workers", "2",
                     "--window-events", "16"]) == 0
        capsys.readouterr()

    def test_serial_equals_parallel_under_window(self):
        from repro.core.parallel import ParallelRunner
        rng = random.Random(0x51DE)
        for trial in range(6):
            trace = random_trace(rng, n_events=rng.randrange(50, 160))
            window = rng.choice([7, 16, 33])
            serial = MultiRunner([create(n, trace) for n in ALL_ANALYSES],
                                 window_events=window).run(trace)
            par = ParallelRunner(ALL_ANALYSES, trace,
                                 workers=rng.randrange(2, 5),
                                 window_events=window).run(trace)
            assert par.ok, par.failures
            for name in ALL_ANALYSES:
                assert _race_key(par.report(name)) == \
                    _race_key(serial.report(name)), (trial, window, name)

    def test_checkpoint_roundtrip_under_window(self):
        rng = random.Random(0xC0FE)
        for trial in range(5):
            trace = random_trace(rng, n_events=rng.randrange(60, 200))
            window = rng.choice([7, 16, 33])
            base = MultiRunner([create(n, trace) for n in ALL_ANALYSES],
                               window_events=window).run(trace)
            cut = rng.randrange(1, len(trace))
            session = MultiRunner([create(n, trace) for n in ALL_ANALYSES],
                                  window_events=window).session()
            session.feed(iter(trace.events[:cut]))
            buf = io.BytesIO()
            save_session(session, buf)
            buf.seek(0)
            restored = restore_session(buf)
            assert restored.runner.window_events == window
            restored.feed(iter(trace.events[cut:]))
            result = restored.finish()
            for name in ALL_ANALYSES:
                assert _race_key(result.report(name)) == \
                    _race_key(base.report(name)), (trial, window, cut, name)

    def test_bounded_state_on_million_event_feed(self):
        """Per-variable metadata stays O(vars active in ~2 windows), not
        O(all vars ever seen), across a 1M-event round-robin feed over
        20k variables."""
        nvars, window = 20_000, 2_000
        events = [Event(i % 2, WRITE if i % 3 else READ, i % nvars, 1)
                  for i in range(1_000_000)]
        trace = Trace(events, num_threads=2)
        runner = MultiRunner([create("sp", trace),
                              create("unopt-hb", trace)],
                             window_events=window)
        session = runner.session()
        sp = runner.entries[0].analysis
        hb = runner.entries[1].analysis
        source = iter(trace.events)
        peak = 0
        while True:
            seen = session.events_processed
            session.feed(source, max_events=50_000)
            peak = max(peak,
                       len(sp._read) + len(sp._write),
                       len(hb._read) + len(hb._write))
            if session.events_processed == seen:
                break
        session.finish()
        # each variable recurs every nvars=20k events, so at most ~2
        # windows' worth of distinct variables hold metadata at once —
        # far below the 20k (per map) an unwindowed pass accumulates
        assert 0 < peak <= 3 * window, peak

    def test_serve_window_events_bounds_reported_races(self, tmp_path):
        from repro.trace.live import send_trace
        from tests.test_server import _Server

        trace = straddle_trace(64)
        with _Server(tmp_path, analyses=["sp"], window_events=16) as srv:
            send_trace(trace, srv.addr, tenant="w")
            state, events, body = srv.wait_block("w")
        assert events == len(trace)
        assert "0 static / 0 dynamic" in body, body
        # control: the same feed without a window reports the race
        with _Server(tmp_path, name="srv2.sock", analyses=["sp"]) as srv:
            send_trace(trace, srv.addr, tenant="w")
            state, events, body = srv.wait_block("w")
        assert events == len(trace)
        assert "1 static / 1 dynamic" in body, body
