"""Tests for the multi-tenant detection server (repro.server).

Covers the session handshake frames, concurrent tenants whose
summaries must be byte-identical to solo ``repro analyze``, the
reconnect/refusal/eviction state machine, the MI control socket, and
the analysis-parallel (``workers > 1``) tenant path.
"""

import io
import json
import os
import re
import socket
import threading
import time

import pytest

from repro.core.engine import run_analyses
from repro.reporting import print_entries
from repro.server import ServerApp, ServerConfig
from repro.server.mi import control_endpoint, query
from repro.trace.binfmt import BinaryTraceWriter
from repro.trace.live import (
    HELLO_MAGIC,
    _read_reply_line,
    _SendallSink,
    connect_endpoint,
    format_hello,
    format_refuse,
    format_welcome,
    parse_hello,
    parse_welcome,
    read_handshake,
    send_trace,
)
from repro.trace.stream import TraceFormatError
from repro.workloads import figure1
from repro.workloads.dacapo import dacapo_trace


@pytest.fixture(scope="module")
def avrora():
    """A small racy trace (~1.3k events, 45 st-wdc races)."""
    return dacapo_trace("avrora", scale=0.05, cache=False)


def _wait_for(pred, timeout=20.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return
        time.sleep(0.02)
    pytest.fail("timed out waiting for {}".format(what))


def solo_summary(trace, analyses=("st-wdc",), max_races=10):
    """What ``repro analyze`` prints for this trace — the byte-identical
    reference for a tenant's summary block."""
    result = run_analyses(trace, list(analyses))
    buf = io.StringIO()
    print_entries(result, max_races=max_races, out=buf)
    return buf.getvalue()


def tenant_block(out_text, tenant):
    """Extract one tenant's summary block: (state, events, body)."""
    pattern = (r"--- tenant {0}: (\w+) after (\d+) events ---\n"
               r"(.*?)--- end tenant {0} ---\n").format(re.escape(tenant))
    match = re.search(pattern, out_text, re.S)
    if match is None:
        return None
    return match.group(1), int(match.group(2)), match.group(3)


class _Server:
    """A ServerApp on a tmp unix socket, running in a thread."""

    def __init__(self, tmp_path, name="srv.sock", **overrides):
        self.addr = str(tmp_path / name)
        cfg = dict(endpoint=self.addr, analyses=["st-wdc"], multi=True,
                   timeout=10.0, accept_poll=0.05)
        cfg.update(overrides)
        self.config = ServerConfig(**cfg)
        self.out, self.err = io.StringIO(), io.StringIO()
        self.app = ServerApp(self.config, out=self.out, err=self.err)
        self.code = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.code = self.app.run()

    def __enter__(self):
        self._thread.start()
        _wait_for(lambda: self.app._listener is not None,
                  what="server bind")
        return self

    def __exit__(self, exc_type, exc, tb):
        self.app.stop()
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server thread wedged"
        return False

    def stop(self):
        self.app.stop()
        self._thread.join(timeout=30)
        assert not self._thread.is_alive()

    def block(self, tenant):
        return tenant_block(self.out.getvalue(), tenant)

    def wait_block(self, tenant):
        _wait_for(lambda: self.block(tenant) is not None,
                  what="summary block for {}".format(tenant))
        return self.block(tenant)

    def session_state(self, tenant):
        sess = self.app.sessions.get(tenant)
        return None if sess is None else sess.state


def _hello_conn(addr, tenant, total=None, timeout=10.0):
    """Producer-side handshake; returns (socket, resume_offset)."""
    sock = connect_endpoint(addr, connect_timeout=timeout)
    sock.sendall(format_hello(tenant, total=total))
    resume = parse_welcome(_read_reply_line(sock, timeout))
    return sock, resume


def _send_binary_events(sock, trace, events):
    writer = BinaryTraceWriter(_SendallSink(sock), trace)
    for event in events:
        writer.write(event)
    writer.flush()


def _abort(sock):
    """Close with RST so the server sees a hard producer death."""
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                    struct_pack_linger())
    sock.close()


def struct_pack_linger():
    import struct
    return struct.pack("ii", 1, 0)


class TestHandshakeFrames:
    def test_hello_round_trip(self):
        line = format_hello("web-1", total=123)
        assert line.startswith(HELLO_MAGIC) and line.endswith(b"\n")
        parsed = parse_hello(line.rstrip(b"\n"))
        assert parsed == {"tenant": "web-1", "resume": 0, "total": 123}

    def test_hello_unknown_total(self):
        parsed = parse_hello(format_hello("a.b_c-d", resume=7).rstrip(b"\n"))
        assert parsed["resume"] == 7 and parsed["total"] is None

    @pytest.mark.parametrize("tenant", ["", "has space", "x" * 65, "a/b"])
    def test_bad_tenant_ids_rejected(self, tenant):
        with pytest.raises(ValueError):
            format_hello(tenant)
        bad = HELLO_MAGIC + "tenant={} resume=0 total=?".format(
            tenant).encode("latin-1")
        with pytest.raises(TraceFormatError):
            parse_hello(bad)

    def test_welcome_and_refuse_round_trip(self):
        assert parse_welcome(format_welcome(42).rstrip(b"\n")) == 42
        with pytest.raises(TraceFormatError, match="refused session: busy"):
            parse_welcome(format_refuse("busy").rstrip(b"\n"))
        with pytest.raises(TraceFormatError, match="welcome"):
            parse_welcome(b"junk")

    def test_read_handshake_parses_hello_and_keeps_leftover(self):
        a, b = socket.socketpair()
        try:
            b.sendall(format_hello("t1", total=9) + b"# repro trace")
            hello, prefix = read_handshake(a, timeout=5.0)
            assert hello["tenant"] == "t1" and hello["total"] == 9
            assert prefix == b"# repro trace"
        finally:
            a.close()
            b.close()

    def test_read_handshake_passes_legacy_bytes_through(self):
        a, b = socket.socketpair()
        try:
            b.sendall(b"# repro trace v1: threads=2\n0 r 1 @ 3\n")
            b.shutdown(socket.SHUT_WR)
            hello, prefix = read_handshake(a, timeout=5.0)
            assert hello is None
            # every sniffed byte is handed back for the format readers
            assert b"# repro trace v1".startswith(prefix) or \
                prefix.startswith(b"# repro ")
        finally:
            a.close()
            b.close()

    def test_read_handshake_bounds_the_frame(self):
        a, b = socket.socketpair()
        try:
            b.sendall(HELLO_MAGIC + b"x" * 1024)
            with pytest.raises(TraceFormatError, match="exceeds"):
                read_handshake(a, timeout=5.0)
        finally:
            a.close()
            b.close()


class TestMultiTenantServe:
    def test_concurrent_tenants_match_solo_analyze(self, tmp_path, avrora):
        solo = solo_summary(avrora)
        with _Server(tmp_path) as srv:
            threads = [threading.Thread(
                target=send_trace, args=(avrora, srv.addr),
                kwargs={"tenant": "t{}".format(i), "binary": i % 2 == 0},
                daemon=True) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            for i in range(4):
                state, events, body = srv.wait_block("t{}".format(i))
                assert state == "complete"
                assert events == len(avrora)
                assert body == solo
            srv.stop()
        assert srv.code == 1  # races found, no failures

    def test_anonymous_legacy_producer_completes(self, tmp_path, avrora):
        with _Server(tmp_path) as srv:
            send_trace(avrora, srv.addr)
            state, events, body = srv.wait_block("anon/1")
            assert state == "complete" and events == len(avrora)
            assert body == solo_summary(avrora)
        # races stream tagged with the generated tenant name
        assert "[anon/1] race st-wdc" in srv.out.getvalue()

    def test_second_producer_for_attached_tenant_refused_busy(
            self, tmp_path, avrora):
        with _Server(tmp_path) as srv:
            sock, resume = _hello_conn(srv.addr, "dup", total=len(avrora))
            assert resume == 0
            try:
                with pytest.raises(TraceFormatError, match="busy"):
                    _hello_conn(srv.addr, "dup")
            finally:
                sock.close()

    def test_resume_from_unreachable_offset_refused_gap(self, tmp_path):
        with _Server(tmp_path) as srv:
            sock = connect_endpoint(srv.addr, connect_timeout=10)
            try:
                sock.sendall(format_hello("fresh", resume=5))
                with pytest.raises(TraceFormatError, match="gap"):
                    parse_welcome(_read_reply_line(sock, 10.0))
            finally:
                sock.close()

    def test_resume_after_abrupt_disconnect(self, tmp_path, avrora):
        cut = len(avrora) // 2
        with _Server(tmp_path) as srv:
            sock, resume = _hello_conn(srv.addr, "web", total=len(avrora))
            assert resume == 0
            _send_binary_events(sock, avrora, avrora.events[:cut])
            _wait_for(lambda: (srv.app.sessions["web"].events_acked
                               >= cut - 512), what="first half applied")
            _abort(sock)
            _wait_for(lambda: srv.session_state("web") == "detached",
                      what="detach")
            acked = srv.app.sessions["web"].events_acked
            sent = send_trace(avrora, srv.addr, tenant="web")
            assert sent == len(avrora) - acked
            state, events, body = srv.wait_block("web")
            assert state == "complete" and events == len(avrora)
            assert body == solo_summary(avrora)
            assert "resumed at event {}".format(acked) in srv.err.getvalue()

    def test_reconnect_with_changed_dimensions_is_rejected(
            self, tmp_path, avrora):
        other = figure1()  # different thread/var counts
        with _Server(tmp_path) as srv:
            sock, _ = _hello_conn(srv.addr, "web", total=len(avrora))
            _send_binary_events(sock, avrora, avrora.events[:100])
            _wait_for(lambda: srv.app.sessions["web"].events_acked > 0,
                      what="some events applied")
            sock.close()
            _wait_for(lambda: srv.session_state("web") == "detached",
                      what="detach")
            acked = srv.app.sessions["web"].events_acked
            sock2, resume = _hello_conn(srv.addr, "web")
            assert resume == acked
            _send_binary_events(sock2, other, other.events)
            sock2.close()
            _wait_for(lambda: "different trace dimensions"
                      in srv.err.getvalue(), what="mismatch log")
            # the original state survived the bad reconnect
            assert srv.session_state("web") == "detached"
            assert srv.app.sessions["web"].events_acked == acked

    def test_resume_grace_expiry_seals_the_session(self, tmp_path, avrora):
        with _Server(tmp_path, resume_grace=0.2) as srv:
            sock, _ = _hello_conn(srv.addr, "gone", total=len(avrora))
            _send_binary_events(sock, avrora, avrora.events[:200])
            sock.close()  # clean FIN but short of the declared total
            state, events, body = srv.wait_block("gone")
            assert state == "failed"
            assert "resume grace expired" in srv.err.getvalue()
            srv.stop()
        assert srv.code == 2  # a failed session is a failed serve

    def test_idle_sessions_are_evicted(self, tmp_path, avrora):
        with _Server(tmp_path, idle_ttl=0.2) as srv:
            send_trace(avrora, srv.addr, tenant="brief")
            srv.wait_block("brief")
            _wait_for(lambda: "brief" not in srv.app.sessions,
                      what="eviction")
            doc = query(srv.addr, {"command": "status"})
            assert doc["results"]["data"] == []

    def test_status_and_metadata_documents(self, tmp_path, avrora):
        with _Server(tmp_path) as srv:
            send_trace(avrora, srv.addr, tenant="seen")
            srv.wait_block("seen")
            meta = query(srv.addr, {"command": "metadata"})
            assert meta["class"] == "metadata"
            assert "sessions" in meta["table-classes"]
            assert "races" in meta["table-classes"]
            doc = query(srv.addr, {"command": "status"})
            assert doc["class"] == "results"
            rows = doc["results"]["data"]
            assert [r[0] for r in rows] == ["seen"]
            tenant, state, events, total, races, eps, lag, reconn = rows[0]
            assert state == "complete" and events == len(avrora)
            assert total == len(avrora) and races == 45 and reconn == 0
            assert doc["server"]["pid"] == os.getpid()
            assert doc["server"]["rss_kb"] > 0
            assert doc["server"]["session_counts"] == {"complete": 1}

    def test_races_command_replays_retained_races(self, tmp_path, avrora):
        with _Server(tmp_path, retain_races=16) as srv:
            send_trace(avrora, srv.addr, tenant="r")
            srv.wait_block("r")
            doc = query(srv.addr, {"command": "races", "tenant": "r"})
            assert doc["races-total"] == 45
            assert len(doc["results"]["data"]) == 16  # bounded replay
            analysis, event, tid, var, site, access, kinds = \
                doc["results"]["data"][-1]
            assert analysis == "st-wdc" and access in ("read", "write")
            missing = query(srv.addr, {"command": "races", "tenant": "no"})
            assert missing["class"] == "error"

    def test_shutdown_command_stops_the_server(self, tmp_path):
        srv = _Server(tmp_path)
        with srv:
            doc = query(srv.addr, {"command": "shutdown"})
            assert doc["results"]["class"] == "shutdown"
            srv._thread.join(timeout=30)
            assert not srv._thread.is_alive()
        assert srv.code == 0  # no sessions, no races

    def test_unknown_and_malformed_commands_get_error_docs(self, tmp_path):
        with _Server(tmp_path) as srv:
            assert query(srv.addr, {"command": "frobnicate"})["class"] \
                == "error"
            assert "command" in query(srv.addr, {})["error"]

    def test_endpoint_files_cleaned_up_on_exit(self, tmp_path):
        srv = _Server(tmp_path)
        with srv:
            assert os.path.exists(srv.addr)
            assert os.path.exists(srv.addr + ".lock")
            assert os.path.exists(control_endpoint(srv.addr))
        assert not os.path.exists(srv.addr)
        assert not os.path.exists(srv.addr + ".lock")
        assert not os.path.exists(control_endpoint(srv.addr))

    def test_jsonl_emission_tags_tenants(self, tmp_path, avrora):
        with _Server(tmp_path, emit="jsonl") as srv:
            send_trace(avrora, srv.addr, tenant="j")
            _wait_for(lambda: '"type": "summary"' in srv.out.getvalue(),
                      what="jsonl summary")
        lines = [json.loads(line)
                 for line in srv.out.getvalue().splitlines()]
        kinds = {line["type"] for line in lines}
        assert kinds == {"race", "session", "summary"}
        assert all(line["tenant"] == "j" for line in lines)
        summary = [l for l in lines if l["type"] == "summary"][0]
        assert summary["dynamic"] == 45 and summary["events"] == len(avrora)


class TestParallelTenants:
    def test_workers_tenant_matches_solo(self, tmp_path, avrora):
        analyses = ["st-wdc", "fto-hb"]
        with _Server(tmp_path, analyses=analyses, workers=2) as srv:
            send_trace(avrora, srv.addr, tenant="par")
            state, events, body = srv.wait_block("par")
            assert state == "complete" and events == len(avrora)
            assert body == solo_summary(avrora, analyses)

    def test_workers_tenant_survives_reconnect(self, tmp_path, avrora):
        cut = len(avrora) // 3
        with _Server(tmp_path, workers=2) as srv:
            sock, _ = _hello_conn(srv.addr, "par", total=len(avrora))
            _send_binary_events(sock, avrora, avrora.events[:cut])
            _wait_for(lambda: srv.app.sessions["par"].events_acked > 0,
                      what="first installment applied")
            sock.close()
            _wait_for(lambda: srv.session_state("par") == "detached",
                      what="detach")
            send_trace(avrora, srv.addr, tenant="par")
            state, events, body = srv.wait_block("par")
            assert state == "complete" and events == len(avrora)
            assert body == solo_summary(avrora)


def _reply_server(payload):
    """A one-shot TCP 'control server': accepts one connection, reads
    the request line, sends ``payload`` verbatim, and closes.  Returns
    (endpoint, thread)."""
    sock = socket.socket(socket.AF_INET)
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    endpoint = "127.0.0.1:{}".format(sock.getsockname()[1])

    def serve():
        try:
            conn, _ = sock.accept()
            conn.settimeout(10.0)
            data = b""
            while b"\n" not in data:
                chunk = conn.recv(4096)
                if not chunk:
                    break
                data += chunk
            try:
                conn.sendall(payload)
            except OSError:
                pass  # the client bails at its read cap; EPIPE is fine
            conn.close()
        finally:
            sock.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return endpoint, thread


class TestControlPathEdges:
    """The MI control-path bugfixes: port derivation at the top of the
    TCP range, connection failures that name ``--control``, and replies
    that come back without their newline terminator."""

    def test_control_endpoint_derivation(self):
        assert control_endpoint("example.org:1234") == "example.org:1235"
        assert control_endpoint("/tmp/x.sock").endswith(".ctl")

    def test_control_endpoint_port_65535_refused_with_hint(self):
        with pytest.raises(ValueError) as exc:
            control_endpoint("example.org:65535")
        assert "--control" in str(exc.value)
        assert "65536" in str(exc.value)

    def test_control_endpoint_for_port_65535_is_none(self):
        from repro.server.app import control_endpoint_for
        assert control_endpoint_for(("127.0.0.1", 65535)) is None
        assert control_endpoint_for(("127.0.0.1", 9000)) \
            == "127.0.0.1:9001"
        assert control_endpoint_for("/tmp/x.sock") == "/tmp/x.sock.ctl"

    def test_connect_failure_names_control_flag(self):
        # a port nothing listens on: bind-then-release
        probe = socket.socket(socket.AF_INET)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(OSError) as exc:
            query("127.0.0.1:{}".format(port - 1), {"command": "status"},
                  timeout=2.0)
        message = str(exc.value)
        assert "cannot connect to control endpoint" in message
        assert "--control" in message  # derived endpoint: hint included
        with pytest.raises(OSError) as exc:
            query("ignored", {"command": "status"}, timeout=2.0,
                  control="127.0.0.1:{}".format(port))
        assert "--control" not in str(exc.value)  # explicit: no hint

    def test_truncated_control_reply_is_descriptive(self):
        endpoint, thread = _reply_server(b'{"class": "results"')
        with pytest.raises(ValueError, match="truncated control reply"):
            query("ignored", {"command": "status"}, control=endpoint)
        thread.join(timeout=10)

    def test_oversized_control_reply_is_descriptive(self):
        endpoint, thread = _reply_server(b"x" * ((1 << 22) + 10))
        with pytest.raises(ValueError, match="oversized control reply"):
            query("ignored", {"command": "status"}, control=endpoint,
                  timeout=30.0)
        thread.join(timeout=30)

    def test_control_port_65535_falls_back_to_ephemeral(self):
        """The server half of the fix: a trace listener on port 65535
        must not crash binding its control socket (port+1 would be
        65536, an OverflowError the old OSError fallback never caught)
        — it binds an ephemeral port and serves MI on it."""
        app = ServerApp(ServerConfig(endpoint="127.0.0.1:65535",
                                     multi=True, accept_poll=0.05))
        thread = app._start_control(("127.0.0.1", 65535))
        try:
            assert app.control_address is not None
            port = int(app.control_address.rsplit(":", 1)[1])
            assert 0 < port < 65535 and port != 65535
            doc = query("ignored", {"command": "metadata"},
                        control=app.control_address)
            assert doc["class"] == "metadata"
        finally:
            app._stop.set()
            app._close_control()
            thread.join(timeout=10)
            assert not thread.is_alive()
