"""Tests for the live trace sources (repro.trace.live).

Covers the socket and pipe/FIFO sources end to end (both wire formats,
Unix and TCP endpoints), the one-producer contract (reconnect refusal),
and the adversarial inputs a live feed is exposed to: truncated varints
landing on a read boundary, the binary magic split across packets,
mid-stream disconnects, and slow-writer timeouts — each must surface as
``TraceFormatError``/``TimeoutError`` *and* close every descriptor
(the fd-leak regression discipline of tests/test_binfmt.py).

Also pins the shared-lifecycle guarantee the live sources rely on: a
``TraceStreamBase`` subclass that fails *mid*-iteration closes its owned
handle even when its ``_events`` generator has no ``finally`` of its own
(the close guard lives in ``TraceStreamBase.__iter__``).
"""

import gc
import io
import os
import threading
import time

import pytest

from repro.core.engine import MultiRunner
from repro.core.registry import create
from repro.trace import Trace, TraceFormatError, dumps_trace, dumps_trace_binary
from repro.trace.binfmt import MAGIC
from repro.trace.event import Event, READ, WRITE
from repro.trace.live import (
    PipeTraceSource,
    SocketTraceSource,
    TraceListener,
    connect_endpoint,
    open_live_source,
    parse_endpoint,
    send_trace,
)
from repro.trace.stream import TraceStreamBase
from repro.workloads import figure1


def _same_events(a, b):
    return [(e.tid, e.kind, e.target, e.site) for e in a] == \
        [(e.tid, e.kind, e.target, e.site) for e in b]


def _spawn_raw_client(addr, chunks, delay=0.0, hold_open=0.0):
    """Connect to ``addr`` and send the byte chunks, optionally pausing
    between them and lingering before the close."""

    def run():
        sock = connect_endpoint(addr, connect_timeout=10)
        try:
            for chunk in chunks:
                sock.sendall(chunk)
                if delay:
                    time.sleep(delay)
            if hold_open:
                time.sleep(hold_open)
        finally:
            sock.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def _assert_source_closed(source):
    """Every layer of a live source is released after an error."""
    assert source._fp.closed
    if isinstance(source, SocketTraceSource):
        assert source._conn is None


def _open_fd_count():
    if not os.path.isdir("/proc/self/fd"):
        pytest.skip("needs /proc to count descriptors")
    gc.collect()
    return len(os.listdir("/proc/self/fd"))


class TestEndpoints:
    def test_host_port_is_tcp(self):
        assert parse_endpoint("127.0.0.1:9009") == \
            ("tcp", ("127.0.0.1", 9009))
        assert parse_endpoint("localhost:0") == ("tcp", ("localhost", 0))

    def test_paths_are_unix(self):
        assert parse_endpoint("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_endpoint("rel.sock") == ("unix", "rel.sock")
        # a colon inside a directory name does not make it TCP
        assert parse_endpoint("/tmp/a:1/x.sock") == \
            ("unix", "/tmp/a:1/x.sock")
        # a non-numeric final component is a path too
        assert parse_endpoint("host:name") == ("unix", "host:name")


class TestSocketSource:
    @pytest.mark.parametrize("binary", [True, False])
    def test_unix_round_trip(self, tmp_path, binary):
        trace = figure1()
        addr = str(tmp_path / "rt.sock")
        listener = TraceListener(addr)
        sender = threading.Thread(
            target=send_trace, args=(trace, addr), kwargs={"binary": binary})
        sender.start()
        source = listener.accept(timeout=10)
        info = source.require_info()
        assert info.num_threads == trace.num_threads
        events = list(source)
        sender.join()
        assert _same_events(events, trace.events)
        assert source.events_read == len(trace)
        # iteration finished: everything is closed and the path unlinked
        _assert_source_closed(source)
        assert not os.path.exists(addr)

    def test_tcp_port_zero_round_trip(self):
        trace = figure1()
        listener = TraceListener("127.0.0.1:0")
        host, port = listener.address
        assert port != 0  # the kernel assigned a real one
        sender = threading.Thread(
            target=send_trace, args=(trace, "127.0.0.1:{}".format(port)))
        sender.start()
        with listener.accept(timeout=10) as source:
            events = list(source)
        sender.join()
        assert _same_events(events, trace.events)
        # the address survives accept (a serving loop logs it after)
        assert listener.address == (host, port)
        assert listener.describe() == "{}:{}".format(host, port)

    def test_magic_split_across_packets(self, tmp_path):
        # the format sniffer must keep reading until it has the whole
        # magic, however the packets slice it
        blob = dumps_trace_binary(figure1())
        addr = str(tmp_path / "split.sock")
        listener = TraceListener(addr)
        client = _spawn_raw_client(
            addr, [blob[:5], blob[5:11], blob[11:]], delay=0.05)
        with listener.accept(timeout=10) as source:
            events = list(source)
        client.join()
        assert _same_events(events, figure1().events)

    def test_engine_runs_straight_off_the_socket(self, tmp_path):
        trace = figure1()
        addr = str(tmp_path / "eng.sock")
        listener = TraceListener(addr)
        sender = threading.Thread(target=send_trace, args=(trace, addr))
        sender.start()
        source = listener.accept(timeout=10)
        result = MultiRunner(
            [create("st-wdc", source.require_info())]).run(source)
        sender.join()
        assert result.report("st-wdc").dynamic_count == 1

    def test_trickle_feed_yields_buffered_events_immediately(self, tmp_path):
        # regression: the binary reader used to wait for a 32-byte
        # window before decoding, so complete events already received
        # sat undelivered while the producer idled — a slow live feed
        # must yield what has arrived, not block for more bytes
        trace = figure1()
        blob = dumps_trace_binary(trace)
        split = len(MAGIC) + 6 + 7  # header (6 one-byte dims) + 2 events
        addr = str(tmp_path / "trickle.sock")
        listener = TraceListener(addr)
        client = _spawn_raw_client(addr, [blob[:split]], hold_open=3.0)
        source = listener.accept(timeout=0.5)
        received = []
        with pytest.raises(TimeoutError):
            for event in source:
                received.append(event)
        client.join()
        # both fully-delivered events came through before the stall hit
        assert _same_events(received, trace.events[:2])

    def test_reconnect_refused_after_accept(self, tmp_path):
        addr = str(tmp_path / "one.sock")
        listener = TraceListener(addr)
        client = _spawn_raw_client(addr, [dumps_trace_binary(figure1())],
                                   hold_open=0.5)
        with listener.accept(timeout=10) as source:
            # the listener is gone the moment the first producer landed
            with pytest.raises(ConnectionRefusedError):
                connect_endpoint(addr, connect_timeout=None)
            list(source)
        client.join()

    @pytest.mark.parametrize("binary", [True, False])
    def test_producer_header_goes_out_immediately(self, tmp_path, binary):
        # regression: the header sat in the producer's batch until the
        # first flush window filled, so a slow producer stalled the
        # consumer's header parse (and serve --timeout exited 2 on a
        # healthy feed)
        from repro.trace.event import READ
        from repro.trace.live import send_events
        from repro.trace.trace import TraceInfo

        release = threading.Event()
        info = TraceInfo(num_threads=1, num_vars=8)

        def trickle():
            for i in range(10):  # far fewer than one flush window
                yield Event(0, READ, i % 7, 1)
            release.wait(10)

        addr = str(tmp_path / "hdr{}.sock".format(binary))
        listener = TraceListener(addr)
        sender = threading.Thread(
            target=send_events, args=(info, trickle(), addr),
            kwargs={"binary": binary}, daemon=True)
        sender.start()
        # the header must arrive long before the producer finishes
        source = listener.accept(timeout=2)
        assert source.require_info().num_threads == 1
        release.set()
        list(source)
        sender.join(10)

    def test_producer_flushes_for_liveness(self, tmp_path):
        # regression: send_events buffered ~64 KB before anything hit
        # the wire, so a slow real-time producer's events (and the
        # header itself) sat unsent; the default flush cadence must put
        # them on the wire long before the generator finishes
        from repro.trace.event import READ
        from repro.trace.live import send_events
        from repro.trace.trace import TraceInfo

        release = threading.Event()
        info = TraceInfo(num_threads=1, num_vars=8)

        def slow_producer():
            for i in range(520):  # just past one default flush window
                yield Event(0, READ, i % 7, 1)
            release.wait(10)
            for i in range(8):
                yield Event(0, READ, i % 7, 1)

        addr = str(tmp_path / "flush.sock")
        listener = TraceListener(addr)
        sender = threading.Thread(
            target=send_events, args=(info, slow_producer(), addr),
            daemon=True)
        sender.start()
        source = listener.accept(timeout=10)
        feed = iter(source)
        first = [next(feed) for _ in range(512)]
        # the flushed window arrived while the producer is still blocked
        assert not release.is_set()
        assert len(first) == 512
        release.set()
        rest = list(feed)
        sender.join(10)
        assert len(first) + len(rest) == 528

    def test_stale_unix_socket_file_is_reclaimed(self, tmp_path):
        # a server killed before accept leaves its socket file behind;
        # the next serve on the same path must reclaim it
        addr = str(tmp_path / "stale.sock")
        crashed = TraceListener(addr)
        # simulate SIGKILL: descriptors die (kernel releases the flock),
        # no cleanup runs, the socket file stays behind
        crashed._sock.close()
        crashed._sock = None
        crashed._release_lock()
        assert os.path.exists(addr)
        listener = TraceListener(addr)  # reclaims instead of EADDRINUSE
        client = _spawn_raw_client(addr, [dumps_trace_binary(figure1())])
        with listener.accept(timeout=10) as source:
            assert len(list(source)) == len(figure1())
        client.join()

    def test_live_endpoint_is_not_reclaimed(self, tmp_path):
        # a second server on the same path must be refused via the
        # endpoint lock, NOT via a connect-probe: a probe would be
        # accepted by the healthy server as its one allowed producer,
        # killing its session
        trace = figure1()
        addr = str(tmp_path / "busy.sock")
        alive = TraceListener(addr)
        with pytest.raises(OSError):
            TraceListener(addr)  # someone is listening: refuse to steal
        # the waiting server is undisturbed: its real producer still
        # connects and round-trips
        sender = threading.Thread(target=send_trace, args=(trace, addr),
                                  daemon=True)
        sender.start()
        with alive.accept(timeout=10) as source:
            assert len(list(source)) == len(trace)
        sender.join()

    def test_regular_file_at_endpoint_path_is_never_deleted(self, tmp_path):
        # reclaim must be confined to leftover sockets: a typo'd path
        # pointing at a real file is refused, not unlinked
        path = tmp_path / "notes.txt"
        path.write_text("do not delete")
        with pytest.raises(OSError, match="not a socket"):
            TraceListener(str(path))
        assert path.read_text() == "do not delete"

    def test_active_session_still_holds_the_endpoint(self, tmp_path):
        # the lock travels from listener to source: while a session is
        # being served, a new server on the path is still refused
        addr = str(tmp_path / "held.sock")
        listener = TraceListener(addr)
        client = _spawn_raw_client(addr, [dumps_trace_binary(figure1())],
                                   hold_open=1.0)
        source = listener.accept(timeout=10)
        with pytest.raises(OSError):
            TraceListener(addr)
        list(source)
        client.join()
        # released with the session: the path can be served again
        TraceListener(addr).close()

    def test_accept_timeout_cleans_up(self, tmp_path):
        addr = str(tmp_path / "never.sock")
        before = _open_fd_count()
        with pytest.raises(TimeoutError):
            open_live_source(addr, timeout=0.05)
        assert _open_fd_count() == before
        assert not os.path.exists(addr)  # bound path unlinked

    def test_clean_close_leaves_no_lock_sidecar(self, tmp_path):
        # regression: a clean shutdown used to leave <path>.lock behind,
        # accumulating stale sidecars across serve runs
        addr = str(tmp_path / "tidy.sock")
        TraceListener(addr).close()
        assert not os.path.exists(addr)
        assert not os.path.exists(addr + ".lock")

    def test_served_session_close_removes_lock_sidecar(self, tmp_path):
        # the lock travels listener -> source on accept; the *source's*
        # close is then responsible for removing the sidecar
        addr = str(tmp_path / "served.sock")
        listener = TraceListener(addr)
        client = _spawn_raw_client(addr, [dumps_trace_binary(figure1())])
        with listener.accept(timeout=10) as source:
            assert os.path.exists(addr + ".lock")  # held while serving
            list(source)
        client.join()
        assert not os.path.exists(addr + ".lock")
        assert not os.path.exists(addr)


class TestSocketAdversarial:
    def test_truncated_varint_at_read_boundary(self, tmp_path):
        # multi-byte varints cut so that EOF lands mid-varint, with the
        # packet boundary inside the varint as well
        wide = Trace([Event(0, WRITE, 1 << 20, 1 << 30),
                      Event(1, READ, 1 << 20, 1 << 30)], validate=False)
        blob = dumps_trace_binary(wide)
        cut = len(blob) - 2  # inside the final site varint
        addr = str(tmp_path / "tv.sock")
        listener = TraceListener(addr)
        client = _spawn_raw_client(
            addr, [blob[:cut - 3], blob[cut - 3:cut]], delay=0.05)
        source = listener.accept(timeout=10)
        with pytest.raises(TraceFormatError, match="truncated mid-event"):
            list(source)
        client.join()
        _assert_source_closed(source)

    def test_mid_stream_disconnect(self, tmp_path):
        blob = dumps_trace_binary(figure1())
        addr = str(tmp_path / "dc.sock")
        listener = TraceListener(addr)
        client = _spawn_raw_client(addr, [blob[:-1]])  # dies mid-event
        source = listener.accept(timeout=10)
        with pytest.raises(TraceFormatError, match="truncated mid-event"):
            list(source)
        client.join()
        _assert_source_closed(source)

    def test_slow_writer_timeout_mid_stream(self, tmp_path):
        blob = dumps_trace_binary(figure1())
        addr = str(tmp_path / "slow.sock")
        listener = TraceListener(addr)
        # the header and most events arrive, then the producer goes
        # quiet (but keeps the connection open, so no EOF saves us)
        client = _spawn_raw_client(addr, [blob[:-4]], hold_open=2.0)
        source = listener.accept(timeout=0.2)
        with pytest.raises(TimeoutError):
            list(source)
        _assert_source_closed(source)
        client.join()

    def test_timeout_while_waiting_for_header(self, tmp_path):
        addr = str(tmp_path / "hdr.sock")
        before = _open_fd_count()
        listener = TraceListener(addr)
        client = _spawn_raw_client(addr, [MAGIC[:9]], hold_open=2.0)
        # the header never completes; construction itself must time out
        # and release both the listener and the accepted connection
        with pytest.raises(TimeoutError):
            listener.accept(timeout=0.2)
        client.join()
        assert _open_fd_count() <= before

    def test_garbage_header_closes_connection(self, tmp_path):
        addr = str(tmp_path / "junk.sock")
        before = _open_fd_count()
        listener = TraceListener(addr)
        client = _spawn_raw_client(addr, [b"\xff\xfe\x00garbage" * 4])
        with pytest.raises(TraceFormatError, match="not valid text"):
            listener.accept(timeout=10)
        client.join()
        assert _open_fd_count() <= before


class TestPipeSource:
    def _write_binary(self, path, trace):
        from repro.trace.binfmt import BinaryTraceWriter

        def run():
            with open(path, "wb") as fp:
                writer = BinaryTraceWriter(fp, trace)
                for event in trace.events:
                    writer.write(event)
                writer.flush()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread

    def test_fifo_round_trip(self, tmp_path):
        trace = figure1()
        path = str(tmp_path / "rt.fifo")
        os.mkfifo(path)
        writer = self._write_binary(path, trace)
        source = PipeTraceSource(path, timeout=10)
        assert source.require_info().num_threads == trace.num_threads
        events = list(source)
        writer.join()
        assert _same_events(events, trace.events)
        assert source._fp.closed

    def test_fifo_text_round_trip(self, tmp_path):
        trace = figure1()
        path = str(tmp_path / "txt.fifo")
        os.mkfifo(path)
        payload = dumps_trace(trace).encode("ascii")

        def run():
            with open(path, "wb") as fp:
                fp.write(payload)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        source = PipeTraceSource(path, timeout=10)
        events = list(source)
        thread.join()
        assert _same_events(events, trace.events)

    def test_inherited_fd_pair(self):
        trace = figure1()
        r, w = os.pipe()
        blob = dumps_trace_binary(trace)

        def run():
            with os.fdopen(w, "wb") as fp:
                fp.write(blob)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        source = PipeTraceSource(r, timeout=10)
        events = list(source)
        thread.join()
        assert _same_events(events, trace.events)

    def test_fifo_truncated_raises_and_closes(self, tmp_path):
        path = str(tmp_path / "tr.fifo")
        os.mkfifo(path)
        blob = dumps_trace_binary(figure1())

        def run():
            with open(path, "wb") as fp:
                fp.write(blob[:-1])

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        source = PipeTraceSource(path, timeout=10)
        with pytest.raises(TraceFormatError, match="truncated mid-event"):
            list(source)
        thread.join()
        assert source._fp.closed

    def test_fifo_no_producer_times_out(self, tmp_path):
        # regression: the blocking FIFO open sat outside the read
        # timeout's reach, so timeout= never fired when no producer
        # ever opened the write end
        path = str(tmp_path / "never.fifo")
        os.mkfifo(path)
        before = _open_fd_count()
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            PipeTraceSource(path, timeout=0.3)
        assert time.monotonic() - start < 5
        assert _open_fd_count() <= before  # the nonblocking fd is closed

    def test_fifo_late_producer_within_timeout(self, tmp_path):
        trace = figure1()
        path = str(tmp_path / "late.fifo")
        os.mkfifo(path)

        def run():
            time.sleep(0.3)  # producer shows up late, but in time
            with open(path, "wb") as fp:
                fp.write(dumps_trace_binary(trace))

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        source = PipeTraceSource(path, timeout=10)
        events = list(source)
        thread.join()
        assert _same_events(events, trace.events)

    def test_fifo_slow_writer_timeout(self, tmp_path):
        path = str(tmp_path / "slow.fifo")
        os.mkfifo(path)
        blob = dumps_trace_binary(figure1())
        release = threading.Event()

        def run():
            with open(path, "wb") as fp:
                # header and most events, then silence with the write
                # end still open (no EOF)
                fp.write(blob[:-4])
                fp.flush()
                release.wait(5)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        source = PipeTraceSource(path, timeout=0.2)
        with pytest.raises(TimeoutError):
            list(source)
        release.set()
        thread.join()
        assert source._fp.closed

    def test_header_failure_closes_opened_fifo(self, tmp_path):
        path = str(tmp_path / "junk.fifo")
        os.mkfifo(path)
        done = threading.Event()

        def run():
            with open(path, "wb") as fp:
                fp.write(b"\xff\xfe\x00garbage" * 4)
            done.set()

        before = _open_fd_count()
        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        with pytest.raises(TraceFormatError, match="not valid text"):
            PipeTraceSource(path, timeout=10)
        thread.join()
        done.wait(5)
        assert _open_fd_count() <= before


class _ForgetfulStream(TraceStreamBase):
    """A reader whose ``_events`` has no ``finally`` of its own — the
    base class must still close an owned handle when it fails or
    finishes mid-iteration (the latent one-shot bug class)."""

    _OPEN_MODE = "r"

    def _read_header(self) -> None:
        pass

    def _events(self):
        for line in self._fp:
            if line.startswith("boom"):
                raise TraceFormatError("boom mid-iteration")
            yield Event(0, READ, 0, 0)


class TestMidIterationClose:
    def test_failure_mid_iteration_closes_owned_handle(self, tmp_path):
        path = tmp_path / "boom.txt"
        path.write_text("ok\nok\nboom\n")
        stream = _ForgetfulStream(str(path))
        with pytest.raises(TraceFormatError, match="mid-iteration"):
            list(stream)
        assert stream._fp.closed

    def test_exhaustion_closes_owned_handle(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("ok\nok\n")
        stream = _ForgetfulStream(str(path))
        assert len(list(stream)) == 2
        assert stream._fp.closed

    def test_unowned_handle_survives_failure(self):
        fp = io.StringIO("ok\nboom\n")
        stream = _ForgetfulStream(fp)
        with pytest.raises(TraceFormatError):
            list(stream)
        assert not fp.closed  # not ours to close

    def test_one_shot_contract_still_enforced(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("ok\n")
        stream = _ForgetfulStream(str(path))
        list(stream)
        with pytest.raises(RuntimeError, match="one-shot"):
            iter(stream)
